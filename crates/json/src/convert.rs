//! Encode/decode traits between Rust values and [`Json`] trees.
//!
//! Decoding reports failures as plain strings (the callers wrap them in
//! their own error types); it is strict about numeric kinds so a float
//! smuggled into a `usize` field is a decode error, not a truncation.

use crate::parse::JsonError;
use crate::value::Json;

/// Types that encode themselves as a JSON value.
pub trait ToJson {
    /// The JSON encoding of `self`.
    fn to_json(&self) -> Json;
}

/// Types that decode themselves from a JSON value.
pub trait FromJson: Sized {
    /// Decodes a value of `Self` from `v`.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first mismatch between `v` and
    /// the expected layout.
    fn from_json(v: &Json) -> Result<Self, String>;
}

impl From<JsonError> for String {
    fn from(e: JsonError) -> String {
        e.to_string()
    }
}

/// Fetches a required object member.
///
/// # Errors
///
/// Returns an error naming the key if `v` is not an object or lacks it.
pub(crate) fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

impl Json {
    /// Decodes a required object member into `T`.
    ///
    /// # Errors
    ///
    /// Returns an error naming the key on a missing member or a decode
    /// failure inside it.
    pub fn decode_field<T: FromJson>(&self, key: &str) -> Result<T, String> {
        T::from_json(field(self, key)?).map_err(|e| format!("field {key:?}: {e}"))
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Json, String> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<bool, String> {
        v.as_bool().ok_or_else(|| format!("expected bool, got {v}"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<String, String> {
        v.as_str().map(str::to_string).ok_or_else(|| format!("expected string, got {v}"))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::from(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<f64, String> {
        v.as_f64().ok_or_else(|| format!("expected number, got {v}"))
    }
}

macro_rules! unsigned_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::from(u64::from(*self))
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<$t, String> {
                let u = v.as_u64().ok_or_else(|| format!("expected unsigned integer, got {v}"))?;
                <$t>::try_from(u).map_err(|_| format!("{u} out of range for {}", stringify!($t)))
            }
        }
    )*};
}
unsigned_json!(u8, u16, u32, u64);

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::from(*self as u64)
    }
}

impl FromJson for usize {
    fn from_json(v: &Json) -> Result<usize, String> {
        let u = v.as_u64().ok_or_else(|| format!("expected unsigned integer, got {v}"))?;
        usize::try_from(u).map_err(|_| format!("{u} out of range for usize"))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Vec<T>, String> {
        let items = v.as_array().ok_or_else(|| format!("expected array, got {v}"))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_json(item).map_err(|e| format!("[{i}]: {e}")))
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(t) => t.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Option<T>, String> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_json(v).map(Some)
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<(A, B), String> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(format!("expected 2-element array, got {v}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_vecs_and_pairs_roundtrip() {
        let v: Vec<Option<(u32, u32)>> = vec![Some((1, 2)), None];
        let j = v.to_json();
        assert_eq!(j.to_string(), "[[1,2],null]");
        assert_eq!(Vec::<Option<(u32, u32)>>::from_json(&j).unwrap(), v);
    }

    #[test]
    fn numeric_kind_is_strict() {
        assert!(usize::from_json(&Json::from(1.5f64)).is_err());
        assert!(u32::from_json(&Json::from(u64::MAX)).is_err());
        assert!(f64::from_json(&Json::from(3u64)).is_ok());
    }
}
