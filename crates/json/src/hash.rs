//! Stable 128-bit hashing for content-addressed cache keys.
//!
//! `std::hash` is explicitly *not* stable across processes (SipHash
//! keys are randomized), so cache keys that must survive a process
//! restart are built on FNV-1a/128: fully deterministic, dependency
//! free, and wide enough that accidental collisions across a cache
//! directory are not a practical concern (the cache additionally
//! re-checks exact identity on every hit, so a collision costs a
//! recompile, never a wrong artifact).

use std::fmt;

const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A 128-bit stable content hash; the artifact cache's key type.
/// Renders as 32 lowercase hex digits (the on-disk file stem).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// The raw 128-bit value.
    #[must_use]
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// Parses the 32-hex-digit rendering back into a fingerprint.
    #[must_use]
    pub fn from_hex(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }

    /// Order-dependent combination of fingerprints under a domain tag
    /// (e.g. module ⊕ machine ⊕ options → cache key).
    #[must_use]
    pub fn combine(tag: &str, parts: &[Fingerprint]) -> Fingerprint {
        let mut h = StableHasher::new(tag);
        for p in parts {
            h.write_u128(p.0);
        }
        h.finish()
    }

    /// Order-*independent* fold: XOR, the identity-safe way to combine
    /// hashes of items whose container order is not semantic. Callers
    /// must ensure items are distinct-by-construction or tag them.
    #[must_use]
    pub fn fold_unordered(self, other: Fingerprint) -> Fingerprint {
        Fingerprint(self.0 ^ other.0)
    }

    /// The neutral element of [`Fingerprint::fold_unordered`].
    #[must_use]
    pub fn neutral() -> Fingerprint {
        Fingerprint(0)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incremental FNV-1a/128 hasher. Every write is framed (length- or
/// width-disciplined) so adjacent fields cannot alias: `("ab", "c")`
/// and `("a", "bc")` hash differently.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u128,
}

impl StableHasher {
    /// A hasher seeded with a domain tag, so hashes of different kinds
    /// of objects never collide by construction.
    #[must_use]
    pub fn new(tag: &str) -> StableHasher {
        let mut h = StableHasher { state: FNV_OFFSET };
        h.write_str(tag);
        h
    }

    /// Absorbs raw bytes (no framing; use the typed writers for fields).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Absorbs a bool as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Absorbs a `u32` as 4 little-endian bytes.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u128` as 16 little-endian bytes.
    pub fn write_u128(&mut self, v: u128) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `usize` widened to `u64` (stable across word sizes).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs an `f64` by exact bit pattern (`-0.0 ≠ 0.0`, NaNs by
    /// payload — fingerprints must never equate distinct bit patterns).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a string, length-prefixed.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Absorbs a previously computed fingerprint.
    pub fn write_fingerprint(&mut self, fp: Fingerprint) {
        self.write_u128(fp.as_u128());
    }

    /// The accumulated fingerprint.
    #[must_use]
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_tag_separated() {
        let mut a = StableHasher::new("t");
        a.write_str("payload");
        let mut b = StableHasher::new("t");
        b.write_str("payload");
        assert_eq!(a.finish(), b.finish());
        let mut c = StableHasher::new("other");
        c.write_str("payload");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn framing_prevents_field_aliasing() {
        let mut a = StableHasher::new("t");
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new("t");
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a/128 of the empty input is the offset basis.
        let h = StableHasher { state: FNV_OFFSET };
        assert_eq!(h.finish().to_string(), "6c62272e07bb014262b821756295c58d");
    }

    #[test]
    fn hex_roundtrip() {
        let mut h = StableHasher::new("x");
        h.write_u64(42);
        let fp = h.finish();
        assert_eq!(Fingerprint::from_hex(&fp.to_string()), Some(fp));
        assert_eq!(Fingerprint::from_hex("zz"), None);
    }

    #[test]
    fn unordered_fold_commutes() {
        let f = |s: &str| {
            let mut h = StableHasher::new("item");
            h.write_str(s);
            h.finish()
        };
        let ab = f("a").fold_unordered(f("b"));
        let ba = f("b").fold_unordered(f("a"));
        assert_eq!(ab, ba);
        assert_eq!(Fingerprint::neutral().fold_unordered(ab), ab);
    }
}
