//! Self-contained JSON layer for the overlap workspace.
//!
//! Modules are exchanged as JSON (`overlapc`, the on-disk artifact
//! cache, the `results/` figure records), and the serialization must be
//! *lossless*: a round-tripped module has to compare `==` to the
//! original and simulate to bit-identical makespans. This crate owns
//! the wire format end-to-end so that guarantee does not depend on an
//! external serializer being available or agreeing on float formatting:
//!
//! - [`Json`] — an ordered JSON value tree ([`Num`] keeps the
//!   integer/float distinction so `u64` counters survive beyond 2^53
//!   and `f64` timings round-trip bit-exactly via shortest-form
//!   printing),
//! - [`Json::parse`] — a recursive-descent parser with a depth limit
//!   (cache files and `overlapc` inputs are untrusted),
//! - [`ToJson`]/[`FromJson`] — the encode/decode traits the IR and the
//!   bench records implement,
//! - [`StableHasher`]/[`Fingerprint`] — the 128-bit FNV-1a hasher
//!   behind the content-addressed artifact cache keys. It is a *stable*
//!   hash: independent of `std::hash` seeds, process, platform word
//!   size and build, so fingerprints are valid cache keys across runs.
//!
//! The object model preserves insertion order and the printers mirror
//! the layout `serde_json` would produce for derived types (externally
//! tagged enums, declaration-order fields, 2-space pretty indent), so
//! files written by earlier revisions and by real-serde environments
//! parse identically.

mod convert;
mod hash;
mod parse;
mod value;

pub use convert::{FromJson, ToJson};
pub use hash::{Fingerprint, StableHasher};
pub use parse::JsonError;
pub use value::{Json, Num};
