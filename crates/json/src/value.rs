//! The JSON value tree and its printers.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A JSON number. The integer/float distinction is preserved so `u64`
/// counters round-trip beyond 2^53 and `f64` values keep their exact
/// bits (shortest-form printing re-parses to the same bits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Num {
    /// Non-negative integer token (no sign, fraction or exponent).
    U(u64),
    /// Negative integer token.
    I(i64),
    /// Anything with a fraction or exponent, or out of integer range.
    F(f64),
}

impl Num {
    /// The value as `f64` (lossy for large integers).
    #[must_use]
    pub fn as_f64(self) -> f64 {
        match self {
            Num::U(u) => u as f64,
            Num::I(i) => i as f64,
            Num::F(f) => f,
        }
    }

    /// The value as `u64` if it is a non-negative integer token.
    #[must_use]
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Num::U(u) => Some(u),
            Num::I(_) | Num::F(_) => None,
        }
    }

    /// The value as `i64` if it is an integer token in range.
    #[must_use]
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Num::U(u) => i64::try_from(u).ok(),
            Num::I(i) => Some(i),
            Num::F(_) => None,
        }
    }
}

impl fmt::Display for Num {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Num::U(u) => write!(f, "{u}"),
            Num::I(i) => write!(f, "{i}"),
            Num::F(x) if x.is_finite() => {
                // Shortest round-trip form; force a fraction or exponent
                // marker so the token re-parses as a float, keeping the
                // integer/float distinction through a round-trip.
                let s = format!("{x:?}");
                if s.contains(['.', 'e', 'E']) {
                    f.write_str(&s)
                } else {
                    write!(f, "{s}.0")
                }
            }
            // JSON has no NaN/inf tokens; match serde_json and emit null.
            Num::F(_) => f.write_str("null"),
        }
    }
}

/// An ordered JSON value. Objects preserve insertion order (struct
/// fields serialize in declaration order, like derived serde).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(Num),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

static NULL: Json = Json::Null;

impl Json {
    /// An empty object.
    #[must_use]
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends `key: value` to an object (panics on non-objects) and
    /// returns `self` for chaining.
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value.into());
        self
    }

    /// Inserts or replaces `key` in an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(fields) => match fields.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value,
                None => fields.push((key.to_string(), value)),
            },
            other => panic!("cannot set key {key:?} on non-object {other:?}"),
        }
    }

    /// Member lookup on objects; `None` for missing keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element lookup on arrays; `None` out of bounds or on non-arrays.
    #[must_use]
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(index),
            _ => None,
        }
    }

    /// The elements if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value if this is a number (lossy for huge integers).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value if this is a non-negative integer number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Pretty-prints with 2-space indentation (the `results/` file
    /// layout; matches `serde_json::to_string_pretty`).
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                use fmt::Write as _;
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Compact (single-line) rendering.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_compact(&mut out);
        f.write_str(&out)
    }
}

/// Array indexing; yields `null` out of bounds or on non-arrays (the
/// tamper-test idiom `v["instrs"][3]` must not panic mid-chain).
impl Index<usize> for Json {
    type Output = Json;
    fn index(&self, index: usize) -> &Json {
        self.at(index).unwrap_or(&NULL)
    }
}

/// Object member indexing; yields `null` for missing keys.
impl Index<&str> for Json {
    type Output = Json;
    fn index(&self, key: &str) -> &Json {
        self.get(key).unwrap_or(&NULL)
    }
}

/// Mutable array indexing.
///
/// # Panics
///
/// Panics on non-arrays or out of bounds (a tamper test writing past
/// the end is a bug in the test, not a case to paper over).
impl IndexMut<usize> for Json {
    fn index_mut(&mut self, index: usize) -> &mut Json {
        match self {
            Json::Arr(items) => &mut items[index],
            other => panic!("cannot index non-array {other:?} with {index}"),
        }
    }
}

/// Mutable object member indexing; inserts `null` for missing keys.
///
/// # Panics
///
/// Panics if the value is not an object.
impl IndexMut<&str> for Json {
    fn index_mut(&mut self, key: &str) -> &mut Json {
        match self {
            Json::Obj(fields) => {
                if let Some(i) = fields.iter().position(|(k, _)| k == key) {
                    return &mut fields[i].1;
                }
                fields.push((key.to_string(), Json::Null));
                &mut fields.last_mut().expect("just pushed").1
            }
            other => panic!("cannot index non-object {other:?} with key {key:?}"),
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(Num::U(u64::from(v)))
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(Num::U(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(Num::U(v as u64))
    }
}
impl From<i32> for Json {
    fn from(v: i32) -> Json {
        Json::from(i64::from(v))
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        if v >= 0 {
            Json::Num(Num::U(v as u64))
        } else {
            Json::Num(Num::I(v))
        }
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(Num::F(v))
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_tokens_keep_their_kind() {
        assert_eq!(Json::from(3u64).to_string(), "3");
        assert_eq!(Json::from(-3i64).to_string(), "-3");
        assert_eq!(Json::from(3.0f64).to_string(), "3.0");
        assert_eq!(Json::from(u64::MAX).to_string(), "18446744073709551615");
        assert_eq!(Json::from(f64::NAN).to_string(), "null");
    }

    #[test]
    fn indexing_chain_is_total_and_mutation_targets_resolve() {
        let mut v = Json::obj().with(
            "instrs",
            Json::Arr(vec![Json::obj().with("operands", Json::Arr(vec![Json::from(7u64)]))]),
        );
        assert_eq!(v["instrs"][0]["operands"][0].as_u64(), Some(7));
        assert!(v["instrs"][9]["missing"].is_null());
        v["instrs"][0]["operands"][0] = Json::from(999u64);
        assert_eq!(v["instrs"][0]["operands"][0].as_u64(), Some(999));
    }

    #[test]
    fn escapes_render() {
        let s = Json::from("a\"b\\c\nd\u{1}");
        assert_eq!(s.to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn pretty_matches_two_space_layout() {
        let v = Json::obj().with("a", Json::Arr(vec![Json::from(1u64)])).with("b", Json::obj());
        assert_eq!(v.to_pretty(), "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}");
    }
}
