//! Recursive-descent JSON parser.
//!
//! Cache files and `overlapc` inputs are untrusted, so the parser is
//! total: strict JSON grammar, a nesting-depth limit instead of
//! unbounded recursion, and byte-offset error messages.

use std::error::Error;
use std::fmt;

use crate::value::{Json, Num};

/// Maximum nesting depth accepted by [`Json::parse`]. Generous for any
/// module or cache entry (instruction trees are flat arrays), small
/// enough that a `[[[[…` bomb cannot blow the stack.
const MAX_DEPTH: usize = 256;

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    offset: usize,
}

impl JsonError {
    fn new(message: impl Into<String>, offset: usize) -> JsonError {
        JsonError { message: message.into(), offset }
    }

    /// Byte offset of the failure in the input.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl Error for JsonError {}

impl Json {
    /// Parses strict JSON text into a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on any grammar violation, trailing input,
    /// invalid escapes, or nesting deeper than an internal limit.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new("trailing characters after value", p.pos));
        }
        Ok(value)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!("expected {:?}", b as char), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!("expected {word:?}"), self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::new("nesting too deep", self.pos));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => {
                Err(JsonError::new(format!("unexpected character {:?}", other as char), self.pos))
            }
            None => Err(JsonError::new("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::new("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(JsonError::new("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::new("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(JsonError::new(
                                format!("invalid escape \\{}", other as char),
                                self.pos - 1,
                            ))
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(JsonError::new("raw control character in string", self.pos))
                }
                Some(_) => {
                    // Advance one UTF-8 character (the input is a &str,
                    // so boundaries are valid by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is valid UTF-8"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| JsonError::new("invalid \\u escape", self.pos))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let at = self.pos;
        let hi = self.hex4()?;
        if (0xd800..0xdc00).contains(&hi) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xdc00..0xe000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                    return char::from_u32(c)
                        .ok_or_else(|| JsonError::new("invalid surrogate pair", at));
                }
            }
            return Err(JsonError::new("unpaired surrogate", at));
        }
        char::from_u32(hi).ok_or_else(|| JsonError::new("invalid \\u escape", at))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Integer part: "0" or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(JsonError::new("invalid number", self.pos)),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::new("digits must follow '.'", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::new("digits must follow exponent", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number tokens are ASCII");
        if integral {
            if negative {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Json::Num(Num::I(i)));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::Num(Num::U(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Json::Num(Num::F(f)))
            .map_err(|_| JsonError::new("invalid number", start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> String {
        Json::parse(text).expect("parses").to_string()
    }

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(roundtrip("null"), "null");
        assert_eq!(roundtrip("true"), "true");
        assert_eq!(roundtrip(" [1, -2, 3.5, \"x\"] "), "[1,-2,3.5,\"x\"]");
        assert_eq!(roundtrip("{\"a\": {\"b\": []}}"), "{\"a\":{\"b\":[]}}");
    }

    #[test]
    fn float_bits_survive_print_parse() {
        for &f in &[0.1f64, -0.0, 1.0, 2.5e-300, 1.7976931348623157e308, 12345.678901234567] {
            let printed = Json::from(f).to_string();
            match Json::parse(&printed).expect("parses") {
                Json::Num(Num::F(back)) => assert_eq!(back.to_bits(), f.to_bits(), "{printed}"),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn u64_and_i64_extremes_survive() {
        assert_eq!(Json::parse("18446744073709551615").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(
            Json::parse("-9223372036854775808").unwrap(),
            Json::Num(Num::I(i64::MIN))
        );
    }

    #[test]
    fn escapes_and_surrogates() {
        assert_eq!(
            Json::parse("\"\\u0041\\n\\ud83d\\ude00\"").unwrap().as_str(),
            Some("A\n😀")
        );
        assert!(Json::parse("\"\\ud800\"").is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "nul", "1 2", "\"\\x\"", "01", "1.", "--1"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
        let bomb = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(Json::parse(&bomb).is_err(), "depth bomb must be rejected, not overflow");
    }
}
