//! Criterion benchmarks of the discrete-event simulator, plus the Fig. 11
//! fusion-heuristic ablation (overlap-aware vs. default fusion decisions).

use criterion::{criterion_group, criterion_main, Criterion};
use overlap_core::{fuse, FusionOptions, OverlapOptions, OverlapPipeline};
use overlap_models::{Arch, ModelConfig, PartitionStrategy};
use overlap_sim::{
    simulate, simulate_order, simulate_order_repeated, simulate_order_repeated_with,
    simulate_order_with, CostTable,
};

fn layer_config(chips: usize) -> ModelConfig {
    ModelConfig {
        name: format!("sim_layer_{chips}"),
        params: 0.0,
        layers: 1,
        model_dim: 2048,
        ff_dim: 8192,
        batch: chips * 16,
        seq_len: 64,
        chips,
        arch: Arch::Decoder,
        strategy: PartitionStrategy::TwoD,
    }
}

fn simulator(c: &mut Criterion) {
    for chips in [8usize, 32] {
        let cfg = layer_config(chips);
        let module = cfg.layer_module();
        let machine = cfg.machine();
        c.bench_function(&format!("simulate_baseline/{chips}chips"), |b| {
            b.iter(|| simulate(&module, &machine).expect("simulate"))
        });
        let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
            .run(&module, &machine)
            .expect("pipeline");
        c.bench_function(&format!("simulate_overlapped/{chips}chips"), |b| {
            b.iter(|| {
                simulate_order(&compiled.module, &machine, &compiled.order).expect("simulate")
            })
        });
        // The same schedule through the precomputed cost table: per-run
        // work shrinks to the event loop itself.
        c.bench_function(&format!("simulate_cached_table/{chips}chips"), |b| {
            b.iter(|| {
                simulate_order_with(
                    &compiled.cost_table,
                    &compiled.module,
                    &machine,
                    &compiled.order,
                )
                .expect("simulate")
            })
        });
    }
}

/// Repeated-execution path: `simulate_order_repeated` rebuilds the cost
/// table once per call, `simulate_order_repeated_with` not at all. The
/// old engine re-derived every instruction cost on every repetition.
fn repeated(c: &mut Criterion) {
    let cfg = layer_config(16);
    let module = cfg.layer_module();
    let machine = cfg.machine();
    let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
        .run(&module, &machine)
        .expect("pipeline");
    const REPS: usize = 64;
    c.bench_function("simulate_repeated/64reps", |b| {
        b.iter(|| {
            simulate_order_repeated(&compiled.module, &machine, &compiled.order, REPS)
                .expect("simulate")
        })
    });
    let table = CostTable::new(&compiled.module, &machine).expect("cost table");
    c.bench_function("simulate_repeated_cached_table/64reps", |b| {
        b.iter(|| {
            simulate_order_repeated_with(&table, &compiled.module, &machine, &compiled.order, REPS)
                .expect("simulate")
        })
    });
    c.bench_function("cost_table_build/layer16", |b| {
        b.iter(|| CostTable::new(&compiled.module, &machine).expect("cost table"))
    });
}

/// Fig. 11 ablation: the same scheduled module, annotated with the
/// overlap-aware vs. the default fusion heuristic. Fusion only attaches
/// groups (the instruction set and order are unchanged), so the simulated
/// makespans isolate the fusion decision.
fn fusion_ablation(c: &mut Criterion) {
    let cfg = layer_config(16);
    let module = cfg.layer_module();
    let machine = cfg.machine();
    // Compile without a fusion pass; apply each heuristic to the result.
    let compiled = OverlapPipeline::new(OverlapOptions::with_strategy(
        overlap_core::StrategySpec::paper_default()
            .with_fusion(overlap_core::FusionAggressiveness::Off),
    ))
    .run(&module, &machine)
    .expect("pipeline");
    for (name, aware) in [("overlap_aware", true), ("default", false)] {
        let fused = fuse(&compiled.module, &FusionOptions { overlap_aware: aware });
        let report =
            simulate_order(&fused, &machine, &compiled.order).expect("simulate");
        println!("fig11 fusion {name}: simulated makespan {:.4e}s", report.makespan());
        c.bench_function(&format!("fig11_fusion/{name}"), |b| {
            b.iter(|| simulate_order(&fused, &machine, &compiled.order).expect("simulate"))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = simulator, repeated, fusion_ablation
}
criterion_main!(benches);
