//! Criterion benchmarks of the compiler passes themselves: pattern
//! finding, decomposition, async conversion, fusion and both schedulers,
//! on a realistic transformer-layer module.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use overlap_core::{
    asyncify, decompose, find_patterns, fuse, schedule_bottom_up, schedule_bottom_up_with,
    schedule_top_down, DecomposeOptions, FusionOptions, OverlapOptions, OverlapPipeline,
};
use overlap_models::{Arch, ModelConfig, PartitionStrategy};
use overlap_sim::CostTable;

fn layer_config() -> ModelConfig {
    ModelConfig {
        name: "bench_layer".into(),
        params: 0.0,
        layers: 1,
        model_dim: 2048,
        ff_dim: 8192,
        batch: 256,
        seq_len: 64,
        chips: 16,
        arch: Arch::Decoder,
        strategy: PartitionStrategy::TwoD,
    }
}

fn passes(c: &mut Criterion) {
    let cfg = layer_config();
    let module = cfg.layer_module();
    let machine = cfg.machine();

    c.bench_function("find_patterns/layer16", |b| {
        b.iter(|| find_patterns(std::hint::black_box(&module)))
    });

    let patterns: Vec<_> = {
        let mut p = find_patterns(&module);
        let mut seen = std::collections::HashSet::new();
        p.retain(|x| seen.insert(x.einsum));
        p
    };
    c.bench_function("decompose/layer16", |b| {
        b.iter(|| decompose(&module, &DecomposeOptions::default(), &patterns))
    });

    let (decomposed, _) = decompose(&module, &DecomposeOptions::default(), &patterns);
    c.bench_function("asyncify/layer16", |b| b.iter(|| asyncify(&decomposed)));

    let asynced = asyncify(&decomposed);
    c.bench_function("fuse/layer16", |b| {
        b.iter(|| fuse(&asynced, &FusionOptions::default()))
    });

    let fused = fuse(&asynced, &FusionOptions::default());
    c.bench_function("schedule_bottom_up/layer16", |b| {
        b.iter_batched(
            || fused.clone(),
            |m| schedule_bottom_up(&m, &machine),
            BatchSize::LargeInput,
        )
    });
    // With the cost table amortized away, what remains is the list
    // scheduler's own priority logic.
    let table = CostTable::new(&fused, &machine).expect("cost table");
    c.bench_function("schedule_bottom_up_cached_table/layer16", |b| {
        b.iter_batched(
            || fused.clone(),
            |m| schedule_bottom_up_with(&table, &m, &machine),
            BatchSize::LargeInput,
        )
    });
    c.bench_function("schedule_top_down/layer16", |b| {
        b.iter_batched(
            || fused.clone(),
            |m| schedule_top_down(&m, &machine),
            BatchSize::LargeInput,
        )
    });

    c.bench_function("pipeline_end_to_end/layer16", |b| {
        b.iter(|| {
            OverlapPipeline::new(OverlapOptions::paper_default())
                .run(&module, &machine)
                .expect("pipeline")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = passes
}
criterion_main!(benches);
