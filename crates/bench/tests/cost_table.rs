//! [`CostTable`] is a cache, not a reinterpretation: for every published
//! model configuration, every entry must be bit-identical to what the
//! per-instruction cost model computes, and simulating through the table
//! must reproduce the uncached report exactly.

use overlap_core::{OverlapOptions, OverlapPipeline};
use overlap_models::table1_models;
use overlap_sim::{instruction_cost, simulate_order_with, CostTable, InstrCost};

fn assert_cost_bits_eq(a: InstrCost, b: InstrCost, ctx: &str) {
    match (a, b) {
        (InstrCost::Free, InstrCost::Free) | (InstrCost::AsyncDone, InstrCost::AsyncDone) => {}
        (
            InstrCost::Compute { seconds: sa, flops: fa },
            InstrCost::Compute { seconds: sb, flops: fb },
        ) => {
            assert_eq!(sa.to_bits(), sb.to_bits(), "{ctx}: compute seconds");
            assert_eq!(fa, fb, "{ctx}: compute flops");
        }
        (InstrCost::Memory { seconds: sa }, InstrCost::Memory { seconds: sb }) => {
            assert_eq!(sa.to_bits(), sb.to_bits(), "{ctx}: memory seconds");
        }
        (
            InstrCost::SyncCollective { seconds: sa },
            InstrCost::SyncCollective { seconds: sb },
        ) => {
            assert_eq!(sa.to_bits(), sb.to_bits(), "{ctx}: collective seconds");
        }
        (InstrCost::AsyncStart(ta), InstrCost::AsyncStart(tb)) => {
            assert_eq!(ta, tb, "{ctx}: transfer class");
        }
        (a, b) => panic!("{ctx}: cost variants differ: {a:?} vs {b:?}"),
    }
}

#[test]
fn cost_table_matches_instruction_cost_over_model_zoo() {
    for cfg in table1_models() {
        let module = cfg.layer_module();
        let machine = cfg.machine();
        let table = CostTable::new(&module, &machine).expect("cost table");
        assert_eq!(table.len(), module.len(), "{}", cfg.name);
        for id in module.ids() {
            assert_cost_bits_eq(
                table.cost(id),
                instruction_cost(&module, id, &machine),
                &format!("{} instr {}", cfg.name, id.index()),
            );
        }
    }
}

#[test]
fn cached_table_simulation_matches_pipeline_output() {
    for cfg in table1_models().into_iter().take(2) {
        let module = cfg.layer_module();
        let machine = cfg.machine();
        let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
            .run(&module, &machine)
            .expect("pipeline");
        // The pipeline's own table and a freshly built one must agree
        // with the uncached simulation entry point.
        let fresh = CostTable::new(&compiled.module, &machine).expect("cost table");
        let via_pipeline_table =
            simulate_order_with(&compiled.cost_table, &compiled.module, &machine, &compiled.order)
                .expect("simulate");
        let via_fresh_table =
            simulate_order_with(&fresh, &compiled.module, &machine, &compiled.order)
                .expect("simulate");
        let uncached = overlap_sim::simulate_order(&compiled.module, &machine, &compiled.order)
            .expect("simulate");
        assert_eq!(
            via_pipeline_table.makespan().to_bits(),
            uncached.makespan().to_bits(),
            "{}",
            cfg.name
        );
        assert_eq!(
            via_fresh_table.makespan().to_bits(),
            uncached.makespan().to_bits(),
            "{}",
            cfg.name
        );
    }
}
