//! The parallel sweep driver must be a pure reordering of work: its
//! records — down to every float bit and therefore every serialized
//! byte — must match what the serial path produces.

use overlap_bench::{
    par_map, run_baseline, run_baselines, run_comparison, run_comparisons,
    run_comparisons_cached,
};
use overlap_core::ArtifactCache;
use overlap_json::ToJson;
use overlap_models::{Arch, ModelConfig, PartitionStrategy};

/// A small zoo that still exercises different meshes and shapes without
/// making `cargo test` expensive.
fn zoo() -> Vec<ModelConfig> {
    [(8usize, 256usize, 1024usize), (16, 256, 1024), (8, 512, 2048), (32, 256, 1024)]
        .into_iter()
        .enumerate()
        .map(|(i, (chips, model_dim, ff_dim))| ModelConfig {
            name: format!("det_{i}"),
            params: 1e9,
            layers: 4,
            model_dim,
            ff_dim,
            batch: chips * 2,
            seq_len: 64,
            chips,
            arch: Arch::Decoder,
            strategy: PartitionStrategy::TwoD,
        })
        .collect()
}

#[test]
fn parallel_baselines_match_serial_bytes() {
    let cfgs = zoo();
    let serial: Vec<_> = cfgs.iter().map(run_baseline).collect();
    let parallel = run_baselines(&cfgs);
    assert_eq!(serial.to_json().to_string(), parallel.to_json().to_string());
}

#[test]
fn parallel_comparisons_match_serial_bytes() {
    let cfgs = zoo();
    let serial: Vec<_> = cfgs.iter().map(run_comparison).collect();
    let parallel = run_comparisons(&cfgs);
    assert_eq!(serial.to_json().to_string(), parallel.to_json().to_string());
    // Belt and braces: compare the floats at the bit level too, so the
    // test stays meaningful even if serialization ever rounds.
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.baseline.step_time.to_bits(), p.baseline.step_time.to_bits());
        assert_eq!(s.overlapped.step_time.to_bits(), p.overlapped.step_time.to_bits());
        assert_eq!(s.speedup().to_bits(), p.speedup().to_bits());
    }
}

#[test]
fn cached_parallel_sweep_matches_uncached_bytes() {
    // A warm cache must not change a single serialized byte of the sweep,
    // whatever the worker count (the fanned workers share one
    // single-flight cache).
    let cfgs = zoo();
    let uncached = run_comparisons(&cfgs);
    let cache = ArtifactCache::in_memory();
    let cold = run_comparisons_cached(&cfgs, &cache);
    let warm = run_comparisons_cached(&cfgs, &cache);
    assert_eq!(uncached.to_json().to_string(), cold.to_json().to_string());
    assert_eq!(uncached.to_json().to_string(), warm.to_json().to_string());
    assert_eq!(cache.stats().misses, cfgs.len() as u64);
    assert_eq!(cache.stats().hits(), cfgs.len() as u64);
}

#[test]
fn par_map_is_stable_across_repeated_runs() {
    let items: Vec<u64> = (0..97).collect();
    let f = |&i: &u64| (i as f64).sqrt().sin();
    let first = par_map(&items, f);
    for _ in 0..3 {
        let again = par_map(&items, f);
        assert_eq!(
            first.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            again.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }
}
