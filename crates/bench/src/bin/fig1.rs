//! Figure 1: training step-time breakdown (computation vs communication)
//! of the Table-1 models under the baseline (no overlap).

use overlap_bench::{artifact_cache, bar, report_cache, run_baselines, write_json};
use overlap_models::table1_models;

fn main() {
    println!("Figure 1: training step time breakdown of large models (baseline)");
    println!("(paper: every model spends a substantial fraction on communication)\n");
    println!(
        "{:<14} {:>6} {:>11} {:>12} {:>8}  comm share",
        "model", "chips", "step", "compute%", "comm%"
    );
    let rows = run_baselines(&table1_models());
    for s in &rows {
        println!(
            "{:<14} {:>6} {:>9.2}s {:>11.1}% {:>7.1}%  |{}|",
            s.model,
            s.chips,
            s.step_time,
            100.0 * s.compute_fraction,
            100.0 * s.comm_fraction,
            bar(s.comm_fraction, 40),
        );
    }
    write_json("fig1", &rows);
    // Baseline-only driver: no compiles, so the shared cache reports
    // nothing unless another knob (e.g. OVERLAP_CACHE_VERIFY) compiled.
    report_cache(artifact_cache());
}
