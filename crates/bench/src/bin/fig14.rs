//! Figure 14: performance improvements provided by loop unrolling
//! (§5.4.1), on the weakly scaled GPT family.
//!
//! Series: per-step execution time normalized to the baseline, with the
//! overlap pipeline running *without* and *with* loop unrolling.

use overlap_bench::{artifact_cache, report_cache, run_baseline, run_overlapped_cached, write_json};
use overlap_core::{OverlapOptions, StrategySpec};
use overlap_json::{Json, ToJson};
use overlap_models::table2_models;

struct Row {
    model: String,
    normalized_no_unroll: f64,
    normalized_unrolled: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("model", self.model.as_str())
            .with("normalized_no_unroll", self.normalized_no_unroll)
            .with("normalized_unrolled", self.normalized_unrolled)
    }
}

fn main() {
    println!("Figure 14: performance improvements provided by loop unrolling");
    println!("(normalized step time, baseline = 1.0; lower is better)\n");
    println!("{:<10} {:>12} {:>12} {:>12}", "model", "no-unroll", "unrolled", "gain");
    let mut rows = Vec::new();
    for cfg in table2_models() {
        let base = run_baseline(&cfg).step_time;
        let no_unroll = run_overlapped_cached(
            &cfg,
            OverlapOptions::with_strategy(StrategySpec::paper_default().with_unroll(false)),
            artifact_cache(),
        )
        .step_time;
        let unrolled =
            run_overlapped_cached(&cfg, OverlapOptions::paper_default(), artifact_cache())
                .step_time;
        let row = Row {
            model: cfg.name.clone(),
            normalized_no_unroll: no_unroll / base,
            normalized_unrolled: unrolled / base,
        };
        println!(
            "{:<10} {:>11.3} {:>12.3} {:>11.1}%",
            row.model,
            row.normalized_no_unroll,
            row.normalized_unrolled,
            100.0 * (row.normalized_no_unroll - row.normalized_unrolled)
                / row.normalized_no_unroll,
        );
        rows.push(row);
    }
    write_json("fig14", &rows);
    report_cache(artifact_cache());
}
