//! §6.4: energy-consumption reduction.
//!
//! Following the paper's methodology (constant system power — idle
//! computational units cannot sleep while waiting for synchronous
//! collectives), the energy reduction equals the end-to-end time
//! improvement: 1.14 - 1.38x in the paper.

use overlap_bench::{artifact_cache, report_cache, run_comparison_cached, write_json};
use overlap_json::{Json, ToJson};
use overlap_models::table1_models;

struct Row {
    model: String,
    energy_reduction: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("model", self.model.as_str())
            .with("energy_reduction", self.energy_reduction)
    }
}

fn main() {
    println!("Section 6.4: energy consumption reduction");
    println!("(constant-power model: reduction factor = step-time speedup)\n");
    println!("{:<14} {:>18}", "model", "energy reduction");
    let mut rows = Vec::new();
    for cfg in table1_models() {
        let c = run_comparison_cached(&cfg, artifact_cache());
        let row = Row { model: cfg.name.clone(), energy_reduction: c.speedup() };
        println!("{:<14} {:>17.2}x", row.model, row.energy_reduction);
        rows.push(row);
    }
    write_json("table_energy", &rows);
    report_cache(artifact_cache());
}
