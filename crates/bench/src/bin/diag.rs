//! Diagnostic: per-model breakdown for calibration.
use overlap_core::{OverlapOptions, OverlapPipeline};
use overlap_models::{find_model, model_names};
use overlap_sim::{simulate, simulate_order};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "GPT_32B".into());
    let Some(cfg) = find_model(&which) else {
        eprintln!("unknown model {which}; known names: {}", model_names().join(", "));
        std::process::exit(1);
    };
    let module = cfg.layer_module();
    let machine = cfg.machine();
    println!("mesh {:?} instrs {} tokens/replica {}", machine.mesh().shape(), module.len(), cfg.tokens_per_replica());
    let base = match simulate(&module, &machine) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot simulate the baseline of {}: {e}", cfg.name);
            std::process::exit(1);
        }
    };
    println!("BASE  makespan {:.4e} comp {:.4e} mem {:.4e} sync {:.4e} util {:.3}",
        base.makespan(), base.compute_time(), base.memory_time(), base.sync_comm_time(),
        base.flops_utilization(machine.peak_flops()));
    let compiled = match OverlapPipeline::new(OverlapOptions::paper_default()).run(&module, &machine) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot compile {}: {e}", cfg.name);
            std::process::exit(1);
        }
    };
    println!("decomposed patterns: {} / decisions: {}", compiled.summaries.len(), compiled.decisions.len());
    for d in &compiled.decisions {
        println!("  comp {:.3e} comm {:.3e} ring {:.3e} extra {:.3e} beneficial {}",
            d.comp_t, d.comm_t, d.comm_t_ring, d.extra_t, d.beneficial);
    }
    let r = match simulate_order(&compiled.module, &machine, &compiled.order) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot simulate the overlapped schedule of {}: {e}", cfg.name);
            std::process::exit(1);
        }
    };
    println!("OVLP  makespan {:.4e} comp {:.4e} mem {:.4e} sync {:.4e} exposed {:.4e} hidden {:.4e} util {:.3}",
        r.makespan(), r.compute_time(), r.memory_time(), r.sync_comm_time(), r.exposed_async_time(), r.hidden_async_time(),
        r.flops_utilization(machine.peak_flops()));
    println!("{}", r.timeline().render(110));
    let stalls = r.timeline().stall_summary();
    if !stalls.is_empty() {
        println!("exposed communication by loop:");
        for (loop_name, t) in stalls {
            println!("  {loop_name:<24} {:.3} ms", t * 1e3);
        }
    }
}
