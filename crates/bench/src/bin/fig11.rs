//! Figure 11: fusion decisions and overlap.
//!
//! Reconstructs the paper's illustrative graph — an `Add` accumulating
//! the results of two einsums, one of which consumes an asynchronous
//! `CollectivePermuteDone` — and simulates it under (a) the default
//! fusion heuristic, which fuses the `Add` with the *first* producer
//! (`Einsum_0`, the independent one), serializing
//! `done → Fusion_1 → Fusion_0`; and (b) the §5.4.3 overlap-aware
//! heuristic, which fuses the `Add` with the done-dependent einsum so the
//! independent one runs concurrently with the transfer.

use overlap_bench::{or_exit, write_json};
use overlap_core::{fuse, schedule_bottom_up, FusionOptions};
use overlap_hlo::{Builder, DType, DotDims, Module, Shape};
use overlap_mesh::{DeviceMesh, Machine};
use overlap_json::{Json, ToJson};
use overlap_sim::simulate_order;

/// The Fig. 11 graph at a given matmul width.
fn fig11_module(dim: usize) -> Module {
    let n = 2;
    let mut b = Builder::new("fig11", n);
    let a = b.parameter(Shape::new(DType::BF16, vec![dim, dim]), "a");
    let w0 = b.parameter(Shape::new(DType::BF16, vec![dim, dim]), "w0");
    let w1 = b.parameter(Shape::new(DType::BF16, vec![dim, dim]), "w1");
    let e0 = b.einsum(a, w0, DotDims::matmul(), "einsum0");
    let s = b.collective_permute_start(a, vec![(0, 1), (1, 0)], "cp_start");
    let d = b.collective_permute_done(s, "cp_done");
    let e1 = b.einsum(d, w1, DotDims::matmul(), "einsum1");
    let add = b.add(e0, e1, "accumulate");
    b.build(vec![add])
}

struct Row {
    dim: usize,
    default_fusion_ms: f64,
    overlap_aware_ms: f64,
    improvement: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("dim", self.dim as u64)
            .with("default_fusion_ms", self.default_fusion_ms)
            .with("overlap_aware_ms", self.overlap_aware_ms)
            .with("improvement", self.improvement)
    }
}

fn main() {
    println!("Figure 11: default vs overlap-aware fusion on the Add-of-two-einsums graph");
    println!("(2-way partitioned; the transfer should hide behind the independent einsum)\n");
    println!("{:<8} {:>12} {:>15} {:>12}", "width", "default", "overlap-aware", "gain");
    let machine = Machine::with_mesh(DeviceMesh::ring(2));
    let mut rows = Vec::new();
    for dim in [2048usize, 4096, 8192] {
        let module = fig11_module(dim);
        let time_with = |aware: bool| {
            let fused = fuse(&module, &FusionOptions { overlap_aware: aware });
            let order = schedule_bottom_up(&fused, &machine);
            or_exit(simulate_order(&fused, &machine, &order), "simulate the fused graph")
                .makespan()
        };
        let bad = time_with(false);
        let good = time_with(true);
        let row = Row {
            dim,
            default_fusion_ms: bad * 1e3,
            overlap_aware_ms: good * 1e3,
            improvement: bad / good,
        };
        println!(
            "{:<8} {:>9.3} ms {:>12.3} ms {:>11.2}x",
            row.dim, row.default_fusion_ms, row.overlap_aware_ms, row.improvement
        );
        rows.push(row);
    }
    write_json("fig11", &rows);
}
