//! Figure 16: comparison of the two §5.2 scheduling approaches on the
//! weakly scaled GPT family.
//!
//! Paper: the bottom-up approach is ~5% faster on average and is the one
//! used for the overall evaluation.

use overlap_bench::{run_overlapped, write_json};
use overlap_core::{OverlapOptions, SchedulerKind};
use overlap_json::{Json, ToJson};
use overlap_models::table2_models;

struct Row {
    model: String,
    top_down: f64,
    bottom_up: f64,
    bottom_up_speedup: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("model", self.model.as_str())
            .with("top_down", self.top_down)
            .with("bottom_up", self.bottom_up)
            .with("bottom_up_speedup", self.bottom_up_speedup)
    }
}

fn main() {
    println!("Figure 16: performance comparison of the two scheduling approaches");
    println!("(per-step time in seconds; paper: bottom-up ~5% faster on average)\n");
    println!("{:<10} {:>12} {:>12} {:>10}", "model", "top-down", "bottom-up", "speedup");
    let mut rows = Vec::new();
    for cfg in table2_models() {
        let td = run_overlapped(
            &cfg,
            OverlapOptions {
                scheduler: SchedulerKind::TopDown,
                ..OverlapOptions::paper_default()
            },
        )
        .step_time;
        let bu = run_overlapped(&cfg, OverlapOptions::paper_default()).step_time;
        let row = Row {
            model: cfg.name.clone(),
            top_down: td,
            bottom_up: bu,
            bottom_up_speedup: td / bu,
        };
        println!(
            "{:<10} {:>11.3}s {:>11.3}s {:>9.2}x",
            row.model, row.top_down, row.bottom_up, row.bottom_up_speedup
        );
        rows.push(row);
    }
    let avg: f64 = rows.iter().map(|r| r.bottom_up_speedup).sum::<f64>() / rows.len() as f64;
    println!("\nbottom-up average advantage: {:.1}%", 100.0 * (avg - 1.0));
    write_json("fig16", &rows);
}
