//! §7.1: application to inference tasks.
//!
//! The paper reports an in-house recommendation inference model with
//! 2-way intra-layer model parallelism achieving a ~2x latency
//! improvement. The regime that makes large gains possible is a
//! latency-bound layer whose collective time is comparable to its einsum
//! time; the decomposition then runs them concurrently. See
//! EXPERIMENTS.md for why a 2-device ring caps the achievable gain in
//! this machine model.

use overlap_bench::{artifact_cache, or_exit, report_cache};
use overlap_core::{OverlapOptions, OverlapPipeline};
use overlap_hlo::{Builder, DType, DotDims, Module, ReplicaGroups, Shape};
use overlap_json::Json;
use overlap_mesh::{DeviceMesh, Machine};
use overlap_sim::{simulate, simulate_order};

/// A recommendation-style MLP tower: small batch (one request slice),
/// wide layers, weights 2-way sharded and gathered per layer.
fn recommendation_tower(n: usize, batch: usize, width: usize, layers: usize) -> Module {
    let mut b = Builder::new("recommendation_inference", n);
    let mut x = b.parameter(Shape::new(DType::BF16, vec![batch, width]), "requests");
    for l in 0..layers {
        let w = b.parameter(
            Shape::new(DType::BF16, vec![width, width / n]),
            &format!("w{l}"),
        );
        let wg = b.all_gather(w, 1, ReplicaGroups::full(n), &format!("w{l}_full"));
        x = b.einsum(x, wg, DotDims::matmul(), &format!("layer{l}"));
    }
    b.build(vec![x])
}

fn main() {
    println!("Section 7.1: 2-way partitioned recommendation inference latency\n");
    let n = 2;
    let machine = Machine::with_mesh(DeviceMesh::ring(n));
    let module = recommendation_tower(n, 1376, 8192, 8);

    let baseline = or_exit(simulate(&module, &machine), "simulate the baseline");
    let compiled = or_exit(
        OverlapPipeline::new(OverlapOptions::paper_default())
            .compile_cached(&module, &machine, artifact_cache()),
        "compile the inference tower",
    );
    let overlapped = or_exit(
        simulate_order(&compiled.module, &machine, &compiled.order),
        "simulate the overlapped schedule",
    );

    println!("layers decomposed:  {:>7} of 8", compiled.summaries.len());
    println!("baseline latency:   {:>10.3} ms", baseline.makespan() * 1e3);
    println!("overlapped latency: {:>10.3} ms", overlapped.makespan() * 1e3);
    println!(
        "latency improvement: {:>8.2}x   (paper: ~2x)",
        baseline.makespan() / overlapped.makespan()
    );
    overlap_bench::write_json(
        "inference",
        &Json::obj()
            .with("baseline_ms", baseline.makespan() * 1e3)
            .with("overlapped_ms", overlapped.makespan() * 1e3)
            .with("improvement", baseline.makespan() / overlapped.makespan()),
    );
    report_cache(artifact_cache());
}
