//! Diagnostic: dump the first timeline spans of a model's overlapped
//! schedule.
//!
//! ```sh
//! cargo run --release -p overlap-bench --bin spans [MODEL] [COUNT]
//! ```

use overlap_core::{OverlapOptions, OverlapPipeline};
use overlap_models::{find_model, model_names};
use overlap_sim::simulate_order;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "GPT_32B".into());
    let count: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let Some(cfg) = find_model(&which) else {
        eprintln!("unknown model {which}; known names: {}", model_names().join(", "));
        std::process::exit(1);
    };
    let module = cfg.layer_module();
    let machine = cfg.machine();
    let compiled = match OverlapPipeline::new(OverlapOptions::paper_default())
        .run(&module, &machine)
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot compile {}: {e}", cfg.name);
            std::process::exit(1);
        }
    };
    let r = match simulate_order(&compiled.module, &machine, &compiled.order) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot simulate {}: {e}", cfg.name);
            std::process::exit(1);
        }
    };
    println!("{} — first {count} spans of {}:", cfg.name, r.timeline().spans.len());
    for s in r.timeline().spans.iter().take(count) {
        println!(
            "{:>10.4} ms {:>10.4} ms  {:?} {}",
            s.start * 1e3,
            s.end * 1e3,
            s.kind,
            s.name
        );
    }
}
