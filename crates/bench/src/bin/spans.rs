//! Diagnostic: dump the first timeline spans of a model's overlapped
//! schedule.
//!
//! ```sh
//! cargo run --release -p overlap-bench --bin spans [MODEL] [COUNT]
//! ```

use overlap_core::{OverlapOptions, OverlapPipeline};
use overlap_models::{table1_models, table2_models};
use overlap_sim::simulate_order;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "GPT_32B".into());
    let count: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let Some(cfg) = table1_models()
        .into_iter()
        .chain(table2_models())
        .find(|m| m.name == which)
    else {
        eprintln!("unknown model {which}; use a Table 1/Table 2 name like GPT_32B");
        std::process::exit(1);
    };
    let module = cfg.layer_module();
    let machine = cfg.machine();
    let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
        .run(&module, &machine)
        .expect("pipeline");
    let r = simulate_order(&compiled.module, &machine, &compiled.order).expect("simulate");
    println!("{} — first {count} spans of {}:", cfg.name, r.timeline().spans.len());
    for s in r.timeline().spans.iter().take(count) {
        println!(
            "{:>10.4} ms {:>10.4} ms  {:?} {}",
            s.start * 1e3,
            s.end * 1e3,
            s.kind,
            s.name
        );
    }
}
