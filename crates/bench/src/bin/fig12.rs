//! Figure 12: normalized FLOPS utilization of the six Table-1 models,
//! baseline vs. overlapped.

use overlap_bench::{artifact_cache, bar, report_cache, run_comparisons_cached, write_json};
use overlap_models::table1_models;

fn main() {
    println!("Figure 12: performance of the evaluated applications");
    println!("(fraction of peak FLOPS; paper: avg 1.2x speedup, max 1.38x, peak 72%)\n");
    println!(
        "{:<14} {:>6} {:>10} {:>10} {:>8}  utilization",
        "model", "chips", "base", "overlap", "speedup"
    );
    let rows = run_comparisons_cached(&table1_models(), artifact_cache());
    for c in &rows {
        println!(
            "{:<14} {:>6} {:>9.1}% {:>9.1}% {:>7.2}x  |{}|",
            c.baseline.model,
            c.baseline.chips,
            100.0 * c.baseline.flops_utilization,
            100.0 * c.overlapped.flops_utilization,
            c.speedup(),
            bar(c.overlapped.flops_utilization, 40),
        );
    }
    let avg: f64 = rows.iter().map(overlap_bench::Comparison::speedup).sum::<f64>()
        / rows.len() as f64;
    println!("\naverage speedup: {avg:.2}x");
    write_json("fig12", &rows);
    report_cache(artifact_cache());
}
