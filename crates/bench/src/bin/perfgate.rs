//! Performance gate: times the simulator hot path with and without the
//! precomputed cost table, the Table-1 sweep serial vs. fanned across
//! cores, and end-to-end `OverlapPipeline::compile` throughput on the
//! largest zoo model vs. an emulation of the pre-analysis pass sequence,
//! then records the numbers as `results/BENCH_sim.json` so successive
//! PRs can track the trajectory.
//!
//! ```sh
//! cargo run --release -p overlap-bench --bin perfgate [REPS]
//! ```
//!
//! Most numbers are informational (judged by comparing the JSON across
//! commits), but the compile-throughput check is a hard gate: the
//! largest-model compile must be no slower than the recorded baseline
//! (`results/BENCH_compile_baseline.txt`) times a noise tolerance, or
//! the process exits nonzero. The baseline file is created on first run;
//! refresh it deliberately with `OVERLAP_COMPILE_BASELINE_UPDATE=1`.

use std::time::Instant;

use overlap_bench::{
    par_map, run_comparison, run_comparison_options_faulted_cached, run_comparisons,
    run_overlapped_cached, strategy_grid, sweep_threads, write_json,
};
use overlap_core::{
    artifact_key, asyncify, decompose_each, find_patterns, fuse, schedule_bottom_up_with,
    ArtifactCache, CostModel, DecomposeOptions, OverlapOptions, OverlapPipeline, PhaseTimings,
    StrategySpec,
};
use overlap_hlo::{
    eliminate_common_subexpressions, Builder, DType, DotDims, InstrId, Module, ReplicaGroups,
    Shape, WireFormat,
};
use overlap_json::{Json, ToJson};
use overlap_mesh::{FaultSpec, Machine};
use overlap_models::{table1_models, Arch, ModelConfig, PartitionStrategy};
use overlap_serve::{
    Client, CompileRequest, FleetHarness, HashRing, Histogram, MachineSpec, ModelRef, Request,
    Response, ServeConfig, Server, DEFAULT_VNODES,
};
use overlap_sim::{
    simulate_faulted, simulate_order, simulate_order_faulted_with, simulate_order_repeated_with,
    CostTable,
};

/// Wall-clock noise tolerance for the compile-throughput gate: fail only
/// when the measured per-compile time exceeds `baseline * TOLERANCE`.
const BASELINE_TOLERANCE: f64 = 1.5;

/// Hard floor for the artifact-cache gate: the warm Table-1 compile
/// sweep must be at least this many times faster than the cold one.
const CACHE_SPEEDUP_FLOOR: f64 = 3.0;

const BASELINE_PATH: &str = "results/BENCH_compile_baseline.txt";

struct CompileThroughput {
    /// The compiled model (the largest Table-1 configuration).
    model: String,
    reps: usize,
    /// Total seconds for `reps` runs of `OverlapPipeline::run`.
    pipeline_seconds: f64,
    /// Total seconds for `reps` runs of the pre-analysis pass sequence
    /// (every pass re-verifying and re-indexing the module).
    legacy_seconds: f64,
    speedup: f64,
    /// Per-pass wall time accumulated across the pipeline runs.
    phases: PhaseTimings,
    /// Recorded per-compile baseline, if one existed before this run.
    baseline_seconds: Option<f64>,
    threads: usize,
}

impl ToJson for CompileThroughput {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("model", self.model.as_str())
            .with("reps", self.reps as u64)
            .with("pipeline_seconds", self.pipeline_seconds)
            .with("legacy_seconds", self.legacy_seconds)
            .with("speedup", self.speedup)
            .with("phases", self.phases.to_json())
            .with("baseline_seconds", self.baseline_seconds.to_json())
            .with("threads", self.threads as u64)
    }
}

struct CacheBench {
    /// Seconds to compile every Table-1 configuration through a fresh
    /// [`ArtifactCache`] (all misses).
    cold_seconds: f64,
    /// Seconds for the identical sweep again on the now-warm cache.
    warm_seconds: f64,
    speedup: f64,
    /// Hit rate of the warm pass (1.0 when every compile was served).
    hit_rate: f64,
    lookups: u64,
}

impl ToJson for CacheBench {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("cold_seconds", self.cold_seconds)
            .with("warm_seconds", self.warm_seconds)
            .with("speedup", self.speedup)
            .with("hit_rate", self.hit_rate)
            .with("lookups", self.lookups)
    }
}

struct FaultSmoke {
    /// Simulated makespan of the faulted compile's schedule under the
    /// same seeded spec.
    faulted_makespan: f64,
    /// Fallbacks the faulted compile recorded.
    fallbacks: u64,
    /// Patterns that survived the fault-adjusted gate.
    decomposed: u64,
}

impl ToJson for FaultSmoke {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("faulted_makespan", self.faulted_makespan)
            .with("fallbacks", self.fallbacks)
            .with("decomposed", self.decomposed)
    }
}

/// Fault-injection smoke (hard gate): a `FaultSpec::default()` simulation
/// must be bit-identical to the pristine one, and a seeded degraded-
/// machine compile must be deterministic — two independent compiles
/// under the same spec produce the same schedule and fallback set.
fn fault_smoke(cfg: &ModelConfig) -> (FaultSmoke, bool) {
    let module = cfg.layer_module();
    let machine = cfg.machine();

    let pristine = overlap_sim::simulate(&module, &machine).expect("pristine simulation");
    let noop = simulate_faulted(&module, &machine, &FaultSpec::default())
        .expect("noop faulted simulation");
    let noop_identical = pristine == noop;

    let spec = FaultSpec::seeded(7)
        .with_straggler(0, 1.5)
        .with_derated_link_fraction(machine.mesh(), 0.25, 0.8)
        .with_jitter(1.25e-5);
    let compile = || {
        OverlapPipeline::new(OverlapOptions::paper_default())
            .with_faults(spec.clone())
            .run(&module, &machine)
            .expect("faulted compile")
    };
    let a = compile();
    let b = compile();
    let deterministic = a.order == b.order && a.fallbacks == b.fallbacks;

    let report =
        simulate_order_faulted_with(&a.cost_table, &a.module, &machine, &a.order, &spec)
            .expect("faulted simulation");
    let record = FaultSmoke {
        faulted_makespan: report.makespan(),
        fallbacks: a.fallbacks.len() as u64,
        decomposed: a.summaries.len() as u64,
    };
    (record, noop_identical && deterministic)
}

/// Hard wall-clock budget for the autotune search bench, in seconds:
/// scoring the full pruned strategy grid on the mid-size perfgate layer
/// through a fresh artifact cache must finish inside this. The search is
/// embarrassingly parallel and every candidate compiles a one-layer
/// module, so blowing the budget means either the grid grew without new
/// pruning rules or a compile/simulate hot path regressed. Measured
/// ≈1–2 s on 8 cores; the budget leaves generous headroom for slow CI.
const AUTOTUNE_BUDGET_SECONDS: f64 = 30.0;

struct AutotuneBench {
    /// Grid survivors actually scored.
    candidates: usize,
    /// Statically pruned combinations (infeasible or behavior-identical).
    pruned: usize,
    /// Wall-clock seconds for scoring the whole grid (compiles through a
    /// fresh in-memory artifact cache, simulator as oracle).
    search_seconds: f64,
    /// Best candidate's step time over the paper default's (>= 1.0 by
    /// construction: the paper default is in the grid).
    winner_speedup: f64,
}

impl ToJson for AutotuneBench {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("candidates", self.candidates as u64)
            .with("pruned", self.pruned as u64)
            .with("search_seconds", self.search_seconds)
            .with("winner_speedup", self.winner_speedup)
    }
}

/// Autotune search bench (hard gate): scores the full pruned strategy
/// grid on the mid-size perfgate layer and applies two checks — the
/// search must finish inside [`AUTOTUNE_BUDGET_SECONDS`], and the best
/// candidate must be at least as fast as the paper default (the grid
/// contains the paper default, so a slower winner means the search or
/// the sort is broken). Returns the record and whether the gate passed.
fn autotune_bench(cfg: &ModelConfig) -> (AutotuneBench, bool) {
    let (options, pruned, _total) = strategy_grid();
    let cache = ArtifactCache::in_memory();
    let t = Instant::now();
    let paper = run_overlapped_cached(cfg, OverlapOptions::paper_default(), &cache).step_time;
    let times = par_map(&options, |&o| run_overlapped_cached(cfg, o, &cache).step_time);
    let search_seconds = t.elapsed().as_secs_f64();
    let best = times.iter().copied().fold(f64::INFINITY, f64::min);
    let record = AutotuneBench {
        candidates: options.len(),
        pruned,
        search_seconds,
        winner_speedup: paper / best,
    };
    let ok = search_seconds <= AUTOTUNE_BUDGET_SECONDS && best <= paper;
    (record, ok)
}

/// Hard wall-clock budget for the tail bench, in seconds: two windowed
/// compiles of the 4-layer stacked module plus the distributional draws
/// must finish inside this. Measured ≈5 s on 8 cores; the budget leaves
/// generous headroom for slow CI.
const TAIL_BUDGET_SECONDS: f64 = 90.0;

/// Layers stacked into the tail bench's scheduling scope and the number
/// of fault draws per window (mirrors `fig_tail`'s smoke-scale shape,
/// but on a Table-1 model where the windows actually differentiate).
const TAIL_DEPTH: usize = 4;
const TAIL_DRAWS: usize = 17;

struct TailBench {
    /// The Table-1 model the bench schedules.
    model: String,
    draws: usize,
    /// Exact p99 makespan of the window=1 (strict per-stage barriers)
    /// schedule under the seeded network-straggler spec.
    p99_window1: f64,
    /// Same for the cross-layer window=2 schedule.
    p99_window2: f64,
    /// Wall-clock seconds for the whole bench (compiles + draws).
    bench_seconds: f64,
}

impl ToJson for TailBench {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("model", self.model.as_str())
            .with("draws", self.draws as u64)
            .with("p99_window1", self.p99_window1)
            .with("p99_window2", self.p99_window2)
            .with("bench_seconds", self.bench_seconds)
    }
}

/// Cross-layer scheduling-window tail bench (hard gate): compiles the
/// 4-layer stacked Meena_500B module at window widths 1 and 2 under a
/// seeded network-straggler [`FaultSpec`] (a quarter of the links at
/// half bandwidth, per-hop jitter, DMA-issue stalls — `fig_tail`'s
/// harshest severity), runs [`TAIL_DRAWS`] fault draws through each
/// schedule, and applies two checks: the whole bench must finish inside
/// [`TAIL_BUDGET_SECONDS`], and the window=2 schedule's exact p99 must
/// never lose to window=1's — widening the scheduling scope may only
/// recover tail latency, not add it. Returns the record and whether the
/// gate passed.
fn tail_bench() -> (TailBench, bool) {
    let cfg = table1_models()
        .into_iter()
        .find(|m| m.name == "Meena_500B")
        .expect("Meena_500B is in Table 1");
    let module = cfg.window_module(TAIL_DEPTH);
    let machine = cfg.machine();
    let spec = FaultSpec::seeded(7)
        .with_derated_link_fraction(machine.mesh(), 0.25, 0.5)
        .with_jitter(1e-5)
        .with_dma_stalls(0.02, 2e-4, 3);

    let t = Instant::now();
    let p99_of = |window: usize| {
        let options = OverlapOptions::with_strategy(
            overlap_core::StrategySpec::paper_default().with_window_layers(window),
        );
        let compiled = OverlapPipeline::new(options)
            .with_faults(spec.clone())
            .run(&module, &machine)
            .expect("windowed compile");
        let samples = overlap_sim::simulate_order_tail_with(
            &compiled.cost_table,
            &compiled.module,
            &machine,
            &compiled.order,
            &spec,
            TAIL_DRAWS,
        )
        .expect("tail draws");
        overlap_sim::TailSummary::from_samples(&samples).p99
    };
    let p99_window1 = p99_of(1);
    let p99_window2 = p99_of(2);
    let bench_seconds = t.elapsed().as_secs_f64();

    let record = TailBench {
        model: cfg.name,
        draws: TAIL_DRAWS,
        p99_window1,
        p99_window2,
        bench_seconds,
    };
    let ok = bench_seconds <= TAIL_BUDGET_SECONDS && p99_window2 <= p99_window1;
    (record, ok)
}

/// Hard wall-clock budget for the quant bench, in seconds: three compiles
/// of the mid-size perfgate layer plus three faulted simulations.
/// Measured well under a second; the budget leaves headroom for slow CI.
const QUANT_BUDGET_SECONDS: f64 = 60.0;

/// Error budget the quant bench compiles under (mirrors `fig_quant`).
const QUANT_ERROR_BUDGET: f64 = 5e-2;

struct QuantBench {
    /// Whether an explicit lossless wire compiled bit-identically to the
    /// paper default (the precision axis must be invisible until used).
    lossless_identical: bool,
    /// Lossless overlap speedup on the damaged-link machine.
    lossless_speedup: f64,
    /// Quantized (int8 wire, budgeted) overlap speedup on the same
    /// damaged-link machine.
    quant_speedup: f64,
    /// Fallbacks the quantized compile recorded (budget or gate).
    fallbacks: u64,
    bench_seconds: f64,
}

impl ToJson for QuantBench {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("lossless_identical", self.lossless_identical)
            .with("lossless_speedup", self.lossless_speedup)
            .with("quant_speedup", self.quant_speedup)
            .with("fallbacks", self.fallbacks)
            .with("bench_seconds", self.bench_seconds)
    }
}

/// Precision-axis bench (hard gate): on the mid-size perfgate layer,
/// an explicitly-lossless strategy must compile bit-identically to the
/// paper default (same schedule, same module identity — the wire knob
/// contributes nothing until it is actually turned), and on a
/// damaged-link machine (half the links at half bandwidth) the int8
/// wire under the `fig_quant` error budget must still beat the
/// synchronous baseline (>= 1.0x). Both inside
/// [`QUANT_BUDGET_SECONDS`]. Returns the record and whether the gate
/// passed.
fn quant_bench(cfg: &ModelConfig) -> (QuantBench, bool) {
    let module = cfg.layer_module();
    let machine = cfg.machine();
    let t = Instant::now();

    let compile = |options: OverlapOptions| {
        OverlapPipeline::new(options).run(&module, &machine).expect("quant bench compile")
    };
    let paper = compile(OverlapOptions::paper_default());
    let lossless = compile(OverlapOptions::with_strategy(
        StrategySpec::paper_default().with_wire(WireFormat::Lossless),
    ));
    let lossless_identical = paper.order == lossless.order
        && paper.module.identity_fingerprint() == lossless.module.identity_fingerprint();

    let spec = FaultSpec::seeded(7).with_derated_link_fraction(machine.mesh(), 0.5, 0.5);
    let cache = ArtifactCache::in_memory();
    let base = run_comparison_options_faulted_cached(
        cfg,
        OverlapOptions::paper_default(),
        &spec,
        &cache,
    );
    let quant = run_comparison_options_faulted_cached(
        cfg,
        OverlapOptions {
            error_budget: Some(QUANT_ERROR_BUDGET),
            ..OverlapOptions::with_strategy(
                StrategySpec::paper_default().with_wire(WireFormat::int8()),
            )
        },
        &spec,
        &cache,
    );
    let bench_seconds = t.elapsed().as_secs_f64();

    let record = QuantBench {
        lossless_identical,
        lossless_speedup: base.speedup(),
        quant_speedup: quant.speedup(),
        fallbacks: quant.fallbacks as u64,
        bench_seconds,
    };
    let ok = lossless_identical
        && record.quant_speedup >= 1.0
        && bench_seconds <= QUANT_BUDGET_SECONDS;
    (record, ok)
}

/// Concurrent connections the serve bench drives against the in-process
/// daemon (the acceptance floor for the service layer).
const SERVE_CLIENTS: usize = 32;
/// Warm fan-out rounds: 32 clients × 6 models × 2 rounds = 384
/// byte-identity checks per run.
const WARM_ROUNDS: usize = 2;
/// Hard ceiling on the warm p99, in milliseconds. The PR-5
/// thread-per-connection pool recorded ≈3300 ms on this fan-out (pure
/// admission queueing: 32 connections, 8 workers); the readiness event
/// loop must hold at least a 10x improvement.
const WARM_P99_CEILING_MS: f64 = 330.0;

struct ServeBench {
    clients: usize,
    /// Frames the server decoded into requests (all phases + stats).
    requests: u64,
    /// Seconds for the cold pass: one client compiling every Table-1
    /// model once, all pipeline runs.
    cold_seconds: f64,
    /// Seconds for the warm fan-out: [`SERVE_CLIENTS`] connections each
    /// re-requesting every model [`WARM_ROUNDS`] times, one request in
    /// flight per connection, all served from the cache.
    warm_seconds: f64,
    /// Seconds for the pipelined burst: every client ships its whole
    /// model list in one write burst and then drains the responses.
    pipelined_seconds: f64,
    /// Client-observed latency quantiles of the warm pass only.
    warm_p50_ms: f64,
    warm_p99_ms: f64,
    warm_max_ms: f64,
    /// Cache hit rate across the whole run.
    hit_rate: f64,
    /// Compile jobs dispatched to the worker pool (event-bus counter;
    /// must be non-zero — the cold pass alone dispatches one per model).
    batched: u64,
    /// Requests admitted while their connection already had one in
    /// flight (non-zero iff the burst phase actually pipelined).
    pipelined: u64,
    /// Requests that joined an in-flight identical compile instead of
    /// dispatching their own job. Informational: coalescing needs two
    /// identical requests to race, which a warm cache makes rare here;
    /// the serve integration tests pin it deterministically.
    coalesced: u64,
    shed: u64,
    errors: u64,
}

impl ToJson for ServeBench {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("clients", self.clients as u64)
            .with("requests", self.requests)
            .with("cold_seconds", self.cold_seconds)
            .with("warm_seconds", self.warm_seconds)
            .with("pipelined_seconds", self.pipelined_seconds)
            .with("warm_p50_ms", self.warm_p50_ms)
            .with("warm_p99_ms", self.warm_p99_ms)
            .with("warm_max_ms", self.warm_max_ms)
            .with("hit_rate", self.hit_rate)
            .with("batched", self.batched)
            .with("pipelined", self.pipelined)
            .with("coalesced", self.coalesced)
            .with("shed", self.shed)
            .with("errors", self.errors)
    }
}

/// Serve-layer bench (hard gate): an in-process [`Server`] driven by
/// [`SERVE_CLIENTS`] concurrent connections over the Table-1 models in
/// three phases — cold (oracle), warm fan-out (one request in flight
/// per connection), pipelined burst (whole model list in flight at
/// once). Every response must be byte-identical to the cold one for
/// its model (384 warm + 192 burst checks), the pipeline must have run
/// exactly once per model (dedup through single-flight and batching),
/// nothing may shed or error, the event loop must have actually
/// pipelined and dispatched batches, and the warm p99 must stay under
/// [`WARM_P99_CEILING_MS`].
fn serve_bench() -> (ServeBench, bool) {
    let models = table1_models();
    let names: Vec<&str> = models.iter().map(|m| m.name.as_str()).collect();
    // Workers default from the core count (connections no longer pin
    // workers — the event loop multiplexes, the pool only compiles).
    // The queue only ever holds distinct fingerprints, so even the
    // full burst cannot legitimately shed at 4×clients.
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        queue_depth: 4 * SERVE_CLIENTS,
        ..ServeConfig::default()
    };
    let server = Server::bind(&config, ArtifactCache::in_memory()).expect("bind serve bench");
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = std::thread::spawn(move || server.run());

    // Cold pass: one client walks every model once. The responses
    // double as the byte-identity oracle for both fan-out phases.
    let t = Instant::now();
    let mut client = Client::connect(&addr).expect("connect to serve bench");
    let cold: Vec<String> = names
        .iter()
        .map(|n| {
            let resp = client.compile(CompileRequest::named(*n)).expect("cold compile");
            resp.result.to_json().to_string()
        })
        .collect();
    let cold_seconds = t.elapsed().as_secs_f64();

    let latency = Histogram::new();
    let mismatches = std::sync::atomic::AtomicU64::new(0);
    let t = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..SERVE_CLIENTS {
            let (addr, names, cold) = (&addr, &names, &cold);
            let (latency, mismatches) = (&latency, &mismatches);
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect warm client");
                for step in 0..WARM_ROUNDS * names.len() {
                    let pick = (tid + step) % names.len();
                    let t = Instant::now();
                    let resp = client
                        .compile(CompileRequest::named(names[pick]))
                        .expect("warm compile");
                    latency.record(t.elapsed().as_secs_f64() * 1e3);
                    if resp.result.to_json().to_string() != cold[pick] {
                        mismatches.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let warm_seconds = t.elapsed().as_secs_f64();

    // Pipelined burst: each client writes its whole (staggered) model
    // list before reading anything; the server must answer in request
    // order, byte-identically, with many requests in flight at once.
    let t = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..SERVE_CLIENTS {
            let (addr, names, cold) = (&addr, &names, &cold);
            let mismatches = &mismatches;
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect burst client");
                for step in 0..names.len() {
                    let pick = (tid + step) % names.len();
                    client
                        .send(&Request::Compile(Box::new(CompileRequest::named(names[pick]))))
                        .expect("pipelined send");
                }
                for step in 0..names.len() {
                    let pick = (tid + step) % names.len();
                    match client.recv().expect("pipelined recv") {
                        Response::Compiled(resp) => {
                            if resp.result.to_json().to_string() != cold[pick] {
                                mismatches
                                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                        }
                        other => panic!("expected a compiled response, got {other:?}"),
                    }
                }
            });
        }
    });
    let pipelined_seconds = t.elapsed().as_secs_f64();

    let stats = client.stats().expect("serve stats");
    client.shutdown().expect("serve shutdown");
    handle.join().expect("serve thread").expect("serve run");

    let warm = latency.summary();
    let record = ServeBench {
        clients: SERVE_CLIENTS,
        requests: stats.requests,
        cold_seconds,
        warm_seconds,
        pipelined_seconds,
        warm_p50_ms: warm.p50_ms,
        warm_p99_ms: warm.p99_ms,
        warm_max_ms: warm.max_ms,
        hit_rate: stats.cache_hit_rate,
        batched: stats.batches,
        pipelined: stats.pipelined,
        coalesced: stats.coalesced,
        shed: stats.shed,
        errors: stats.errors,
    };
    let mismatches = mismatches.into_inner();
    let ok = mismatches == 0
        && stats.cache_misses == names.len() as u64
        && stats.shed == 0
        && stats.errors == 0
        && warm.count == (SERVE_CLIENTS * names.len() * WARM_ROUNDS) as u64
        && stats.batches > 0
        && stats.pipelined > 0
        && warm.p99_ms <= WARM_P99_CEILING_MS;
    if !ok {
        eprintln!(
            "serve bench: mismatches={mismatches} misses={} shed={} errors={} warm={} \
             batched={} pipelined={} p99={:.2}ms (ceiling {WARM_P99_CEILING_MS}ms)",
            stats.cache_misses,
            stats.shed,
            stats.errors,
            warm.count,
            stats.batches,
            stats.pipelined,
            warm.p99_ms
        );
    }
    (record, ok)
}

/// Nodes in the in-process fleet bench (the ci.sh smoke runs the same
/// topology as separate daemons).
const FLEET_NODES: usize = 4;
/// Structurally distinct inline artifacts pushed through the
/// guaranteed owner→peer fetch path.
const PEER_ARTIFACTS: usize = 8;
/// Hard ceiling on the warm peer-fetch p99, in milliseconds. A peer
/// hit is one connect, one `fetch` frame and one revalidation of a
/// tiny module — far under a recompile; the ceiling catches a peer
/// tier that silently recompiles or spins in retries.
const PEER_P99_CEILING_MS: f64 = 250.0;

struct FleetBench {
    nodes: usize,
    /// Table-1 models driven through the router (cold + warm).
    routed_models: usize,
    cold_seconds: f64,
    warm_seconds: f64,
    /// Inline artifacts driven through the peer-fetch path.
    peer_artifacts: usize,
    peer_seconds: f64,
    /// Client-observed latency quantiles of the peer-fetch compiles.
    peer_p50_ms: f64,
    peer_p99_ms: f64,
    peer_max_ms: f64,
    /// Summed local compiles across the cluster (must equal the
    /// distinct artifact count: each compiles on exactly one node).
    cluster_misses: u64,
    /// Summed peer-tier hits (must equal [`PEER_ARTIFACTS`]).
    cluster_peer_hits: u64,
    alive: usize,
}

impl ToJson for FleetBench {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("nodes", self.nodes as u64)
            .with("routed_models", self.routed_models as u64)
            .with("cold_seconds", self.cold_seconds)
            .with("warm_seconds", self.warm_seconds)
            .with("peer_artifacts", self.peer_artifacts as u64)
            .with("peer_seconds", self.peer_seconds)
            .with("peer_p50_ms", self.peer_p50_ms)
            .with("peer_p99_ms", self.peer_p99_ms)
            .with("peer_max_ms", self.peer_max_ms)
            .with("cluster_misses", self.cluster_misses)
            .with("cluster_peer_hits", self.cluster_peer_hits)
            .with("alive", self.alive as u64)
    }
}

/// A tiny 4-way all-gather + matmul layer, structurally distinct per
/// index (the artifact key fingerprints structure, so each index is
/// its own single-owner cache entry).
fn peer_module(i: usize) -> Module {
    let n = 4;
    let rows = 1024 + 64 * i;
    let mut b = Builder::new(&format!("fleet_peer_{i}"), n);
    let x = b.parameter(Shape::new(DType::BF16, vec![rows, 1024]), "x");
    let w = b.parameter(Shape::new(DType::BF16, vec![1024, 4096 / n]), "w");
    let wg = b.all_gather(w, 1, ReplicaGroups::full(n), "wg");
    let y = b.einsum(x, wg, DotDims::matmul(), "y");
    b.build(vec![y])
}

/// Fleet bench (hard gate): [`FLEET_NODES`] in-process daemons on one
/// consistent-hash ring. Three phases — cold Table-1 through the
/// router (each model compiles on its ring owner, once cluster-wide),
/// warm repeat (all memory hits, byte-identical), then a peer-fetch
/// phase that pins artifact placement client-side so every fetch is a
/// guaranteed owner hit: compile at the artifact-ring owner, then at
/// the next node in ring order, whose fetch plan starts with that
/// owner. Gates: sharding and provenance as described, byte-identity
/// everywhere, exactly one local compile per distinct artifact, one
/// peer hit per inline artifact, every node alive, and the peer-fetch
/// p99 under [`PEER_P99_CEILING_MS`].
fn fleet_bench() -> (FleetBench, bool) {
    let models = table1_models();
    let names: Vec<&str> = models.iter().map(|m| m.name.as_str()).collect();
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        queue_depth: 64,
        ..ServeConfig::default()
    };
    let fleet =
        FleetHarness::launch(FLEET_NODES, &config, &|_| ArtifactCache::in_memory(), |cfg| cfg)
            .expect("launch fleet bench");
    let router = fleet.router();
    let mut session = router.session();
    let mut ok = true;

    // Cold pass: every Table-1 model through the router, each landing
    // on its ring owner and compiling there.
    let t = Instant::now();
    let cold: Vec<String> = names
        .iter()
        .map(|n| {
            let req = CompileRequest::named(*n);
            let (resp, served_by) = session.compile(&req).expect("cold fleet compile");
            ok &= served_by == router.owner_of(&req);
            ok &= resp.served.source.starts_with("compiled");
            resp.result.to_json().to_string()
        })
        .collect();
    let cold_seconds = t.elapsed().as_secs_f64();

    // Warm pass: the same set again — memory hits, byte-identical.
    let t = Instant::now();
    for (n, want) in names.iter().zip(&cold) {
        let (resp, _) = session.compile(&CompileRequest::named(*n)).expect("warm fleet compile");
        ok &= resp.served.source == "memory";
        ok &= &resp.result.to_json().to_string() == want;
    }
    let warm_seconds = t.elapsed().as_secs_f64();

    // Peer phase. The fetch ring is a pure function of (nodes, vnodes),
    // so the bench can compute placement exactly as the daemons do.
    let ring = HashRing::new(FLEET_NODES, DEFAULT_VNODES);
    let machine = Machine::tpu_v4_like(4);
    let addrs = fleet.addrs();
    let latency = Histogram::new();
    let t = Instant::now();
    for i in 0..PEER_ARTIFACTS {
        let module = peer_module(i);
        let req = CompileRequest {
            model: ModelRef::Inline(Box::new(module.clone())),
            machine: MachineSpec::TpuV4 { chips: 4 },
            options: OverlapOptions::paper_default(),
            fault_spec: None,
            deadline_ms: None,
        };
        let order = ring.route(artifact_key(&module, &machine, &req.options));
        let (owner, target) = (order[0], order[1]);

        let mut at_owner = Client::connect(&addrs[owner]).expect("connect artifact owner");
        let first = at_owner.compile(req.clone()).expect("owner compile");
        ok &= first.served.source.starts_with("compiled");

        let mut at_peer = Client::connect(&addrs[target]).expect("connect peer node");
        let t1 = Instant::now();
        let fetched = at_peer.compile(req).expect("peer compile");
        latency.record(t1.elapsed().as_secs_f64() * 1e3);
        ok &= fetched.served.source == "peer";
        ok &= fetched.result.to_json().to_string() == first.result.to_json().to_string();
    }
    let peer_seconds = t.elapsed().as_secs_f64();

    let agg = session.fleet_stats().expect("fleet stats");
    let cluster_misses: u64 = agg.nodes.iter().map(|n| n.cache_misses).sum();
    let cluster_peer_hits: u64 = agg.nodes.iter().map(|n| n.cache_peer_hits).sum();
    ok &= agg.alive == FLEET_NODES;
    ok &= cluster_misses == (names.len() + PEER_ARTIFACTS) as u64;
    ok &= cluster_peer_hits == PEER_ARTIFACTS as u64;
    fleet.shutdown_all();

    let peer = latency.summary();
    ok &= peer.p99_ms <= PEER_P99_CEILING_MS;
    let record = FleetBench {
        nodes: FLEET_NODES,
        routed_models: names.len(),
        cold_seconds,
        warm_seconds,
        peer_artifacts: PEER_ARTIFACTS,
        peer_seconds,
        peer_p50_ms: peer.p50_ms,
        peer_p99_ms: peer.p99_ms,
        peer_max_ms: peer.max_ms,
        cluster_misses,
        cluster_peer_hits,
        alive: agg.alive,
    };
    if !ok {
        eprintln!(
            "fleet bench: misses={cluster_misses} (want {}) peer_hits={cluster_peer_hits} \
             (want {PEER_ARTIFACTS}) alive={} p99={:.2}ms (ceiling {PEER_P99_CEILING_MS}ms)",
            names.len() + PEER_ARTIFACTS,
            agg.alive,
            peer.p99_ms
        );
    }
    (record, ok)
}

struct PerfRecord {
    reps: usize,
    /// Repeated simulation rebuilding every instruction cost per run
    /// (the pre-cost-table behavior, emulated by calling
    /// `simulate_order` in a loop).
    sim_fresh_seconds: f64,
    /// The same repetitions through one precomputed [`CostTable`].
    sim_cached_seconds: f64,
    sim_speedup: f64,
    /// Table-1 comparison sweep, one model at a time.
    sweep_serial_seconds: f64,
    /// The same sweep through the parallel driver.
    sweep_parallel_seconds: f64,
    sweep_speedup: f64,
    compile_throughput: CompileThroughput,
    cache: CacheBench,
    fault_smoke: FaultSmoke,
    autotune: AutotuneBench,
    tail: TailBench,
    quant: QuantBench,
    serve: ServeBench,
    fleet: FleetBench,
    threads: usize,
}

impl ToJson for PerfRecord {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("reps", self.reps as u64)
            .with("sim_fresh_seconds", self.sim_fresh_seconds)
            .with("sim_cached_seconds", self.sim_cached_seconds)
            .with("sim_speedup", self.sim_speedup)
            .with("sweep_serial_seconds", self.sweep_serial_seconds)
            .with("sweep_parallel_seconds", self.sweep_parallel_seconds)
            .with("sweep_speedup", self.sweep_speedup)
            .with("compile_throughput", self.compile_throughput.to_json())
            .with("cache", self.cache.to_json())
            .with("fault_smoke", self.fault_smoke.to_json())
            .with("autotune", self.autotune.to_json())
            .with("tail", self.tail.to_json())
            .with("quant", self.quant.to_json())
            .with("serve", self.serve.to_json())
            .with("fleet", self.fleet.to_json())
            .with("threads", self.threads as u64)
    }
}

/// Times the Table-1 compile sweep cold (fresh cache, every lookup a
/// miss) and warm (identical sweep again), asserting every warm bundle
/// is bit-identical to its cold counterpart. The warm sweep must beat
/// the cold one by [`CACHE_SPEEDUP_FLOOR`] — a hard gate, since a cache
/// that fails to hit (or hits slowly) is a silent perf regression.
/// Returns the record and whether the gate passed.
fn cache_bench() -> (CacheBench, bool) {
    let models = table1_models();
    let pipeline = OverlapPipeline::new(OverlapOptions::paper_default());
    let cache = ArtifactCache::in_memory();
    let inputs: Vec<_> =
        models.iter().map(|cfg| (cfg.layer_module(), cfg.machine())).collect();

    let t = Instant::now();
    let cold: Vec<_> = inputs
        .iter()
        .map(|(module, machine)| {
            pipeline.compile_cached(module, machine, &cache).expect("cold compile")
        })
        .collect();
    let cold_seconds = t.elapsed().as_secs_f64();
    let after_cold = cache.stats();
    assert_eq!(after_cold.misses, models.len() as u64, "cold sweep must all miss");

    let t = Instant::now();
    let warm: Vec<_> = inputs
        .iter()
        .map(|(module, machine)| {
            pipeline.compile_cached(module, machine, &cache).expect("warm compile")
        })
        .collect();
    let warm_seconds = t.elapsed().as_secs_f64();
    let stats = cache.stats();

    for ((c, w), cfg) in cold.iter().zip(&warm).zip(&models) {
        assert_eq!(
            c.module.identity_fingerprint(),
            w.module.identity_fingerprint(),
            "warm compile of {} served a different module",
            cfg.name
        );
        assert_eq!(c.order, w.order, "warm compile of {} served a different schedule", cfg.name);
        assert_eq!(c.decisions, w.decisions, "warm decisions diverged on {}", cfg.name);
    }

    let warm_lookups = stats.lookups() - after_cold.lookups();
    let warm_hits = stats.hits() - after_cold.hits();
    let record = CacheBench {
        cold_seconds,
        warm_seconds,
        speedup: cold_seconds / warm_seconds,
        hit_rate: warm_hits as f64 / warm_lookups as f64,
        lookups: stats.lookups(),
    };
    let ok = record.hit_rate == 1.0 && record.speedup >= CACHE_SPEEDUP_FLOOR;
    (record, ok)
}

/// The compilation sequence as it stood before the shared-analysis
/// refactor: every pass verifies and re-indexes its input from scratch —
/// a full input verify, a cost-table build (with its own verify) inside
/// the serial cost gate, a full verify in `fuse`, a full verify of the
/// final module, a second cost-table build (verifying again), and a
/// scheduler that recomputes the users table and effective latencies.
/// Pass bodies are the current ones; only the redundant recomputation
/// differs, so the outputs must be bit-identical to the pipeline's.
fn legacy_compile(
    module: &Module,
    machine: &Machine,
    options: &OverlapOptions,
) -> (Module, Vec<InstrId>) {
    module.verify().expect("verified input");
    let patterns = find_patterns(module);
    let cost_model = CostModel::with_strategy(machine, &options.strategy);
    let decisions = cost_model.select(module, &patterns, !options.disable_cost_gate);
    let selected: Vec<_> = decisions
        .iter()
        .map(|d| {
            let opts = DecomposeOptions {
                bidirectional: d.bidirectional,
                ..options.decompose_for(&d.pattern.kind)
            };
            (d.pattern, opts)
        })
        .collect();
    let (decomposed, _summaries) = decompose_each(module, &selected);
    let decomposed = eliminate_common_subexpressions(&decomposed);
    let asynced = asyncify(&decomposed);
    let final_module = match options.fusion_options() {
        Some(fopts) => fuse(&asynced, &fopts),
        None => asynced,
    };
    final_module.verify().expect("verified output");
    let table = CostTable::new(&final_module, machine).expect("cost table");
    let order = schedule_bottom_up_with(&table, &final_module, machine);
    (final_module, order)
}

/// Times `reps` end-to-end compiles of the largest zoo model through the
/// shared-analysis pipeline and through [`legacy_compile`], asserting the
/// schedules are bit-identical, and applies the baseline gate. Returns
/// the record and whether the gate passed.
fn compile_throughput(reps: usize) -> (CompileThroughput, bool) {
    let models = table1_models();
    let cfg = models
        .iter()
        .find(|m| m.name == "GPT_1T")
        .expect("GPT_1T is the largest Table-1 configuration");
    let module = cfg.layer_module();
    let machine = cfg.machine();
    let options = OverlapOptions::paper_default();
    let pipeline = OverlapPipeline::new(options);

    let mut phases = PhaseTimings::new();
    let t = Instant::now();
    let mut compiled = pipeline.run(&module, &machine).expect("pipeline");
    phases.accumulate(&compiled.timings);
    for _ in 1..reps {
        compiled = pipeline.run(&module, &machine).expect("pipeline");
        phases.accumulate(&compiled.timings);
    }
    let pipeline_seconds = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let (mut legacy_module, mut legacy_order) = legacy_compile(&module, &machine, &options);
    for _ in 1..reps {
        (legacy_module, legacy_order) = legacy_compile(&module, &machine, &options);
    }
    let legacy_seconds = t.elapsed().as_secs_f64();

    assert_eq!(
        legacy_module.len(),
        compiled.module.len(),
        "legacy emulation diverged from the pipeline on {}",
        cfg.name
    );
    assert_eq!(
        legacy_order, compiled.order,
        "pipeline schedule must be bit-identical to the pre-analysis sequence"
    );

    let baseline_seconds = std::fs::read_to_string(BASELINE_PATH)
        .ok()
        .and_then(|s| s.trim().parse::<f64>().ok());
    let per_compile = pipeline_seconds / reps as f64;
    let update = std::env::var("OVERLAP_COMPILE_BASELINE_UPDATE").is_ok_and(|v| v == "1");
    let ok = match baseline_seconds {
        Some(base) if !update => per_compile <= base * BASELINE_TOLERANCE,
        _ => {
            if let Err(e) = std::fs::create_dir_all("results")
                .and_then(|()| std::fs::write(BASELINE_PATH, format!("{per_compile:.6}\n")))
            {
                eprintln!("warning: cannot record compile baseline: {e}");
            }
            true
        }
    };

    let record = CompileThroughput {
        model: cfg.name.clone(),
        reps,
        pipeline_seconds,
        legacy_seconds,
        speedup: legacy_seconds / pipeline_seconds,
        phases,
        baseline_seconds,
        threads: sweep_threads(),
    };
    (record, ok)
}

fn main() {
    let reps: usize =
        std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(200);

    // Hot-path timing on a mid-size transformer layer.
    let cfg = ModelConfig {
        name: "perfgate_layer".into(),
        params: 0.0,
        layers: 1,
        model_dim: 2048,
        ff_dim: 8192,
        batch: 256,
        seq_len: 64,
        chips: 16,
        arch: Arch::Decoder,
        strategy: PartitionStrategy::TwoD,
    };
    let module = cfg.layer_module();
    let machine = cfg.machine();
    let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
        .run(&module, &machine)
        .expect("pipeline");

    let t = Instant::now();
    for _ in 0..reps {
        simulate_order(&compiled.module, &machine, &compiled.order).expect("simulate");
    }
    let sim_fresh_seconds = t.elapsed().as_secs_f64();

    let table = CostTable::new(&compiled.module, &machine).expect("cost table");
    let t = Instant::now();
    simulate_order_repeated_with(&table, &compiled.module, &machine, &compiled.order, reps)
        .expect("simulate");
    let sim_cached_seconds = t.elapsed().as_secs_f64();

    // Sweep timing: the six Table-1 models, serial then parallel.
    let models = table1_models();
    let t = Instant::now();
    let serial: Vec<_> = models.iter().map(run_comparison).collect();
    let sweep_serial_seconds = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let parallel = run_comparisons(&models);
    let sweep_parallel_seconds = t.elapsed().as_secs_f64();
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            s.speedup().to_bits(),
            p.speedup().to_bits(),
            "parallel sweep diverged from serial on {}",
            s.baseline.model
        );
    }

    // End-to-end compile throughput on the largest zoo model (hard gate).
    let compile_reps: usize = std::env::var("OVERLAP_COMPILE_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let (compile, compile_ok) = compile_throughput(compile_reps);

    // Artifact-cache warm-vs-cold on the Table-1 compile sweep (hard gate).
    let (cache, cache_ok) = cache_bench();

    // Fault-injection smoke on the same mid-size layer (hard gate).
    let (fault_smoke, fault_ok) = fault_smoke(&cfg);

    // Autotune grid search on the same mid-size layer (hard gate on the
    // wall-clock budget and on the winner beating the paper default).
    let (autotune, autotune_ok) = autotune_bench(&cfg);

    // Cross-layer scheduling windows under a network straggler (hard
    // gate on the wall-clock budget and on window=2 never losing to
    // window=1 on p99).
    let (tail, tail_ok) = tail_bench();

    // Precision axis: lossless wire must be a compile no-op and the
    // budgeted int8 wire must still win on a damaged-link machine
    // (hard gate).
    let (quant, quant_ok) = quant_bench(&cfg);

    // Service layer: concurrent clients against an in-process daemon
    // (hard gate on byte-identity, dedup, and zero sheds/errors).
    let (serve, serve_ok) = serve_bench();

    // Fleet layer: a 4-node consistent-hash ring in one process (hard
    // gate on sharded dedup, peer-fetch provenance and latency).
    let (fleet, fleet_ok) = fleet_bench();

    let record = PerfRecord {
        reps,
        sim_fresh_seconds,
        sim_cached_seconds,
        sim_speedup: sim_fresh_seconds / sim_cached_seconds,
        sweep_serial_seconds,
        sweep_parallel_seconds,
        sweep_speedup: sweep_serial_seconds / sweep_parallel_seconds,
        compile_throughput: compile,
        cache,
        fault_smoke,
        autotune,
        tail,
        quant,
        serve,
        fleet,
        threads: sweep_threads(),
    };
    println!(
        "simulate x{reps}: fresh {:.3}s, cached table {:.3}s ({:.2}x)",
        record.sim_fresh_seconds, record.sim_cached_seconds, record.sim_speedup
    );
    println!(
        "table-1 sweep: serial {:.3}s, parallel {:.3}s ({:.2}x on {} threads)",
        record.sweep_serial_seconds,
        record.sweep_parallel_seconds,
        record.sweep_speedup,
        record.threads
    );
    let ct = &record.compile_throughput;
    println!(
        "compile {} x{}: pipeline {:.3}s, legacy sequence {:.3}s ({:.2}x, gate on {} threads)",
        ct.model, ct.reps, ct.pipeline_seconds, ct.legacy_seconds, ct.speedup, ct.threads
    );
    for p in ct.phases.phases() {
        println!("  {:<18} {:.4}s", p.phase, p.seconds);
    }
    println!(
        "table-1 compile sweep via artifact cache: cold {:.3}s, warm {:.3}s ({:.1}x, hit rate {:.2})",
        record.cache.cold_seconds,
        record.cache.warm_seconds,
        record.cache.speedup,
        record.cache.hit_rate
    );
    println!(
        "fault smoke: faulted makespan {:.3}ms, decomposed={} fallbacks={}",
        record.fault_smoke.faulted_makespan * 1e3,
        record.fault_smoke.decomposed,
        record.fault_smoke.fallbacks
    );
    println!(
        "autotune: {} candidates ({} pruned) searched in {:.3}s, winner {:.3}x vs paper default",
        record.autotune.candidates,
        record.autotune.pruned,
        record.autotune.search_seconds,
        record.autotune.winner_speedup
    );
    println!(
        "tail: {} x{} draws, p99 window=1 {:.3}ms vs window=2 {:.3}ms in {:.3}s",
        record.tail.model,
        record.tail.draws,
        record.tail.p99_window1 * 1e3,
        record.tail.p99_window2 * 1e3,
        record.tail.bench_seconds
    );
    println!(
        "quant: lossless identical={}, damaged-link speedup lossless {:.2}x vs int8 {:.2}x \
         (fallbacks={}) in {:.3}s",
        record.quant.lossless_identical,
        record.quant.lossless_speedup,
        record.quant.quant_speedup,
        record.quant.fallbacks,
        record.quant.bench_seconds
    );
    println!(
        "serve: {} clients, cold {:.3}s, warm {:.3}s, pipelined {:.3}s (p50 {:.2}ms, p99 {:.2}ms, \
         hit rate {:.2}, batched {}, pipelined {}, coalesced {})",
        record.serve.clients,
        record.serve.cold_seconds,
        record.serve.warm_seconds,
        record.serve.pipelined_seconds,
        record.serve.warm_p50_ms,
        record.serve.warm_p99_ms,
        record.serve.hit_rate,
        record.serve.batched,
        record.serve.pipelined,
        record.serve.coalesced
    );
    println!(
        "fleet: {} nodes, cold {:.3}s, warm {:.3}s, {} peer fetches in {:.3}s \
         (p50 {:.2}ms, p99 {:.2}ms), {} compiles cluster-wide, {} peer hits",
        record.fleet.nodes,
        record.fleet.cold_seconds,
        record.fleet.warm_seconds,
        record.fleet.peer_artifacts,
        record.fleet.peer_seconds,
        record.fleet.peer_p50_ms,
        record.fleet.peer_p99_ms,
        record.fleet.cluster_misses,
        record.fleet.cluster_peer_hits
    );
    write_json("BENCH_sim", &record);

    if !fault_ok {
        eprintln!(
            "fault-injection regression: a FaultSpec::default() simulation diverged from the \
             pristine one, or two compiles under the same seeded spec disagreed"
        );
        std::process::exit(1);
    }
    if !compile_ok {
        let per_compile = ct.pipeline_seconds / ct.reps as f64;
        eprintln!(
            "compile-throughput regression: {:.4}s per compile vs baseline {:.4}s (tolerance {BASELINE_TOLERANCE}x); \
             refresh deliberately with OVERLAP_COMPILE_BASELINE_UPDATE=1",
            per_compile,
            ct.baseline_seconds.unwrap_or(f64::NAN),
        );
        std::process::exit(1);
    }
    if !cache_ok {
        eprintln!(
            "artifact-cache regression: warm sweep {:.3}s vs cold {:.3}s ({:.1}x, hit rate {:.2}); \
             the warm Table-1 sweep must be >= {CACHE_SPEEDUP_FLOOR}x faster with every lookup a hit",
            record.cache.warm_seconds,
            record.cache.cold_seconds,
            record.cache.speedup,
            record.cache.hit_rate,
        );
        std::process::exit(1);
    }
    if !autotune_ok {
        eprintln!(
            "autotune regression: {} candidates searched in {:.3}s (budget {AUTOTUNE_BUDGET_SECONDS}s), \
             winner {:.3}x vs paper default (must be >= 1.0x — the grid contains the paper default)",
            record.autotune.candidates,
            record.autotune.search_seconds,
            record.autotune.winner_speedup,
        );
        std::process::exit(1);
    }
    if !tail_ok {
        eprintln!(
            "tail regression: window=2 p99 {:.3}ms vs window=1 p99 {:.3}ms in {:.3}s \
             (budget {TAIL_BUDGET_SECONDS}s); a wider scheduling window may only recover \
             tail latency, never add it",
            record.tail.p99_window2 * 1e3,
            record.tail.p99_window1 * 1e3,
            record.tail.bench_seconds,
        );
        std::process::exit(1);
    }
    if !quant_ok {
        eprintln!(
            "quant regression: lossless-wire identity={} (must be bit-identical to the paper \
             default), int8 damaged-link speedup {:.3}x (must be >= 1.0x) in {:.3}s \
             (budget {QUANT_BUDGET_SECONDS}s)",
            record.quant.lossless_identical,
            record.quant.quant_speedup,
            record.quant.bench_seconds,
        );
        std::process::exit(1);
    }
    if !serve_ok {
        eprintln!(
            "serve regression: a warm response diverged from its cold compile, the pipeline \
             ran more than once per model, or requests shed/errored under {SERVE_CLIENTS} clients"
        );
        std::process::exit(1);
    }
    if !fleet_ok {
        eprintln!(
            "fleet regression: an artifact compiled off its ring owner (or more than once \
             cluster-wide), a peer fetch recompiled or diverged, a node went dead, or the \
             warm peer-fetch p99 broke {PEER_P99_CEILING_MS}ms"
        );
        std::process::exit(1);
    }
}
