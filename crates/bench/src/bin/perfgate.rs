//! Performance gate: times the simulator hot path with and without the
//! precomputed cost table, and the Table-1 sweep serial vs. fanned
//! across cores, then records the numbers as `results/BENCH_sim.json`
//! so successive PRs can track the trajectory.
//!
//! ```sh
//! cargo run --release -p overlap-bench --bin perfgate [REPS]
//! ```
//!
//! Exit code is always 0 — the record is informational; regressions are
//! judged by comparing the JSON across commits.

use std::time::Instant;

use overlap_bench::{run_comparison, run_comparisons, sweep_threads, write_json};
use overlap_core::{OverlapOptions, OverlapPipeline};
use overlap_models::{table1_models, Arch, ModelConfig, PartitionStrategy};
use overlap_sim::{simulate_order, simulate_order_repeated_with, CostTable};
use serde::Serialize;

#[derive(Serialize)]
struct PerfRecord {
    reps: usize,
    /// Repeated simulation rebuilding every instruction cost per run
    /// (the pre-cost-table behavior, emulated by calling
    /// `simulate_order` in a loop).
    sim_fresh_seconds: f64,
    /// The same repetitions through one precomputed [`CostTable`].
    sim_cached_seconds: f64,
    sim_speedup: f64,
    /// Table-1 comparison sweep, one model at a time.
    sweep_serial_seconds: f64,
    /// The same sweep through the parallel driver.
    sweep_parallel_seconds: f64,
    sweep_speedup: f64,
    threads: usize,
}

fn main() {
    let reps: usize =
        std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(200);

    // Hot-path timing on a mid-size transformer layer.
    let cfg = ModelConfig {
        name: "perfgate_layer".into(),
        params: 0.0,
        layers: 1,
        model_dim: 2048,
        ff_dim: 8192,
        batch: 256,
        seq_len: 64,
        chips: 16,
        arch: Arch::Decoder,
        strategy: PartitionStrategy::TwoD,
    };
    let module = cfg.layer_module();
    let machine = cfg.machine();
    let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
        .run(&module, &machine)
        .expect("pipeline");

    let t = Instant::now();
    for _ in 0..reps {
        simulate_order(&compiled.module, &machine, &compiled.order).expect("simulate");
    }
    let sim_fresh_seconds = t.elapsed().as_secs_f64();

    let table = CostTable::new(&compiled.module, &machine).expect("cost table");
    let t = Instant::now();
    simulate_order_repeated_with(&table, &compiled.module, &machine, &compiled.order, reps)
        .expect("simulate");
    let sim_cached_seconds = t.elapsed().as_secs_f64();

    // Sweep timing: the six Table-1 models, serial then parallel.
    let models = table1_models();
    let t = Instant::now();
    let serial: Vec<_> = models.iter().map(run_comparison).collect();
    let sweep_serial_seconds = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let parallel = run_comparisons(&models);
    let sweep_parallel_seconds = t.elapsed().as_secs_f64();
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            s.speedup().to_bits(),
            p.speedup().to_bits(),
            "parallel sweep diverged from serial on {}",
            s.baseline.model
        );
    }

    let record = PerfRecord {
        reps,
        sim_fresh_seconds,
        sim_cached_seconds,
        sim_speedup: sim_fresh_seconds / sim_cached_seconds,
        sweep_serial_seconds,
        sweep_parallel_seconds,
        sweep_speedup: sweep_serial_seconds / sweep_parallel_seconds,
        threads: sweep_threads(),
    };
    println!(
        "simulate x{reps}: fresh {:.3}s, cached table {:.3}s ({:.2}x)",
        record.sim_fresh_seconds, record.sim_cached_seconds, record.sim_speedup
    );
    println!(
        "table-1 sweep: serial {:.3}s, parallel {:.3}s ({:.2}x on {} threads)",
        record.sweep_serial_seconds,
        record.sweep_parallel_seconds,
        record.sweep_speedup,
        record.threads
    );
    write_json("BENCH_sim", &record);
}
