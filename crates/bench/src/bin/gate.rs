//! Diagnostic: print the §5.5 cost-gate decisions for one model's layer —
//! per-pattern `comp_t`, `comm_t`, `comm_t_ring`, `extra_t`, the
//! decomposed-compute estimate, the chosen transfer direction mode and
//! the verdict.
//!
//! ```sh
//! cargo run --release -p overlap-bench --bin gate [MODEL]
//! ```

use overlap_core::{find_patterns, CostModel, DecomposeOptions};
use overlap_models::{find_model, model_names};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "GPT_1T".into());
    let Some(cfg) = find_model(&which) else {
        eprintln!("unknown model {which}; known names: {}", model_names().join(", "));
        std::process::exit(1);
    };
    let module = cfg.layer_module();
    let machine = cfg.machine();
    let cm = CostModel::new(&machine, DecomposeOptions::default());
    let patterns = find_patterns(&module);
    println!(
        "{}: {} candidate patterns on mesh {:?}\n",
        cfg.name,
        patterns.len(),
        machine.mesh().shape()
    );
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10} {:>10} {:>6} {:>9}",
        "einsum", "comp_t", "comm_t", "ring_t", "comp_d", "extra_t", "bidi", "verdict"
    );
    let decisions = cm.select(&module, &patterns, false);
    for d in &decisions {
        println!(
            "{:<22} {:>9.2}ms {:>9.2}ms {:>9.2}ms {:>9.2}ms {:>9.2}ms {:>6} {:>9}",
            module.instr(d.pattern.einsum).name(),
            d.comp_t * 1e3,
            d.comm_t * 1e3,
            d.comm_t_ring * 1e3,
            d.comp_d * 1e3,
            d.extra_t * 1e3,
            if d.bidirectional { "yes" } else { "no" },
            if d.beneficial { "overlap" } else { "keep" },
        );
    }
    let kept = decisions.iter().filter(|d| d.beneficial).count();
    println!("\n{kept} of {} einsums will be decomposed", decisions.len());
}
