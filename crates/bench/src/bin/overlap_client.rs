//! `overlap-client` — CLI client and load generator for `overlapd`.
//!
//! ```sh
//! overlap-client 127.0.0.1:7979 ping
//! overlap-client 127.0.0.1:7979 compile GPT_32B
//! overlap-client 127.0.0.1:7979 stats
//! overlap-client 127.0.0.1:7979 loadgen --clients 8 --models GPT_32B,GPT_64B --repeat 2
//! overlap-client 127.0.0.1:7979 shutdown
//! ```
//!
//! `loadgen` is the service's correctness harness, not just a load
//! source: it first computes every expected response locally (the same
//! `overlap_serve::exec::execute` path over direct `OverlapPipeline` +
//! simulator calls), then drives N concurrent connections and asserts
//! each server `result` object is *byte-identical* to the local
//! expectation. Backpressure sheds (`overloaded`) are retried and
//! counted, never fatal. `--expect-dedup` additionally asserts the
//! server compiled each distinct artifact at most once (single-flight
//! dedup through the shared cache). `--pipeline N` keeps up to N
//! requests in flight per connection (the server answers in request
//! order); `--phases` subscribes to the server's event bus for the
//! run and reports where time went per request — admission queue,
//! compile, response serialization. Exit code 0 means every response
//! matched.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use overlap_core::ArtifactCache;
use overlap_json::{FromJson, Json, ToJson};
use overlap_mesh::FaultSpec;
use overlap_models::{model_names, table1_models};
use overlap_serve::exec::{execute, Deadline};
use overlap_serve::metrics::Histogram;
use overlap_serve::{
    Client, ClientError, CompileRequest, CompileResponse, MachineSpec, Request, Response,
    ServeEvent,
};

fn usage() -> ! {
    eprintln!(
        "usage: overlap-client <addr> ping|stats|shutdown\n\
         \x20      overlap-client <addr> compile MODEL [--machine tpu_v4:N|gpu_cluster:N] \
         [--fault-spec F.json] [--deadline-ms N]\n\
         \x20      overlap-client <addr> loadgen [--clients N] [--models A,B,C] \
         [--repeat R] [--pipeline N] [--phases] [--expect-dedup] [--no-verify]"
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("overlap-client: {msg}");
    std::process::exit(1);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1) {
        Some(v) => Some(v.clone()),
        None => usage(),
    }
}

fn parsed_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let v = flag_value(args, flag)?;
    match v.parse() {
        Ok(t) => Some(t),
        Err(_) => fail(format!("cannot parse {flag} value {v:?}")),
    }
}

fn machine_from_args(args: &[String]) -> MachineSpec {
    let Some(spec) = flag_value(args, "--machine") else {
        return MachineSpec::ModelDefault;
    };
    if spec == "model-default" {
        return MachineSpec::ModelDefault;
    }
    let Some((kind, chips)) = spec.split_once(':') else {
        fail(format!("--machine expects model-default or kind:chips, got {spec:?}"));
    };
    let Ok(chips) = chips.parse::<usize>() else {
        fail(format!("cannot parse chip count in --machine {spec:?}"));
    };
    match kind {
        "tpu_v4" => MachineSpec::TpuV4 { chips },
        "gpu_cluster" => MachineSpec::GpuCluster { chips },
        other => fail(format!("unknown machine kind {other:?}")),
    }
}

fn fault_spec_from_args(args: &[String]) -> Option<FaultSpec> {
    let path = flag_value(args, "--fault-spec")?;
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(format!("cannot read fault spec {path}: {e}")));
    let parsed = match Json::parse(&text) {
        Ok(v) => FaultSpec::from_json(&v),
        Err(e) => Err(e.to_string()),
    };
    match parsed {
        Ok(spec) => Some(spec),
        Err(e) => fail(format!("invalid fault spec {path}: {e}")),
    }
}

fn connect(addr: &str) -> Client {
    Client::connect(addr).unwrap_or_else(|e| fail(format!("cannot connect to {addr}: {e}")))
}

fn cmd_compile(addr: &str, args: &[String]) {
    let Some(model) = args.first().filter(|a| !a.starts_with("--")) else { usage() };
    let req = CompileRequest {
        model: overlap_serve::ModelRef::Named(model.clone()),
        machine: machine_from_args(args),
        options: overlap_core::OverlapOptions::paper_default(),
        fault_spec: fault_spec_from_args(args),
        deadline_ms: parsed_flag(args, "--deadline-ms"),
    };
    let resp = connect(addr).compile(req).unwrap_or_else(|e| fail(e));
    let r = &resp.result;
    println!(
        "{}: baseline {:.3} ms -> overlapped {:.3} ms ({:.2}x), {} decisions, {} fallbacks",
        r.model,
        r.baseline.makespan * 1e3,
        r.overlapped.makespan * 1e3,
        r.speedup,
        r.decisions.len(),
        r.fallbacks.len(),
    );
    println!(
        "served from {} (queue {:.1} ms, service {:.1} ms); artifact key {}",
        resp.served.source, resp.served.queue_ms, resp.served.service_ms, r.artifact_key
    );
}

/// Per-thread loadgen tallies, merged under one mutex at the end.
#[derive(Default)]
struct Tally {
    requests: u64,
    matched: u64,
    mismatches: Vec<String>,
    sheds: u64,
    sources: [u64; 4], // memory, disk, compiled, coalesced
}

fn source_slot(source: &str) -> usize {
    match source {
        "memory" => 0,
        "disk" => 1,
        "coalesced" => 3,
        _ => 2,
    }
}

/// One request with shed/broken-connection retries. `client` is reused
/// across calls while the connection stays healthy.
fn compile_with_retry(
    addr: &str,
    client: &mut Option<Client>,
    req: &CompileRequest,
    sheds: &mut u64,
) -> Result<CompileResponse, String> {
    for _ in 0..1000 {
        let c = match client {
            Some(c) => c,
            None => match Client::connect(addr) {
                Ok(c) => client.insert(c),
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
            },
        };
        match c.compile(req.clone()) {
            Ok(resp) => return Ok(resp),
            Err(ClientError::Server(e)) if e.kind.is_backpressure() => {
                *sheds += 1;
                *client = None; // the server closes shed connections
                std::thread::sleep(Duration::from_millis(20));
            }
            // A shed can close the socket before our request is even
            // read; that surfaces as a wire error. Reconnect.
            Err(ClientError::Wire(_)) => {
                *sheds += 1;
                *client = None;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    Err("retry budget exhausted (1000 attempts)".to_string())
}

/// Sends every request in `chunk` before reading any response — wire
/// pipelining against the server's in-order response guarantee.
/// Returns each response with its latency (send of the whole chunk to
/// that response's arrival). Any failure poisons the connection; the
/// caller falls back to the one-at-a-time retry path.
fn pipeline_chunk(
    addr: &str,
    client: &mut Option<Client>,
    chunk: &[&CompileRequest],
) -> Result<Vec<(CompileResponse, f64)>, String> {
    let c = match client {
        Some(c) => c,
        None => client.insert(Client::connect(addr).map_err(|e| e.to_string())?),
    };
    let started = Instant::now();
    for req in chunk {
        c.send(&Request::Compile(Box::new((*req).clone()))).map_err(|e| e.to_string())?;
    }
    let mut out = Vec::with_capacity(chunk.len());
    for _ in chunk {
        match c.recv().map_err(|e| e.to_string())? {
            Response::Compiled(resp) => {
                out.push((*resp, started.elapsed().as_secs_f64() * 1e3));
            }
            Response::Error(e) => {
                return Err(format!("server error [{}]: {}", e.kind.as_str(), e.message));
            }
            other => return Err(format!("expected a compiled response, got {other:?}")),
        }
    }
    Ok(out)
}

/// Server-side phase timings, filled from a live event-bus
/// subscription while the load runs.
struct PhaseReport {
    queue: Histogram,
    compile: Histogram,
    serialize: Histogram,
}

impl PhaseReport {
    fn new() -> Self {
        PhaseReport {
            queue: Histogram::new(),
            compile: Histogram::new(),
            serialize: Histogram::new(),
        }
    }

    fn print(&self) {
        let print_one = |label: &str, h: &Histogram| {
            let s = h.summary();
            println!(
                "    {label:<9} p50 {:.2} ms  p90 {:.2} ms  p99 {:.2} ms  max {:.2} ms",
                s.p50_ms, s.p90_ms, s.p99_ms, s.max_ms
            );
        };
        println!(
            "  phases (server-side, {} compile requests observed):",
            self.compile.count()
        );
        print_one("queue", &self.queue);
        print_one("compile", &self.compile);
        print_one("serialize", &self.serialize);
    }
}

/// Subscribes to the daemon's event stream and aggregates `done`
/// timings for compile requests until a `done` for a ping arrives —
/// the main thread sends that ping as an end-of-run marker.
fn watch_phases(addr: &str) -> std::thread::JoinHandle<PhaseReport> {
    let stream = connect(addr)
        .subscribe()
        .unwrap_or_else(|e| fail(format!("cannot subscribe to the event bus: {e}")));
    std::thread::spawn(move || {
        let mut stream = stream;
        let report = PhaseReport::new();
        while let Ok(Some(rec)) = stream.next_event() {
            if let ServeEvent::Done { kind, queue_ms, compile_ms, serialize_ms, .. } =
                rec.event
            {
                if kind == "ping" {
                    break;
                }
                if kind == "compile" {
                    report.queue.record(queue_ms);
                    report.compile.record(compile_ms);
                    report.serialize.record(serialize_ms);
                }
            }
        }
        report
    })
}

fn cmd_loadgen(addr: &str, args: &[String]) {
    let clients: usize = parsed_flag(args, "--clients").unwrap_or(8);
    let repeat: usize = parsed_flag(args, "--repeat").unwrap_or(2);
    let pipeline: usize = parsed_flag(args, "--pipeline").unwrap_or(1);
    let verify = !args.iter().any(|a| a == "--no-verify");
    let expect_dedup = args.iter().any(|a| a == "--expect-dedup");
    let phases = args.iter().any(|a| a == "--phases");
    let models: Vec<String> = match flag_value(args, "--models") {
        Some(list) => list.split(',').map(str::to_string).collect(),
        None => table1_models().into_iter().map(|m| m.name).collect(),
    };
    if clients == 0 || repeat == 0 || models.is_empty() || pipeline == 0 {
        fail("loadgen needs at least one client, one repeat, one model and --pipeline >= 1");
    }

    // Expected responses, computed locally through the very pipeline
    // and simulator calls the server wraps. This is the byte-identity
    // oracle (and it warms nothing on the server side).
    let expected: Vec<(CompileRequest, String)> = models
        .iter()
        .map(|name| {
            let req = CompileRequest::named(name.clone());
            let local = ArtifactCache::in_memory();
            let (result, _) = execute(&req, &local, Deadline::none()).unwrap_or_else(|e| {
                fail(format!(
                    "cannot compute the local expectation for {name}: {e} \
                     (known models: {})",
                    model_names().join(", ")
                ))
            });
            (req, result.to_json().to_string())
        })
        .collect();

    let watcher = phases.then(|| watch_phases(addr));
    let latency = Histogram::new();
    let total = Mutex::new(Tally::default());
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..clients {
            let expected = &expected;
            let latency = &latency;
            let total = &total;
            scope.spawn(move || {
                let mut tally = Tally::default();
                let mut client = None;
                // Staggered model order decorrelates the clients so
                // single-flight and batching actually race.
                let plan: Vec<usize> = (0..repeat)
                    .flat_map(|round| {
                        (0..expected.len())
                            .map(move |step| (tid + round + step) % expected.len())
                    })
                    .collect();
                for window in plan.chunks(pipeline) {
                    // The pipelined fast path; falls back below on any
                    // transport or typed failure in the window. The
                    // server answers in request order, so response j
                    // pairs with window[j].
                    if pipeline > 1 {
                        let reqs: Vec<&CompileRequest> =
                            window.iter().map(|&i| &expected[i].0).collect();
                        if let Ok(resps) = pipeline_chunk(addr, &mut client, &reqs) {
                            for (&i, (resp, ms)) in window.iter().zip(&resps) {
                                let want = &expected[i].1;
                                latency.record(*ms);
                                tally.requests += 1;
                                tally.sources[source_slot(&resp.served.source)] += 1;
                                let got = resp.result.to_json().to_string();
                                if !verify || got == *want {
                                    tally.matched += 1;
                                } else {
                                    tally.mismatches.push(format!(
                                        "client {tid}: pipelined {} diverged \
                                         ({} vs {} bytes)",
                                        resp.result.model,
                                        got.len(),
                                        want.len()
                                    ));
                                }
                            }
                            continue;
                        }
                        client = None;
                    }
                    for &i in window {
                        let (req, want) = &expected[i];
                        let started = Instant::now();
                        match compile_with_retry(addr, &mut client, req, &mut tally.sheds) {
                            Ok(resp) => {
                                latency.record(started.elapsed().as_secs_f64() * 1e3);
                                tally.requests += 1;
                                tally.sources[source_slot(&resp.served.source)] += 1;
                                let got = resp.result.to_json().to_string();
                                if !verify || got == *want {
                                    tally.matched += 1;
                                } else {
                                    tally.mismatches.push(format!(
                                        "client {tid}: {} diverged ({} vs {} bytes)",
                                        resp.result.model,
                                        got.len(),
                                        want.len()
                                    ));
                                }
                            }
                            Err(e) => {
                                tally.mismatches.push(format!("client {tid}: {e}"));
                            }
                        }
                    }
                }
                let mut total = total.lock().expect("tally lock");
                total.requests += tally.requests;
                total.matched += tally.matched;
                total.sheds += tally.sheds;
                for (t, s) in total.sources.iter_mut().zip(tally.sources) {
                    *t += s;
                }
                total.mismatches.extend(tally.mismatches);
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let tally = total.into_inner().expect("tally lock");
    let quantiles = latency.summary();
    println!(
        "loadgen: {} clients x {} rounds x {} models (pipeline {pipeline}) \
         over {addr} in {elapsed:.2} s",
        clients,
        repeat,
        models.len()
    );
    println!(
        "  {} responses, {} byte-identical, {} failures, {} sheds (retried)",
        tally.requests,
        tally.matched,
        tally.mismatches.len(),
        tally.sheds
    );
    println!(
        "  served: memory={} disk={} compiled={} coalesced={}",
        tally.sources[0], tally.sources[1], tally.sources[2], tally.sources[3]
    );
    println!(
        "  client latency: p50 {:.2} ms p90 {:.2} ms p99 {:.2} ms max {:.2} ms",
        quantiles.p50_ms, quantiles.p90_ms, quantiles.p99_ms, quantiles.max_ms
    );
    if let Some(watcher) = watcher {
        // End-of-run marker: the watcher stops at this ping's `done`.
        connect(addr).ping().unwrap_or_else(|e| fail(e));
        match watcher.join() {
            Ok(report) => report.print(),
            Err(_) => eprintln!("  (phase watcher panicked; no phase report)"),
        }
    }
    for m in tally.mismatches.iter().take(8) {
        eprintln!("  MISMATCH {m}");
    }
    if expect_dedup && tally.sources[2] as usize > models.len() {
        fail(format!(
            "dedup violated: {} pipeline compiles for {} distinct artifacts",
            tally.sources[2],
            models.len()
        ));
    }
    if !tally.mismatches.is_empty() {
        fail(format!("{} responses diverged or failed", tally.mismatches.len()));
    }
    let want = (clients * repeat * models.len()) as u64;
    if verify && tally.matched != want {
        fail(format!("expected {want} byte-identical responses, got {}", tally.matched));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(addr), Some(cmd)) = (args.first(), args.get(1)) else { usage() };
    let rest = &args[2..];
    match cmd.as_str() {
        "ping" => {
            connect(addr).ping().unwrap_or_else(|e| fail(e));
            println!("pong");
        }
        "stats" => {
            let stats = connect(addr).stats().unwrap_or_else(|e| fail(e));
            println!("{}", stats.to_json().to_pretty());
        }
        "shutdown" => {
            connect(addr).shutdown().unwrap_or_else(|e| fail(e));
            println!("server draining");
        }
        "compile" => cmd_compile(addr, rest),
        "loadgen" => cmd_loadgen(addr, rest),
        _ => usage(),
    }
}
