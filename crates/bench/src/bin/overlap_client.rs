//! `overlap-client` — CLI client and load generator for `overlapd`.
//!
//! ```sh
//! overlap-client 127.0.0.1:7979 ping
//! overlap-client 127.0.0.1:7979 compile GPT_32B
//! overlap-client 127.0.0.1:7979 stats
//! overlap-client 127.0.0.1:7979 loadgen --clients 8 --models GPT_32B,GPT_64B --repeat 2
//! overlap-client 127.0.0.1:7979 shutdown
//!
//! # A comma-separated address list is a *fleet*: requests are
//! # consistent-hash routed to each artifact's owner, with automatic
//! # failover down the ring when a node dies mid-run.
//! overlap-client 127.0.0.1:7001,127.0.0.1:7002 loadgen --clients 8
//! overlap-client 127.0.0.1:7001,127.0.0.1:7002 fleet-stats
//! ```
//!
//! `loadgen` is the service's correctness harness, not just a load
//! source: it first computes every expected response locally (the same
//! `overlap_serve::exec::execute` path over direct `OverlapPipeline` +
//! simulator calls), then drives N concurrent connections and asserts
//! each server `result` object is *byte-identical* to the local
//! expectation. Backpressure sheds (`overloaded`) are retried and
//! counted, never fatal. `--expect-dedup` additionally asserts the
//! server compiled each distinct artifact at most once (single-flight
//! dedup through the shared cache). `--pipeline N` keeps up to N
//! requests in flight per connection (the server answers in request
//! order); `--phases` subscribes to the server's event bus for the
//! run and reports where time went per request — admission queue,
//! compile, response serialization. Exit code 0 means every response
//! matched.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use overlap_core::ArtifactCache;
use overlap_json::{FromJson, Json, ToJson};
use overlap_mesh::FaultSpec;
use overlap_models::{model_names, table1_models};
use overlap_serve::exec::{execute, Deadline};
use overlap_serve::metrics::Histogram;
use overlap_serve::{
    node_id, Client, ClientError, CompileRequest, CompileResponse, MachineSpec, Request,
    Response, Router, RouterSession, ServeEvent,
};

fn usage() -> ! {
    eprintln!(
        "usage: overlap-client <addr[,addr...]> ping|stats|fleet-stats|shutdown\n\
         \x20      overlap-client <addr[,addr...]> compile MODEL \
         [--machine tpu_v4:N|gpu_cluster:N] [--fault-spec F.json] [--deadline-ms N]\n\
         \x20      overlap-client <addr[,addr...]> loadgen [--clients N] [--models A,B,C] \
         [--repeat R] [--pipeline N] [--phases] [--expect-dedup] [--no-verify] \
         [--fleet-summary FILE]\n\
         a comma-separated address list routes by consistent hashing with failover"
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("overlap-client: {msg}");
    std::process::exit(1);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1) {
        Some(v) => Some(v.clone()),
        None => usage(),
    }
}

fn parsed_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let v = flag_value(args, flag)?;
    match v.parse() {
        Ok(t) => Some(t),
        Err(_) => fail(format!("cannot parse {flag} value {v:?}")),
    }
}

fn machine_from_args(args: &[String]) -> MachineSpec {
    let Some(spec) = flag_value(args, "--machine") else {
        return MachineSpec::ModelDefault;
    };
    if spec == "model-default" {
        return MachineSpec::ModelDefault;
    }
    let Some((kind, chips)) = spec.split_once(':') else {
        fail(format!("--machine expects model-default or kind:chips, got {spec:?}"));
    };
    let Ok(chips) = chips.parse::<usize>() else {
        fail(format!("cannot parse chip count in --machine {spec:?}"));
    };
    match kind {
        "tpu_v4" => MachineSpec::TpuV4 { chips },
        "gpu_cluster" => MachineSpec::GpuCluster { chips },
        other => fail(format!("unknown machine kind {other:?}")),
    }
}

fn fault_spec_from_args(args: &[String]) -> Option<FaultSpec> {
    let path = flag_value(args, "--fault-spec")?;
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(format!("cannot read fault spec {path}: {e}")));
    let parsed = match Json::parse(&text) {
        Ok(v) => FaultSpec::from_json(&v),
        Err(e) => Err(e.to_string()),
    };
    match parsed {
        Ok(spec) => Some(spec),
        Err(e) => fail(format!("invalid fault spec {path}: {e}")),
    }
}

/// Splits a possibly comma-separated address list; more than one
/// address means fleet routing.
fn split_addrs(addr: &str) -> Vec<String> {
    addr.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect()
}

fn connect(addr: &str) -> Client {
    // A freshly spawned daemon may still be binding: retry refused
    // connects under a short bounded backoff instead of failing the
    // first race.
    Client::connect_retry(addr, Duration::from_secs(2))
        .unwrap_or_else(|e| fail(format!("cannot connect to {addr}: {e}")))
}

fn cmd_compile(addr: &str, args: &[String]) {
    let Some(model) = args.first().filter(|a| !a.starts_with("--")) else { usage() };
    let req = CompileRequest {
        model: overlap_serve::ModelRef::Named(model.clone()),
        machine: machine_from_args(args),
        options: overlap_core::OverlapOptions::paper_default(),
        fault_spec: fault_spec_from_args(args),
        deadline_ms: parsed_flag(args, "--deadline-ms"),
    };
    let addrs = split_addrs(addr);
    let (resp, routed) = if addrs.len() > 1 {
        let mut session = Router::new(addrs).session();
        let (resp, node) = session.compile(&req).unwrap_or_else(|e| fail(e));
        (resp, Some(node_id(node)))
    } else {
        (connect(addr).compile(req).unwrap_or_else(|e| fail(e)), None)
    };
    let r = &resp.result;
    println!(
        "{}: baseline {:.3} ms -> overlapped {:.3} ms ({:.2}x), {} decisions, {} fallbacks",
        r.model,
        r.baseline.makespan * 1e3,
        r.overlapped.makespan * 1e3,
        r.speedup,
        r.decisions.len(),
        r.fallbacks.len(),
    );
    match routed {
        Some(node) => println!(
            "served by {node} from {} (queue {:.1} ms, service {:.1} ms); artifact key {}",
            resp.served.source, resp.served.queue_ms, resp.served.service_ms, r.artifact_key
        ),
        None => println!(
            "served from {} (queue {:.1} ms, service {:.1} ms); artifact key {}",
            resp.served.source, resp.served.queue_ms, resp.served.service_ms, r.artifact_key
        ),
    }
}

/// Per-thread loadgen tallies, merged under one mutex at the end.
#[derive(Default)]
struct Tally {
    requests: u64,
    matched: u64,
    mismatches: Vec<String>,
    sheds: u64,
    sources: [u64; 5], // memory, disk, peer, compiled, coalesced
    /// Fleet mode: responses served by each node index.
    by_node: Vec<u64>,
}

/// Provenance slot. `compiled-disk-io` / `compiled-disk-corrupt` are
/// compiles whose disk probe failed for distinguished reasons — still
/// compiles; `peer` is a cache entry fetched from the artifact's ring
/// owner.
fn source_slot(source: &str) -> usize {
    match source {
        "memory" => 0,
        "disk" => 1,
        "peer" => 2,
        "coalesced" => 4,
        _ => 3,
    }
}

/// One request with shed/broken-connection retries. `client` is reused
/// across calls while the connection stays healthy.
fn compile_with_retry(
    addr: &str,
    client: &mut Option<Client>,
    req: &CompileRequest,
    sheds: &mut u64,
) -> Result<CompileResponse, String> {
    for _ in 0..1000 {
        let c = match client {
            Some(c) => c,
            None => match Client::connect(addr) {
                Ok(c) => client.insert(c),
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
            },
        };
        match c.compile(req.clone()) {
            Ok(resp) => return Ok(resp),
            Err(ClientError::Server(e)) if e.kind.is_backpressure() => {
                *sheds += 1;
                *client = None; // the server closes shed connections
                std::thread::sleep(Duration::from_millis(20));
            }
            // A shed can close the socket before our request is even
            // read; that surfaces as a wire error. Reconnect.
            Err(ClientError::Wire(_)) => {
                *sheds += 1;
                *client = None;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    Err("retry budget exhausted (1000 attempts)".to_string())
}

/// Fleet-mode counterpart of [`compile_with_retry`]. The session owns
/// per-node failover down the ring; this loop owns the "keep asking
/// until the fleet answers" budget — a shed, a drain or a node dying
/// mid-request all come back here and go around again, so a kill
/// mid-run costs retries, never failed responses.
fn fleet_compile_with_retry(
    session: &mut RouterSession,
    req: &CompileRequest,
    sheds: &mut u64,
) -> Result<(CompileResponse, usize), String> {
    for _ in 0..1000 {
        match session.compile(req) {
            Ok(served) => return Ok(served),
            Err(ClientError::Server(e)) if e.kind.is_backpressure() => {
                *sheds += 1;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(ClientError::Wire(_)) => {
                *sheds += 1;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    Err("retry budget exhausted (1000 attempts)".to_string())
}

/// Sends every request in `chunk` before reading any response — wire
/// pipelining against the server's in-order response guarantee.
/// Returns each response with its latency (send of the whole chunk to
/// that response's arrival). Any failure poisons the connection; the
/// caller falls back to the one-at-a-time retry path.
fn pipeline_chunk(
    addr: &str,
    client: &mut Option<Client>,
    chunk: &[&CompileRequest],
) -> Result<Vec<(CompileResponse, f64)>, String> {
    let c = match client {
        Some(c) => c,
        None => client.insert(Client::connect(addr).map_err(|e| e.to_string())?),
    };
    let started = Instant::now();
    for req in chunk {
        c.send(&Request::Compile(Box::new((*req).clone()))).map_err(|e| e.to_string())?;
    }
    let mut out = Vec::with_capacity(chunk.len());
    for _ in chunk {
        match c.recv().map_err(|e| e.to_string())? {
            Response::Compiled(resp) => {
                out.push((*resp, started.elapsed().as_secs_f64() * 1e3));
            }
            Response::Error(e) => {
                return Err(format!("server error [{}]: {}", e.kind.as_str(), e.message));
            }
            other => return Err(format!("expected a compiled response, got {other:?}")),
        }
    }
    Ok(out)
}

/// Server-side phase timings, filled from a live event-bus
/// subscription while the load runs.
struct PhaseReport {
    queue: Histogram,
    compile: Histogram,
    serialize: Histogram,
}

impl PhaseReport {
    fn new() -> Self {
        PhaseReport {
            queue: Histogram::new(),
            compile: Histogram::new(),
            serialize: Histogram::new(),
        }
    }

    fn print(&self) {
        let print_one = |label: &str, h: &Histogram| {
            let s = h.summary();
            println!(
                "    {label:<9} p50 {:.2} ms  p90 {:.2} ms  p99 {:.2} ms  max {:.2} ms",
                s.p50_ms, s.p90_ms, s.p99_ms, s.max_ms
            );
        };
        println!(
            "  phases (server-side, {} compile requests observed):",
            self.compile.count()
        );
        print_one("queue", &self.queue);
        print_one("compile", &self.compile);
        print_one("serialize", &self.serialize);
    }
}

/// Subscribes to the daemon's event stream and aggregates `done`
/// timings for compile requests until a `done` for a ping arrives —
/// the main thread sends that ping as an end-of-run marker.
fn watch_phases(addr: &str) -> std::thread::JoinHandle<PhaseReport> {
    let stream = connect(addr)
        .subscribe()
        .unwrap_or_else(|e| fail(format!("cannot subscribe to the event bus: {e}")));
    std::thread::spawn(move || {
        let mut stream = stream;
        let report = PhaseReport::new();
        while let Ok(Some(rec)) = stream.next_event() {
            if let ServeEvent::Done { kind, queue_ms, compile_ms, serialize_ms, .. } =
                rec.event
            {
                if kind == "ping" {
                    break;
                }
                if kind == "compile" {
                    report.queue.record(queue_ms);
                    report.compile.record(compile_ms);
                    report.serialize.record(serialize_ms);
                }
            }
        }
        report
    })
}

fn cmd_loadgen(addr: &str, args: &[String]) {
    let clients: usize = parsed_flag(args, "--clients").unwrap_or(8);
    let repeat: usize = parsed_flag(args, "--repeat").unwrap_or(2);
    let pipeline: usize = parsed_flag(args, "--pipeline").unwrap_or(1);
    let verify = !args.iter().any(|a| a == "--no-verify");
    let expect_dedup = args.iter().any(|a| a == "--expect-dedup");
    let phases = args.iter().any(|a| a == "--phases");
    let summary_path = flag_value(args, "--fleet-summary");
    let models: Vec<String> = match flag_value(args, "--models") {
        Some(list) => list.split(',').map(str::to_string).collect(),
        None => table1_models().into_iter().map(|m| m.name).collect(),
    };
    if clients == 0 || repeat == 0 || models.is_empty() || pipeline == 0 {
        fail("loadgen needs at least one client, one repeat, one model and --pipeline >= 1");
    }
    let addrs = split_addrs(addr);
    let router = (addrs.len() > 1).then(|| Router::new(addrs.clone()));
    if router.is_some() && phases {
        fail("--phases subscribes to one daemon's event bus; not supported with a fleet list");
    }
    if router.is_some() && pipeline > 1 {
        fail("--pipeline routes per request; not supported with a fleet list");
    }

    // Expected responses, computed locally through the very pipeline
    // and simulator calls the server wraps. This is the byte-identity
    // oracle (and it warms nothing on the server side).
    let expected: Vec<(CompileRequest, String)> = models
        .iter()
        .map(|name| {
            let req = CompileRequest::named(name.clone());
            let local = ArtifactCache::in_memory();
            let (result, _) = execute(&req, &local, Deadline::none()).unwrap_or_else(|e| {
                fail(format!(
                    "cannot compute the local expectation for {name}: {e} \
                     (known models: {})",
                    model_names().join(", ")
                ))
            });
            (req, result.to_json().to_string())
        })
        .collect();

    let watcher = phases.then(|| watch_phases(addr));
    let latency = Histogram::new();
    let total = Mutex::new(Tally::default());
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..clients {
            let expected = &expected;
            let latency = &latency;
            let total = &total;
            let router = &router;
            scope.spawn(move || {
                let mut tally = Tally::default();
                let mut client = None;
                let mut session = router.as_ref().map(Router::session);
                // Staggered model order decorrelates the clients so
                // single-flight and batching actually race.
                let plan: Vec<usize> = (0..repeat)
                    .flat_map(|round| {
                        (0..expected.len())
                            .map(move |step| (tid + round + step) % expected.len())
                    })
                    .collect();
                for window in plan.chunks(pipeline) {
                    // The pipelined fast path; falls back below on any
                    // transport or typed failure in the window. The
                    // server answers in request order, so response j
                    // pairs with window[j].
                    if pipeline > 1 {
                        let reqs: Vec<&CompileRequest> =
                            window.iter().map(|&i| &expected[i].0).collect();
                        if let Ok(resps) = pipeline_chunk(addr, &mut client, &reqs) {
                            for (&i, (resp, ms)) in window.iter().zip(&resps) {
                                let want = &expected[i].1;
                                latency.record(*ms);
                                tally.requests += 1;
                                tally.sources[source_slot(&resp.served.source)] += 1;
                                let got = resp.result.to_json().to_string();
                                if !verify || got == *want {
                                    tally.matched += 1;
                                } else {
                                    tally.mismatches.push(format!(
                                        "client {tid}: pipelined {} diverged \
                                         ({} vs {} bytes)",
                                        resp.result.model,
                                        got.len(),
                                        want.len()
                                    ));
                                }
                            }
                            continue;
                        }
                        client = None;
                    }
                    for &i in window {
                        let (req, want) = &expected[i];
                        let started = Instant::now();
                        let outcome = match &mut session {
                            Some(session) => {
                                fleet_compile_with_retry(session, req, &mut tally.sheds)
                                    .map(|(resp, node)| (resp, Some(node)))
                            }
                            None => {
                                compile_with_retry(addr, &mut client, req, &mut tally.sheds)
                                    .map(|resp| (resp, None))
                            }
                        };
                        match outcome {
                            Ok((resp, node)) => {
                                latency.record(started.elapsed().as_secs_f64() * 1e3);
                                tally.requests += 1;
                                tally.sources[source_slot(&resp.served.source)] += 1;
                                if let Some(node) = node {
                                    if tally.by_node.len() <= node {
                                        tally.by_node.resize(node + 1, 0);
                                    }
                                    tally.by_node[node] += 1;
                                }
                                let got = resp.result.to_json().to_string();
                                if !verify || got == *want {
                                    tally.matched += 1;
                                } else {
                                    tally.mismatches.push(format!(
                                        "client {tid}: {} diverged ({} vs {} bytes)",
                                        resp.result.model,
                                        got.len(),
                                        want.len()
                                    ));
                                }
                            }
                            Err(e) => {
                                tally.mismatches.push(format!("client {tid}: {e}"));
                            }
                        }
                    }
                }
                let mut total = total.lock().expect("tally lock");
                total.requests += tally.requests;
                total.matched += tally.matched;
                total.sheds += tally.sheds;
                for (t, s) in total.sources.iter_mut().zip(tally.sources) {
                    *t += s;
                }
                if total.by_node.len() < tally.by_node.len() {
                    total.by_node.resize(tally.by_node.len(), 0);
                }
                for (t, s) in total.by_node.iter_mut().zip(&tally.by_node) {
                    *t += s;
                }
                total.mismatches.extend(tally.mismatches);
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let tally = total.into_inner().expect("tally lock");
    let quantiles = latency.summary();
    println!(
        "loadgen: {} clients x {} rounds x {} models (pipeline {pipeline}) \
         over {addr} in {elapsed:.2} s",
        clients,
        repeat,
        models.len()
    );
    println!(
        "  {} responses, {} byte-identical, {} failures, {} sheds (retried)",
        tally.requests,
        tally.matched,
        tally.mismatches.len(),
        tally.sheds
    );
    println!(
        "  served: memory={} disk={} peer={} compiled={} coalesced={}",
        tally.sources[0], tally.sources[1], tally.sources[2], tally.sources[3], tally.sources[4]
    );
    if let Some(router) = &router {
        let per_node: Vec<String> = (0..router.nodes())
            .map(|i| {
                format!("{}={}", node_id(i), tally.by_node.get(i).copied().unwrap_or(0))
            })
            .collect();
        println!("  routed: {}", per_node.join(" "));
    }
    println!(
        "  client latency: p50 {:.2} ms p90 {:.2} ms p99 {:.2} ms max {:.2} ms",
        quantiles.p50_ms, quantiles.p90_ms, quantiles.p99_ms, quantiles.max_ms
    );
    if let Some(watcher) = watcher {
        // End-of-run marker: the watcher stops at this ping's `done`.
        connect(addr).ping().unwrap_or_else(|e| fail(e));
        match watcher.join() {
            Ok(report) => report.print(),
            Err(_) => eprintln!("  (phase watcher panicked; no phase report)"),
        }
    }
    for m in tally.mismatches.iter().take(8) {
        eprintln!("  MISMATCH {m}");
    }
    if expect_dedup && tally.sources[3] as usize > models.len() {
        fail(format!(
            "dedup violated: {} pipeline compiles for {} distinct artifacts",
            tally.sources[3],
            models.len()
        ));
    }
    if !tally.mismatches.is_empty() {
        fail(format!("{} responses diverged or failed", tally.mismatches.len()));
    }
    let want = (clients * repeat * models.len()) as u64;
    if verify && tally.matched != want {
        fail(format!("expected {want} byte-identical responses, got {}", tally.matched));
    }
    if let Some(path) = summary_path {
        write_fleet_summary(&path, router.as_ref(), &expected, &models, &tally, addr);
    }
}

/// Writes the deterministic fleet summary: the routing table plus the
/// per-node cache provenance. Every field is a pure function of the
/// request set and the fleet size — wall-clock quantities (uptime,
/// qps, latencies) are deliberately excluded — so two identical runs
/// against fresh fleets produce byte-identical files.
fn write_fleet_summary(
    path: &str,
    router: Option<&Router>,
    expected: &[(CompileRequest, String)],
    models: &[String],
    tally: &Tally,
    addr: &str,
) {
    let fleet_size = router.map_or(1, Router::nodes);
    let mut routing = Json::obj();
    for (model, (req, _)) in models.iter().zip(expected) {
        let owner = router.map_or(0, |r| r.owner_of(req));
        routing = routing.with(model.as_str(), node_id(owner));
    }
    // Per-node provenance from the cluster aggregate: cold-start
    // deterministic (each owner misses exactly once per owned
    // artifact; nobody else compiles it).
    let stats = match router {
        Some(r) => r.session().fleet_stats(),
        None => connect(addr).fleet_stats(),
    };
    let nodes: Vec<Json> = match &stats {
        Ok(f) => f
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Json::obj()
                    .with("node", n.node.clone())
                    .with("alive", n.alive)
                    .with("served", tally.by_node.get(i).copied().unwrap_or(0))
                    .with("misses", n.cache_misses)
                    .with("peer_hits", n.cache_peer_hits)
            })
            .collect(),
        Err(e) => fail(format!("cannot aggregate fleet stats for the summary: {e}")),
    };
    let summary = Json::obj()
        .with("fleet", fleet_size as u64)
        .with(
            "models",
            Json::Arr(models.iter().map(|m| Json::from(m.as_str())).collect()),
        )
        .with("routing", routing)
        .with("responses", tally.requests)
        .with("matched", tally.matched)
        .with("nodes", Json::Arr(nodes));
    if let Err(e) = std::fs::write(path, format!("{}\n", summary.to_pretty())) {
        fail(format!("cannot write fleet summary {path}: {e}"));
    }
    println!("  fleet summary written to {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(addr), Some(cmd)) = (args.first(), args.get(1)) else { usage() };
    let rest = &args[2..];
    match cmd.as_str() {
        "ping" => {
            for a in split_addrs(addr) {
                connect(&a).ping().unwrap_or_else(|e| fail(e));
                println!("pong from {a}");
            }
        }
        "stats" => {
            for a in split_addrs(addr) {
                let stats = connect(&a).stats().unwrap_or_else(|e| fail(e));
                println!("{}", stats.to_json().to_pretty());
            }
        }
        "fleet-stats" => {
            // Any alive member can aggregate; the router skips dead
            // ones.
            let mut session = Router::new(split_addrs(addr)).session();
            let stats = session.fleet_stats().unwrap_or_else(|e| fail(e));
            println!("{}", stats.to_json().to_pretty());
        }
        "shutdown" => {
            // Best-effort across the list: a member that is already
            // gone should not block draining the survivors.
            for a in split_addrs(addr) {
                match Client::connect_retry(a.as_str(), Duration::from_secs(2))
                    .map_err(|e| e.to_string())
                    .and_then(|mut c| c.shutdown().map_err(|e| e.to_string()))
                {
                    Ok(()) => println!("{a} draining"),
                    Err(e) => eprintln!("overlap-client: {a} not drained: {e}"),
                }
            }
        }
        "compile" => cmd_compile(addr, rest),
        "loadgen" => cmd_loadgen(addr, rest),
        _ => usage(),
    }
}
