//! §7.2 sensitivity study: how the benefit changes with interconnect
//! performance.
//!
//! The paper: "For systems that employ interconnects with low performance
//! and therefore have very long data communication time that cannot be
//! covered by the concurrent computation, the benefits of the proposed
//! technique will be reduced." This sweep scales the per-link bandwidth
//! from generous to starved and reports, for one GPT layer, the baseline
//! communication share, how many patterns the §5.5 gate still accepts,
//! and the resulting speedup.

use overlap_bench::{artifact_cache, or_exit, par_map, report_cache, write_json};
use overlap_core::{OverlapOptions, OverlapPipeline};
use overlap_json::{Json, ToJson};
use overlap_mesh::Machine;
use overlap_models::find_model;
use overlap_sim::{simulate, simulate_order_with};

struct Row {
    bandwidth_gbps: f64,
    baseline_comm_fraction: f64,
    patterns_decomposed: usize,
    speedup: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("bandwidth_gbps", self.bandwidth_gbps)
            .with("baseline_comm_fraction", self.baseline_comm_fraction)
            .with("patterns_decomposed", self.patterns_decomposed as u64)
            .with("speedup", self.speedup)
    }
}

fn main() {
    let cfg = or_exit(
        find_model("GPT_256B").ok_or("GPT_256B missing from the model zoo"),
        "find the sensitivity workload",
    );
    let module = cfg.layer_module();
    println!("Section 7.2: interconnect sensitivity ({} layer, {} chips)\n", cfg.name, cfg.chips);
    println!(
        "{:>10} {:>12} {:>12} {:>10}",
        "GB/s/link", "base comm%", "decomposed", "speedup"
    );
    let sweep = [180.0, 90.0, 45.0, 22.5, 11.25, 5.6];
    let rows = par_map(&sweep, |&gbps| {
        let machine = cfg.machine().with_link_bandwidth(gbps * 1e9);
        let baseline = or_exit(simulate(&module, &machine), "simulate the baseline");
        // Each bandwidth point is a distinct machine fingerprint (a cold
        // compile), but re-runs of the sweep hit the disk tier.
        let compiled = or_exit(
            OverlapPipeline::new(OverlapOptions::paper_default())
                .compile_cached(&module, &machine, artifact_cache()),
            "compile the sweep point",
        );
        let over = or_exit(
            simulate_order_with(&compiled.cost_table, &compiled.module, &machine, &compiled.order),
            "simulate the overlapped schedule",
        );
        Row {
            bandwidth_gbps: gbps,
            baseline_comm_fraction: baseline.comm_fraction(),
            patterns_decomposed: compiled.summaries.len(),
            speedup: baseline.makespan() / over.makespan(),
        }
    });
    for row in &rows {
        println!(
            "{:>10.1} {:>11.1}% {:>9}/12 {:>9.2}x",
            row.bandwidth_gbps,
            100.0 * row.baseline_comm_fraction,
            row.patterns_decomposed,
            row.speedup
        );
    }
    println!(
        "\nThe benefit peaks where communication is large but still hideable; on a\n\
         starved interconnect the ring can no longer be covered by the concurrent\n\
         computation and the speedup shrinks back toward 1.0 — the §7.2 prediction."
    );

    // §7.2 also claims the idea carries to NVLink-class GPU clusters.
    let gpu = Machine::gpu_cluster_like(cfg.chips);
    let baseline = or_exit(simulate(&module, &gpu), "simulate the GPU baseline");
    let compiled = or_exit(
        OverlapPipeline::new(OverlapOptions::paper_default())
            .compile_cached(&module, &gpu, artifact_cache()),
        "compile for the GPU cluster",
    );
    let over = or_exit(
        simulate_order_with(&compiled.cost_table, &compiled.module, &gpu, &compiled.order),
        "simulate the GPU overlapped schedule",
    );
    println!(
        "\nGPU-cluster preset ({} chips): baseline comm {:.1}%, speedup {:.2}x",
        cfg.chips,
        100.0 * baseline.comm_fraction(),
        baseline.makespan() / over.makespan()
    );
    write_json("sensitivity", &rows);
    report_cache(artifact_cache());
}
