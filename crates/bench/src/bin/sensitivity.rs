//! §7.2 sensitivity study: how the benefit changes with interconnect
//! performance.
//!
//! The paper: "For systems that employ interconnects with low performance
//! and therefore have very long data communication time that cannot be
//! covered by the concurrent computation, the benefits of the proposed
//! technique will be reduced." This sweep scales the per-link bandwidth
//! from generous to starved and reports, for one GPT layer, the baseline
//! communication share, how many patterns the §5.5 gate still accepts,
//! and the resulting speedup.

use overlap_bench::{par_map, write_json};
use overlap_core::{OverlapOptions, OverlapPipeline};
use overlap_mesh::Machine;
use overlap_models::table2_models;
use overlap_sim::{simulate, simulate_order_with};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    bandwidth_gbps: f64,
    baseline_comm_fraction: f64,
    patterns_decomposed: usize,
    speedup: f64,
}

fn main() {
    let cfg = table2_models().into_iter().find(|m| m.name == "GPT_256B").expect("table 2");
    let module = cfg.layer_module();
    println!("Section 7.2: interconnect sensitivity ({} layer, {} chips)\n", cfg.name, cfg.chips);
    println!(
        "{:>10} {:>12} {:>12} {:>10}",
        "GB/s/link", "base comm%", "decomposed", "speedup"
    );
    let sweep = [180.0, 90.0, 45.0, 22.5, 11.25, 5.6];
    let rows = par_map(&sweep, |&gbps| {
        let machine = cfg.machine().with_link_bandwidth(gbps * 1e9);
        let baseline = simulate(&module, &machine).expect("baseline");
        let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
            .run(&module, &machine)
            .expect("pipeline");
        let over =
            simulate_order_with(&compiled.cost_table, &compiled.module, &machine, &compiled.order)
                .expect("simulate");
        Row {
            bandwidth_gbps: gbps,
            baseline_comm_fraction: baseline.comm_fraction(),
            patterns_decomposed: compiled.summaries.len(),
            speedup: baseline.makespan() / over.makespan(),
        }
    });
    for row in &rows {
        println!(
            "{:>10.1} {:>11.1}% {:>9}/12 {:>9.2}x",
            row.bandwidth_gbps,
            100.0 * row.baseline_comm_fraction,
            row.patterns_decomposed,
            row.speedup
        );
    }
    println!(
        "\nThe benefit peaks where communication is large but still hideable; on a\n\
         starved interconnect the ring can no longer be covered by the concurrent\n\
         computation and the speedup shrinks back toward 1.0 — the §7.2 prediction."
    );

    // §7.2 also claims the idea carries to NVLink-class GPU clusters.
    let gpu = Machine::gpu_cluster_like(cfg.chips);
    let baseline = simulate(&module, &gpu).expect("gpu baseline");
    let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
        .run(&module, &gpu)
        .expect("gpu pipeline");
    let over = simulate_order_with(&compiled.cost_table, &compiled.module, &gpu, &compiled.order)
        .expect("gpu sim");
    println!(
        "\nGPU-cluster preset ({} chips): baseline comm {:.1}%, speedup {:.2}x",
        cfg.chips,
        100.0 * baseline.comm_fraction(),
        baseline.makespan() / over.makespan()
    );
    write_json("sensitivity", &rows);
}
