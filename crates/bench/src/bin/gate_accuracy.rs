//! Cost-model accuracy: §5.5's estimator vs. the simulator, plus the
//! quantized-wire error oracle.
//!
//! For each decomposable pattern in a layer, compare the gate's predicted
//! net saving (`comp_t + comm_t − max(comp_d, comm_t_ring) − extra_t`)
//! against the measured saving from decomposing **only that pattern**
//! (simulated makespan delta). The paper enables overlap "based on the
//! net benefits"; this tool quantifies how well that estimate tracks
//! reality in our machine model.
//!
//! The second section checks the precision axis: for every non-lossless
//! wire format, run a small proxy layer end-to-end through the numerics
//! interpreter — decomposed ring and kept (annotated) collective — and
//! report the measured relative error next to the documented
//! `predicted_rel_error` bound the error-budget gate trusts.
//!
//! The emitted JSON records the model name so a refresh with the wrong
//! model argument is visible in review, not just as drifting numbers
//! (that is exactly how the committed baseline silently became GPT_64B
//! for a few revisions).
//!
//! ```sh
//! cargo run --release -p overlap-bench --bin gate_accuracy [MODEL]
//! ```

use overlap_bench::write_json;
use overlap_core::{
    asyncify, decompose, decompose_each, find_patterns, fuse, schedule_bottom_up, CostModel,
    DecomposeOptions, FusionOptions,
};
use overlap_hlo::{Builder, DType, DotDims, Module, Op, ReplicaGroups, Shape, WireFormat};
use overlap_json::{Json, ToJson};
use overlap_models::{find_model, model_names};
use overlap_numerics::{run_spmd, Literal};
use overlap_sim::{simulate, simulate_order};

struct Row {
    einsum: String,
    predicted_saving_ms: f64,
    measured_saving_ms: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("einsum", self.einsum.as_str())
            .with("predicted_saving_ms", self.predicted_saving_ms)
            .with("measured_saving_ms", self.measured_saving_ms)
    }
}

/// One quantized-wire accuracy measurement on the proxy layer.
struct QuantRow {
    case: &'static str,
    wire: String,
    group: usize,
    /// `WireFormat::predicted_rel_error` for this case's encode count —
    /// the bound the pipeline's error-budget gate enforces.
    predicted_rel_error_bound: f64,
    measured_rel_error: f64,
}

impl ToJson for QuantRow {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("case", self.case)
            .with("wire", self.wire.as_str())
            .with("group", self.group as f64)
            .with("predicted_rel_error_bound", self.predicted_rel_error_bound)
            .with("measured_rel_error", self.measured_rel_error)
    }
}

fn f32s(dims: &[usize]) -> Shape {
    Shape::new(DType::F32, dims.to_vec())
}

/// AllGather(weight) → einsum proxy layer on `n` devices.
fn ag_proxy(n: usize) -> Module {
    let mut b = Builder::new("ag_proxy", n);
    let x = b.parameter(f32s(&[6, 8]), "x");
    let ws = b.parameter(f32s(&[8, 5]), "w");
    let w = b.all_gather(ws, 1, ReplicaGroups::full(n), "wg");
    let e = b.einsum(x, w, DotDims::matmul(), "e");
    b.build(vec![e])
}

/// einsum → ReduceScatter proxy layer on `n` devices.
fn rs_proxy(n: usize) -> Module {
    let mut b = Builder::new("rs_proxy", n);
    let x = b.parameter(f32s(&[3 * n, 8]), "x");
    let w = b.parameter(f32s(&[8, 6]), "w");
    let e = b.einsum(x, w, DotDims::matmul(), "e");
    let rs = b.reduce_scatter(e, 0, ReplicaGroups::full(n), "rs");
    b.build(vec![rs])
}

/// Deterministic per-device inputs in roughly [-2, 2).
fn inputs_for(module: &Module) -> Vec<Vec<Literal>> {
    let params = module.parameters();
    (0..module.num_partitions())
        .map(|d| {
            params
                .iter()
                .enumerate()
                .map(|(p, &id)| {
                    Literal::from_fn(module.shape_of(id).clone(), move |i| {
                        let x = (i as u64)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add((d * 97 + p * 13 + 5) as u64);
                        ((x >> 40) % 512) as f64 / 128.0 - 2.0
                    })
                })
                .collect()
        })
        .collect()
}

/// Max relative error of `got` vs `want` across all outputs and devices,
/// normalised by the largest exact magnitude.
fn rel_error(want: &[Vec<Literal>], got: &[Vec<Literal>]) -> f64 {
    let mut diff: f64 = 0.0;
    let mut scale: f64 = 0.0;
    for (w_out, g_out) in want.iter().zip(got) {
        for (w, g) in w_out.iter().zip(g_out) {
            diff = diff.max(w.max_abs_diff(g));
            scale = w.data().iter().fold(scale, |s, v| s.max(v.abs()));
        }
    }
    if scale == 0.0 { 0.0 } else { diff / scale }
}

/// Annotate every kept collective in `module` with `wire`.
fn annotate(module: &Module, wire: WireFormat) -> Module {
    let mut out = module.clone();
    for id in module.ids() {
        if matches!(
            module.instr(id).op(),
            Op::AllGather { .. } | Op::ReduceScatter { .. } | Op::AllReduce { .. }
        ) {
            out.set_wire(id, wire).expect("collective carries a wire");
        }
    }
    out
}

/// Measured vs predicted error for one wire format on both proxy shapes,
/// in both the decomposed-ring and kept-collective forms.
fn quant_rows(wire: WireFormat) -> Vec<QuantRow> {
    let n = 4;
    let mut rows = Vec::new();
    for (case_ring, case_kept, module, ring_encodes, kept_encodes) in [
        ("ag_ring", "ag_kept", ag_proxy(n), 1, 1),
        ("rs_ring", "rs_kept", rs_proxy(n), n, n),
    ] {
        let inputs = inputs_for(&module);
        let want = run_spmd(&module, &inputs).expect("exact proxy");

        let opts = DecomposeOptions { wire, ..Default::default() };
        let patterns = find_patterns(&module);
        let (ring, _) = decompose(&module, &opts, &patterns);
        let got = run_spmd(&asyncify(&ring), &inputs).expect("quantized ring");
        rows.push(QuantRow {
            case: case_ring,
            wire: wire.describe(),
            group: n,
            predicted_rel_error_bound: wire.predicted_rel_error(ring_encodes),
            measured_rel_error: rel_error(&want, &got),
        });

        let kept = annotate(&module, wire);
        let got = run_spmd(&kept, &inputs).expect("quantized kept collective");
        rows.push(QuantRow {
            case: case_kept,
            wire: wire.describe(),
            group: n,
            predicted_rel_error_bound: wire.predicted_rel_error(kept_encodes),
            measured_rel_error: rel_error(&want, &got),
        });
    }
    rows
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "GPT_256B".into());
    let Some(cfg) = find_model(&which) else {
        eprintln!("unknown model {which}; known names: {}", model_names().join(", "));
        std::process::exit(1);
    };
    let module = cfg.layer_module();
    let machine = cfg.machine();
    let baseline = match simulate(&module, &machine) {
        Ok(r) => r.makespan(),
        Err(e) => {
            eprintln!("cannot simulate the baseline of {}: {e}", cfg.name);
            std::process::exit(1);
        }
    };

    let options = DecomposeOptions::default();
    let cost_model = CostModel::new(&machine, options);
    let patterns = find_patterns(&module);
    let decisions = cost_model.select(&module, &patterns, false);

    println!(
        "{}: gate prediction vs simulation, per pattern (baseline {:.3} ms)\n",
        cfg.name,
        baseline * 1e3
    );
    println!("{:<24} {:>14} {:>14} {:>8}", "einsum", "predicted", "measured", "ratio");
    let mut rows = Vec::new();
    for d in &decisions {
        // Decompose only this pattern, with its chosen direction mode.
        let opts = DecomposeOptions { bidirectional: d.bidirectional, ..options };
        let (out, _) = decompose_each(&module, &[(d.pattern, opts)]);
        let fused = fuse(&asyncify(&out), &FusionOptions::default());
        let order = schedule_bottom_up(&fused, &machine);
        let measured = match simulate_order(&fused, &machine, &order) {
            Ok(r) => baseline - r.makespan(),
            Err(e) => {
                eprintln!("cannot simulate the single-pattern rewrite: {e}");
                std::process::exit(1);
            }
        };
        let row = Row {
            einsum: module.instr(d.pattern.einsum).name().to_string(),
            predicted_saving_ms: d.net_benefit() * 1e3,
            measured_saving_ms: measured * 1e3,
        };
        let ratio = if row.predicted_saving_ms.abs() > 1e-9 {
            row.measured_saving_ms / row.predicted_saving_ms
        } else {
            f64::NAN
        };
        println!(
            "{:<24} {:>11.3} ms {:>11.3} ms {:>8.2}",
            row.einsum, row.predicted_saving_ms, row.measured_saving_ms, ratio
        );
        rows.push(row);
    }
    let (pred, meas): (f64, f64) = rows
        .iter()
        .fold((0.0, 0.0), |(p, m), r| (p + r.predicted_saving_ms, m + r.measured_saving_ms));
    println!("\ntotal predicted {pred:.3} ms, total measured {meas:.3} ms");

    println!("\nquantized-wire error oracle (proxy layer, {} devices)\n", 4);
    println!(
        "{:<10} {:>8} {:>22} {:>22}",
        "case", "wire", "predicted bound", "measured rel error"
    );
    let mut quant = Vec::new();
    for wire in [WireFormat::Bf16, WireFormat::int8()] {
        for row in quant_rows(wire) {
            println!(
                "{:<10} {:>8} {:>22.3e} {:>22.3e}",
                row.case, row.wire, row.predicted_rel_error_bound, row.measured_rel_error
            );
            if row.measured_rel_error > row.predicted_rel_error_bound {
                eprintln!(
                    "error oracle violated: {} over {} exceeds its documented bound",
                    row.case, row.wire
                );
                std::process::exit(1);
            }
            quant.push(row);
        }
    }

    let report = Json::obj()
        .with("model", cfg.name)
        .with("rows", rows.to_json())
        .with("quant", quant.to_json());
    write_json("gate_accuracy", &report);
}
