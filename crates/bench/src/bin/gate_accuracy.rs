//! Cost-model accuracy: §5.5's estimator vs. the simulator.
//!
//! For each decomposable pattern in a layer, compare the gate's predicted
//! net saving (`comp_t + comm_t − max(comp_d, comm_t_ring) − extra_t`)
//! against the measured saving from decomposing **only that pattern**
//! (simulated makespan delta). The paper enables overlap "based on the
//! net benefits"; this tool quantifies how well that estimate tracks
//! reality in our machine model.
//!
//! ```sh
//! cargo run --release -p overlap-bench --bin gate_accuracy [MODEL]
//! ```

use overlap_bench::write_json;
use overlap_core::{
    asyncify, decompose_each, find_patterns, fuse, schedule_bottom_up, CostModel,
    DecomposeOptions, FusionOptions,
};
use overlap_models::{find_model, model_names};
use overlap_json::{Json, ToJson};
use overlap_sim::{simulate, simulate_order};

struct Row {
    einsum: String,
    predicted_saving_ms: f64,
    measured_saving_ms: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("einsum", self.einsum.as_str())
            .with("predicted_saving_ms", self.predicted_saving_ms)
            .with("measured_saving_ms", self.measured_saving_ms)
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "GPT_256B".into());
    let Some(cfg) = find_model(&which) else {
        eprintln!("unknown model {which}; known names: {}", model_names().join(", "));
        std::process::exit(1);
    };
    let module = cfg.layer_module();
    let machine = cfg.machine();
    let baseline = match simulate(&module, &machine) {
        Ok(r) => r.makespan(),
        Err(e) => {
            eprintln!("cannot simulate the baseline of {}: {e}", cfg.name);
            std::process::exit(1);
        }
    };

    let options = DecomposeOptions::default();
    let cost_model = CostModel::new(&machine, options);
    let patterns = find_patterns(&module);
    let decisions = cost_model.select(&module, &patterns, false);

    println!(
        "{}: gate prediction vs simulation, per pattern (baseline {:.3} ms)\n",
        cfg.name,
        baseline * 1e3
    );
    println!("{:<24} {:>14} {:>14} {:>8}", "einsum", "predicted", "measured", "ratio");
    let mut rows = Vec::new();
    for d in &decisions {
        // Decompose only this pattern, with its chosen direction mode.
        let opts = DecomposeOptions { bidirectional: d.bidirectional, ..options };
        let (out, _) = decompose_each(&module, &[(d.pattern, opts)]);
        let fused = fuse(&asyncify(&out), &FusionOptions::default());
        let order = schedule_bottom_up(&fused, &machine);
        let measured = match simulate_order(&fused, &machine, &order) {
            Ok(r) => baseline - r.makespan(),
            Err(e) => {
                eprintln!("cannot simulate the single-pattern rewrite: {e}");
                std::process::exit(1);
            }
        };
        let row = Row {
            einsum: module.instr(d.pattern.einsum).name().to_string(),
            predicted_saving_ms: d.net_benefit() * 1e3,
            measured_saving_ms: measured * 1e3,
        };
        let ratio = if row.predicted_saving_ms.abs() > 1e-9 {
            row.measured_saving_ms / row.predicted_saving_ms
        } else {
            f64::NAN
        };
        println!(
            "{:<24} {:>11.3} ms {:>11.3} ms {:>8.2}",
            row.einsum, row.predicted_saving_ms, row.measured_saving_ms, ratio
        );
        rows.push(row);
    }
    let (pred, meas): (f64, f64) = rows
        .iter()
        .fold((0.0, 0.0), |(p, m), r| (p + r.predicted_saving_ms, m + r.measured_saving_ms));
    println!("\ntotal predicted {pred:.3} ms, total measured {meas:.3} ms");
    write_json("gate_accuracy", &rows);
}
