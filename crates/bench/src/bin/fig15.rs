//! Figure 15: performance improvements provided by bidirectional data
//! transfer (§5.4.2), on the weakly scaled GPT family.
//!
//! Paper: GPT_32B and GPT_128B see <5% improvement (small partition
//! counts along the overlapped dimension already hide most of the
//! unidirectional transfer); larger models benefit more.

use overlap_bench::{run_baseline, run_overlapped, write_json};
use overlap_core::{OverlapOptions, RingDirection, StrategySpec};
use overlap_json::{Json, ToJson};
use overlap_models::table2_models;

struct Row {
    model: String,
    normalized_unidirectional: f64,
    normalized_bidirectional: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("model", self.model.as_str())
            .with("normalized_unidirectional", self.normalized_unidirectional)
            .with("normalized_bidirectional", self.normalized_bidirectional)
    }
}

fn main() {
    println!("Figure 15: performance improvements provided by bidirectional transfer");
    println!("(normalized step time, baseline = 1.0; lower is better)\n");
    println!("{:<10} {:>15} {:>15} {:>10}", "model", "unidirectional", "bidirectional", "gain");
    let mut rows = Vec::new();
    for cfg in table2_models() {
        let base = run_baseline(&cfg).step_time;
        let uni = run_overlapped(
            &cfg,
            OverlapOptions::with_strategy(
                StrategySpec::paper_default().with_ring(RingDirection::Unidirectional),
            ),
        )
        .step_time;
        let bidi = run_overlapped(&cfg, OverlapOptions::paper_default()).step_time;
        let row = Row {
            model: cfg.name.clone(),
            normalized_unidirectional: uni / base,
            normalized_bidirectional: bidi / base,
        };
        println!(
            "{:<10} {:>15.3} {:>15.3} {:>9.1}%",
            row.model,
            row.normalized_unidirectional,
            row.normalized_bidirectional,
            100.0 * (row.normalized_unidirectional - row.normalized_bidirectional)
                / row.normalized_unidirectional,
        );
        rows.push(row);
    }
    write_json("fig15", &rows);
}
