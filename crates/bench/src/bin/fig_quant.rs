//! Precision-axis sweep: quantized collectives vs decomposition vs both.
//!
//! For each Table-1 configuration, compile the layer three times — with a
//! lossless wire (the paper's strategy), a bf16 wire, and a blockwise
//! int8 wire — on a healthy machine and on a damaged one (half the torus
//! links derated, slight per-hop jitter), and compare every compile
//! against the shared lossless synchronous baseline under the same fault
//! spec. The §5.5 gate prices each wire on both of its sides (quantized
//! kept collective vs quantized decomposed ring), so the sweep shows
//! where each axis — decompose, quantize, or both — pays off: bandwidth
//! loss hurts bytes, and a narrower wire buys back exactly bytes.
//!
//! Every quantized compile runs under a hard error budget
//! ([`OverlapOptions::error_budget`]): a collective whose predicted
//! relative error ([`WireFormat::predicted_rel_error`]) exceeds the
//! budget is forced back to lossless and recorded as a fallback, so the
//! reported speedups are only ever bought at a bounded, documented
//! numerics cost.
//!
//! Knobs: `OVERLAP_QUANT_SEED` selects the fault-spec seed (default 7);
//! `OVERLAP_QUANT_SMOKE=1` swaps Table 1 for one small 16-chip
//! configuration so CI can run the sweep in seconds. Same seed, same
//! mode => byte-identical stdout and `results/fig_quant.json`.

use overlap_bench::{
    artifact_cache, report_cache, run_comparison_options_faulted_cached, write_json,
    FaultedComparison,
};
use overlap_core::{OverlapOptions, StrategySpec};
use overlap_hlo::{Module, Op, WireFormat};
use overlap_json::{Json, ToJson};
use overlap_mesh::FaultSpec;
use overlap_models::{table1_models, Arch, ModelConfig, PartitionStrategy};

/// Fraction of torus links running degraded in the damaged configuration.
const DAMAGED_FRACTION: f64 = 0.5;

/// Bandwidth multiplier applied to each degraded link.
const DAMAGED_DERATE: f64 = 0.5;

/// Per-hop latency jitter on the damaged machine.
const DAMAGED_JITTER_SECONDS: f64 = 1e-5;

/// Hard numerics budget: maximum predicted relative error per collective.
/// Generous enough to keep every AllGather (one quantization event) and
/// the small-group ReduceScatters quantized, tight enough that wide-group
/// int8/bf16 reductions fall back to lossless with a recorded reason.
const ERROR_BUDGET: f64 = 5e-2;

struct Row {
    machine: &'static str,
    wire: String,
    /// Max post-budget predicted relative error across the collectives
    /// that stay quantized (0 when everything runs lossless).
    predicted_rel_error_bound: f64,
    cmp: FaultedComparison,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("machine", self.machine)
            .with("wire", self.wire.as_str())
            .with("model", self.cmp.baseline.model.as_str())
            .with("chips", self.cmp.baseline.chips as u64)
            .with("baseline_step", self.cmp.baseline.step_time)
            .with("overlapped_step", self.cmp.overlapped.step_time)
            .with("speedup", self.cmp.speedup())
            .with("decomposed", self.cmp.decomposed as u64)
            .with("fallbacks", self.cmp.fallbacks as u64)
            .with("predicted_rel_error_bound", self.predicted_rel_error_bound)
    }
}

fn smoke_config() -> ModelConfig {
    ModelConfig {
        name: "Smoke_16".into(),
        params: 1e9,
        layers: 4,
        model_dim: 2048,
        ff_dim: 8192,
        batch: 256,
        seq_len: 64,
        chips: 16,
        arch: Arch::Decoder,
        strategy: PartitionStrategy::TwoD,
    }
}

/// Worst predicted relative error any collective in `module` would carry
/// on `wire` after the budget gate: AllGathers quantize once, reductions
/// once per contributing rank; predictions over the budget fall back to
/// lossless and so contribute zero. Mirrors the pipeline's budget rule.
fn predicted_error_bound(module: &Module, wire: WireFormat, budget: f64) -> f64 {
    let mut worst: f64 = 0.0;
    for id in module.ids() {
        let encodes = match module.instr(id).op() {
            Op::AllGather { .. } => 1,
            Op::ReduceScatter { groups, .. } | Op::AllReduce { groups, .. } => groups.group_size(),
            _ => continue,
        };
        let predicted = wire.predicted_rel_error(encodes);
        if predicted <= budget {
            worst = worst.max(predicted);
        }
    }
    worst
}

fn options_for(wire: WireFormat) -> OverlapOptions {
    if wire.is_lossless() {
        // Exactly the paper's configuration — no budget knob, so the
        // compile artifacts stay bit-identical to every other figure.
        OverlapOptions::paper_default()
    } else {
        OverlapOptions {
            error_budget: Some(ERROR_BUDGET),
            ..OverlapOptions::with_strategy(StrategySpec::paper_default().with_wire(wire))
        }
    }
}

fn print_row(r: &Row) {
    println!(
        "  {:<8} {:<8}  base {:>9.3}ms  over {:>9.3}ms  {:>5.2}x  decomposed={} fallbacks={} err<={:.2e}",
        r.machine,
        r.wire,
        r.cmp.baseline.step_time * 1e3,
        r.cmp.overlapped.step_time * 1e3,
        r.cmp.speedup(),
        r.cmp.decomposed,
        r.cmp.fallbacks,
        r.predicted_rel_error_bound,
    );
}

fn main() {
    let seed: u64 = std::env::var("OVERLAP_QUANT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let smoke = std::env::var("OVERLAP_QUANT_SMOKE").is_ok_and(|v| v == "1");
    let models = if smoke { vec![smoke_config()] } else { table1_models() };
    let cache = artifact_cache();
    let wires = [WireFormat::Lossless, WireFormat::Bf16, WireFormat::int8()];

    println!("fig_quant: precision-annotated collectives vs decomposition (seed {seed})");
    let mut rows = Vec::new();
    for cfg in &models {
        println!("{} ({} chips)", cfg.name, cfg.chips);
        let module = cfg.layer_module();
        let mesh = cfg.machine().mesh().clone();
        let healthy = FaultSpec::seeded(seed);
        let damaged = FaultSpec::seeded(seed)
            .with_derated_link_fraction(&mesh, DAMAGED_FRACTION, DAMAGED_DERATE)
            .with_jitter(DAMAGED_JITTER_SECONDS);
        for (machine, spec) in [("healthy", &healthy), ("damaged", &damaged)] {
            for wire in wires {
                let budget = if wire.is_lossless() { 0.0 } else { ERROR_BUDGET };
                let row = Row {
                    machine,
                    wire: wire.describe(),
                    predicted_rel_error_bound: predicted_error_bound(&module, wire, budget),
                    cmp: run_comparison_options_faulted_cached(
                        cfg,
                        options_for(wire),
                        spec,
                        cache,
                    ),
                };
                print_row(&row);
                rows.push(row);
            }
        }
    }

    // A "quant win": on a damaged machine, some quantized compile beats
    // both the synchronous baseline and the lossless overlap compile of
    // the same model, while staying inside the error budget.
    let mut damaged_quant_wins = 0usize;
    for cfg in &models {
        let of = |wire: &str| {
            rows.iter().find(|r| {
                r.machine == "damaged" && r.cmp.baseline.model == cfg.name && r.wire == wire
            })
        };
        let Some(lossless) = of("lossless") else { continue };
        for wire in ["bf16", "int8x64"] {
            if let Some(q) = of(wire) {
                if q.cmp.speedup() > 1.0 && q.cmp.speedup() > lossless.cmp.speedup() {
                    damaged_quant_wins += 1;
                }
            }
        }
    }
    println!(
        "crossover: {damaged_quant_wins} damaged-link quantized compiles beat the lossless overlap"
    );

    let record = Json::obj()
        .with("seed", seed)
        .with("smoke", smoke)
        .with("damaged_fraction", DAMAGED_FRACTION)
        .with("damaged_derate", DAMAGED_DERATE)
        .with("damaged_jitter_seconds", DAMAGED_JITTER_SECONDS)
        .with("error_budget", ERROR_BUDGET)
        .with("damaged_quant_wins", damaged_quant_wins as u64)
        .with("rows", rows.to_json());
    // Smoke runs write beside the committed full-sweep artifact instead
    // of clobbering it (the smoke file is gitignored; CI diffs it across
    // two seeded runs to assert determinism).
    write_json(if smoke { "fig_quant_smoke" } else { "fig_quant" }, &record);
    report_cache(cache);
}
