//! Figure 13: weak-scaling study — the GPT family of Table 2 (32B … 1T
//! parameters on 64 … 2048 chips), baseline vs. overlapped.

use overlap_bench::{artifact_cache, bar, report_cache, run_comparisons_cached, write_json};
use overlap_models::table2_models;

fn main() {
    println!("Figure 13: performance of the weakly scaled GPT models");
    println!("(paper: 1.1 - 1.4x speedup consistently across all sizes)\n");
    println!(
        "{:<10} {:>6} {:>10} {:>10} {:>8}  utilization",
        "model", "chips", "base", "overlap", "speedup"
    );
    let rows = run_comparisons_cached(&table2_models(), artifact_cache());
    for c in &rows {
        println!(
            "{:<10} {:>6} {:>9.1}% {:>9.1}% {:>7.2}x  |{}|",
            c.baseline.model,
            c.baseline.chips,
            100.0 * c.baseline.flops_utilization,
            100.0 * c.overlapped.flops_utilization,
            c.speedup(),
            bar(c.overlapped.flops_utilization, 40),
        );
    }
    let (lo, hi) = rows.iter().fold((f64::MAX, 0.0f64), |(lo, hi), c| {
        (lo.min(c.speedup()), hi.max(c.speedup()))
    });
    println!("\nspeedup range: {lo:.2}x - {hi:.2}x");
    write_json("fig13", &rows);
    report_cache(artifact_cache());
}
