//! `overlapc` — a small compiler driver over serialized modules.
//!
//! ```sh
//! # Write a demo module to ./module.json:
//! cargo run --release -p overlap-bench --bin overlapc -- demo module.json
//!
//! # Compile it for an 8-chip ring and report:
//! cargo run --release -p overlap-bench --bin overlapc -- compile module.json
//!
//! # Same, serving repeated compiles from a persistent artifact cache:
//! cargo run --release -p overlap-bench --bin overlapc -- \
//!     compile module.json --cache-dir .overlap-cache
//! ```
//!
//! `compile` runs the full overlap pipeline on the module, prints the
//! §5.5 gate decisions, the before/after instruction statistics, the
//! simulated baseline vs. overlapped step times and an ASCII timeline,
//! and writes `<input>.trace.json` (Chrome tracing) plus `<input>.dot`
//! (GraphViz) next to the input. `--chrome-trace PATH` redirects the
//! tracing JSON to an explicit path for inspection in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`. With `--cache-dir`
//! (or the `OVERLAP_CACHE_DIR` environment variable) the compile goes
//! through the on-disk artifact cache: a re-run of the same module on
//! the same machine skips the pipeline and serves the bit-identical
//! bundle. `--strategy STRATEGY.json` swaps the paper-default
//! decomposition strategy for one from a file — e.g. a
//! `winner_strategy` object copied out of `results/fig_autotune.json`.

use overlap_bench::report_cache;
use overlap_core::{ArtifactCache, CompileReport, OverlapOptions, OverlapPipeline, StrategySpec};
use overlap_hlo::{to_dot, Builder, DType, DotDims, Module, ReplicaGroups, Shape};
use overlap_json::{FromJson, Json, ToJson};
use overlap_mesh::{FaultSpec, Machine};
use overlap_sim::{simulate, simulate_faulted, simulate_order, simulate_order_faulted};

fn demo_module() -> Module {
    let n = 8;
    let mut b = Builder::new("demo", n);
    let x = b.parameter(Shape::new(DType::BF16, vec![16384, 2048]), "activation");
    let w1 = b.parameter(Shape::new(DType::BF16, vec![2048, 8192 / n]), "w1_shard");
    let w2 = b.parameter(Shape::new(DType::BF16, vec![8192 / n, 2048]), "w2_shard");
    let w1f = b.all_gather(w1, 1, ReplicaGroups::full(n), "w1");
    let h = b.einsum(x, w1f, DotDims::matmul(), "h");
    let w2f = b.all_gather(w2, 0, ReplicaGroups::full(n), "w2");
    let y = b.einsum(h, w2f, DotDims::matmul(), "y");
    b.build(vec![y])
}

fn usage() -> ! {
    eprintln!(
        "usage: overlapc demo <out.json> | overlapc compile <module.json> \
         [--cache-dir DIR] [--fault-spec FAULTS.json] [--strategy STRATEGY.json] \
         [--chrome-trace PATH]"
    );
    std::process::exit(2);
}

/// Exits with a user-facing error message (bench bins never panic on
/// bad inputs or I/O; see the workspace's `deny(clippy::unwrap_used)`
/// direction).
fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

/// `--cache-dir DIR` wins over the environment; without either, the
/// cache is process-local (in-memory) and a single compile never hits.
fn cache_from_args(args: &[String]) -> ArtifactCache {
    match args.iter().position(|a| a == "--cache-dir") {
        Some(i) => match args.get(i + 1) {
            Some(dir) => ArtifactCache::with_disk_dir(dir),
            None => usage(),
        },
        None => ArtifactCache::from_env(),
    }
}

/// `--fault-spec FAULTS.json` compiles and simulates for the degraded
/// machine the file describes (see `FaultSpec`'s JSON layout). A parse
/// failure is a user error, reported and fatal.
fn fault_spec_from_args(args: &[String]) -> Option<FaultSpec> {
    let i = args.iter().position(|a| a == "--fault-spec")?;
    let Some(path) = args.get(i + 1) else { usage() };
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format!("cannot read fault spec {path}: {e}")));
    let parsed = match Json::parse(&text) {
        Ok(v) => FaultSpec::from_json(&v),
        Err(e) => Err(e.to_string()),
    };
    match parsed {
        Ok(spec) => Some(spec),
        Err(e) => fail(format!("invalid fault spec {path}: {e}")),
    }
}

/// `--strategy STRATEGY.json` compiles with an explicit [`StrategySpec`]
/// instead of the paper default (see the JSON layout the autotuner's
/// leaderboard records under `winner_strategy`). The spec is validated
/// — a chunked window on a bidirectional ring is rejected here rather
/// than silently falling back — and echoed in the banner so the report
/// is self-describing.
fn strategy_from_args(args: &[String]) -> Option<StrategySpec> {
    let i = args.iter().position(|a| a == "--strategy")?;
    let Some(path) = args.get(i + 1) else { usage() };
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format!("cannot read strategy {path}: {e}")));
    let parsed = match Json::parse(&text) {
        Ok(v) => StrategySpec::from_json(&v),
        Err(e) => Err(e.to_string()),
    };
    let spec = match parsed {
        Ok(spec) => spec,
        Err(e) => fail(format!("invalid strategy {path}: {e}")),
    };
    if let Err(e) = spec.validate() {
        fail(format!("infeasible strategy {path}: {e}"));
    }
    Some(spec)
}

/// The pre-compile banner: every note about how this compile deviates
/// from the fault-free paper-default path (a `--fault-spec` degraded
/// machine, a `--strategy` override) lands in ONE sorted section.
/// Historically each flag printed its own line at the point where it
/// was parsed, so the banner's shape depended on which knobs were set
/// and in what order the driver happened to check them; collecting the
/// notes here keeps the output deterministic and diffable.
fn banner_lines(faults: Option<&FaultSpec>, strategy: Option<&StrategySpec>) -> Vec<String> {
    let mut lines = Vec::new();
    if let Some(spec) = faults {
        lines.push(format!("compiling for a degraded machine (fault seed {})", spec.seed));
    }
    if let Some(spec) = strategy {
        lines.push(format!("compiling with strategy {}", spec.describe()));
    }
    lines.sort();
    lines
}

/// `--chrome-trace PATH` overrides where the Chrome-tracing JSON of the
/// overlapped schedule lands (default: `<input>.trace.json` next to the
/// input), so a schedule can be dropped straight into Perfetto /
/// `chrome://tracing` without touching the module's directory.
fn chrome_trace_from_args(args: &[String]) -> Option<String> {
    let i = args.iter().position(|a| a == "--chrome-trace")?;
    match args.get(i + 1) {
        Some(path) => Some(path.clone()),
        None => usage(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("demo") => {
            let path = args.get(2).map(String::as_str).unwrap_or("module.json");
            let m = demo_module();
            if let Err(e) = std::fs::write(path, m.to_json().to_pretty()) {
                fail(format!("cannot write {path}: {e}"));
            }
            println!("wrote {path} ({} instructions, {} partitions)", m.len(), m.num_partitions());
        }
        Some("compile") => {
            let Some(path) = args.get(2) else { usage() };
            let cache = cache_from_args(&args);
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(format!("cannot read module {path}: {e}")));
            let module = Module::from_json_str(&text)
                .unwrap_or_else(|e| fail(format!("cannot parse module {path}: {e}")));
            // Deserialized modules are untrusted: verify before use.
            if let Err(e) = module.verify() {
                fail(format!("module failed verification: {e}"));
            }
            let machine = Machine::tpu_v4_like(module.num_partitions());
            let faults = fault_spec_from_args(&args);
            if let Some(spec) = &faults {
                if let Err(e) = spec.validate(machine.mesh()) {
                    let chips = machine.mesh().num_devices();
                    fail(format!("fault spec does not fit the {chips}-chip machine: {e}"));
                }
            }
            let strategy = strategy_from_args(&args);
            let banner = banner_lines(faults.as_ref(), strategy.as_ref());
            if !banner.is_empty() {
                for line in &banner {
                    println!("{line}");
                }
                println!();
            }
            let options = match strategy {
                Some(spec) => OverlapOptions::with_strategy(spec),
                None => OverlapOptions::paper_default(),
            };
            let mut pipeline = OverlapPipeline::new(options);
            if let Some(spec) = &faults {
                pipeline = pipeline.with_faults(spec.clone());
            }
            let compiled = pipeline
                .compile_cached(&module, &machine, &cache)
                .unwrap_or_else(|e| fail(format!("cannot compile {path}: {e}")));
            println!("{}", CompileReport::new(&module, &compiled, &machine));

            let sim = |r: Result<overlap_sim::Report, overlap_sim::SimError>, what: &str| {
                r.unwrap_or_else(|e| fail(format!("cannot simulate the {what}: {e}")))
            };
            let (baseline, over) = match &faults {
                Some(spec) => (
                    sim(simulate_faulted(&module, &machine, spec), "faulted baseline"),
                    sim(
                        simulate_order_faulted(
                            &compiled.module,
                            &machine,
                            &compiled.order,
                            spec,
                        ),
                        "faulted overlapped schedule",
                    ),
                ),
                None => (
                    sim(simulate(&module, &machine), "baseline"),
                    sim(
                        simulate_order(&compiled.module, &machine, &compiled.order),
                        "overlapped schedule",
                    ),
                ),
            };
            println!(
                "\nbaseline {:.3} ms -> overlapped {:.3} ms ({:.2}x)",
                baseline.makespan() * 1e3,
                over.makespan() * 1e3,
                baseline.makespan() / over.makespan()
            );
            println!("{}", over.timeline().render(76));

            let trace =
                chrome_trace_from_args(&args).unwrap_or_else(|| format!("{path}.trace.json"));
            if let Err(e) = std::fs::write(&trace, over.timeline().to_chrome_trace()) {
                fail(format!("cannot write trace {trace}: {e}"));
            }
            let dot = format!("{path}.dot");
            if let Err(e) = std::fs::write(&dot, to_dot(&compiled.module)) {
                fail(format!("cannot write dot {dot}: {e}"));
            }
            println!("\nwrote {trace} and {dot}");
            report_cache(&cache);
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banner_merges_fault_and_strategy_notes_into_one_sorted_section() {
        assert!(banner_lines(None, None).is_empty());

        let faults = FaultSpec::seeded(7).with_jitter(5e-5);
        let strategy = StrategySpec::paper_default();

        let only_faults = banner_lines(Some(&faults), None);
        assert_eq!(only_faults, vec!["compiling for a degraded machine (fault seed 7)"]);

        let only_strategy = banner_lines(None, Some(&strategy));
        assert_eq!(only_strategy.len(), 1);
        assert!(only_strategy[0].starts_with("compiling with strategy "));

        // Both flags: one combined section, sorted, with each flag's
        // note rendered exactly as it renders alone.
        let both = banner_lines(Some(&faults), Some(&strategy));
        assert_eq!(both.len(), 2);
        let mut sorted = both.clone();
        sorted.sort();
        assert_eq!(both, sorted, "banner must be deterministically ordered");
        assert!(both.contains(&only_faults[0]));
        assert!(both.contains(&only_strategy[0]));
    }

    #[test]
    fn banner_echoes_the_precision_knob() {
        // A quantized `--strategy` file changes what bytes move on the
        // wire; the banner must say so, and a lossless strategy must
        // not invent a precision note.
        use overlap_hlo::WireFormat;
        let quantized = StrategySpec::paper_default().with_wire(WireFormat::int8());
        let lines = banner_lines(None, Some(&quantized));
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("int8x64"), "banner hides the wire format: {}", lines[0]);

        let lossless = banner_lines(None, Some(&StrategySpec::paper_default()));
        assert!(!lossless[0].contains("int8"), "lossless banner grew a precision note");
        assert!(!lossless[0].contains("bf16"), "lossless banner grew a precision note");
    }
}
