//! Compare scheduler quality breakdowns.
use overlap_bench::{artifact_cache, report_cache};
use overlap_core::{OverlapOptions, OverlapPipeline, SchedulerKind};
use overlap_models::{find_model, model_names};
use overlap_sim::simulate_order;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "GPT_512B".into());
    let Some(cfg) = find_model(&which) else {
        eprintln!("unknown model {which}; known names: {}", model_names().join(", "));
        std::process::exit(1);
    };
    let module = cfg.layer_module();
    let machine = cfg.machine();
    for sched in [SchedulerKind::BottomUp, SchedulerKind::TopDown] {
        let mut o = OverlapOptions::paper_default();
        o.scheduler = sched;
        let c = match OverlapPipeline::new(o).compile_cached(&module, &machine, artifact_cache())
        {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cannot compile {} with {sched:?}: {e}", cfg.name);
                std::process::exit(1);
            }
        };
        let r = match simulate_order(&c.module, &machine, &c.order) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cannot simulate {} with {sched:?}: {e}", cfg.name);
                std::process::exit(1);
            }
        };
        println!("{sched:?}: makespan {:.4e} comp {:.4e} mem {:.4e} sync {:.4e} exposed {:.4e} hidden {:.4e}",
            r.makespan(), r.compute_time(), r.memory_time(), r.sync_comm_time(), r.exposed_async_time(), r.hidden_async_time());
        println!("{}", r.timeline().render(110));
        if std::env::args().nth(2).is_some() {
            for sp in r.timeline().spans.iter().take(48) {
                println!("{:>9.3} {:>9.3}  {:?} {}", sp.start*1e3, sp.end*1e3, sp.kind, sp.name);
            }
        }
    }
    report_cache(artifact_cache());
}
