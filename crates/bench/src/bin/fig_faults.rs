//! Degraded-hardware sweeps: overlap speedup under injected faults.
//!
//! Two sweeps over the Table-1 configurations, both compiled *for* the
//! degraded machine (so the fault-adjusted §5.5 gate can fall back per
//! pattern) and simulated under the same seeded [`FaultSpec`]:
//!
//! * **straggler severity** — one chip's compute slowed by a factor; in
//!   the bulk-synchronous SPMD model the straggler gates every step, so
//!   compute swells on both sides and the overlap win shrinks toward 1x,
//! * **derated-link fraction** — a growing fraction of torus links at
//!   reduced bandwidth, plus per-hop latency jitter that grows with the
//!   damage. Collectives pay the worst-link toll immediately while the
//!   decomposed rings only pay on the hops they cross, so the overlap
//!   win first *grows* — until the jittered ring loses the gate and the
//!   compile falls back to the original collectives (speedup -> ~1x):
//!   the crossover.
//!
//! Knobs: `OVERLAP_FAULT_SEED` selects the spec seed (default 7);
//! `OVERLAP_FAULT_SMOKE=1` swaps Table 1 for one small 16-chip
//! configuration so CI can run the sweep in seconds. Same seed, same
//! mode => byte-identical stdout and `results/fig_faults.json`.

use overlap_bench::{
    artifact_cache, report_cache, run_comparison_faulted_cached, write_json, FaultedComparison,
};
use overlap_json::{Json, ToJson};
use overlap_mesh::FaultSpec;
use overlap_models::{table1_models, Arch, ModelConfig, PartitionStrategy};

/// One chip's compute slowdown factors (1.0 = healthy anchor).
const SEVERITIES: [f64; 6] = [1.0, 1.1, 1.25, 1.5, 2.0, 3.0];

/// Fractions of torus links running degraded (0.0 = healthy anchor).
const LINK_FRACTIONS: [f64; 5] = [0.0, 0.125, 0.25, 0.5, 1.0];

/// Bandwidth multiplier applied to each degraded link.
const LINK_DERATE: f64 = 0.8;

/// Per-hop latency jitter at fraction 1.0; scales linearly with the
/// fraction (flaky links are also slow links).
const JITTER_FULL_SECONDS: f64 = 5e-5;

struct Row {
    knob: &'static str,
    value: f64,
    cmp: FaultedComparison,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj()
            .with(self.knob, self.value)
            .with("model", self.cmp.baseline.model.as_str())
            .with("chips", self.cmp.baseline.chips as u64)
            .with("baseline_step", self.cmp.baseline.step_time)
            .with("overlapped_step", self.cmp.overlapped.step_time)
            .with("speedup", self.cmp.speedup())
            .with("decomposed", self.cmp.decomposed as u64)
            .with("fallbacks", self.cmp.fallbacks as u64)
    }
}

fn smoke_config() -> ModelConfig {
    ModelConfig {
        name: "Smoke_16".into(),
        params: 1e9,
        layers: 4,
        model_dim: 2048,
        ff_dim: 8192,
        batch: 256,
        seq_len: 64,
        chips: 16,
        arch: Arch::Decoder,
        strategy: PartitionStrategy::TwoD,
    }
}

fn print_row(r: &Row) {
    println!(
        "  {:<12} {:>6.3}  base {:>9.3}ms  over {:>9.3}ms  {:>5.2}x  decomposed={} fallbacks={}",
        r.knob,
        r.value,
        r.cmp.baseline.step_time * 1e3,
        r.cmp.overlapped.step_time * 1e3,
        r.cmp.speedup(),
        r.cmp.decomposed,
        r.cmp.fallbacks,
    );
}

fn main() {
    let seed: u64 = std::env::var("OVERLAP_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let smoke = std::env::var("OVERLAP_FAULT_SMOKE").is_ok_and(|v| v == "1");
    let models = if smoke { vec![smoke_config()] } else { table1_models() };
    let cache = artifact_cache();

    println!("fig_faults: overlap speedup on degraded hardware (seed {seed})");
    let mut straggler_rows = Vec::new();
    let mut link_rows = Vec::new();
    for cfg in &models {
        println!("{} ({} chips)", cfg.name, cfg.chips);
        println!(" straggler severity sweep:");
        for &severity in &SEVERITIES {
            let spec = FaultSpec::seeded(seed).with_straggler(0, severity);
            let row = Row {
                knob: "severity",
                value: severity,
                cmp: run_comparison_faulted_cached(cfg, &spec, cache),
            };
            print_row(&row);
            straggler_rows.push(row);
        }
        println!(" derated-link fraction sweep (derate {LINK_DERATE}):");
        let mesh = cfg.machine().mesh().clone();
        for &fraction in &LINK_FRACTIONS {
            let spec = FaultSpec::seeded(seed)
                .with_derated_link_fraction(&mesh, fraction, LINK_DERATE)
                .with_jitter(fraction * JITTER_FULL_SECONDS);
            let row = Row {
                knob: "fraction",
                value: fraction,
                cmp: run_comparison_faulted_cached(cfg, &spec, cache),
            };
            print_row(&row);
            link_rows.push(row);
        }
    }

    let fell_back = link_rows.iter().any(|r| r.cmp.fallbacks > 0);
    println!(
        "crossover: {}",
        if fell_back {
            "link sweep reached the fallback regime (speedup pinned near 1x)"
        } else {
            "no sweep point regressed past the fault-adjusted gate"
        }
    );

    let record = Json::obj()
        .with("seed", seed)
        .with("smoke", smoke)
        .with("link_derate", LINK_DERATE)
        .with("jitter_full_seconds", JITTER_FULL_SECONDS)
        .with("straggler_sweep", straggler_rows.to_json())
        .with("link_sweep", link_rows.to_json());
    // Smoke runs write beside the committed full-sweep artifact instead
    // of clobbering it (the smoke file is gitignored; CI diffs it across
    // two seeded runs to assert determinism).
    write_json(if smoke { "fig_faults_smoke" } else { "fig_faults" }, &record);
    report_cache(cache);
}
