//! `overlapd` — the compile-and-simulate service daemon.
//!
//! ```sh
//! # Serve on an ephemeral port, announce it through a port file:
//! cargo run --release -p overlap-bench --bin overlapd -- \
//!     --port-file /tmp/overlapd.port --cache-dir .overlap-cache
//!
//! # Fixed address, 4 workers, shed beyond 16 queued connections:
//! cargo run --release -p overlap-bench --bin overlapd -- \
//!     --addr 127.0.0.1:7979 --workers 4 --queue-depth 16
//! ```
//!
//! The daemon serves the overlap-serve/1 protocol (see
//! `overlap-serve`'s docs and DESIGN.md §Service layer) until drained:
//! by SIGTERM/SIGINT, or by a client `shutdown` request. A drain stops
//! admission, finishes every request already accepted, and exits 0 —
//! disk-cache writes are atomic throughout, so no torn entries. The
//! artifact cache honors the usual knobs (`--cache-dir` /
//! `OVERLAP_CACHE_DIR`, `OVERLAP_CACHE=0`, `OVERLAP_CACHE_VERIFY=1`).
//!
//! Observability flags hang extra observers on the server's event bus:
//! `--record FILE` appends every event as one JSON line (the
//! deterministic record/replay stream; see DESIGN.md §Event schema),
//! and `--chrome-trace FILE` writes a `chrome://tracing`-compatible
//! span file on drain.

use std::sync::{Arc, OnceLock};

use overlap_core::ArtifactCache;
use overlap_serve::{
    ChromeTraceObserver, EventObserver, FleetConfig, FleetState, RecordObserver, ServeConfig,
    Server, ShutdownHandle,
};

fn usage() -> ! {
    eprintln!(
        "usage: overlapd [--addr HOST:PORT] [--workers N] [--queue-depth N] \
         [--port-file PATH] [--cache-dir DIR] [--record FILE] [--chrome-trace FILE] \
         [--fleet-node I --fleet-peers HOST:PORT,HOST:PORT,...]"
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("overlapd: {msg}");
    std::process::exit(1);
}

/// Value of `--flag V`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1) {
        Some(v) => Some(v.clone()),
        None => usage(),
    }
}

fn parsed_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let v = flag_value(args, flag)?;
    match v.parse() {
        Ok(t) => Some(t),
        Err(_) => fail(format!("cannot parse {flag} value {v:?}")),
    }
}

/// The drain handle SIGTERM/SIGINT forward to. A `OnceLock` because a
/// C signal handler cannot capture state; both `get` and the atomic
/// store inside `request` are async-signal-safe.
static DRAIN: OnceLock<ShutdownHandle> = OnceLock::new();

extern "C" fn on_signal(_sig: i32) {
    if let Some(h) = DRAIN.get() {
        h.request();
    }
}

#[cfg(unix)]
fn install_signal_handlers() {
    // Raw libc `signal` keeps this dependency-free; the handler only
    // flips an atomic, and the acceptor polls it every 25 ms.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler: extern "C" fn(i32) = on_signal;
    unsafe {
        signal(SIGTERM, handler as usize);
        signal(SIGINT, handler as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let mut config = ServeConfig::default();
    if let Some(addr) = flag_value(&args, "--addr") {
        config.addr = addr;
    }
    if let Some(workers) = parsed_flag(&args, "--workers") {
        config.workers = workers;
    }
    if let Some(depth) = parsed_flag(&args, "--queue-depth") {
        config.queue_depth = depth;
    }
    let cache = match flag_value(&args, "--cache-dir") {
        Some(dir) => ArtifactCache::with_disk_dir(dir),
        None => ArtifactCache::from_env(),
    };

    let mut observers: Vec<Arc<dyn EventObserver>> = Vec::new();
    if let Some(path) = flag_value(&args, "--record") {
        match RecordObserver::to_file(&path) {
            Ok(obs) => observers.push(Arc::new(obs)),
            Err(e) => fail(format!("cannot open record file {path}: {e}")),
        }
    }
    if let Some(path) = flag_value(&args, "--chrome-trace") {
        observers.push(Arc::new(ChromeTraceObserver::new(path)));
    }

    let server = match Server::bind_with_observers(&config, cache, observers) {
        Ok(s) => s,
        Err(e) => fail(format!("cannot bind {}: {e}", config.addr)),
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => fail(format!("cannot read bound address: {e}")),
    };

    // Fleet membership: `--fleet-node I --fleet-peers a,b,c` joins
    // this daemon as node I of the listed fleet (the list includes
    // this daemon's own address; every member must pass the identical
    // list, in the identical order, or the rings disagree).
    let fleet_node: Option<usize> = parsed_flag(&args, "--fleet-node");
    let fleet_peers = flag_value(&args, "--fleet-peers");
    match (fleet_node, fleet_peers) {
        (Some(idx), Some(peers)) => {
            let addrs: Vec<String> =
                peers.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
            if idx >= addrs.len() {
                fail(format!("--fleet-node {idx} out of range for {} peers", addrs.len()));
            }
            eprintln!("overlapd: fleet node {idx} of {}", addrs.len());
            server.configure_fleet(FleetState::new(FleetConfig::new(idx, addrs)));
        }
        (None, None) => {}
        _ => fail("--fleet-node and --fleet-peers must be given together"),
    }
    DRAIN.set(server.shutdown_handle()).ok();
    install_signal_handlers();

    // The port file is how scripts find an ephemeral port; written
    // after bind, so a reader never races a half-started server.
    if let Some(path) = flag_value(&args, "--port-file") {
        if let Err(e) = std::fs::write(&path, format!("{}\n", addr.port())) {
            fail(format!("cannot write port file {path}: {e}"));
        }
    }
    eprintln!(
        "overlapd: serving on {addr} ({} workers, queue depth {})",
        config.workers, config.queue_depth
    );
    match server.run() {
        Ok(()) => eprintln!("overlapd: drained cleanly"),
        Err(e) => fail(format!("listener failed: {e}")),
    }
}
