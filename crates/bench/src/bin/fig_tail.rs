//! Tail-latency sweep: cross-layer scheduling windows vs. stragglers.
//!
//! For every Table-1 configuration, builds the 4-layer stacked window
//! module (`ModelConfig::window_module(4)`: forward stages `L0..L3`,
//! backward stages `L4..L7`), compiles it once per scheduling-window
//! width under a seeded network-straggler [`FaultSpec`], and runs the
//! distributional simulator (`simulate_order_tail_with`) to get exact
//! p50/p90/p99 makespans over repeated independent fault draws.
//!
//! The straggler here is a *network* straggler: a fixed fraction of the
//! mesh's links run at `1/severity` of nominal bandwidth (a flapping
//! optical link, a congested switch radix), with per-hop jitter and
//! probabilistic DMA-issue stalls spreading the draw distribution so
//! the tail is a distribution rather than a point. Slow links expose
//! ring traffic that healthy-machine schedules hide completely — and a
//! window of 1 (strict per-stage barriers) serializes layer `k+1`'s
//! exposed ring hops behind all of layer `k`'s compute, so the erosion
//! lands squarely on p99. Widening the window lets the scheduler issue
//! the next stage's `CollectivePermuteStart`s under the current stage's
//! compute, which recovers a measurable fraction of the erosion at the
//! tail. (A *compute* straggler would show nothing here: slowing a
//! chip's FLOPs makes compute more dominant, which hides comm better
//! and leaves a wider window nothing to recover.) Every row reports the
//! win over the *same* module in its unscheduled arena order, so
//! windows are compared on equal footing.
//!
//! Knobs: `OVERLAP_FAULT_SEED` selects the spec seed (default 7);
//! `OVERLAP_TAIL_SMOKE=1` swaps Table 1 for one small 16-chip
//! configuration and fewer draws so CI can run the sweep in seconds.
//! Same seed, same mode => byte-identical stdout and
//! `results/fig_tail.json`.

use overlap_bench::{artifact_cache, report_cache, write_json};
use overlap_core::{OverlapOptions, OverlapPipeline, StrategySpec};
use overlap_json::{Json, ToJson};
use overlap_mesh::FaultSpec;
use overlap_models::{table1_models, Arch, ModelConfig, PartitionStrategy};
use overlap_sim::{simulate_order_tail, simulate_order_tail_with, TailSummary};

/// Layers stacked into one scheduling scope (8 stages: 4 fwd + 4 bwd).
const DEPTH: usize = 4;

/// Scheduling-window widths to sweep. 1 = strict per-stage barriers
/// (byte-identical to the single-scope scheduler); `DEPTH` lets any
/// stage's collectives ride under any other stage's compute.
const WINDOWS: [usize; 3] = [1, 2, 4];

/// Link slowdown factors (1.0 = healthy anchor): the derated links run
/// at `1/severity` of nominal bandwidth.
const SEVERITIES: [f64; 3] = [1.0, 1.5, 2.0];

/// Fraction of the mesh's links the straggler derates.
const LINK_FRACTION: f64 = 0.25;

/// Per-hop latency jitter amplitude: spreads the draw distribution so
/// the tail is a distribution, not a point. Kept small — amplitudes
/// near 5e-5 make the fault-adjusted §5.5 gates reject decomposition
/// outright, which would leave nothing to schedule.
const JITTER_SECONDS: f64 = 1e-5;

/// DMA-issue stall model: each transfer independently stalls on issue
/// with this probability and retries after a backoff, up to the retry
/// cap. This is where most of the p99−p50 spread comes from.
const STALL_PROBABILITY: f64 = 0.02;
const STALL_BACKOFF_SECONDS: f64 = 2e-4;
const STALL_RETRIES: u32 = 3;

/// Independent fault draws per row (exact order statistics, so p99 is
/// the worst draw at 33 and the 99th at 100).
const DRAWS: usize = 33;
const SMOKE_DRAWS: usize = 9;

struct Row {
    model: String,
    chips: usize,
    severity: f64,
    window: usize,
    baseline: TailSummary,
    windowed: TailSummary,
}

impl Row {
    /// p50 speedup of the windowed schedule over the arena order.
    fn win_p50(&self) -> f64 {
        self.baseline.p50 / self.windowed.p50
    }

    /// p99 speedup of the windowed schedule over the arena order.
    fn win_p99(&self) -> f64 {
        self.baseline.p99 / self.windowed.p99
    }
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("model", self.model.as_str())
            .with("chips", self.chips as u64)
            .with("severity", self.severity)
            .with("window", self.window as u64)
            .with("draws", self.windowed.draws as u64)
            .with("baseline_p50", self.baseline.p50)
            .with("baseline_p99", self.baseline.p99)
            .with("p50", self.windowed.p50)
            .with("p90", self.windowed.p90)
            .with("p99", self.windowed.p99)
            .with("win_p50", self.win_p50())
            .with("win_p99", self.win_p99())
    }
}

fn smoke_config() -> ModelConfig {
    ModelConfig {
        name: "Smoke_16".into(),
        params: 1e9,
        layers: 4,
        model_dim: 2048,
        ff_dim: 8192,
        batch: 256,
        seq_len: 64,
        chips: 16,
        arch: Arch::Decoder,
        strategy: PartitionStrategy::TwoD,
    }
}

fn print_row(r: &Row) {
    println!(
        "  severity {:>4.2}  window {}  p50 {:>9.3}ms  p99 {:>9.3}ms  win p50 {:>5.2}x  win p99 {:>5.2}x",
        r.severity,
        r.window,
        r.windowed.p50 * 1e3,
        r.windowed.p99 * 1e3,
        r.win_p50(),
        r.win_p99(),
    );
}

fn main() {
    let seed: u64 = std::env::var("OVERLAP_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let smoke = std::env::var("OVERLAP_TAIL_SMOKE").is_ok_and(|v| v == "1");
    let models = if smoke { vec![smoke_config()] } else { table1_models() };
    let draws = if smoke { SMOKE_DRAWS } else { DRAWS };
    let cache = artifact_cache();

    println!("fig_tail: cross-layer windows vs. straggler tail latency (seed {seed}, {draws} draws)");
    let mut rows = Vec::new();
    for cfg in &models {
        println!("{} ({} chips, {DEPTH} stacked layers)", cfg.name, cfg.chips);
        let module = cfg.window_module(DEPTH);
        let machine = cfg.machine();
        for &severity in &SEVERITIES {
            let spec = FaultSpec::seeded(seed)
                .with_derated_link_fraction(machine.mesh(), LINK_FRACTION, 1.0 / severity)
                .with_jitter(JITTER_SECONDS)
                .with_dma_stalls(STALL_PROBABILITY, STALL_BACKOFF_SECONDS, STALL_RETRIES);
            let baseline = TailSummary::from_samples(&overlap_bench::or_exit(
                simulate_order_tail(&module, &machine, &module.arena_order(), &spec, draws),
                "baseline tail simulation",
            ));
            for &window in &WINDOWS {
                let options = OverlapOptions::with_strategy(
                    StrategySpec::paper_default().with_window_layers(window),
                );
                let compiled = overlap_bench::or_exit(
                    OverlapPipeline::new(options)
                        .with_faults(spec.clone())
                        .compile_cached(&module, &machine, cache),
                    "windowed pipeline",
                );
                let samples = overlap_bench::or_exit(
                    simulate_order_tail_with(
                        &compiled.cost_table,
                        &compiled.module,
                        &machine,
                        &compiled.order,
                        &spec,
                        draws,
                    ),
                    "windowed tail simulation",
                );
                let row = Row {
                    model: cfg.name.clone(),
                    chips: cfg.chips,
                    severity,
                    window,
                    baseline,
                    windowed: TailSummary::from_samples(&samples),
                };
                print_row(&row);
                rows.push(row);
            }
        }
    }

    // Headline: does widening the window recover tail latency that the
    // straggler eroded? Compare each model's best-window p99 win to its
    // window=1 p99 win at the harshest severity.
    let severity = SEVERITIES[SEVERITIES.len() - 1];
    for cfg in &models {
        let at = |w: usize| {
            rows.iter()
                .find(|r| r.model == cfg.name && r.severity == severity && r.window == w)
                .map(Row::win_p99)
        };
        let Some(one) = at(1) else { continue };
        let best = WINDOWS.iter().filter_map(|&w| at(w)).fold(f64::MIN, f64::max);
        println!(
            "{}: p99 win at severity {severity}: window=1 {one:.3}x, best {best:.3}x ({})",
            cfg.name,
            if best > one { "windows recover tail latency" } else { "no recovery" }
        );
    }

    let record = Json::obj()
        .with("seed", seed)
        .with("smoke", smoke)
        .with("depth", DEPTH as u64)
        .with("draws", draws as u64)
        .with("link_fraction", LINK_FRACTION)
        .with("jitter_seconds", JITTER_SECONDS)
        .with("stall_probability", STALL_PROBABILITY)
        .with("rows", rows.to_json());
    // Smoke runs write beside the committed full-sweep artifact instead
    // of clobbering it (the smoke file is gitignored; CI diffs it across
    // two seeded runs to assert determinism).
    write_json(if smoke { "fig_tail_smoke" } else { "fig_tail" }, &record);
    report_cache(cache);
}
