//! Strategy autotuner: search the decomposition space with the cached
//! simulator as oracle.
//!
//! Enumerates the [`overlap_core::StrategySpec`] candidate grid (ring direction,
//! unrolling, chunk width, pad-max-concat, fusion aggressiveness) crossed
//! with the two latency-hiding schedulers, statically prunes combinations
//! the emission rules make infeasible or behavior-identical, scores every
//! survivor with the performance simulator (compiles served through the
//! artifact cache, so re-runs and overlapping grids are warm), and writes
//! the per-configuration leaderboard to `results/fig_autotune.json`.
//!
//! ```sh
//! cargo run --release -p overlap-bench --bin overlap-autotune
//! OVERLAP_AUTOTUNE_SMOKE=1 cargo run --release -p overlap-bench --bin overlap-autotune
//! ```
//!
//! The sweep covers every Table-1 model on its paper machine, a small
//! short-ring machine (4x4 mesh), and one degraded-hardware configuration
//! (seeded, deterministic), so the leaderboard shows where the tuned
//! strategy diverges from the paper default. Wall-clock is printed but never written to the
//! JSON, which stays byte-identical across identically-seeded runs.

use overlap_bench::{
    artifact_cache, par_map, report_cache, run_baseline, run_baseline_faulted,
    run_overlapped_cached, run_overlapped_faulted_cached, strategy_grid, write_json,
};
use overlap_core::OverlapOptions;
use overlap_json::{Json, ToJson};
use overlap_mesh::FaultSpec;
use overlap_models::{table1_models, Arch, ModelConfig, PartitionStrategy};

/// One scored candidate on one configuration.
struct Entry {
    options: OverlapOptions,
    step_time: f64,
}

/// The leaderboard for one (model, machine[, faults]) configuration.
struct Board {
    config: String,
    faulted: bool,
    baseline: f64,
    paper_default: f64,
    entries: Vec<Entry>,
}

impl Board {
    fn winner(&self) -> &Entry {
        &self.entries[0]
    }
}

impl ToJson for Board {
    fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .entries
            .iter()
            .take(10)
            .map(|e| {
                Json::obj()
                    .with("strategy", e.options.strategy.describe())
                    .with("scheduler", e.options.scheduler.to_json())
                    .with("step_time", e.step_time)
                    .with("speedup_vs_paper_default", self.paper_default / e.step_time)
            })
            .collect();
        Json::obj()
            .with("config", self.config.as_str())
            .with("faulted", self.faulted)
            .with("baseline_step_time", self.baseline)
            .with("paper_default_step_time", self.paper_default)
            .with("winner_strategy", self.winner().options.strategy.to_json())
            .with("winner_scheduler", self.winner().options.scheduler.to_json())
            .with("leaderboard", Json::from(rows))
    }
}

fn smoke_config() -> ModelConfig {
    ModelConfig {
        name: "Smoke_16".into(),
        params: 1e9,
        layers: 4,
        model_dim: 2048,
        ff_dim: 8192,
        batch: 256,
        seq_len: 64,
        chips: 16,
        arch: Arch::Decoder,
        strategy: PartitionStrategy::TwoD,
    }
}

/// Scores the full candidate list on one configuration and returns its
/// leaderboard sorted fastest-first (ties broken by the strategy
/// description so identically-timed candidates order deterministically).
fn tune(cfg: &ModelConfig, spec: Option<&FaultSpec>, options: &[OverlapOptions]) -> Board {
    let cache = artifact_cache();
    let baseline = match spec {
        Some(s) => run_baseline_faulted(cfg, s),
        None => run_baseline(cfg),
    }
    .step_time;
    let paper_default = match spec {
        Some(s) => {
            run_overlapped_faulted_cached(cfg, OverlapOptions::paper_default(), s, cache)
        }
        None => run_overlapped_cached(cfg, OverlapOptions::paper_default(), cache),
    }
    .step_time;
    let mut entries: Vec<Entry> = par_map(options, |&o| {
        let stats = match spec {
            Some(s) => run_overlapped_faulted_cached(cfg, o, s, cache),
            None => run_overlapped_cached(cfg, o, cache),
        };
        Entry { options: o, step_time: stats.step_time }
    });
    entries.sort_by(|a, b| {
        a.step_time
            .total_cmp(&b.step_time)
            .then_with(|| a.options.strategy.describe().cmp(&b.options.strategy.describe()))
            .then_with(|| {
                format!("{:?}", a.options.scheduler).cmp(&format!("{:?}", b.options.scheduler))
            })
    });
    Board {
        config: match spec {
            Some(_) => format!("{}+faults", cfg.name),
            None => cfg.name.clone(),
        },
        faulted: spec.is_some(),
        baseline,
        paper_default,
        entries,
    }
}

fn print_board(b: &Board) {
    println!(
        "{:<16} base {:>9.3}ms paper {:>9.3}ms",
        b.config,
        b.baseline * 1e3,
        b.paper_default * 1e3
    );
    for (i, e) in b.entries.iter().take(5).enumerate() {
        println!(
            "  #{:<2} {:>9.3}ms {:>6.3}x  {} sched={:?}",
            i + 1,
            e.step_time * 1e3,
            b.paper_default / e.step_time,
            e.options.strategy.describe(),
            e.options.scheduler,
        );
    }
}

fn main() {
    let smoke = std::env::var("OVERLAP_AUTOTUNE_SMOKE").is_ok_and(|v| v == "1");
    let seed: u64 = std::env::var("OVERLAP_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let (options, pruned, total) = strategy_grid();
    println!(
        "overlap-autotune: {} candidates kept, {pruned} of {total} pruned statically (seed {seed})",
        options.len()
    );

    let models = if smoke {
        vec![smoke_config()]
    } else {
        // Table-1 plus the short-ring smoke machine: the 4x4 mesh is the
        // regime where the chunked unidirectional window beats the paper
        // default, so the committed leaderboard keeps that data point.
        let mut models = table1_models();
        models.push(smoke_config());
        models
    };
    let started = std::time::Instant::now();
    let mut boards = Vec::new();
    for cfg in &models {
        let board = tune(cfg, None, &options);
        print_board(&board);
        boards.push(board);
    }
    // One degraded configuration, compiled fault-aware so the tuned
    // strategy has to win under the adjusted gate too. GLaM_1T with a
    // moderate straggler is the regime where tuning genuinely pays: the
    // bidirectional ring's prologue/epilogue regresses past the adjusted
    // gate and falls back wholesale, while the unidirectional loop keeps
    // overlapping (~12% faster than the paper default there).
    let faulted_cfg = models
        .iter()
        .find(|m| m.name == "GLaM_1T")
        .unwrap_or(&models[0]);
    let spec = FaultSpec::seeded(seed).with_straggler(0, 1.6).with_jitter(2e-4);
    let board = tune(faulted_cfg, Some(&spec), &options);
    print_board(&board);
    boards.push(board);

    let improved = boards
        .iter()
        .filter(|b| b.winner().step_time < b.paper_default)
        .count();
    println!(
        "autotuned strategy beats paper default on {improved} of {} configurations",
        boards.len()
    );
    write_json(
        if smoke { "fig_autotune_smoke" } else { "fig_autotune" },
        &boards,
    );
    report_cache(artifact_cache());
    eprintln!("search wall-clock: {:.1}s", started.elapsed().as_secs_f64());
}
