//! Shared experiment machinery for the figure/table binaries.
//!
//! Every binary follows the same recipe: build each model's one-layer step
//! module ([`overlap_models`]), simulate it under the baseline order and
//! under the overlap pipeline, scale by the layer count, and print the
//! paper's series. Results are also emitted as JSON records so
//! EXPERIMENTS.md can cite exact numbers.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use overlap_core::{OverlapOptions, OverlapPipeline};
use overlap_mesh::Machine;
use overlap_models::ModelConfig;
use overlap_sim::{simulate, simulate_order_with, Report};
use serde::Serialize;

/// Simulated per-step statistics for one configuration.
#[derive(Debug, Clone, Serialize)]
pub struct StepStats {
    /// Model name.
    pub model: String,
    /// Chip count.
    pub chips: usize,
    /// End-to-end step time in seconds (per-layer makespan × layers).
    pub step_time: f64,
    /// Fraction of the step spent on compute-stream computation.
    pub compute_fraction: f64,
    /// Fraction of the step exposed as communication (sync collectives +
    /// unhidden async transfers).
    pub comm_fraction: f64,
    /// Achieved fraction of peak FLOPS.
    pub flops_utilization: f64,
}

impl StepStats {
    fn from_report(cfg: &ModelConfig, machine: &Machine, r: &Report) -> Self {
        StepStats {
            model: cfg.name.clone(),
            chips: cfg.chips,
            step_time: r.makespan() * cfg.layers as f64,
            compute_fraction: (r.compute_time() + r.memory_time()) / r.makespan(),
            comm_fraction: r.comm_fraction(),
            flops_utilization: r.flops_utilization(machine.peak_flops()),
        }
    }
}

/// Baseline and overlapped step statistics for one model.
#[derive(Debug, Clone, Serialize)]
pub struct Comparison {
    /// Baseline (synchronous collectives, program order).
    pub baseline: StepStats,
    /// With the overlap pipeline.
    pub overlapped: StepStats,
}

impl Comparison {
    /// Baseline / overlapped step-time ratio (the paper's speedup).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.baseline.step_time / self.overlapped.step_time
    }
}

/// Simulates one model's step without the overlap pipeline.
///
/// # Panics
///
/// Panics if the layer module fails to build or simulate (the published
/// configurations all succeed).
#[must_use]
pub fn run_baseline(cfg: &ModelConfig) -> StepStats {
    let module = cfg.layer_module();
    let machine = cfg.machine();
    let report = simulate(&module, &machine).expect("baseline simulation");
    StepStats::from_report(cfg, &machine, &report)
}

/// Simulates one model's step with the overlap pipeline under `options`.
///
/// # Panics
///
/// Panics if compilation or simulation fails.
#[must_use]
pub fn run_overlapped(cfg: &ModelConfig, options: OverlapOptions) -> StepStats {
    let module = cfg.layer_module();
    let machine = cfg.machine();
    let compiled = OverlapPipeline::new(options).run(&module, &machine).expect("pipeline");
    // The pipeline already built the compiled module's cost table for its
    // scheduler; reuse it instead of re-deriving every instruction cost.
    let report =
        simulate_order_with(&compiled.cost_table, &compiled.module, &machine, &compiled.order)
            .expect("simulation");
    StepStats::from_report(cfg, &machine, &report)
}

/// Baseline-vs-overlapped comparison with the paper-default options.
#[must_use]
pub fn run_comparison(cfg: &ModelConfig) -> Comparison {
    Comparison {
        baseline: run_baseline(cfg),
        overlapped: run_overlapped(cfg, OverlapOptions::paper_default()),
    }
}

// The deterministic parallel map driver moved to `overlap-sim` so the
// cost gate can use it too; the sweeps and downstream callers keep the
// old paths.
pub use overlap_sim::{par_map, sweep_threads};

/// [`run_baseline`] over a whole model zoo, fanned across cores (input
/// order preserved).
#[must_use]
pub fn run_baselines(cfgs: &[ModelConfig]) -> Vec<StepStats> {
    par_map(cfgs, run_baseline)
}

/// [`run_comparison`] over a whole model zoo, fanned across cores (input
/// order preserved).
#[must_use]
pub fn run_comparisons(cfgs: &[ModelConfig]) -> Vec<Comparison> {
    par_map(cfgs, run_comparison)
}

/// Renders a unit-interval value as a fixed-width ASCII bar.
#[must_use]
pub fn bar(fraction: f64, width: usize) -> String {
    let n = ((fraction.clamp(0.0, 1.2) * width as f64) / 1.2).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < n { '#' } else { ' ' });
    }
    s
}

/// Writes a JSON record for EXPERIMENTS.md under `results/<name>.json`.
///
/// Failures to write are reported on stderr but do not abort the run.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(body) => {
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_is_monotone_and_bounded() {
        assert_eq!(bar(0.0, 10).trim(), "");
        let half = bar(0.6, 12);
        assert_eq!(half.len(), 12);
        assert!(bar(1.2, 12).chars().filter(|&c| c == '#').count() == 12);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = items.iter().map(|&i| i * 2 + 1).collect();
        assert_eq!(par_map(&items, |&i| i * 2 + 1), expected);
    }

    #[test]
    fn par_map_handles_empty_and_singleton() {
        let empty: [u32; 0] = [];
        assert!(par_map(&empty, |&i| i).is_empty());
        assert_eq!(par_map(&[7u32], |&i| i + 1), vec![8]);
    }

    #[test]
    fn sweep_threads_is_positive() {
        assert!(sweep_threads() >= 1);
    }

    #[test]
    fn small_model_comparison_runs() {
        let cfg = overlap_models::ModelConfig {
            name: "smoke".into(),
            params: 1e9,
            layers: 4,
            model_dim: 256,
            ff_dim: 1024,
            batch: 16,
            seq_len: 64,
            chips: 8,
            arch: overlap_models::Arch::Decoder,
            strategy: overlap_models::PartitionStrategy::TwoD,
        };
        let c = run_comparison(&cfg);
        assert!(c.baseline.step_time > 0.0);
        assert!(c.overlapped.step_time > 0.0);
        assert!(c.baseline.comm_fraction > 0.0);
    }
}
