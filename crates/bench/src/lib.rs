//! Shared experiment machinery for the figure/table binaries.
//!
//! Every binary follows the same recipe: build each model's one-layer step
//! module ([`overlap_models`]), simulate it under the baseline order and
//! under the overlap pipeline, scale by the layer count, and print the
//! paper's series. Results are also emitted as JSON records so
//! EXPERIMENTS.md can cite exact numbers.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::sync::OnceLock;

use overlap_core::{
    ArtifactCache, FusionAggressiveness, OverlapOptions, OverlapPipeline, RingDirection,
    SchedulerKind, StrategySpec,
};
use overlap_json::{Json, ToJson};
use overlap_mesh::{FaultSpec, Machine};
use overlap_models::ModelConfig;
use overlap_sim::{
    simulate, simulate_faulted, simulate_order_faulted_with, simulate_order_with, Report,
};

/// Simulated per-step statistics for one configuration.
#[derive(Debug, Clone)]
pub struct StepStats {
    /// Model name.
    pub model: String,
    /// Chip count.
    pub chips: usize,
    /// End-to-end step time in seconds (per-layer makespan × layers).
    pub step_time: f64,
    /// Fraction of the step spent on compute-stream computation.
    pub compute_fraction: f64,
    /// Fraction of the step exposed as communication (sync collectives +
    /// unhidden async transfers).
    pub comm_fraction: f64,
    /// Achieved fraction of peak FLOPS.
    pub flops_utilization: f64,
}

impl StepStats {
    fn from_report(cfg: &ModelConfig, machine: &Machine, r: &Report) -> Self {
        StepStats {
            model: cfg.name.clone(),
            chips: cfg.chips,
            step_time: r.makespan() * cfg.layers as f64,
            compute_fraction: (r.compute_time() + r.memory_time()) / r.makespan(),
            comm_fraction: r.comm_fraction(),
            flops_utilization: r.flops_utilization(machine.peak_flops()),
        }
    }
}

impl ToJson for StepStats {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("model", self.model.as_str())
            .with("chips", self.chips as u64)
            .with("step_time", self.step_time)
            .with("compute_fraction", self.compute_fraction)
            .with("comm_fraction", self.comm_fraction)
            .with("flops_utilization", self.flops_utilization)
    }
}

/// Baseline and overlapped step statistics for one model.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Baseline (synchronous collectives, program order).
    pub baseline: StepStats,
    /// With the overlap pipeline.
    pub overlapped: StepStats,
}

impl Comparison {
    /// Baseline / overlapped step-time ratio (the paper's speedup).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.baseline.step_time / self.overlapped.step_time
    }
}

impl ToJson for Comparison {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("baseline", self.baseline.to_json())
            .with("overlapped", self.overlapped.to_json())
    }
}

/// The process-wide artifact cache the sweep drivers share, configured
/// from the environment ([`ArtifactCache::from_env`]): in-memory by
/// default, plus the on-disk tier when `OVERLAP_CACHE_DIR` is set (the
/// conventional directory is `.overlap-cache/`, which is gitignored),
/// disabled entirely by `OVERLAP_CACHE=0`.
pub fn artifact_cache() -> &'static ArtifactCache {
    static CACHE: OnceLock<ArtifactCache> = OnceLock::new();
    CACHE.get_or_init(ArtifactCache::from_env)
}

/// Prints the cache counters in the stable `key=value` form
/// `scripts/ci.sh` greps (`misses=0` proves the warm run never
/// recompiled). Silent when the cache saw no lookups, so drivers that
/// compile nothing stay clean.
pub fn report_cache(cache: &ArtifactCache) {
    let stats = cache.stats();
    if stats.lookups() == 0 {
        return;
    }
    println!(
        "cache: memory_hits={} disk_hits={} misses={} hit_rate={:.2}",
        stats.memory_hits,
        stats.disk_hits,
        stats.misses,
        stats.hit_rate()
    );
}

/// Unwraps a result or exits(1) with `cannot <what>: <error>` on
/// stderr. The figure/table binaries report bad inputs and simulator
/// failures as user-facing errors instead of panicking.
pub fn or_exit<T, E: std::fmt::Display>(result: Result<T, E>, what: &str) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("cannot {what}: {e}");
        std::process::exit(1);
    })
}

/// Simulates one model's step without the overlap pipeline.
///
/// # Panics
///
/// Panics if the layer module fails to build or simulate (the published
/// configurations all succeed).
#[must_use]
pub fn run_baseline(cfg: &ModelConfig) -> StepStats {
    let module = cfg.layer_module();
    let machine = cfg.machine();
    let report = simulate(&module, &machine).expect("baseline simulation");
    StepStats::from_report(cfg, &machine, &report)
}

/// Simulates one model's step with the overlap pipeline under `options`.
///
/// # Panics
///
/// Panics if compilation or simulation fails.
#[must_use]
pub fn run_overlapped(cfg: &ModelConfig, options: OverlapOptions) -> StepStats {
    run_overlapped_cached(cfg, options, &overlap_core::ArtifactCache::disabled())
}

/// [`run_overlapped`] through an [`ArtifactCache`]: a repeated
/// compilation of the same configuration — within a sweep, across
/// drivers, or across process runs via `OVERLAP_CACHE_DIR` — is served
/// from cache, bit-identical to the cold result.
///
/// # Panics
///
/// Panics if compilation or simulation fails.
#[must_use]
pub fn run_overlapped_cached(
    cfg: &ModelConfig,
    options: OverlapOptions,
    cache: &ArtifactCache,
) -> StepStats {
    let module = cfg.layer_module();
    let machine = cfg.machine();
    let compiled = OverlapPipeline::new(options)
        .compile_cached(&module, &machine, cache)
        .expect("pipeline");
    // The pipeline already built the compiled module's cost table for its
    // scheduler; reuse it instead of re-deriving every instruction cost.
    let report =
        simulate_order_with(&compiled.cost_table, &compiled.module, &machine, &compiled.order)
            .expect("simulation");
    StepStats::from_report(cfg, &machine, &report)
}

/// Baseline-vs-overlapped comparison with the paper-default options.
#[must_use]
pub fn run_comparison(cfg: &ModelConfig) -> Comparison {
    run_comparison_cached(cfg, &overlap_core::ArtifactCache::disabled())
}

/// [`run_comparison`] with the overlapped compile served through `cache`
/// (the baseline simulation is pure measurement and never cached).
#[must_use]
pub fn run_comparison_cached(cfg: &ModelConfig, cache: &ArtifactCache) -> Comparison {
    Comparison {
        baseline: run_baseline(cfg),
        overlapped: run_overlapped_cached(cfg, OverlapOptions::paper_default(), cache),
    }
}

/// Baseline-vs-overlapped step statistics on a degraded machine, plus
/// how much of the compile survived the fault-adjusted gate.
#[derive(Debug, Clone)]
pub struct FaultedComparison {
    /// Baseline (synchronous collectives, program order) under the spec.
    pub baseline: StepStats,
    /// With the overlap pipeline compiled *for* the degraded machine.
    pub overlapped: StepStats,
    /// Patterns actually decomposed on the degraded machine.
    pub decomposed: usize,
    /// Per-pattern and whole-module fallbacks the compile recorded.
    pub fallbacks: usize,
}

impl FaultedComparison {
    /// Baseline / overlapped step-time ratio under the fault spec.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.baseline.step_time / self.overlapped.step_time
    }
}

impl ToJson for FaultedComparison {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("baseline", self.baseline.to_json())
            .with("overlapped", self.overlapped.to_json())
            .with("decomposed", self.decomposed as u64)
            .with("fallbacks", self.fallbacks as u64)
    }
}

/// Simulates one model's step without the overlap pipeline on the
/// degraded machine described by `spec`.
///
/// # Panics
///
/// Panics if the module fails to build or the faulted simulation errors
/// (the sweep specs in this crate are all routable and un-deadlocked).
#[must_use]
pub fn run_baseline_faulted(cfg: &ModelConfig, spec: &FaultSpec) -> StepStats {
    let module = cfg.layer_module();
    let machine = cfg.machine();
    let report = simulate_faulted(&module, &machine, spec).expect("faulted baseline simulation");
    StepStats::from_report(cfg, &machine, &report)
}

/// [`run_overlapped_cached`] on a degraded machine: the compile runs
/// under `spec` (fault-adjusted gate, per-pattern fallbacks) and the
/// simulation replays the same spec. Used by the autotuner to score
/// candidate strategies on faulted configurations.
///
/// # Panics
///
/// Panics if compilation or simulation fails.
#[must_use]
pub fn run_overlapped_faulted_cached(
    cfg: &ModelConfig,
    options: OverlapOptions,
    spec: &FaultSpec,
    cache: &ArtifactCache,
) -> StepStats {
    let module = cfg.layer_module();
    let machine = cfg.machine();
    let compiled = OverlapPipeline::new(options)
        .with_faults(spec.clone())
        .compile_cached(&module, &machine, cache)
        .expect("faulted pipeline");
    let report = simulate_order_faulted_with(
        &compiled.cost_table,
        &compiled.module,
        &machine,
        &compiled.order,
        spec,
    )
    .expect("faulted simulation");
    StepStats::from_report(cfg, &machine, &report)
}

/// Chunk widths the autotuner grid tries for the unidirectional
/// AllGather loop.
pub const GRID_CHUNKS: [usize; 3] = [1, 2, 4];

/// Enumerates the autotuner's full strategy grid — ring direction ×
/// unrolling × chunk width × pad-max-concat × fusion aggressiveness ×
/// scheduler — and statically prunes combinations the emission rules
/// reject ([`StrategySpec::validate`]) or that cannot differ from a kept
/// candidate (the shard-at-a-time unidirectional loop emits no joins, so
/// its pad-vs-concat knob is inert). Returns
/// `(survivors, pruned_count, total)`. The enumeration order is fixed,
/// so every consumer scores candidates in the same deterministic order.
#[must_use]
pub fn strategy_grid() -> (Vec<OverlapOptions>, usize, usize) {
    let mut kept = Vec::new();
    let mut pruned = 0usize;
    let mut total = 0usize;
    for ring in [RingDirection::Bidirectional, RingDirection::Unidirectional] {
        for unroll in [true, false] {
            for &chunk in &GRID_CHUNKS {
                for pad in [false, true] {
                    for fusion in [
                        FusionAggressiveness::Off,
                        FusionAggressiveness::Conservative,
                        FusionAggressiveness::OverlapAware,
                    ] {
                        for sched in [SchedulerKind::BottomUp, SchedulerKind::TopDown] {
                            total += 1;
                            let spec = StrategySpec::paper_default()
                                .with_ring(ring)
                                .with_unroll(unroll)
                                .with_pad_max_concat(pad)
                                .with_chunk(chunk)
                                .with_fusion(fusion);
                            if spec.validate().is_err() {
                                pruned += 1;
                                continue;
                            }
                            if ring == RingDirection::Unidirectional && chunk == 1 && pad {
                                pruned += 1;
                                continue;
                            }
                            kept.push(OverlapOptions {
                                scheduler: sched,
                                ..OverlapOptions::with_strategy(spec)
                            });
                        }
                    }
                }
            }
        }
    }
    (kept, pruned, total)
}

/// Baseline-vs-overlapped comparison on a degraded machine: the compile
/// itself runs under `spec` (so the fault-adjusted §5.5 gate can fall
/// back per pattern) and both sides simulate under the same spec.
/// Artifacts key on the spec's fingerprint, so sweeps over many specs
/// coexist in one `cache`.
///
/// # Panics
///
/// Panics if compilation or either simulation fails.
#[must_use]
pub fn run_comparison_faulted_cached(
    cfg: &ModelConfig,
    spec: &FaultSpec,
    cache: &ArtifactCache,
) -> FaultedComparison {
    run_comparison_options_faulted_cached(cfg, OverlapOptions::paper_default(), spec, cache)
}

/// [`run_comparison_faulted_cached`] under explicit pipeline options: the
/// precision sweeps compile the same model with different wire strategies
/// against the same degraded machine and compare each against the shared
/// lossless synchronous baseline.
///
/// # Panics
///
/// Panics if compilation or either simulation fails.
#[must_use]
pub fn run_comparison_options_faulted_cached(
    cfg: &ModelConfig,
    options: OverlapOptions,
    spec: &FaultSpec,
    cache: &ArtifactCache,
) -> FaultedComparison {
    let module = cfg.layer_module();
    let machine = cfg.machine();
    let compiled = OverlapPipeline::new(options)
        .with_faults(spec.clone())
        .compile_cached(&module, &machine, cache)
        .expect("faulted pipeline");
    let report = simulate_order_faulted_with(
        &compiled.cost_table,
        &compiled.module,
        &machine,
        &compiled.order,
        spec,
    )
    .expect("faulted simulation");
    FaultedComparison {
        baseline: run_baseline_faulted(cfg, spec),
        overlapped: StepStats::from_report(cfg, &machine, &report),
        decomposed: compiled.summaries.len(),
        fallbacks: compiled.fallbacks.len(),
    }
}

// The deterministic parallel map driver moved to `overlap-sim` so the
// cost gate can use it too; the sweeps and downstream callers keep the
// old paths.
pub use overlap_sim::{par_map, sweep_threads};

/// [`run_baseline`] over a whole model zoo, fanned across cores (input
/// order preserved).
#[must_use]
pub fn run_baselines(cfgs: &[ModelConfig]) -> Vec<StepStats> {
    par_map(cfgs, run_baseline)
}

/// [`run_comparison`] over a whole model zoo, fanned across cores (input
/// order preserved).
#[must_use]
pub fn run_comparisons(cfgs: &[ModelConfig]) -> Vec<Comparison> {
    par_map(cfgs, run_comparison)
}

/// [`run_comparisons`] through an [`ArtifactCache`]. Duplicate
/// configurations compile once even when the parallel workers race (the
/// cache is single-flight); every hit is bit-identical to the cold
/// compile, so the fanned sweep stays byte-identical to the serial one
/// at any `RAYON_NUM_THREADS`.
#[must_use]
pub fn run_comparisons_cached(cfgs: &[ModelConfig], cache: &ArtifactCache) -> Vec<Comparison> {
    par_map(cfgs, |cfg| run_comparison_cached(cfg, cache))
}

/// Renders a unit-interval value as a fixed-width ASCII bar.
#[must_use]
pub fn bar(fraction: f64, width: usize) -> String {
    let n = ((fraction.clamp(0.0, 1.2) * width as f64) / 1.2).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < n { '#' } else { ' ' });
    }
    s
}

/// Writes a JSON record for EXPERIMENTS.md under `results/<name>.json`.
///
/// Failures to write are reported on stderr but do not abort the run.
pub fn write_json<T: ToJson + ?Sized>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Err(e) = std::fs::write(&path, value.to_json().to_pretty()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_is_monotone_and_bounded() {
        assert_eq!(bar(0.0, 10).trim(), "");
        let half = bar(0.6, 12);
        assert_eq!(half.len(), 12);
        assert!(bar(1.2, 12).chars().filter(|&c| c == '#').count() == 12);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = items.iter().map(|&i| i * 2 + 1).collect();
        assert_eq!(par_map(&items, |&i| i * 2 + 1), expected);
    }

    #[test]
    fn par_map_handles_empty_and_singleton() {
        let empty: [u32; 0] = [];
        assert!(par_map(&empty, |&i| i).is_empty());
        assert_eq!(par_map(&[7u32], |&i| i + 1), vec![8]);
    }

    #[test]
    fn sweep_threads_is_positive() {
        assert!(sweep_threads() >= 1);
    }

    #[test]
    fn autotuned_beats_paper_default_on_short_ring_mesh() {
        // The 16-chip 4x4 mesh from the autotuner sweep
        // (results/fig_autotune.json, config "Smoke_16"): the tuned
        // chunked unidirectional strategy must out-simulate the paper
        // default here, and must leave the Table-1 machines untouched.
        let cfg = overlap_models::ModelConfig {
            name: "Smoke_16".into(),
            params: 1e9,
            layers: 4,
            model_dim: 2048,
            ff_dim: 8192,
            batch: 256,
            seq_len: 64,
            chips: 16,
            arch: overlap_models::Arch::Decoder,
            strategy: overlap_models::PartitionStrategy::TwoD,
        };
        let tuned_options = OverlapOptions::autotuned(&cfg.name, &cfg.machine());
        assert_ne!(tuned_options, OverlapOptions::paper_default());
        let tuned = run_overlapped(&cfg, tuned_options);
        let paper = run_overlapped(&cfg, OverlapOptions::paper_default());
        assert!(
            tuned.step_time < paper.step_time,
            "tuned {} >= paper {}",
            tuned.step_time,
            paper.step_time
        );
        for m in overlap_models::table1_models() {
            assert_eq!(
                OverlapOptions::autotuned(&m.name, &m.machine()),
                OverlapOptions::paper_default(),
                "{} should keep the paper default",
                m.name
            );
        }
    }

    #[test]
    fn small_model_comparison_runs() {
        let cfg = overlap_models::ModelConfig {
            name: "smoke".into(),
            params: 1e9,
            layers: 4,
            model_dim: 256,
            ff_dim: 1024,
            batch: 16,
            seq_len: 64,
            chips: 8,
            arch: overlap_models::Arch::Decoder,
            strategy: overlap_models::PartitionStrategy::TwoD,
        };
        let c = run_comparison(&cfg);
        assert!(c.baseline.step_time > 0.0);
        assert!(c.overlapped.step_time > 0.0);
        assert!(c.baseline.comm_fraction > 0.0);
    }

    fn smoke_cfg() -> overlap_models::ModelConfig {
        overlap_models::ModelConfig {
            name: "smoke".into(),
            params: 1e9,
            layers: 4,
            model_dim: 256,
            ff_dim: 1024,
            batch: 16,
            seq_len: 64,
            chips: 8,
            arch: overlap_models::Arch::Decoder,
            strategy: overlap_models::PartitionStrategy::TwoD,
        }
    }

    #[test]
    fn cached_sweep_is_bit_identical_to_uncached() {
        let cfg = smoke_cfg();
        let cache = ArtifactCache::in_memory();
        let cold = run_comparison(&cfg);
        let warm1 = run_comparison_cached(&cfg, &cache);
        let warm2 = run_comparison_cached(&cfg, &cache);
        assert_eq!(cold.speedup().to_bits(), warm1.speedup().to_bits());
        assert_eq!(
            warm1.overlapped.step_time.to_bits(),
            warm2.overlapped.step_time.to_bits()
        );
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().memory_hits, 1);
    }

    #[test]
    fn cached_par_sweep_single_flights_duplicates() {
        // Eight copies of one configuration fanned across workers: the
        // single-flight cache compiles exactly once and every row is
        // byte-identical.
        let cfgs: Vec<_> = (0..8).map(|_| smoke_cfg()).collect();
        let cache = ArtifactCache::in_memory();
        let rows = run_comparisons_cached(&cfgs, &cache);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().memory_hits, 7);
        for r in &rows[1..] {
            assert_eq!(r.speedup().to_bits(), rows[0].speedup().to_bits());
        }
    }

    #[test]
    fn step_stats_encode_as_objects() {
        let rows = vec![run_baseline(&smoke_cfg())];
        let j = rows.to_json();
        assert!(j[0]["step_time"].as_f64().unwrap() > 0.0);
        assert_eq!(j[0]["model"].as_str(), Some("smoke"));
    }
}
