//! Deterministic fault-injection specification for degraded hardware.
//!
//! A [`FaultSpec`] describes a degraded machine: slow or dead ICI links,
//! straggler chips, per-hop latency jitter, and transient DMA stalls.
//! The spec is *data*, not behavior — the discrete-event simulator in
//! `overlap-sim` interprets it, and the compilation pipeline in
//! `overlap-core` re-evaluates the §5.5 cost gate under it to decide
//! when decomposition stops paying off.
//!
//! Everything here is deterministic by construction. Random quantities
//! (jitter draws, stall draws, link selection) come from a stateless
//! counter-based xorshift mix of the spec's seed and the event identity,
//! never from a shared mutable RNG stream, so the same seed produces
//! bit-identical results regardless of thread count or evaluation order.

use overlap_json::{Fingerprint, FromJson, Json, StableHasher, ToJson};

use crate::mesh::DeviceMesh;

/// Identity of one directed inter-chip link on the torus.
///
/// The link leaves `device` along mesh axis `axis`, toward the neighbor
/// at coordinate `+1` (wrapping) when `forward` is true and `-1` when
/// false. Each physical cable is two directed links, one per direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId {
    /// Source partition id (row-major over the mesh shape).
    pub device: u32,
    /// Mesh axis the link runs along.
    pub axis: usize,
    /// True for the `+1` (wrapping) direction, false for `-1`.
    pub forward: bool,
}

/// A link running below nominal bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDerate {
    /// Which directed link is degraded.
    pub link: LinkId,
    /// Fraction of nominal bandwidth still delivered, in `(0, 1]`.
    pub derate: f64,
}

/// A chip running slower than its peers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Straggler {
    /// Partition id of the slow chip.
    pub device: u32,
    /// Multiplicative slowdown applied to its compute and memory time,
    /// `>= 1.0` (`1.5` means every kernel takes 1.5x as long).
    pub slowdown: f64,
}

/// A seeded, fingerprint-hashable description of hardware faults.
///
/// `FaultSpec::default()` injects nothing: the simulator and the cost
/// gate treat it exactly like the pristine machine, bit for bit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSpec {
    /// Seed feeding every per-event random draw (jitter, stalls).
    pub seed: u64,
    /// Links delivering only a fraction of nominal bandwidth.
    pub link_derates: Vec<LinkDerate>,
    /// Links that are down entirely; traffic reroutes the long way
    /// around the ring (torus detour) at a hop-count penalty.
    pub down_links: Vec<LinkId>,
    /// Chips whose compute/memory time is multiplicatively inflated.
    pub stragglers: Vec<Straggler>,
    /// Per-hop latency jitter amplitude in seconds: each hop of each
    /// transfer adds a seeded uniform draw from `[0, jitter_seconds)`.
    pub jitter_seconds: f64,
    /// Probability that a DMA transfer stalls on issue and must retry.
    pub stall_probability: f64,
    /// Backoff unit for a stalled DMA: retry `k` (1-based) waits
    /// `k * stall_seconds` before re-issuing.
    pub stall_seconds: f64,
    /// Retry budget for a stalled DMA. If every attempt up to this
    /// bound stalls, the simulator reports the transfer's link as down
    /// instead of retrying forever.
    pub stall_max_retries: u32,
    /// Watchdog limit on simulated time in seconds; `0.0` disables it.
    pub time_limit_seconds: f64,
}

impl FaultSpec {
    /// A spec injecting nothing, with the given seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        FaultSpec { seed, ..FaultSpec::default() }
    }

    /// True when the spec injects nothing and sets no watchdog — the
    /// simulator's fault path is then bit-identical to the pristine one.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.link_derates.is_empty()
            && self.down_links.is_empty()
            && self.stragglers.is_empty()
            && self.jitter_seconds == 0.0
            && self.stall_probability == 0.0
            && self.time_limit_seconds == 0.0
    }

    /// Adds a derated link.
    #[must_use]
    pub fn with_link_derate(mut self, link: LinkId, derate: f64) -> Self {
        self.link_derates.push(LinkDerate { link, derate });
        self
    }

    /// Marks a link as down.
    #[must_use]
    pub fn with_down_link(mut self, link: LinkId) -> Self {
        self.down_links.push(link);
        self
    }

    /// Adds a straggler chip.
    #[must_use]
    pub fn with_straggler(mut self, device: u32, slowdown: f64) -> Self {
        self.stragglers.push(Straggler { device, slowdown });
        self
    }

    /// Sets per-hop latency jitter amplitude.
    #[must_use]
    pub fn with_jitter(mut self, seconds: f64) -> Self {
        self.jitter_seconds = seconds;
        self
    }

    /// Enables transient DMA stalls with bounded retry/backoff.
    #[must_use]
    pub fn with_dma_stalls(mut self, probability: f64, backoff_seconds: f64, max_retries: u32) -> Self {
        self.stall_probability = probability;
        self.stall_seconds = backoff_seconds;
        self.stall_max_retries = max_retries;
        self
    }

    /// Sets the simulated-time watchdog limit.
    #[must_use]
    pub fn with_time_limit(mut self, seconds: f64) -> Self {
        self.time_limit_seconds = seconds;
        self
    }

    /// Derates a seeded pseudo-random `fraction` of the mesh's directed
    /// links to `derate` of nominal bandwidth.
    ///
    /// Links are ranked by a seeded hash of their identity and the top
    /// `ceil(fraction * total)` are taken, so the same seed selects the
    /// same links no matter how the caller iterates.
    #[must_use]
    pub fn with_derated_link_fraction(mut self, mesh: &DeviceMesh, fraction: f64, derate: f64) -> Self {
        let mut links = all_links(mesh);
        let n = links.len();
        let take = ((fraction.clamp(0.0, 1.0) * n as f64).ceil() as usize).min(n);
        links.sort_by_key(|l| (mix64(self.seed ^ link_word(*l)), *l));
        for link in links.into_iter().take(take) {
            self.link_derates.push(LinkDerate { link, derate });
        }
        self
    }

    /// Checks the spec against a mesh: device ids and axes in range,
    /// derates in `(0, 1]`, slowdowns `>= 1`, probabilities in `[0, 1]`,
    /// nonnegative durations.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first inconsistency.
    pub fn validate(&self, mesh: &DeviceMesh) -> Result<(), String> {
        let devices = mesh.num_devices() as u32;
        let rank = mesh.rank();
        let check_link = |l: &LinkId| -> Result<(), String> {
            if l.device >= devices {
                return Err(format!("link device {} out of range (mesh has {devices})", l.device));
            }
            if l.axis >= rank {
                return Err(format!("link axis {} out of range (mesh rank {rank})", l.axis));
            }
            Ok(())
        };
        for d in &self.link_derates {
            check_link(&d.link)?;
            if !(d.derate > 0.0 && d.derate <= 1.0) {
                return Err(format!("link derate {} outside (0, 1]", d.derate));
            }
        }
        for l in &self.down_links {
            check_link(l)?;
        }
        for s in &self.stragglers {
            if s.device >= devices {
                return Err(format!("straggler device {} out of range (mesh has {devices})", s.device));
            }
            if s.slowdown.is_nan() || s.slowdown < 1.0 {
                return Err(format!("straggler slowdown {} below 1.0", s.slowdown));
            }
        }
        if !(0.0..=1.0).contains(&self.stall_probability) {
            return Err(format!("stall probability {} outside [0, 1]", self.stall_probability));
        }
        if self.jitter_seconds.is_nan() || self.jitter_seconds < 0.0 {
            return Err(format!("jitter amplitude {} is negative or NaN", self.jitter_seconds));
        }
        if self.stall_seconds.is_nan() || self.stall_seconds < 0.0 {
            return Err(format!("stall backoff {} is negative or NaN", self.stall_seconds));
        }
        if self.time_limit_seconds.is_nan() || self.time_limit_seconds < 0.0 {
            return Err(format!("time limit {} is negative or NaN", self.time_limit_seconds));
        }
        Ok(())
    }

    /// Stable content hash of the spec, mixed into artifact-cache keys
    /// so compilations under different fault models never collide.
    #[must_use]
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = StableHasher::new("overlap-faultspec-v1");
        h.write_u64(self.seed);
        h.write_usize(self.link_derates.len());
        for d in &self.link_derates {
            hash_link(&mut h, d.link);
            h.write_f64(d.derate);
        }
        h.write_usize(self.down_links.len());
        for l in &self.down_links {
            hash_link(&mut h, *l);
        }
        h.write_usize(self.stragglers.len());
        for s in &self.stragglers {
            h.write_u32(s.device);
            h.write_f64(s.slowdown);
        }
        h.write_f64(self.jitter_seconds);
        h.write_f64(self.stall_probability);
        h.write_f64(self.stall_seconds);
        h.write_u32(self.stall_max_retries);
        h.write_f64(self.time_limit_seconds);
        h.finish()
    }
}

fn hash_link(h: &mut StableHasher, l: LinkId) {
    h.write_u32(l.device);
    h.write_usize(l.axis);
    h.write_bool(l.forward);
}

/// Every directed link of the mesh, in deterministic (device, axis,
/// direction) order. Axes of size 1 have no links.
#[must_use]
pub fn all_links(mesh: &DeviceMesh) -> Vec<LinkId> {
    let mut links = Vec::new();
    for device in 0..mesh.num_devices() as u32 {
        for axis in 0..mesh.rank() {
            if mesh.shape()[axis] < 2 {
                continue;
            }
            links.push(LinkId { device, axis, forward: true });
            links.push(LinkId { device, axis, forward: false });
        }
    }
    links
}

/// Stateless 64-bit mixer (xorshift64* finalizer) behind every seeded
/// draw. Counter-based: callers hash the seed together with the event
/// identity instead of advancing a shared stream, which keeps draws
/// independent of evaluation order.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    // Avoid the xorshift fixed point at zero.
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Maps mixed bits to a uniform `f64` in `[0, 1)` using the top 53 bits.
#[must_use]
pub fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn link_word(l: LinkId) -> u64 {
    (u64::from(l.device) << 16) ^ ((l.axis as u64) << 1) ^ u64::from(l.forward)
}

impl ToJson for LinkId {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("device", u64::from(self.device))
            .with("axis", self.axis as u64)
            .with("forward", self.forward)
    }
}

impl FromJson for LinkId {
    fn from_json(v: &Json) -> Result<LinkId, String> {
        Ok(LinkId {
            device: u32::try_from(v.decode_field::<u64>("device")?)
                .map_err(|_| "link device exceeds u32".to_string())?,
            axis: v.decode_field::<usize>("axis")?,
            forward: v.decode_field::<bool>("forward")?,
        })
    }
}

impl ToJson for LinkDerate {
    fn to_json(&self) -> Json {
        Json::obj().with("link", self.link.to_json()).with("derate", self.derate)
    }
}

impl FromJson for LinkDerate {
    fn from_json(v: &Json) -> Result<LinkDerate, String> {
        Ok(LinkDerate {
            link: v.decode_field("link")?,
            derate: v.decode_field("derate")?,
        })
    }
}

impl ToJson for Straggler {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("device", u64::from(self.device))
            .with("slowdown", self.slowdown)
    }
}

impl FromJson for Straggler {
    fn from_json(v: &Json) -> Result<Straggler, String> {
        Ok(Straggler {
            device: u32::try_from(v.decode_field::<u64>("device")?)
                .map_err(|_| "straggler device exceeds u32".to_string())?,
            slowdown: v.decode_field("slowdown")?,
        })
    }
}

impl ToJson for FaultSpec {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("seed", self.seed)
            .with("link_derates", self.link_derates.to_json())
            .with("down_links", self.down_links.to_json())
            .with("stragglers", self.stragglers.to_json())
            .with("jitter_seconds", self.jitter_seconds)
            .with("stall_probability", self.stall_probability)
            .with("stall_seconds", self.stall_seconds)
            .with("stall_max_retries", u64::from(self.stall_max_retries))
            .with("time_limit_seconds", self.time_limit_seconds)
    }
}

impl FromJson for FaultSpec {
    fn from_json(v: &Json) -> Result<FaultSpec, String> {
        if v.get("seed").is_none() && v.get("stragglers").is_none() && v.get("link_derates").is_none() {
            return Err(format!("expected fault spec object, got {v}"));
        }
        // Every field is optional so hand-written specs stay terse; a
        // missing field means "no faults of that kind".
        let d = FaultSpec::default();
        let opt = |key: &str| v.get(key).filter(|j| !j.is_null());
        Ok(FaultSpec {
            seed: match opt("seed") {
                Some(_) => v.decode_field("seed")?,
                None => d.seed,
            },
            link_derates: match opt("link_derates") {
                Some(_) => v.decode_field("link_derates")?,
                None => d.link_derates,
            },
            down_links: match opt("down_links") {
                Some(_) => v.decode_field("down_links")?,
                None => d.down_links,
            },
            stragglers: match opt("stragglers") {
                Some(_) => v.decode_field("stragglers")?,
                None => d.stragglers,
            },
            jitter_seconds: match opt("jitter_seconds") {
                Some(_) => v.decode_field("jitter_seconds")?,
                None => d.jitter_seconds,
            },
            stall_probability: match opt("stall_probability") {
                Some(_) => v.decode_field("stall_probability")?,
                None => d.stall_probability,
            },
            stall_seconds: match opt("stall_seconds") {
                Some(_) => v.decode_field("stall_seconds")?,
                None => d.stall_seconds,
            },
            stall_max_retries: match opt("stall_max_retries") {
                Some(_) => u32::try_from(v.decode_field::<u64>("stall_max_retries")?)
                    .map_err(|_| "stall_max_retries exceeds u32".to_string())?,
                None => d.stall_max_retries,
            },
            time_limit_seconds: match opt("time_limit_seconds") {
                Some(_) => v.decode_field("time_limit_seconds")?,
                None => d.time_limit_seconds,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(device: u32, axis: usize, forward: bool) -> LinkId {
        LinkId { device, axis, forward }
    }

    #[test]
    fn default_is_noop_with_neutral_semantics() {
        let spec = FaultSpec::default();
        assert!(spec.is_noop());
        assert!(spec.validate(&DeviceMesh::ring(8)).is_ok());
        // Seeding alone does not make the spec inject anything.
        assert!(FaultSpec::seeded(42).is_noop());
    }

    #[test]
    fn fingerprint_separates_every_knob() {
        let mesh = DeviceMesh::ring(8);
        let base = FaultSpec::default();
        let variants = vec![
            FaultSpec::seeded(1),
            base.clone().with_link_derate(link(0, 0, true), 0.5),
            base.clone().with_down_link(link(0, 0, true)),
            base.clone().with_straggler(3, 1.5),
            base.clone().with_jitter(1e-6),
            base.clone().with_dma_stalls(0.1, 1e-6, 3),
            base.clone().with_time_limit(1.0),
            base.clone().with_derated_link_fraction(&mesh, 0.25, 0.5),
        ];
        let mut fps = vec![base.fingerprint()];
        for v in &variants {
            fps.push(v.fingerprint());
        }
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(fps[i], fps[j], "variants {i} and {j} collide");
            }
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let mesh = DeviceMesh::new(vec![4, 2]);
        let spec = FaultSpec::seeded(7)
            .with_link_derate(link(1, 0, false), 0.25)
            .with_down_link(link(2, 1, true))
            .with_straggler(3, 2.0)
            .with_jitter(2e-6)
            .with_dma_stalls(0.05, 5e-7, 4)
            .with_time_limit(10.0);
        assert!(spec.validate(&mesh).is_ok());
        let back = FaultSpec::from_json(&spec.to_json()).expect("round trip");
        assert_eq!(spec, back);
        assert_eq!(spec.fingerprint(), back.fingerprint());
    }

    #[test]
    fn sparse_json_fills_defaults() {
        let v = Json::parse(r#"{"seed": 9, "jitter_seconds": 1e-6}"#).expect("parse");
        let spec = FaultSpec::from_json(&v).expect("decode");
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.jitter_seconds, 1e-6);
        assert!(spec.link_derates.is_empty());
        assert_eq!(spec.time_limit_seconds, 0.0);
    }

    #[test]
    fn validation_rejects_out_of_range() {
        let mesh = DeviceMesh::ring(4);
        assert!(FaultSpec::default()
            .with_straggler(9, 1.5)
            .validate(&mesh)
            .is_err());
        assert!(FaultSpec::default()
            .with_link_derate(link(0, 3, true), 0.5)
            .validate(&mesh)
            .is_err());
        assert!(FaultSpec::default()
            .with_link_derate(link(0, 0, true), 0.0)
            .validate(&mesh)
            .is_err());
        assert!(FaultSpec::default()
            .with_straggler(0, 0.5)
            .validate(&mesh)
            .is_err());
        assert!(FaultSpec::default()
            .with_dma_stalls(1.5, 0.0, 1)
            .validate(&mesh)
            .is_err());
    }

    #[test]
    fn derated_fraction_is_deterministic_and_sized() {
        let mesh = DeviceMesh::new(vec![4, 4]);
        let total = all_links(&mesh).len();
        assert_eq!(total, 16 * 2 * 2);
        let a = FaultSpec::seeded(11).with_derated_link_fraction(&mesh, 0.25, 0.5);
        let b = FaultSpec::seeded(11).with_derated_link_fraction(&mesh, 0.25, 0.5);
        assert_eq!(a, b);
        assert_eq!(a.link_derates.len(), total / 4);
        let c = FaultSpec::seeded(12).with_derated_link_fraction(&mesh, 0.25, 0.5);
        assert_ne!(a.link_derates, c.link_derates, "different seeds pick different links");
    }

    #[test]
    fn mix64_is_stable_and_spreads() {
        // Pin the mixer: fault determinism across versions depends on it.
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(0), mix64(1));
        let u = unit_f64(mix64(123));
        assert!((0.0..1.0).contains(&u));
    }
}
