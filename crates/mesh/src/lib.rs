//! Device meshes, the interconnect/compute machine model, and analytic
//! collective cost functions.
//!
//! Intra-layer model parallelism arranges device partitions into a logical
//! mesh or torus (§2.2 of the paper). This crate provides:
//!
//! * [`DeviceMesh`] — an n-dimensional logical torus of partitions with
//!   axis subgroups (the `(x)`/`(y)` collectives of Fig. 3) and ring
//!   circular-shift pair construction (§5.1, Figs. 6/7),
//! * [`Machine`] — a TPU-v4-pod-like machine model: per-chip peak FLOPS,
//!   a matmul efficiency curve, per-link per-direction ICI bandwidth and
//!   hop latency, and the in-flight asynchronous-collective budget
//!   (the "synchronization flags" of §5.2),
//! * [`cost`] — closed-form time estimates for the collectives, used both
//!   by the §5.5 enablement cost model and by the discrete-event simulator,
//! * [`FaultSpec`] — a seeded, fingerprint-hashable description of
//!   degraded hardware (slow/dead links, straggler chips, DMA jitter and
//!   stalls) interpreted by the simulator and the cost gate.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cost;
pub mod fault;
mod machine;
mod mesh;

pub use fault::{FaultSpec, LinkDerate, LinkId, Straggler};
pub use machine::{Machine, MatmulEfficiency};
pub use mesh::{shift_pairs, Axis, DeviceMesh};
