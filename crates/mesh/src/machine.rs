//! Machine model: compute and interconnect parameters.

use overlap_json::{Fingerprint, StableHasher};

use crate::DeviceMesh;

/// Matmul efficiency curve: the achievable fraction of peak FLOPS for a
/// given einsum shape.
///
/// Systolic-array accelerators lose efficiency when an operand dimension
/// does not fill the MXU tile (TPU: 128×128): a dimension of size `d`
/// occupies `ceil(d/tile)` tiles but only fills `d/ (ceil(d/tile)*tile)` of
/// them. The product of the per-dimension fill fractions, scaled by a base
/// efficiency for large shapes, reproduces why "narrower" models (GLaM,
/// BigSSL in §6.1) see lower utilization than the big dense LLMs.
///
/// # Example
///
/// ```
/// use overlap_mesh::MatmulEfficiency;
/// let eff = MatmulEfficiency::new(0.9, 128);
/// assert!((eff.efficiency(4096, 4096, 4096) - 0.9).abs() < 1e-12);
/// assert!(eff.efficiency(64, 4096, 4096) < 0.5); // half-filled tile
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatmulEfficiency {
    base: f64,
    tile: usize,
}

impl MatmulEfficiency {
    /// Creates a curve with the given large-shape base efficiency and MXU
    /// tile size.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not in `(0, 1]` or `tile == 0`.
    #[must_use]
    pub fn new(base: f64, tile: usize) -> Self {
        assert!(base > 0.0 && base <= 1.0, "base efficiency must be in (0,1]");
        assert!(tile > 0, "tile must be positive");
        MatmulEfficiency { base, tile }
    }

    fn fill(self, d: u64) -> f64 {
        if d == 0 {
            return 0.0;
        }
        let tile = self.tile as u64;
        let tiles = d.div_ceil(tile);
        d as f64 / (tiles * tile) as f64
    }

    /// Achievable fraction of peak for an `m × k · k × n` contraction
    /// (batch dimensions folded into `m`).
    #[must_use]
    pub fn efficiency(self, m: u64, n: u64, k: u64) -> f64 {
        self.base * self.fill(m) * self.fill(n) * self.fill(k)
    }
}

/// A TPU-v4-pod-like machine: a [`DeviceMesh`] of identical chips with a
/// peak-FLOPS/efficiency compute model and a per-link, per-direction ICI
/// interconnect model.
///
/// All times are in seconds, bandwidths in bytes/second, compute rates in
/// FLOP/second. The constructor [`Machine::tpu_v4_like`] picks constants
/// that give paper-shaped (not paper-exact) results; every parameter has a
/// `with_*` override for sensitivity studies.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    mesh: DeviceMesh,
    peak_flops: f64,
    efficiency: MatmulEfficiency,
    link_bandwidth: f64,
    hop_latency: f64,
    hbm_bandwidth: f64,
    op_overhead: f64,
    max_inflight_async: usize,
    dma_interference: f64,
}

impl Machine {
    /// A machine resembling a slice of a TPU v4 pod with `num_chips` chips
    /// arranged as a near-square 2-D logical mesh.
    ///
    /// Constants: 275 TFLOP/s bf16 peak per chip, 0.9 base matmul
    /// efficiency over 128×128 tiles, 90 GB/s effective bandwidth per
    /// logical-mesh-axis hop per direction (a logical axis of the 2-D mesh
    /// maps onto roughly two physical links of the TPU v4 3-D torus),
    /// 1 µs hop latency, 1.2 TB/s HBM bandwidth, 1 µs per-op overhead, an
    /// in-flight asynchronous-collective budget of 32 and a 30%
    /// DMA/compute interference factor.
    ///
    /// # Panics
    ///
    /// Panics if `num_chips == 0`.
    #[must_use]
    pub fn tpu_v4_like(num_chips: usize) -> Self {
        Machine::with_mesh(DeviceMesh::square_ish(num_chips))
    }

    /// A machine resembling an NVLink-connected GPU cluster (§7.2: "the
    /// idea can be applied to other hardware ML systems, such as GPU
    /// clusters connected via high-bandwidth and low-latency NVLink
    /// Network interconnects"): H100-like 990 TFLOP/s bf16 peak, 0.75
    /// base matmul efficiency, 225 GB/s effective per-logical-axis
    /// bandwidth per direction, 2 µs hop latency, 3.35 TB/s HBM.
    ///
    /// # Panics
    ///
    /// Panics if `num_chips == 0`.
    #[must_use]
    pub fn gpu_cluster_like(num_chips: usize) -> Self {
        Machine::with_mesh(DeviceMesh::square_ish(num_chips))
            .with_peak_flops(990e12)
            .with_efficiency(MatmulEfficiency::new(0.75, 128))
            .with_link_bandwidth(225e9)
            .with_hop_latency(2e-6)
            .with_hbm_bandwidth(3.35e12)
    }

    /// Same constants as [`Machine::tpu_v4_like`] but with an explicit
    /// mesh shape.
    #[must_use]
    pub fn with_mesh(mesh: DeviceMesh) -> Self {
        Machine {
            mesh,
            peak_flops: 275e12,
            efficiency: MatmulEfficiency::new(0.9, 128),
            link_bandwidth: 90e9,
            hop_latency: 1e-6,
            hbm_bandwidth: 1.2e12,
            op_overhead: 1e-6,
            max_inflight_async: 32,
            dma_interference: 0.30,
        }
    }

    /// The logical device mesh.
    #[must_use]
    pub fn mesh(&self) -> &DeviceMesh {
        &self.mesh
    }

    /// Peak FLOP/s per chip.
    #[must_use]
    pub fn peak_flops(&self) -> f64 {
        self.peak_flops
    }

    /// The matmul efficiency curve.
    #[must_use]
    pub fn efficiency(&self) -> MatmulEfficiency {
        self.efficiency
    }

    /// Per-link per-direction ICI bandwidth, bytes/s.
    #[must_use]
    pub fn link_bandwidth(&self) -> f64 {
        self.link_bandwidth
    }

    /// Per-hop transfer latency, seconds.
    #[must_use]
    pub fn hop_latency(&self) -> f64 {
        self.hop_latency
    }

    /// HBM bandwidth (memory-bound elementwise ops), bytes/s.
    #[must_use]
    pub fn hbm_bandwidth(&self) -> f64 {
        self.hbm_bandwidth
    }

    /// Fixed per-instruction overhead, seconds.
    #[must_use]
    pub fn op_overhead(&self) -> f64 {
        self.op_overhead
    }

    /// Maximum number of in-flight asynchronous collectives (the
    /// synchronization-flag budget of §5.2).
    #[must_use]
    pub fn max_inflight_async(&self) -> usize {
        self.max_inflight_async
    }

    /// Fractional slowdown of compute while an asynchronous transfer is in
    /// flight: the DMA engines steal HBM bandwidth from the cores, so
    /// overlapped compute does not run at full speed. This is what keeps
    /// overlapped utilization below the no-communication ideal.
    #[must_use]
    pub fn dma_interference(&self) -> f64 {
        self.dma_interference
    }

    /// Overrides the DMA/compute interference factor.
    #[must_use]
    pub fn with_dma_interference(mut self, v: f64) -> Self {
        self.dma_interference = v;
        self
    }

    /// Overrides the peak FLOP/s.
    #[must_use]
    pub fn with_peak_flops(mut self, v: f64) -> Self {
        self.peak_flops = v;
        self
    }

    /// Overrides the efficiency curve.
    #[must_use]
    pub fn with_efficiency(mut self, v: MatmulEfficiency) -> Self {
        self.efficiency = v;
        self
    }

    /// Overrides the per-link per-direction bandwidth.
    #[must_use]
    pub fn with_link_bandwidth(mut self, v: f64) -> Self {
        self.link_bandwidth = v;
        self
    }

    /// Overrides the hop latency.
    #[must_use]
    pub fn with_hop_latency(mut self, v: f64) -> Self {
        self.hop_latency = v;
        self
    }

    /// Overrides the HBM bandwidth.
    #[must_use]
    pub fn with_hbm_bandwidth(mut self, v: f64) -> Self {
        self.hbm_bandwidth = v;
        self
    }

    /// Overrides the per-instruction overhead.
    #[must_use]
    pub fn with_op_overhead(mut self, v: f64) -> Self {
        self.op_overhead = v;
        self
    }

    /// Overrides the in-flight async budget.
    #[must_use]
    pub fn with_max_inflight_async(mut self, v: usize) -> Self {
        self.max_inflight_async = v;
        self
    }

    /// Stable content fingerprint over every cost-relevant parameter:
    /// mesh shape, peak FLOPS, efficiency curve, link bandwidth, hop
    /// latency, HBM bandwidth, op overhead, async budget and DMA
    /// interference. Floats hash by exact bits, so two machines
    /// fingerprint equal iff every simulated time they produce is
    /// bit-identical — the property the artifact cache key needs.
    #[must_use]
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = StableHasher::new("overlap-machine-v1");
        h.write_usize(self.mesh.shape().len());
        for &d in self.mesh.shape() {
            h.write_usize(d);
        }
        h.write_f64(self.peak_flops);
        h.write_f64(self.efficiency.base);
        h.write_usize(self.efficiency.tile);
        h.write_f64(self.link_bandwidth);
        h.write_f64(self.hop_latency);
        h.write_f64(self.hbm_bandwidth);
        h.write_f64(self.op_overhead);
        h.write_usize(self.max_inflight_async);
        h.write_f64(self.dma_interference);
        h.finish()
    }

    /// Time to execute an einsum with the given total FLOPs and effective
    /// `m, n, k` extents on one chip.
    #[must_use]
    pub fn einsum_time(&self, flops: u64, m: u64, n: u64, k: u64) -> f64 {
        if flops == 0 {
            return self.op_overhead;
        }
        let eff = self.efficiency.efficiency(m, n, k).max(1e-3);
        flops as f64 / (self.peak_flops * eff) + self.op_overhead
    }

    /// Time for a memory-bound op moving `bytes` through HBM.
    #[must_use]
    pub fn memory_time(&self, bytes: usize) -> f64 {
        bytes as f64 / self.hbm_bandwidth + self.op_overhead
    }

    /// Time to move `bytes` across one ICI hop in one direction.
    #[must_use]
    pub fn hop_time(&self, bytes: usize) -> f64 {
        bytes as f64 / self.link_bandwidth + self.hop_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_curve() {
        let e = MatmulEfficiency::new(0.9, 128);
        assert!((e.efficiency(128, 128, 128) - 0.9).abs() < 1e-12);
        assert!((e.efficiency(64, 128, 128) - 0.45).abs() < 1e-12);
        // 129 occupies two tiles, just over half-filled.
        let f = e.efficiency(129, 128, 128);
        assert!(f > 0.45 && f < 0.46);
        assert_eq!(e.efficiency(0, 128, 128), 0.0);
    }

    #[test]
    fn machine_times_monotone() {
        let m = Machine::tpu_v4_like(4);
        let t1 = m.einsum_time(1 << 30, 1024, 1024, 1024);
        let t2 = m.einsum_time(1 << 31, 1024, 1024, 1024);
        assert!(t2 > t1);
        assert!(m.hop_time(1 << 20) > m.hop_time(1 << 10));
        assert!(m.memory_time(1 << 20) > 0.0);
    }

    #[test]
    fn small_dims_slower_per_flop() {
        let m = Machine::tpu_v4_like(4);
        let flops = 1u64 << 30;
        let wide = m.einsum_time(flops, 4096, 4096, 4096);
        let narrow = m.einsum_time(flops, 32, 4096, 4096);
        assert!(narrow > 2.0 * wide);
    }

    #[test]
    fn overrides_apply() {
        let m = Machine::tpu_v4_like(2)
            .with_peak_flops(1e12)
            .with_link_bandwidth(1e9)
            .with_hop_latency(5e-6)
            .with_hbm_bandwidth(1e11)
            .with_op_overhead(0.0)
            .with_max_inflight_async(4);
        assert_eq!(m.peak_flops(), 1e12);
        assert_eq!(m.link_bandwidth(), 1e9);
        assert_eq!(m.hop_latency(), 5e-6);
        assert_eq!(m.hbm_bandwidth(), 1e11);
        assert_eq!(m.op_overhead(), 0.0);
        assert_eq!(m.max_inflight_async(), 4);
    }

    #[test]
    fn gpu_preset_differs_from_tpu() {
        let gpu = Machine::gpu_cluster_like(8);
        let tpu = Machine::tpu_v4_like(8);
        assert!(gpu.peak_flops() > tpu.peak_flops());
        assert!(gpu.link_bandwidth() > tpu.link_bandwidth());
        assert!(gpu.hbm_bandwidth() > tpu.hbm_bandwidth());
        assert_eq!(gpu.mesh().num_devices(), 8);
    }

    #[test]
    fn zero_flop_einsum_costs_overhead_only() {
        let m = Machine::tpu_v4_like(1);
        assert_eq!(m.einsum_time(0, 0, 0, 0), m.op_overhead());
    }

    #[test]
    fn fingerprint_covers_every_parameter() {
        let base = Machine::tpu_v4_like(8);
        assert_eq!(base.fingerprint(), Machine::tpu_v4_like(8).fingerprint());
        let variants = [
            Machine::tpu_v4_like(16),
            base.clone().with_peak_flops(276e12),
            base.clone().with_efficiency(MatmulEfficiency::new(0.91, 128)),
            base.clone().with_efficiency(MatmulEfficiency::new(0.9, 256)),
            base.clone().with_link_bandwidth(91e9),
            base.clone().with_hop_latency(2e-6),
            base.clone().with_hbm_bandwidth(1.3e12),
            base.clone().with_op_overhead(2e-6),
            base.clone().with_max_inflight_async(8),
            base.clone().with_dma_interference(0.29),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(v.fingerprint(), base.fingerprint(), "variant {i}");
        }
    }
}
