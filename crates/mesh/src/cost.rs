//! Analytic time estimates for collective operations.
//!
//! These closed forms serve two roles:
//!
//! * the §5.5 enablement cost model (`comp_t + comm_t >=
//!   max(comp_t, comm_t_ring) + extra_t`) compares the *original*
//!   collective time (`comm_t`, bidirectional ring) against the
//!   *decomposed* sequence time (`comm_t_ring`, one direction only —
//!   "it utilizes only half of the interconnect bandwidth"),
//! * the discrete-event simulator charges synchronous collectives using
//!   the same formulas, so the gate's predictions and the simulator's
//!   measurements are consistent.
//!
//! All functions take the per-group `group_size` and data sizes in bytes,
//! and return seconds on the given [`Machine`].

use crate::Machine;

/// Time of an original (non-decomposed) `AllGather` over a ring of
/// `group_size` devices producing `output_bytes` per device.
///
/// Uses the standard bidirectional-ring algorithm: `g-1` shards of
/// `output_bytes/g` arrive over both link directions.
#[must_use]
pub fn all_gather_time(machine: &Machine, group_size: usize, output_bytes: usize) -> f64 {
    ring_collective_time(machine, group_size, output_bytes, 2.0)
}

/// Time of an original `ReduceScatter` over a ring of `group_size` devices
/// consuming `input_bytes` per device (the pre-scatter size).
#[must_use]
pub fn reduce_scatter_time(machine: &Machine, group_size: usize, input_bytes: usize) -> f64 {
    ring_collective_time(machine, group_size, input_bytes, 2.0)
}

/// Time of an `AllReduce` of `bytes` per device over `group_size` devices
/// (reduce-scatter followed by all-gather).
#[must_use]
pub fn all_reduce_time(machine: &Machine, group_size: usize, bytes: usize) -> f64 {
    reduce_scatter_time(machine, group_size, bytes) + all_gather_time(machine, group_size, bytes)
}

/// Time of an `AllToAll` of `bytes_per_device` over `group_size` devices.
///
/// Torus transit-load model: each device injects `(g-1)/g` of its data,
/// the average shard travels `Σ axis_size/4` hops (shortest path on the
/// machine's torus), and every device drives `2·rank` outgoing links (one
/// per direction per axis). When the group is smaller than the mesh the
/// hop estimate scales down proportionally.
#[must_use]
pub fn all_to_all_time(machine: &Machine, group_size: usize, bytes_per_device: usize) -> f64 {
    let g = group_size as f64;
    if group_size <= 1 {
        return 0.0;
    }
    let mesh = machine.mesh();
    let full: usize = mesh.num_devices();
    let scale = (group_size as f64 / full as f64).min(1.0);
    let avg_hops: f64 =
        mesh.shape().iter().map(|&s| s as f64 / 4.0).sum::<f64>() * scale;
    let links = (2 * mesh.rank()) as f64;
    let transit = bytes_per_device as f64 * (g - 1.0) / g * avg_hops.max(0.5);
    transit / (links * machine.link_bandwidth()) + avg_hops.max(1.0) * machine.hop_latency()
}

/// Time of one decomposed, single-hop `CollectivePermute` of `shard_bytes`
/// in **one** link direction (the unidirectional ring step of §5.1).
#[must_use]
pub fn collective_permute_time(machine: &Machine, shard_bytes: usize) -> f64 {
    machine.hop_time(shard_bytes)
}

/// Total time of the decomposed sequence of `steps` unidirectional
/// `CollectivePermute`s of `shard_bytes`, executed back to back with no
/// overlap — the paper's `comm_t_ring`.
#[must_use]
pub fn decomposed_ring_time(machine: &Machine, steps: usize, shard_bytes: usize) -> f64 {
    steps as f64 * collective_permute_time(machine, shard_bytes)
}

/// Total time of the decomposed **bidirectional** sequence (§5.4.2): each
/// step moves two half-shards in opposite directions concurrently, so a
/// `group_size`-way transfer finishes in about half the steps.
#[must_use]
pub fn decomposed_bidi_ring_time(machine: &Machine, steps: usize, shard_bytes: usize) -> f64 {
    steps as f64 * machine.hop_time(shard_bytes / 2)
}

/// Memoized [`Machine::einsum_time`] lookups.
///
/// The einsum time depends only on `(flops, m, n, k)` for a fixed
/// machine, and the cost model evaluates the same handful of decomposed
/// shapes for every candidate pattern of a layer — a perfect cache. One
/// memo caches results for **one** machine; build a fresh memo per
/// machine (the key does not include machine parameters).
#[derive(Debug, Clone, Default)]
pub struct EinsumTimeMemo {
    cache: std::collections::HashMap<(u64, u64, u64, u64), f64>,
}

impl EinsumTimeMemo {
    /// An empty memo.
    #[must_use]
    pub fn new() -> Self {
        EinsumTimeMemo::default()
    }

    /// `machine.einsum_time(flops, m, n, k)`, computed once per distinct
    /// key. Returns the exact cached bits on a hit — memoization cannot
    /// perturb results.
    pub fn time(&mut self, machine: &Machine, flops: u64, m: u64, n: u64, k: u64) -> f64 {
        *self
            .cache
            .entry((flops, m, n, k))
            .or_insert_with(|| machine.einsum_time(flops, m, n, k))
    }

    /// Number of distinct shapes cached so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the memo has no entries yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

fn ring_collective_time(
    machine: &Machine,
    group_size: usize,
    full_bytes: usize,
    directions: f64,
) -> f64 {
    if group_size <= 1 {
        return 0.0;
    }
    let g = group_size as f64;
    let shard = full_bytes as f64 / g;
    let steps = g - 1.0;
    steps * shard / (directions * machine.link_bandwidth())
        + (steps / directions).ceil() * machine.hop_latency()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::tpu_v4_like(16).with_hop_latency(0.0).with_op_overhead(0.0)
    }

    #[test]
    fn trivial_groups_are_free() {
        let m = machine();
        assert_eq!(all_gather_time(&m, 1, 1 << 20), 0.0);
        assert_eq!(reduce_scatter_time(&m, 1, 1 << 20), 0.0);
        assert_eq!(all_to_all_time(&m, 1, 1 << 20), 0.0);
    }

    #[test]
    fn decomposed_ring_is_twice_the_original() {
        // §5.5: the unidirectional decomposed sequence uses half the
        // interconnect bandwidth of the bidirectional original.
        let m = machine();
        let g = 8;
        let bytes = 1 << 24;
        let original = all_gather_time(&m, g, bytes);
        let decomposed = decomposed_ring_time(&m, g - 1, bytes / g);
        assert!((decomposed / original - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bidirectional_recovers_original_bandwidth() {
        let m = machine();
        let g = 8;
        let bytes = 1 << 24;
        let original = all_gather_time(&m, g, bytes);
        // Bidirectional: ~g/2 steps, each moving half a shard per direction.
        let bidi = decomposed_bidi_ring_time(&m, g / 2, bytes / g);
        assert!(bidi <= original * 1.2, "bidi {bidi} vs original {original}");
    }

    #[test]
    fn all_reduce_is_rs_plus_ag() {
        let m = machine();
        let t = all_reduce_time(&m, 4, 1 << 20);
        let expect = reduce_scatter_time(&m, 4, 1 << 20) + all_gather_time(&m, 4, 1 << 20);
        assert_eq!(t, expect);
    }

    #[test]
    fn all_gather_scales_with_bytes_and_group() {
        let m = machine();
        assert!(all_gather_time(&m, 8, 2 << 20) > all_gather_time(&m, 8, 1 << 20));
        // Larger group, same total bytes: more steps of smaller shards, a
        // bit more total traffic per device ((g-1)/g grows).
        assert!(all_gather_time(&m, 16, 1 << 20) > all_gather_time(&m, 8, 1 << 20));
    }

    #[test]
    fn hop_latency_contributes() {
        let with_latency = Machine::tpu_v4_like(8).with_hop_latency(1e-5);
        let without = Machine::tpu_v4_like(8).with_hop_latency(0.0);
        assert!(
            all_gather_time(&with_latency, 8, 1 << 10) > all_gather_time(&without, 8, 1 << 10)
        );
    }

    #[test]
    fn einsum_memo_returns_exact_machine_bits() {
        let m = Machine::tpu_v4_like(4);
        let mut memo = EinsumTimeMemo::new();
        assert!(memo.is_empty());
        let direct = m.einsum_time(1 << 30, 1024, 512, 1024);
        assert_eq!(memo.time(&m, 1 << 30, 1024, 512, 1024), direct);
        // A hit returns the cached value without recomputation.
        assert_eq!(memo.time(&m, 1 << 30, 1024, 512, 1024), direct);
        assert_eq!(memo.len(), 1);
        memo.time(&m, 1 << 20, 64, 64, 256);
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn all_to_all_grows_with_group() {
        let m = machine();
        assert!(all_to_all_time(&m, 16, 1 << 20) > all_to_all_time(&m, 4, 1 << 20));
    }
}
