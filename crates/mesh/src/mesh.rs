//! Logical device meshes and torus rings.

use std::fmt;

use overlap_hlo::ReplicaGroups;

/// Index of a mesh axis. Following the paper's Fig. 3 convention, axis 0 is
/// `x` and axis 1 is `y` for a 2-D mesh of shape `[M, N]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Axis(pub usize);

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "axis{}", self.0)
    }
}

/// An n-dimensional logical torus of device partitions.
///
/// Partition ids are assigned in row-major order over the mesh
/// coordinates. Every axis forms rings (wrapping last→first), which is how
/// the decomposed collectives of §5 transfer shards.
///
/// # Example
///
/// ```
/// use overlap_mesh::{Axis, DeviceMesh};
/// let mesh = DeviceMesh::new(vec![2, 4]); // [M=2, N=4]
/// assert_eq!(mesh.num_devices(), 8);
/// assert_eq!(mesh.coords(5), vec![1, 1]);
/// assert_eq!(mesh.device_at(&[1, 1]), 5);
/// // The y-axis groups: two rings of 4 devices each.
/// let g = mesh.axis_groups(Axis(1));
/// assert_eq!(g.num_groups(), 2);
/// assert_eq!(g.group_size(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceMesh {
    shape: Vec<usize>,
}

impl DeviceMesh {
    /// Creates a mesh with the given axis sizes.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or any axis has size 0.
    #[must_use]
    pub fn new(shape: Vec<usize>) -> Self {
        assert!(!shape.is_empty(), "mesh needs at least one axis");
        assert!(shape.iter().all(|&s| s > 0), "mesh axes must be non-empty");
        DeviceMesh { shape }
    }

    /// A 1-D ring of `n` devices.
    #[must_use]
    pub fn ring(n: usize) -> Self {
        DeviceMesh::new(vec![n])
    }

    /// A near-square 2-D mesh of `n` devices (`n` must factor as `M*N`
    /// with `M <= N` both as close as possible; powers of two always work).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn square_ish(n: usize) -> Self {
        assert!(n > 0);
        let mut m = (n as f64).sqrt().floor() as usize;
        while m > 1 && !n.is_multiple_of(m) {
            m -= 1;
        }
        DeviceMesh::new(vec![m.max(1), n / m.max(1)])
    }

    /// The axis sizes.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of axes.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Size of one axis.
    ///
    /// # Panics
    ///
    /// Panics if the axis is out of range.
    #[must_use]
    pub fn axis_size(&self, axis: Axis) -> usize {
        self.shape[axis.0]
    }

    /// Total number of devices.
    #[must_use]
    pub fn num_devices(&self) -> usize {
        self.shape.iter().product()
    }

    /// Mesh coordinates of a partition id (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    #[must_use]
    pub fn coords(&self, pid: u32) -> Vec<usize> {
        assert!((pid as usize) < self.num_devices(), "pid {pid} out of range");
        let mut rest = pid as usize;
        let mut coords = vec![0usize; self.rank()];
        for d in (0..self.rank()).rev() {
            coords[d] = rest % self.shape[d];
            rest /= self.shape[d];
        }
        coords
    }

    /// Partition id at the given mesh coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    #[must_use]
    pub fn device_at(&self, coords: &[usize]) -> u32 {
        assert_eq!(coords.len(), self.rank(), "coordinate arity");
        let mut pid = 0usize;
        for (d, &c) in coords.iter().enumerate() {
            assert!(c < self.shape[d], "coordinate {c} out of range on axis {d}");
            pid = pid * self.shape[d] + c;
        }
        pid as u32
    }

    /// Replica groups that vary along `axis` with all other coordinates
    /// fixed — the subgroup collectives annotated `(x)`/`(y)` in Fig. 3.
    ///
    /// Each group lists its members in increasing axis coordinate, which is
    /// also the ring order used by [`shift_pairs`].
    ///
    /// # Panics
    ///
    /// Panics if the axis is out of range.
    #[must_use]
    pub fn axis_groups(&self, axis: Axis) -> ReplicaGroups {
        assert!(axis.0 < self.rank(), "{axis} out of range");
        let n = self.num_devices();
        let mut groups: Vec<Vec<u32>> = Vec::new();
        let mut assigned = vec![false; n];
        for pid in 0..n as u32 {
            if assigned[pid as usize] {
                continue;
            }
            let base = self.coords(pid);
            let mut group = Vec::with_capacity(self.shape[axis.0]);
            for c in 0..self.shape[axis.0] {
                let mut coords = base.clone();
                coords[axis.0] = c;
                let member = self.device_at(&coords);
                assigned[member as usize] = true;
                group.push(member);
            }
            groups.push(group);
        }
        ReplicaGroups::new(groups).expect("axis groups are a valid partition by construction")
    }

    /// A single group over all devices, ordered by partition id.
    #[must_use]
    pub fn full_groups(&self) -> ReplicaGroups {
        ReplicaGroups::full(self.num_devices())
    }
}

impl fmt::Display for DeviceMesh {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mesh{:?}", self.shape)
    }
}

/// Circular-shift source→destination pairs within each replica group.
///
/// Element `i` of each group sends to element `(i + step).rem_euclid(g)`.
/// The looped collective-einsum's left shift (§5.1: `{0,N-1}, {1,0}, …`)
/// is `step = -1`; the bidirectional variant (§5.4.2) also uses `step = 1`.
///
/// # Example
///
/// ```
/// use overlap_hlo::ReplicaGroups;
/// use overlap_mesh::shift_pairs;
/// let g = ReplicaGroups::full(4);
/// assert_eq!(shift_pairs(&g, -1), vec![(0, 3), (1, 0), (2, 1), (3, 2)]);
/// assert_eq!(shift_pairs(&g, 1), vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
/// ```
#[must_use]
pub fn shift_pairs(groups: &ReplicaGroups, step: i64) -> Vec<(u32, u32)> {
    let g = groups.group_size() as i64;
    let mut pairs = Vec::with_capacity(groups.num_groups() * groups.group_size());
    for group in groups.groups() {
        for (i, &src) in group.iter().enumerate() {
            let j = (i as i64 + step).rem_euclid(g) as usize;
            pairs.push((src, group[j]));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_round_trip() {
        let mesh = DeviceMesh::new(vec![3, 4, 5]);
        for pid in 0..mesh.num_devices() as u32 {
            assert_eq!(mesh.device_at(&mesh.coords(pid)), pid);
        }
    }

    #[test]
    fn square_ish_factors() {
        assert_eq!(DeviceMesh::square_ish(64).shape(), &[8, 8]);
        assert_eq!(DeviceMesh::square_ish(128).shape(), &[8, 16]);
        assert_eq!(DeviceMesh::square_ish(12).shape(), &[3, 4]);
        assert_eq!(DeviceMesh::square_ish(7).shape(), &[1, 7]);
        assert_eq!(DeviceMesh::square_ish(1).shape(), &[1, 1]);
    }

    #[test]
    fn axis_groups_2d() {
        let mesh = DeviceMesh::new(vec![2, 3]);
        // pids: (0,0)=0 (0,1)=1 (0,2)=2 (1,0)=3 (1,1)=4 (1,2)=5
        let x = mesh.axis_groups(Axis(0));
        assert_eq!(x.groups(), &[vec![0, 3], vec![1, 4], vec![2, 5]]);
        let y = mesh.axis_groups(Axis(1));
        assert_eq!(y.groups(), &[vec![0, 1, 2], vec![3, 4, 5]]);
        x.validate(6).unwrap();
        y.validate(6).unwrap();
    }

    #[test]
    fn shift_pairs_left_matches_paper() {
        // §5.1: {0,N-1}, {1,0}, {2,1}, ... {N-1,N-2}
        let g = ReplicaGroups::full(4);
        assert_eq!(shift_pairs(&g, -1), vec![(0, 3), (1, 0), (2, 1), (3, 2)]);
    }

    #[test]
    fn shift_pairs_subgroups() {
        let mesh = DeviceMesh::new(vec![2, 2]);
        let g = mesh.axis_groups(Axis(1)); // [[0,1],[2,3]]
        assert_eq!(shift_pairs(&g, -1), vec![(0, 1), (1, 0), (2, 3), (3, 2)]);
    }

    #[test]
    fn ring_is_1d() {
        let r = DeviceMesh::ring(8);
        assert_eq!(r.rank(), 1);
        assert_eq!(r.axis_size(Axis(0)), 8);
        assert_eq!(r.full_groups().group_size(), 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_pid_panics() {
        let _ = DeviceMesh::ring(2).coords(2);
    }
}
