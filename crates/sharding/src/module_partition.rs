//! Whole-module SPMD partitioning (a GSPMD-lite).
//!
//! The paper's inputs come from XLA's SPMD partitioner (GSPMD): a *global*
//! program plus sharding annotations becomes a per-device program with the
//! collectives of §2.2 inserted. [`partition_module`] provides the subset
//! needed here: given a dense module (built as if on one device) and a
//! sharding for every parameter, it propagates shardings forward, shards
//! every parameter, routes every einsum through
//! [`partition_einsum`](crate::partition_einsum), and keeps elementwise
//! ops local.
//!
//! Sharding propagation for an einsum output keeps each batch/free
//! dimension's axis when the producing operand dimension is partitioned
//! (dropping duplicates so no axis appears twice), and resolves a
//! both-sides-partitioned contraction by scattering onto the first
//! unpartitioned output dimension (or an `AllReduce` if there is none).

use std::collections::HashMap;

use overlap_hlo::{Builder, DotDims, InstrId, Module, Op};
use overlap_mesh::{Axis, DeviceMesh};

use crate::{partition_einsum, ShardingError, TensorSharding};

/// Result of partitioning a module.
#[derive(Debug, Clone)]
pub struct PartitionedModule {
    /// The SPMD per-device module.
    pub module: Module,
    /// The sharding each module output carries.
    pub output_shardings: Vec<TensorSharding>,
}

/// Derives the output sharding of an einsum from its operand shardings.
fn propagate_einsum(
    dims: &DotDims,
    lhs_rank: usize,
    rhs_rank: usize,
    lhs: &TensorSharding,
    rhs: &TensorSharding,
) -> TensorSharding {
    let mut used: Vec<Axis> = Vec::new();
    let mut take = |axis: Option<Axis>| -> Option<Axis> {
        match axis {
            Some(a) if !used.contains(&a) => {
                used.push(a);
                Some(a)
            }
            _ => None,
        }
    };
    let mut out_axes: Vec<Option<Axis>> = Vec::new();
    for &(l, r) in dims.batch() {
        // A batch dim stays partitioned only when both operands agree.
        let axis = if lhs.axis_of(l) == rhs.axis_of(r) { lhs.axis_of(l) } else { None };
        out_axes.push(take(axis));
    }
    for d in dims.lhs_free_dims(lhs_rank) {
        out_axes.push(take(lhs.axis_of(d)));
    }
    for d in dims.rhs_free_dims(rhs_rank) {
        out_axes.push(take(rhs.axis_of(d)));
    }
    // Both-sides-partitioned contraction: scatter onto the first
    // unpartitioned output dim.
    for &(l, r) in dims.contracting() {
        if let (Some(a), Some(b)) = (lhs.axis_of(l), rhs.axis_of(r)) {
            if a == b && !used.contains(&a) {
                if let Some(slot) = out_axes.iter_mut().find(|s| s.is_none()) {
                    *slot = Some(a);
                    used.push(a);
                }
            }
        }
    }
    TensorSharding::new(out_axes)
}

/// Partitions `global` (a dense, single-device module) over `mesh`.
///
/// `param_shardings[i]` describes parameter `i` (in parameter-index
/// order). Supported ops: parameters, constants (splat), einsums,
/// elementwise unary/binary, `Copy` and `Transpose`; anything else returns
/// [`ShardingError::Unsupported`]. Elementwise operands must carry
/// identical shardings (insert explicit resharding upstream otherwise).
///
/// # Errors
///
/// Returns [`ShardingError`] on unsupported ops, mismatched elementwise
/// shardings, or shapes that do not divide the mesh.
pub fn partition_module(
    global: &Module,
    mesh: &DeviceMesh,
    param_shardings: &[TensorSharding],
) -> Result<PartitionedModule, ShardingError> {
    global
        .verify()
        .map_err(|e| ShardingError::Invalid(format!("input module: {e}")))?;
    let params = global.parameters();
    if params.len() != param_shardings.len() {
        return Err(ShardingError::Invalid(format!(
            "{} parameters but {} shardings",
            params.len(),
            param_shardings.len()
        )));
    }
    let param_index: HashMap<InstrId, usize> =
        params.iter().enumerate().map(|(i, &p)| (p, i)).collect();

    let mut b = Builder::new(format!("{}.spmd", global.name()), mesh.num_devices());
    let mut map: Vec<Option<InstrId>> = vec![None; global.len()];
    let mut shardings: Vec<Option<TensorSharding>> = vec![None; global.len()];

    for (id, ins) in global.iter() {
        let operand = |i: usize| map[ins.operands()[i].index()].expect("mapped");
        let op_sharding =
            |i: usize| shardings[ins.operands()[i].index()].clone().expect("sharded");
        let (new_id, sharding) = match ins.op() {
            Op::Parameter { .. } => {
                let s = param_shardings[param_index[&id]].clone();
                let local = s.local_shape(ins.shape(), mesh)?;
                (b.parameter(local, ins.name()), s)
            }
            Op::Constant { value } => {
                // Constants splat: any sharding works; keep replicated.
                let s = TensorSharding::replicated(ins.shape().rank());
                (b.constant(ins.shape().clone(), *value, ins.name()), s)
            }
            Op::Einsum(dims) => {
                let lhs_rank = global.shape_of(ins.operands()[0]).rank();
                let rhs_rank = global.shape_of(ins.operands()[1]).rank();
                let ls = op_sharding(0);
                let rs = op_sharding(1);
                let out = propagate_einsum(dims, lhs_rank, rhs_rank, &ls, &rs);
                let p = partition_einsum(
                    &mut b,
                    mesh,
                    operand(0),
                    &ls,
                    operand(1),
                    &rs,
                    dims,
                    &out,
                    ins.name(),
                )?;
                (p.result, out)
            }
            Op::Binary(kind) => {
                let ls = op_sharding(0);
                let rs = op_sharding(1);
                if ls != rs {
                    return Err(ShardingError::Unsupported(format!(
                        "{}: elementwise operands carry different shardings ({ls} vs {rs})",
                        ins.name()
                    )));
                }
                (b.binary_op(*kind, operand(0), operand(1), ins.name()), ls)
            }
            Op::Unary(kind) => {
                let s = op_sharding(0);
                (b.unary_op(*kind, operand(0), ins.name()), s)
            }
            Op::Copy => {
                let s = op_sharding(0);
                (b.copy(operand(0), ins.name()), s)
            }
            Op::Transpose { perm } => {
                // A transpose permutes the sharding along with the dims.
                let s = op_sharding(0);
                let out = TensorSharding::new(perm.iter().map(|&p| s.axis_of(p)).collect());
                (b.transpose(operand(0), perm.clone(), ins.name()), out)
            }
            other => {
                return Err(ShardingError::Unsupported(format!(
                    "{}: op {} is outside the partitioner's subset",
                    ins.name(),
                    other.mnemonic()
                )))
            }
        };
        map[id.index()] = Some(new_id);
        shardings[id.index()] = Some(sharding);
    }

    let outputs: Vec<InstrId> =
        global.outputs().iter().map(|o| map[o.index()].expect("mapped")).collect();
    let output_shardings = global
        .outputs()
        .iter()
        .map(|o| shardings[o.index()].clone().expect("sharded"))
        .collect();
    Ok(PartitionedModule { module: b.build(outputs), output_shardings })
}

#[cfg(test)]
mod tests {
    use overlap_hlo::{DType, Shape};

    use super::*;

    fn f32s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    /// Dense two-layer MLP as a single-device module.
    fn dense_mlp(batch: usize, feature: usize, hidden: usize) -> Module {
        let mut b = Builder::new("dense_mlp", 1);
        let x = b.parameter(f32s(&[batch, feature]), "x");
        let w1 = b.parameter(f32s(&[feature, hidden]), "w1");
        let w2 = b.parameter(f32s(&[hidden, feature]), "w2");
        let h = b.einsum(x, w1, DotDims::matmul(), "h");
        let y = b.einsum(h, w2, DotDims::matmul(), "y");
        b.build(vec![y])
    }

    #[test]
    fn fig2_style_sharding_inserts_weight_gathers() {
        let mesh = DeviceMesh::ring(4);
        let m = dense_mlp(8, 16, 32);
        let shardings = vec![
            TensorSharding::replicated(2).with_dim(0, Axis(0)), // x: batch-sharded
            TensorSharding::replicated(2).with_dim(0, Axis(0)), // w1: row-sharded
            TensorSharding::replicated(2).with_dim(0, Axis(0)), // w2: row-sharded
        ];
        let p = partition_module(&m, &mesh, &shardings).unwrap();
        p.module.verify().unwrap();
        assert_eq!(p.module.count_live(|i| matches!(i.op(), Op::AllGather { .. })), 2);
        assert_eq!(p.module.count_live(|i| matches!(i.op(), Op::Einsum(_))), 2);
        // Output keeps the batch shard: [8/4, 16].
        assert_eq!(p.module.shape_of(p.module.outputs()[0]).dims(), &[2, 16]);
        assert_eq!(p.output_shardings[0].axis_of(0), Some(Axis(0)));
    }

    #[test]
    fn contraction_partial_resolves_to_scatter() {
        let mesh = DeviceMesh::ring(2);
        let mut b = Builder::new("partial", 1);
        let x = b.parameter(f32s(&[8, 16]), "x");
        let w = b.parameter(f32s(&[16, 8]), "w");
        let y = b.einsum(x, w, DotDims::matmul(), "y");
        let m = b.build(vec![y]);
        // Contracting dim partitioned on both sides.
        let shardings = vec![
            TensorSharding::replicated(2).with_dim(1, Axis(0)),
            TensorSharding::replicated(2).with_dim(0, Axis(0)),
        ];
        let p = partition_module(&m, &mesh, &shardings).unwrap();
        assert_eq!(
            p.module.count_live(|i| matches!(i.op(), Op::ReduceScatter { .. })),
            1
        );
        // The scatter landed on output dim 0.
        assert_eq!(p.output_shardings[0].axis_of(0), Some(Axis(0)));
    }

    #[test]
    fn elementwise_follows_sharding() {
        let mesh = DeviceMesh::ring(2);
        let mut b = Builder::new("ew", 1);
        let x = b.parameter(f32s(&[8, 4]), "x");
        let y = b.parameter(f32s(&[8, 4]), "y");
        let s = b.add(x, y, "s");
        let n = b.neg(s, "n");
        let m = b.build(vec![n]);
        let sh = TensorSharding::replicated(2).with_dim(0, Axis(0));
        let p = partition_module(&m, &mesh, &[sh.clone(), sh.clone()]).unwrap();
        assert_eq!(p.module.shape_of(p.module.outputs()[0]).dims(), &[4, 4]);
        assert_eq!(p.output_shardings[0], sh);
    }

    #[test]
    fn mismatched_elementwise_shardings_rejected() {
        let mesh = DeviceMesh::new(vec![2, 2]);
        let mut b = Builder::new("bad", 1);
        let x = b.parameter(f32s(&[8, 4]), "x");
        let y = b.parameter(f32s(&[8, 4]), "y");
        let s = b.add(x, y, "s");
        let m = b.build(vec![s]);
        let err = partition_module(
            &m,
            &mesh,
            &[
                TensorSharding::replicated(2).with_dim(0, Axis(0)),
                TensorSharding::replicated(2).with_dim(0, Axis(1)),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, ShardingError::Unsupported(_)));
    }

    #[test]
    fn transpose_permutes_sharding() {
        let mesh = DeviceMesh::ring(2);
        let mut b = Builder::new("tr", 1);
        let x = b.parameter(f32s(&[4, 6]), "x");
        let t = b.transpose(x, vec![1, 0], "t");
        let m = b.build(vec![t]);
        let sh = TensorSharding::replicated(2).with_dim(0, Axis(0));
        let p = partition_module(&m, &mesh, &[sh]).unwrap();
        assert_eq!(p.module.shape_of(p.module.outputs()[0]).dims(), &[6, 2]);
        assert_eq!(p.output_shardings[0].axis_of(1), Some(Axis(0)));
        assert_eq!(p.output_shardings[0].axis_of(0), None);
    }

    #[test]
    fn unsupported_op_rejected() {
        let mesh = DeviceMesh::ring(2);
        let mut b = Builder::new("uns", 1);
        let x = b.parameter(f32s(&[4, 4]), "x");
        let zero = b.constant(Shape::scalar(DType::U32), 0.0, "z");
        let d = b.dynamic_slice(x, &[zero, zero], vec![2, 2], "d");
        let m = b.build(vec![d]);
        let err = partition_module(&m, &mesh, &[TensorSharding::replicated(2)]).unwrap_err();
        assert!(matches!(err, ShardingError::Unsupported(_)));
    }
}
