//! The paper's running example: a two-layer MLP under the 1-D (Fig. 2)
//! and 2-D (Fig. 3) partitioning strategies.
//!
//! These builders produce *baseline* modules — synchronous collectives
//! followed by dependent einsums — which are precisely the patterns the
//! looped collective-einsum transformation (`overlap-core`) decomposes.

use overlap_hlo::{Builder, DType, DotDims, Module, Shape};
use overlap_mesh::{Axis, DeviceMesh};

use crate::{partition_einsum, ShardingError, TensorSharding};

/// Global (unsharded) dimensions of the two-layer MLP: the batch `B`,
/// feature `F` and hidden `H` sizes of Figs. 2 and 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MlpConfig {
    /// Batch dimension `B`.
    pub batch: usize,
    /// Feature dimension `F` (layer input/output width).
    pub feature: usize,
    /// Hidden dimension `H` (intermediate width).
    pub hidden: usize,
}

impl MlpConfig {
    /// A small configuration for tests.
    #[must_use]
    pub fn small() -> Self {
        MlpConfig { batch: 8, feature: 16, hidden: 32 }
    }
}

/// Builds the Fig. 2 forward pass on a 1-D mesh: activations keep their
/// batch shard (`[B/N, F]`), weights are stored sharded on their first
/// dimension and `AllGather`ed before each einsum.
///
/// Parameters (per device): `x [B/N, F]`, `w1 [F/N, H]`, `w2 [H/N, F]`.
///
/// # Errors
///
/// Returns [`ShardingError`] if the sizes don't divide by the mesh.
pub fn fig2_forward(mesh: &DeviceMesh, cfg: MlpConfig) -> Result<Module, ShardingError> {
    if mesh.rank() != 1 {
        return Err(ShardingError::Invalid(format!("fig2 needs a 1-D mesh, got {mesh}")));
    }
    let n = mesh.axis_size(Axis(0));
    let mut b = Builder::new("fig2_mlp", mesh.num_devices());
    let div = |v: usize, by: usize, what: &str| {
        if v.is_multiple_of(by) {
            Ok(v / by)
        } else {
            Err(ShardingError::Invalid(format!("{what} {v} not divisible by {by}")))
        }
    };
    let x = b.parameter(
        Shape::new(DType::F32, vec![div(cfg.batch, n, "batch")?, cfg.feature]),
        "x",
    );
    let w1 = b.parameter(
        Shape::new(DType::F32, vec![div(cfg.feature, n, "feature")?, cfg.hidden]),
        "w1",
    );
    let w2 = b.parameter(
        Shape::new(DType::F32, vec![div(cfg.hidden, n, "hidden")?, cfg.feature]),
        "w2",
    );

    let batch_sharded = TensorSharding::replicated(2).with_dim(0, Axis(0));
    let row_sharded = TensorSharding::replicated(2).with_dim(0, Axis(0));

    let l1 = partition_einsum(
        &mut b,
        mesh,
        x,
        &batch_sharded,
        w1,
        &row_sharded,
        &DotDims::matmul(),
        &batch_sharded,
        "layer1",
    )?;
    let l2 = partition_einsum(
        &mut b,
        mesh,
        l1.result,
        &batch_sharded,
        w2,
        &row_sharded,
        &DotDims::matmul(),
        &batch_sharded,
        "layer2",
    )?;
    Ok(b.build(vec![l2.result]))
}

/// Builds the Fig. 3 forward pass on a 2-D mesh `[M, N]` (axis 0 = `x`,
/// axis 1 = `y`): the first einsum `AllGather`s the activation along `x`
/// and the weight along `y`; the second einsum `AllGather`s the weight
/// along `y`, contracts the `x`-partitioned hidden dimension locally and
/// `ReduceScatter`s the partial result along `x`.
///
/// Parameters (per device): `x [B/N, F/M]`, `w1 [F/N, H/M]`,
/// `w2 [H/M, F/N]`.
///
/// # Errors
///
/// Returns [`ShardingError`] if the mesh is not 2-D or sizes don't divide.
pub fn fig3_forward(mesh: &DeviceMesh, cfg: MlpConfig) -> Result<Module, ShardingError> {
    if mesh.rank() != 2 {
        return Err(ShardingError::Invalid(format!("fig3 needs a 2-D mesh, got {mesh}")));
    }
    let m = mesh.axis_size(Axis(0));
    let n = mesh.axis_size(Axis(1));
    let check = |v: usize, by: usize, what: &str| {
        if v.is_multiple_of(by) {
            Ok(v / by)
        } else {
            Err(ShardingError::Invalid(format!("{what} {v} not divisible by {by}")))
        }
    };
    let mut b = Builder::new("fig3_mlp", mesh.num_devices());
    let x = b.parameter(
        Shape::new(
            DType::F32,
            vec![check(cfg.batch, n, "batch")?, check(cfg.feature, m, "feature")?],
        ),
        "x",
    );
    let w1 = b.parameter(
        Shape::new(
            DType::F32,
            vec![check(cfg.feature, n, "feature")?, check(cfg.hidden, m, "hidden")?],
        ),
        "w1",
    );
    let w2 = b.parameter(
        Shape::new(
            DType::F32,
            vec![check(cfg.hidden, m, "hidden")?, check(cfg.feature, n, "feature")?],
        ),
        "w2",
    );

    let x_sharding = TensorSharding::new(vec![Some(Axis(1)), Some(Axis(0))]);
    let w1_sharding = TensorSharding::new(vec![Some(Axis(1)), Some(Axis(0))]);
    let h_sharding = TensorSharding::new(vec![Some(Axis(1)), Some(Axis(0))]);

    let l1 = partition_einsum(
        &mut b,
        mesh,
        x,
        &x_sharding,
        w1,
        &w1_sharding,
        &DotDims::matmul(),
        &h_sharding,
        "layer1",
    )?;

    let w2_sharding = TensorSharding::new(vec![Some(Axis(0)), Some(Axis(1))]);
    let out_sharding = TensorSharding::new(vec![Some(Axis(1)), Some(Axis(0))]);
    let l2 = partition_einsum(
        &mut b,
        mesh,
        l1.result,
        &h_sharding,
        w2,
        &w2_sharding,
        &DotDims::matmul(),
        &out_sharding,
        "layer2",
    )?;
    Ok(b.build(vec![l2.result]))
}

#[cfg(test)]
mod tests {
    use overlap_hlo::Op;

    use super::*;

    #[test]
    fn fig2_structure() {
        let mesh = DeviceMesh::ring(4);
        let m = fig2_forward(&mesh, MlpConfig::small()).unwrap();
        m.verify().unwrap();
        // Two weight gathers, no reduce, two einsums.
        assert_eq!(m.count_live(|i| matches!(i.op(), Op::AllGather { .. })), 2);
        assert_eq!(m.count_live(|i| matches!(i.op(), Op::Einsum(_))), 2);
        assert_eq!(m.count_live(|i| matches!(i.op(), Op::ReduceScatter { .. })), 0);
        // Output keeps the batch shard: [B/N, F].
        assert_eq!(m.shape_of(m.outputs()[0]).dims(), &[2, 16]);
    }

    #[test]
    fn fig3_structure() {
        let mesh = DeviceMesh::new(vec![2, 4]);
        let m = fig3_forward(&mesh, MlpConfig::small()).unwrap();
        m.verify().unwrap();
        // Fig. 3: three AllGathers (x along x; w1 along y; w2 along y) and
        // one ReduceScatter along x.
        assert_eq!(m.count_live(|i| matches!(i.op(), Op::AllGather { .. })), 3);
        assert_eq!(m.count_live(|i| matches!(i.op(), Op::ReduceScatter { .. })), 1);
        assert_eq!(m.count_live(|i| matches!(i.op(), Op::Einsum(_))), 2);
        // Output is fully partitioned: [B/N, F/M].
        assert_eq!(m.shape_of(m.outputs()[0]).dims(), &[2, 8]);
    }

    #[test]
    fn fig2_rejects_2d_mesh() {
        let mesh = DeviceMesh::new(vec![2, 2]);
        assert!(fig2_forward(&mesh, MlpConfig::small()).is_err());
    }

    #[test]
    fn fig3_rejects_1d_mesh() {
        let mesh = DeviceMesh::ring(4);
        assert!(fig3_forward(&mesh, MlpConfig::small()).is_err());
    }

    #[test]
    fn indivisible_sizes_rejected() {
        let mesh = DeviceMesh::ring(3);
        let err = fig2_forward(&mesh, MlpConfig { batch: 8, feature: 16, hidden: 32 });
        assert!(err.is_err());
    }
}
