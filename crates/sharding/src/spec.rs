//! Tensor sharding specifications.

use std::fmt;

use overlap_hlo::Shape;
use overlap_mesh::{Axis, DeviceMesh};

use crate::ShardingError;

/// How a tensor is distributed over the device mesh: each tensor dimension
/// is either replicated (`None`) or partitioned along one mesh axis
/// (`Some(axis)`).
///
/// This is the strategy family of §2.2 — the paper's models partition each
/// tensor dimension along at most one axis ("/N", "/M" annotations in
/// Figs. 2 and 3).
///
/// # Example
///
/// ```
/// use overlap_hlo::{DType, Shape};
/// use overlap_mesh::{Axis, DeviceMesh};
/// use overlap_sharding::TensorSharding;
///
/// let mesh = DeviceMesh::new(vec![2, 4]);
/// // [B, F] with the batch dimension partitioned along axis 1 (size 4).
/// let s = TensorSharding::replicated(2).with_dim(0, Axis(1));
/// let global = Shape::new(DType::F32, vec![64, 128]);
/// assert_eq!(s.local_shape(&global, &mesh).unwrap().dims(), &[16, 128]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TensorSharding {
    dim_axes: Vec<Option<Axis>>,
}

impl TensorSharding {
    /// Fully replicated sharding for a rank-`rank` tensor.
    #[must_use]
    pub fn replicated(rank: usize) -> Self {
        TensorSharding { dim_axes: vec![None; rank] }
    }

    /// Creates a sharding from explicit per-dimension axes.
    #[must_use]
    pub fn new(dim_axes: Vec<Option<Axis>>) -> Self {
        TensorSharding { dim_axes }
    }

    /// Returns a copy with dimension `dim` partitioned along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    #[must_use]
    pub fn with_dim(mut self, dim: usize, axis: Axis) -> Self {
        self.dim_axes[dim] = Some(axis);
        self
    }

    /// The axis (if any) dimension `dim` is partitioned along.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    #[must_use]
    pub fn axis_of(&self, dim: usize) -> Option<Axis> {
        self.dim_axes[dim]
    }

    /// The tensor rank this sharding describes.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.dim_axes.len()
    }

    /// Whether every dimension is replicated.
    #[must_use]
    pub fn is_replicated(&self) -> bool {
        self.dim_axes.iter().all(Option::is_none)
    }

    /// Validates this sharding against a global shape and mesh: arity
    /// matches, axes are in range, no axis is used twice, and every
    /// partitioned dimension divides evenly.
    ///
    /// # Errors
    ///
    /// Returns [`ShardingError::Invalid`] on any violation.
    pub fn validate(&self, global: &Shape, mesh: &DeviceMesh) -> Result<(), ShardingError> {
        if self.dim_axes.len() != global.rank() {
            return Err(ShardingError::Invalid(format!(
                "sharding rank {} vs shape {global}",
                self.dim_axes.len()
            )));
        }
        let mut used = vec![false; mesh.rank()];
        for (d, axis) in self.dim_axes.iter().enumerate() {
            if let Some(a) = axis {
                if a.0 >= mesh.rank() {
                    return Err(ShardingError::Invalid(format!("{a} out of range for {mesh}")));
                }
                if used[a.0] {
                    return Err(ShardingError::Invalid(format!("{a} used on two dimensions")));
                }
                used[a.0] = true;
                let size = mesh.axis_size(*a);
                if !global.dim(d).is_multiple_of(size) {
                    return Err(ShardingError::Invalid(format!(
                        "dim {d} of {global} not divisible by {a} size {size}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// The per-device shard shape of a tensor with this sharding.
    ///
    /// # Errors
    ///
    /// Returns [`ShardingError::Invalid`] if the sharding does not
    /// validate against the shape and mesh.
    pub fn local_shape(
        &self,
        global: &Shape,
        mesh: &DeviceMesh,
    ) -> Result<Shape, ShardingError> {
        self.validate(global, mesh)?;
        let mut local = global.clone();
        for (d, axis) in self.dim_axes.iter().enumerate() {
            if let Some(a) = axis {
                local = local.with_dim_divided(d, mesh.axis_size(*a));
            }
        }
        Ok(local)
    }

    /// The global shape corresponding to a local shard shape.
    ///
    /// # Panics
    ///
    /// Panics if the arity mismatches or an axis is out of range.
    #[must_use]
    pub fn global_shape(&self, local: &Shape, mesh: &DeviceMesh) -> Shape {
        assert_eq!(self.dim_axes.len(), local.rank(), "sharding arity");
        let mut global = local.clone();
        for (d, axis) in self.dim_axes.iter().enumerate() {
            if let Some(a) = axis {
                global = global.with_dim_scaled(d, mesh.axis_size(*a));
            }
        }
        global
    }
}

impl fmt::Display for TensorSharding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, a) in self.dim_axes.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match a {
                Some(axis) => write!(f, "{axis}")?,
                None => write!(f, "*")?,
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlap_hlo::DType;

    fn shape(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    #[test]
    fn local_and_global_round_trip() {
        let mesh = DeviceMesh::new(vec![2, 4]);
        let s = TensorSharding::replicated(2).with_dim(0, Axis(1)).with_dim(1, Axis(0));
        let global = shape(&[8, 6]);
        let local = s.local_shape(&global, &mesh).unwrap();
        assert_eq!(local.dims(), &[2, 3]);
        assert_eq!(s.global_shape(&local, &mesh), global);
    }

    #[test]
    fn replicated_is_identity() {
        let mesh = DeviceMesh::ring(4);
        let s = TensorSharding::replicated(2);
        assert!(s.is_replicated());
        assert_eq!(s.local_shape(&shape(&[4, 4]), &mesh).unwrap().dims(), &[4, 4]);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mesh = DeviceMesh::new(vec![2, 4]);
        // Arity mismatch.
        assert!(TensorSharding::replicated(1).validate(&shape(&[4, 4]), &mesh).is_err());
        // Axis out of range.
        let bad_axis = TensorSharding::replicated(2).with_dim(0, Axis(5));
        assert!(bad_axis.validate(&shape(&[4, 4]), &mesh).is_err());
        // Same axis twice.
        let dup = TensorSharding::replicated(2).with_dim(0, Axis(0)).with_dim(1, Axis(0));
        assert!(dup.validate(&shape(&[4, 4]), &mesh).is_err());
        // Non-divisible.
        let nondiv = TensorSharding::replicated(2).with_dim(0, Axis(1));
        assert!(nondiv.validate(&shape(&[6, 4]), &mesh).is_err());
    }

    #[test]
    fn display_format() {
        let s = TensorSharding::replicated(2).with_dim(1, Axis(0));
        assert_eq!(s.to_string(), "[*,axis0]");
    }
}
