//! Rule-based SPMD partitioning of einsums.

use overlap_hlo::{Builder, DotDims, InstrId};
use overlap_mesh::{Axis, DeviceMesh};

use crate::{ShardingError, TensorSharding};

/// Result of partitioning one einsum: the final (sharded) result plus the
/// collectives that were inserted, so callers (and tests) can see the
/// communication pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionedEinsum {
    /// The instruction producing the result with the requested output
    /// sharding.
    pub result: InstrId,
    /// `AllGather`s inserted on the LHS, in dimension order.
    pub lhs_gathers: Vec<InstrId>,
    /// `AllGather`s inserted on the RHS, in dimension order.
    pub rhs_gathers: Vec<InstrId>,
    /// The trailing `ReduceScatter` or `AllReduce`, if the contraction ran
    /// over a partitioned dimension.
    pub reduction: Option<InstrId>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DimRole {
    Batch(usize),
    Contracting(usize),
    Free,
}

fn role_of(dims: &DotDims, dim: usize, is_lhs: bool) -> DimRole {
    for (i, &(l, r)) in dims.batch().iter().enumerate() {
        if (is_lhs && l == dim) || (!is_lhs && r == dim) {
            return DimRole::Batch(i);
        }
    }
    for (i, &(l, r)) in dims.contracting().iter().enumerate() {
        if (is_lhs && l == dim) || (!is_lhs && r == dim) {
            return DimRole::Contracting(i);
        }
    }
    DimRole::Free
}

/// Partitions one einsum for SPMD execution.
///
/// `lhs`/`rhs` are the *local shards* already present in the builder, with
/// `lhs_sharding`/`rhs_sharding` describing how they relate to the global
/// tensors. The function inserts the `AllGather`s required before the
/// local einsum and the `ReduceScatter`/`AllReduce` required after it so
/// the result carries `out_sharding` — exactly the communication patterns
/// of Figs. 2 and 3:
///
/// * a **free** operand dimension stays partitioned iff the matching
///   output dimension is partitioned along the same axis; otherwise the
///   operand is all-gathered along it;
/// * a **batch** dimension stays partitioned iff both operands and the
///   output agree on its axis; otherwise both sides are gathered;
/// * a **contracting** dimension partitioned along the same axis on both
///   sides is contracted locally, producing partial sums that are
///   reduce-scattered onto an output dimension the caller wants
///   partitioned along that axis (or all-reduced if there is none);
///   a contracting dimension partitioned on one side only is gathered.
///
/// # Example
///
/// ```
/// use overlap_hlo::{Builder, DType, DotDims, Op, Shape};
/// use overlap_mesh::{Axis, DeviceMesh};
/// use overlap_sharding::{partition_einsum, TensorSharding};
///
/// // Fig. 2: batch-sharded activations, row-sharded weight.
/// let mesh = DeviceMesh::ring(4);
/// let mut b = Builder::new("m", 4);
/// let x = b.parameter(Shape::new(DType::F32, vec![4, 32]), "x");
/// let w = b.parameter(Shape::new(DType::F32, vec![8, 64]), "w");
/// let batch = TensorSharding::replicated(2).with_dim(0, Axis(0));
/// let row = TensorSharding::replicated(2).with_dim(0, Axis(0));
/// let p = partition_einsum(
///     &mut b, &mesh, x, &batch, w, &row, &DotDims::matmul(), &batch, "y",
/// ).unwrap();
/// assert_eq!(p.rhs_gathers.len(), 1); // the weight is all-gathered
/// assert_eq!(b.shape_of(p.result).dims(), &[4, 64]);
/// ```
///
/// # Errors
///
/// Returns [`ShardingError`] if a sharding fails validation or the
/// requested output sharding would require resharding by slicing (outside
/// the paper's strategy family).
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
pub fn partition_einsum(
    b: &mut Builder,
    mesh: &DeviceMesh,
    lhs: InstrId,
    lhs_sharding: &TensorSharding,
    rhs: InstrId,
    rhs_sharding: &TensorSharding,
    dims: &DotDims,
    out_sharding: &TensorSharding,
    name: &str,
) -> Result<PartitionedEinsum, ShardingError> {
    let lhs_global = lhs_sharding.global_shape(b.shape_of(lhs), mesh);
    let rhs_global = rhs_sharding.global_shape(b.shape_of(rhs), mesh);
    lhs_sharding.validate(&lhs_global, mesh)?;
    rhs_sharding.validate(&rhs_global, mesh)?;
    let out_global = dims
        .output_shape(&lhs_global, &rhs_global)
        .map_err(|e| ShardingError::Invalid(e.to_string()))?;
    out_sharding.validate(&out_global, mesh)?;

    let lhs_rank = lhs_global.rank();
    let rhs_rank = rhs_global.rank();

    // Decide, per operand dimension, whether to gather it.
    let mut gather_lhs: Vec<(usize, Axis)> = Vec::new();
    let mut gather_rhs: Vec<(usize, Axis)> = Vec::new();
    // Contracting-pair axes contracted locally (partial sums).
    let mut partial_axes: Vec<Axis> = Vec::new();

    for (side_is_lhs, sharding, rank) in
        [(true, lhs_sharding, lhs_rank), (false, rhs_sharding, rhs_rank)]
    {
        for dim in 0..rank {
            let Some(axis) = sharding.axis_of(dim) else { continue };
            match role_of(dims, dim, side_is_lhs) {
                DimRole::Free => {
                    let out_dim = if side_is_lhs {
                        dims.output_dim_of_lhs_free(lhs_rank, dim)
                    } else {
                        dims.output_dim_of_rhs_free(lhs_rank, rhs_rank, dim)
                    }
                    .expect("free dim maps to an output dim");
                    if out_sharding.axis_of(out_dim) == Some(axis) {
                        // Stays partitioned end to end.
                    } else {
                        // Output wants this dim replicated or on another
                        // axis: gather. If the output's requested axis is
                        // not later produced by a partial-sum reduction,
                        // the final shape check reports Unsupported.
                        if side_is_lhs {
                            gather_lhs.push((dim, axis));
                        } else {
                            gather_rhs.push((dim, axis));
                        }
                    }
                }
                DimRole::Batch(i) => {
                    let (l, r) = dims.batch()[i];
                    let other = if side_is_lhs {
                        rhs_sharding.axis_of(r)
                    } else {
                        lhs_sharding.axis_of(l)
                    };
                    let out_axis = out_sharding.axis_of(i);
                    if other == Some(axis) && out_axis == Some(axis) {
                        // Consistent batch sharding: stays partitioned.
                    } else if other == Some(axis) && out_axis.is_none() {
                        return Err(ShardingError::Unsupported(format!(
                            "batch dim pair {i} partitioned along {axis} but output replicated"
                        )));
                    } else {
                        // Mismatched batch sharding: gather this side.
                        if side_is_lhs {
                            gather_lhs.push((dim, axis));
                        } else {
                            gather_rhs.push((dim, axis));
                        }
                        if out_axis.is_some() && other != Some(axis) {
                            return Err(ShardingError::Unsupported(format!(
                                "batch dim pair {i}: inconsistent operand shardings with \
                                 partitioned output"
                            )));
                        }
                    }
                }
                DimRole::Contracting(i) => {
                    let (l, r) = dims.contracting()[i];
                    let other = if side_is_lhs {
                        rhs_sharding.axis_of(r)
                    } else {
                        lhs_sharding.axis_of(l)
                    };
                    if other == Some(axis) {
                        // Both sides partitioned the same way: contract
                        // locally, reduce afterwards. Record once (from
                        // the LHS side).
                        if side_is_lhs {
                            partial_axes.push(axis);
                        }
                    } else {
                        // One-sided, or partitioned along *different* axes
                        // (Fig. 3 layer 1: x gathers F along x, w gathers F
                        // along y): gather this side to full.
                        if side_is_lhs {
                            gather_lhs.push((dim, axis));
                        } else {
                            gather_rhs.push((dim, axis));
                        }
                    }
                }
            }
        }
    }

    // Emit gathers.
    let mut lhs_cur = lhs;
    let mut lhs_gathers = Vec::new();
    gather_lhs.sort_unstable_by_key(|&(d, _)| d);
    for (dim, axis) in gather_lhs {
        lhs_cur = b.all_gather(
            lhs_cur,
            dim,
            mesh.axis_groups(axis),
            &format!("{name}.lhs_ag{dim}"),
        );
        lhs_gathers.push(lhs_cur);
    }
    let mut rhs_cur = rhs;
    let mut rhs_gathers = Vec::new();
    gather_rhs.sort_unstable_by_key(|&(d, _)| d);
    for (dim, axis) in gather_rhs {
        rhs_cur = b.all_gather(
            rhs_cur,
            dim,
            mesh.axis_groups(axis),
            &format!("{name}.rhs_ag{dim}"),
        );
        rhs_gathers.push(rhs_cur);
    }

    // Local einsum.
    let mut result = b.einsum(lhs_cur, rhs_cur, dims.clone(), name);

    // Reduce partial sums.
    if partial_axes.len() > 1 {
        return Err(ShardingError::Unsupported(
            "more than one contracting dimension partitioned".into(),
        ));
    }
    let mut reduction = None;
    if let Some(&axis) = partial_axes.first() {
        // Find an output dim the caller wants partitioned along `axis`
        // that the local result still has full.
        let local_out_rank = b.shape_of(result).rank();
        let mut scatter_dim = None;
        for out_dim in 0..local_out_rank {
            if out_sharding.axis_of(out_dim) == Some(axis)
                && b.shape_of(result).dim(out_dim) == out_global.dim(out_dim)
            {
                scatter_dim = Some(out_dim);
                break;
            }
        }
        result = match scatter_dim {
            Some(dim) => b.reduce_scatter(
                result,
                dim,
                mesh.axis_groups(axis),
                &format!("{name}.rs"),
            ),
            None => b.all_reduce(result, mesh.axis_groups(axis), &format!("{name}.ar")),
        };
        reduction = Some(result);
    }

    // Final check: the produced local shape must match the requested
    // output sharding.
    let want = out_sharding
        .local_shape(&out_global, mesh)
        .map_err(|e| ShardingError::Invalid(e.to_string()))?;
    if b.shape_of(result) != &want {
        return Err(ShardingError::Unsupported(format!(
            "requested output sharding {out_sharding} needs local shape {want}, \
             partitioner produced {}",
            b.shape_of(result)
        )));
    }

    Ok(PartitionedEinsum { result, lhs_gathers, rhs_gathers, reduction })
}

#[cfg(test)]
mod tests {
    use overlap_hlo::{DType, Op, Shape};

    use super::*;

    fn f32s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    /// Fig. 2 layer 1: x [B/N, F], w [F/N, H] -> AllGather(w) -> einsum.
    #[test]
    fn fig2_weight_gather() {
        let mesh = DeviceMesh::ring(4);
        let mut b = Builder::new("m", 4);
        let x = b.parameter(f32s(&[4, 32]), "x"); // B=16 sharded /4
        let w = b.parameter(f32s(&[8, 64]), "w"); // F=32 sharded /4
        let sx = TensorSharding::replicated(2).with_dim(0, Axis(0));
        let sw = TensorSharding::replicated(2).with_dim(0, Axis(0));
        let so = TensorSharding::replicated(2).with_dim(0, Axis(0));
        let p = partition_einsum(
            &mut b, &mesh, x, &sx, w, &sw, &DotDims::matmul(), &so, "l1",
        )
        .unwrap();
        assert!(p.lhs_gathers.is_empty());
        assert_eq!(p.rhs_gathers.len(), 1);
        assert!(p.reduction.is_none());
        assert_eq!(b.shape_of(p.result).dims(), &[4, 64]);
        b.build(vec![p.result]).verify().unwrap();
    }

    /// Backward dW = x^T · dy with batch contracted: both sides partition
    /// the contracting (batch) dim -> partial sums -> ReduceScatter.
    #[test]
    fn backward_reduce_scatter() {
        let mesh = DeviceMesh::ring(4);
        let mut b = Builder::new("m", 4);
        let x = b.parameter(f32s(&[4, 32]), "x"); // [B/4, F]
        let dy = b.parameter(f32s(&[4, 64]), "dy"); // [B/4, H]
        let s_b = TensorSharding::replicated(2).with_dim(0, Axis(0));
        // dW = einsum over B: contracting (0, 0); out [F, H] sharded on F.
        let dims = DotDims::new(vec![], vec![(0, 0)]).unwrap();
        let so = TensorSharding::replicated(2).with_dim(0, Axis(0));
        let p = partition_einsum(&mut b, &mesh, x, &s_b, dy, &s_b, &dims, &so, "dw").unwrap();
        assert!(p.lhs_gathers.is_empty() && p.rhs_gathers.is_empty());
        let rs = p.reduction.expect("reduce-scatter inserted");
        let m = b.build(vec![p.result]);
        assert!(matches!(m.instr(rs).op(), Op::ReduceScatter { dim: 0, .. }));
        assert_eq!(m.shape_of(p.result).dims(), &[8, 64]);
        m.verify().unwrap();
    }

    /// Partial sums with a replicated output -> AllReduce (Megatron-style).
    #[test]
    fn partial_with_replicated_output_allreduces() {
        let mesh = DeviceMesh::ring(2);
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[8, 16]), "x"); // [B, K/2]
        let w = b.parameter(f32s(&[16, 8]), "w"); // [K/2, H]
        let sk = TensorSharding::replicated(2).with_dim(1, Axis(0));
        let sw = TensorSharding::replicated(2).with_dim(0, Axis(0));
        let so = TensorSharding::replicated(2);
        let p = partition_einsum(
            &mut b, &mesh, x, &sk, w, &sw, &DotDims::matmul(), &so, "y",
        )
        .unwrap();
        let ar = p.reduction.expect("all-reduce inserted");
        let m = b.build(vec![p.result]);
        assert!(matches!(m.instr(ar).op(), Op::AllReduce { .. }));
        m.verify().unwrap();
    }

    /// 2-D strategy layer 1 (Fig. 3): both operands gathered along
    /// different axes.
    #[test]
    fn fig3_layer1_two_gathers() {
        let mesh = DeviceMesh::new(vec![2, 4]); // [M=2 (x), N=4 (y)]
        let mut b = Builder::new("m", 8);
        // x: [B/N, F/M] local [4, 16]; w: [F/N? no — F/N is wrong: w [F/N, H/M]]
        let x = b.parameter(f32s(&[4, 16]), "x"); // B=16/N=4, F=32/M=2
        let w = b.parameter(f32s(&[8, 32]), "w"); // F=32/N=4, H=64/M=2
        let sx = TensorSharding::new(vec![Some(Axis(1)), Some(Axis(0))]);
        let sw = TensorSharding::new(vec![Some(Axis(1)), Some(Axis(0))]);
        // out [B/N, H/M]: batch stays on y, H stays on x.
        let so = TensorSharding::new(vec![Some(Axis(1)), Some(Axis(0))]);
        let p = partition_einsum(
            &mut b, &mesh, x, &sx, w, &sw, &DotDims::matmul(), &so, "l1",
        )
        .unwrap();
        // x gathered along its F dim (axis 0 = x), w gathered along its F
        // dim (axis 1 = y): different mesh axes, as in Fig. 3.
        assert_eq!(p.lhs_gathers.len(), 1);
        assert_eq!(p.rhs_gathers.len(), 1);
        assert!(p.reduction.is_none());
        assert_eq!(b.shape_of(p.result).dims(), &[4, 32]);
        b.build(vec![p.result]).verify().unwrap();
    }

    #[test]
    fn unsupported_resharding_rejected() {
        let mesh = DeviceMesh::new(vec![2, 2]);
        let mut b = Builder::new("m", 4);
        let x = b.parameter(f32s(&[4, 8]), "x");
        let w = b.parameter(f32s(&[8, 8]), "w");
        let sx = TensorSharding::replicated(2).with_dim(0, Axis(0));
        let sw = TensorSharding::replicated(2);
        // Output wants the batch dim on a *different* axis: unsupported.
        let so = TensorSharding::replicated(2).with_dim(0, Axis(1));
        let err = partition_einsum(
            &mut b, &mesh, x, &sx, w, &sw, &DotDims::matmul(), &so, "y",
        )
        .unwrap_err();
        assert!(matches!(err, ShardingError::Unsupported(_)));
    }

    #[test]
    fn fully_replicated_is_plain_einsum() {
        let mesh = DeviceMesh::ring(2);
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[4, 8]), "x");
        let w = b.parameter(f32s(&[8, 16]), "w");
        let s = TensorSharding::replicated(2);
        let p = partition_einsum(
            &mut b, &mesh, x, &s, w, &s, &DotDims::matmul(), &s, "y",
        )
        .unwrap();
        assert!(p.lhs_gathers.is_empty() && p.rhs_gathers.is_empty());
        assert!(p.reduction.is_none());
    }
}
