//! Sharding error type.

use std::error::Error;
use std::fmt;

/// Errors produced while partitioning an einsum.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ShardingError {
    /// The requested sharding combination is outside the supported
    /// strategy family (e.g. requires resharding a free dimension by
    /// slicing, or partitions one dimension along two axes).
    Unsupported(String),
    /// A sharding's arity does not match its tensor's rank, or an axis is
    /// out of range for the mesh.
    Invalid(String),
}

impl fmt::Display for ShardingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardingError::Unsupported(m) => write!(f, "unsupported sharding: {m}"),
            ShardingError::Invalid(m) => write!(f, "invalid sharding: {m}"),
        }
    }
}

impl Error for ShardingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!ShardingError::Unsupported("x".into()).to_string().is_empty());
        assert!(!ShardingError::Invalid("y".into()).to_string().is_empty());
    }
}
