//! SPMD sharding specs and the einsum partitioner.
//!
//! Intra-layer (tensor) model parallelism keeps each tensor distributed
//! over the device mesh, and inserts collectives whenever an einsum needs
//! data laid out differently (§2.2). This crate provides
//!
//! * [`TensorSharding`] — which mesh [`Axis`](overlap_mesh::Axis) (if any)
//!   each tensor dimension is partitioned along,
//! * [`partition_einsum`] — a rule-based partitioner that, given operand
//!   and output shardings, emits the required `AllGather`s before the
//!   local einsum and the `ReduceScatter`/`AllReduce` after it (the exact
//!   communication patterns of Figs. 2 and 3),
//! * [`mlp`] — ready-made builders for the paper's two-layer MLP examples
//!   under 1-D (Fig. 2) and 2-D (Fig. 3) partitioning strategies.
//!
//! The partitioner intentionally supports the strategy family the paper
//! evaluates (each tensor dimension partitioned along at most one mesh
//! axis, no resharding-by-slicing); unsupported layouts return
//! [`ShardingError::Unsupported`] rather than silently degrading.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod error;
pub mod mlp;
mod module_partition;
mod partition;
mod spec;

pub use error::ShardingError;
pub use module_partition::{partition_module, PartitionedModule};
pub use partition::{partition_einsum, PartitionedEinsum};
pub use spec::TensorSharding;
