//! Property tests for the reference kernels: algebraic identities that
//! must hold for arbitrary data.

use overlap_hlo::{BinaryKind, DType, DotDims, PadDim, Shape};
use overlap_numerics::{kernels, Literal};
use proptest::prelude::*;

fn literal(dims: Vec<usize>) -> impl Strategy<Value = Literal> {
    let n: usize = dims.iter().product();
    prop::collection::vec(-8.0f64..8.0, n).prop_map(move |data| {
        Literal::from_vec(Shape::new(DType::F32, dims.clone()), data)
    })
}

proptest! {
    /// Einsum against a handwritten triple loop for plain matmul.
    #[test]
    fn einsum_matches_naive_matmul(
        (m, k, n) in (1usize..5, 1usize..5, 1usize..5),
        seed in 0u64..1000,
    ) {
        let a = Literal::from_fn(Shape::new(DType::F32, vec![m, k]), |i| {
            ((i as u64 * 31 + seed) % 17) as f64 - 8.0
        });
        let b = Literal::from_fn(Shape::new(DType::F32, vec![k, n]), |i| {
            ((i as u64 * 13 + seed) % 11) as f64 - 5.0
        });
        let c = kernels::einsum(&a, &b, &DotDims::matmul());
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                prop_assert!((c.at(&[i, j]) - acc).abs() < 1e-9);
            }
        }
    }

    /// Splitting the contracting dimension and summing partial einsums
    /// equals the full einsum — the algebraic heart of AllGather case 2.
    #[test]
    fn split_contraction_sums_to_full(
        m in 1usize..5, k2 in 1usize..4, n in 1usize..5, seed in 0u64..100,
    ) {
        let k = 2 * k2;
        let a = Literal::from_fn(Shape::new(DType::F32, vec![m, k]), |i| {
            ((i as u64 * 7 + seed) % 23) as f64 / 3.0 - 3.0
        });
        let b = Literal::from_fn(Shape::new(DType::F32, vec![k, n]), |i| {
            ((i as u64 * 5 + seed) % 19) as f64 / 2.0 - 4.0
        });
        let full = kernels::einsum(&a, &b, &DotDims::matmul());

        let a_lo = kernels::slice(&a, &[0, 0], &[m, k2]);
        let a_hi = kernels::slice(&a, &[0, k2], &[m, k]);
        let b_lo = kernels::slice(&b, &[0, 0], &[k2, n]);
        let b_hi = kernels::slice(&b, &[k2, 0], &[k, n]);
        let p1 = kernels::einsum(&a_lo, &b_lo, &DotDims::matmul());
        let p2 = kernels::einsum(&a_hi, &b_hi, &DotDims::matmul());
        let sum = kernels::binary(BinaryKind::Add, &p1, &p2);
        prop_assert!(sum.allclose(&full, 1e-9), "max diff {}", sum.max_abs_diff(&full));
    }

    /// Concat(a, b) == Max(PadLow(a), PadHigh(b)) with a -inf pad value —
    /// the §5.4.3 fusion-friendly rewrite.
    #[test]
    fn pad_max_equals_concat(a in literal(vec![3, 2]), b in literal(vec![3, 4])) {
        let concat = kernels::concatenate(&[&a, &b], 1);
        let ninf = f64::NEG_INFINITY;
        let pa = kernels::pad(&a, ninf, &[PadDim::none(), PadDim::new(0, 4)]);
        let pb = kernels::pad(&b, ninf, &[PadDim::none(), PadDim::new(2, 0)]);
        let maxed = kernels::binary(BinaryKind::Max, &pa, &pb);
        prop_assert_eq!(maxed.data(), concat.data());
    }

    /// DynamicUpdateSlice then DynamicSlice at the same (in-bounds) offset
    /// recovers the update.
    #[test]
    fn dus_ds_round_trip(
        base in literal(vec![6, 4]),
        update in literal(vec![2, 3]),
        off0 in 0i64..5, off1 in 0i64..2,
    ) {
        let written = kernels::dynamic_update_slice(&base, &update, &[off0, off1]);
        // Clamp like the kernel does.
        let c0 = off0.clamp(0, 4);
        let c1 = off1.clamp(0, 1);
        let read = kernels::dynamic_slice(&written, &[c0, c1], &[2, 3]);
        prop_assert_eq!(read.data(), update.data());
    }

    /// Transposing twice is the identity.
    #[test]
    fn transpose_involution(a in literal(vec![3, 5])) {
        let t = kernels::transpose(&a, &[1, 0]);
        let back = kernels::transpose(&t, &[1, 0]);
        prop_assert_eq!(back.data(), a.data());
        prop_assert_eq!(back.shape().dims(), a.shape().dims());
    }

    /// Concatenating slices along a dimension reconstructs the original.
    #[test]
    fn slice_concat_round_trip(a in literal(vec![4, 6]), cut in 1usize..5) {
        let lo = kernels::slice(&a, &[0, 0], &[4, cut]);
        let hi = kernels::slice(&a, &[0, cut], &[4, 6]);
        let back = kernels::concatenate(&[&lo, &hi], 1);
        prop_assert_eq!(back.data(), a.data());
    }

    /// Binary Add/Mul are commutative; Max is idempotent.
    #[test]
    fn binary_algebra(a in literal(vec![8]), b in literal(vec![8])) {
        let ab = kernels::binary(BinaryKind::Add, &a, &b);
        let ba = kernels::binary(BinaryKind::Add, &b, &a);
        prop_assert_eq!(ab.data(), ba.data());
        let m1 = kernels::binary(BinaryKind::Mul, &a, &b);
        let m2 = kernels::binary(BinaryKind::Mul, &b, &a);
        prop_assert_eq!(m1.data(), m2.data());
        let mx = kernels::binary(BinaryKind::Max, &a, &a);
        prop_assert_eq!(mx.data(), a.data());
    }
}
