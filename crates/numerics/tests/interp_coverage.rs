//! Interpreter coverage: every op kind in one "kitchen sink" module, plus
//! collective identities that must hold on arbitrary data.

use overlap_hlo::{Builder, DType, DotDims, PadDim, ReplicaGroups, Shape};
use overlap_numerics::{kernels, run_spmd, Literal};
use proptest::prelude::*;

fn f32s(dims: &[usize]) -> Shape {
    Shape::new(DType::F32, dims.to_vec())
}

#[test]
fn kitchen_sink_module_evaluates_every_op() {
    let n = 2;
    let mut b = Builder::new("sink", n);
    let x = b.parameter(f32s(&[2, 4]), "x");
    let scalar = b.constant(Shape::scalar(DType::F32), 0.5, "half");
    let table = b.constant_tensor(
        Shape::new(DType::U32, vec![2]),
        vec![1.0, 0.0],
        "table",
    );
    let pid = b.partition_id("pid");
    let peer = b.dynamic_slice(table, &[pid], vec![1], "peer");
    let peer_scalar = b.reshape(peer, vec![], "peer_scalar");
    let iota = b.iota(Shape::new(DType::F32, vec![2, 4]), 1, "iota");
    let sum = b.add(x, iota, "sum");
    let neg = b.neg(sum, "neg");
    let t = b.transpose(neg, vec![1, 0], "t"); // [4, 2]
    let sl = b.slice(t, vec![0, 0], vec![2, 2], "sl"); // [2, 2]
    let bc = b.broadcast(scalar, f32s(&[2, 2]), vec![], "bc");
    let prod = b.mul(sl, bc, "prod");
    let padded = b.pad(prod, scalar, vec![PadDim::new(0, 0), PadDim::new(1, 1)], "pad"); // [2,4]
    let cat = b.concatenate(&[padded, x], 0, "cat"); // [4, 4]
    let zero = b.constant(Shape::scalar(DType::U32), 0.0, "zero");
    let ds = b.dynamic_slice(cat, &[peer_scalar, zero], vec![2, 4], "ds");
    let dus = b.dynamic_update_slice(cat, ds, &[zero, zero], "dus");
    let w = b.parameter(f32s(&[4, 3]), "w");
    let mm = b.einsum(dus, w, DotDims::matmul(), "mm"); // [4, 3]
    let red = b.reduce_scatter(mm, 0, ReplicaGroups::full(n), "rs"); // [2, 3]
    let gathered = b.all_gather(red, 0, ReplicaGroups::full(n), "ag"); // [4, 3]
    let cp = b.collective_permute(gathered, vec![(0, 1), (1, 0)], "cp");
    let m = b.build(vec![cp]);
    m.verify().unwrap();

    let inputs: Vec<Vec<Literal>> = (0..n)
        .map(|d| {
            vec![
                Literal::from_fn(f32s(&[2, 4]), move |i| (i + d) as f64 / 3.0),
                Literal::from_fn(f32s(&[4, 3]), move |i| (i * 2 + d) as f64 / 5.0),
            ]
        })
        .collect();
    let out = run_spmd(&m, &inputs).expect("kitchen sink runs");
    assert_eq!(out[0][0].shape().dims(), &[4, 3]);
    // After the final swap permute, device 0 holds device 1's gathered
    // value and vice versa; both gathered values are AllGather outputs so
    // they are already equal across devices — hence the permute is a
    // data-preserving swap here.
    assert!(out[0][0].allclose(&out[0][1], 1e-12));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// AllToAll is its own inverse on 2 devices.
    #[test]
    fn all_to_all_involution_on_two_devices(
        data0 in prop::collection::vec(-4.0f64..4.0, 8),
        data1 in prop::collection::vec(-4.0f64..4.0, 8),
    ) {
        let n = 2;
        let mut b = Builder::new("a2a", n);
        let x = b.parameter(f32s(&[4, 2]), "x");
        let once = b.all_to_all(x, 0, 0, ReplicaGroups::full(n), "once");
        let twice = b.all_to_all(once, 0, 0, ReplicaGroups::full(n), "twice");
        let m = b.build(vec![twice]);
        let inputs = vec![
            vec![Literal::from_vec(f32s(&[4, 2]), data0.clone())],
            vec![Literal::from_vec(f32s(&[4, 2]), data1.clone())],
        ];
        let out = run_spmd(&m, &inputs).unwrap();
        prop_assert_eq!(out[0][0].data(), data0.as_slice());
        prop_assert_eq!(out[0][1].data(), data1.as_slice());
    }

    /// AllGather then per-device DynamicSlice at the own-rank offset
    /// recovers the original shard.
    #[test]
    fn gather_then_slice_is_identity(
        shards in prop::collection::vec(prop::collection::vec(-4.0f64..4.0, 6), 3),
    ) {
        let n = shards.len();
        let mut b = Builder::new("gs", n);
        let x = b.parameter(f32s(&[2, 3]), "x");
        let g = b.all_gather(x, 0, ReplicaGroups::full(n), "g");
        let pid = b.partition_id("pid");
        let two = b.constant(Shape::scalar(DType::U32), 2.0, "two");
        let offset = b.mul(pid, two, "offset");
        let zero = b.constant(Shape::scalar(DType::U32), 0.0, "zero");
        let back = b.dynamic_slice(g, &[offset, zero], vec![2, 3], "back");
        let m = b.build(vec![back]);
        let inputs: Vec<Vec<Literal>> = shards
            .iter()
            .map(|s| vec![Literal::from_vec(f32s(&[2, 3]), s.clone())])
            .collect();
        let out = run_spmd(&m, &inputs).unwrap();
        for (d, s) in shards.iter().enumerate() {
            prop_assert_eq!(out[0][d].data(), s.as_slice());
        }
    }

    /// The fast 2-D matmul path agrees with the general einsum path
    /// (exercised via a batch-matmul of batch size 1).
    #[test]
    fn fast_matmul_agrees_with_general_path(
        m_dim in 1usize..6, k_dim in 1usize..6, n_dim in 1usize..6, seed in 0u64..100,
    ) {
        let a = Literal::from_fn(f32s(&[m_dim, k_dim]), |i| ((i as u64 + seed) % 9) as f64 - 4.0);
        let b = Literal::from_fn(f32s(&[k_dim, n_dim]), |i| ((i as u64 * 3 + seed) % 7) as f64 - 3.0);
        let fast = kernels::einsum(&a, &b, &DotDims::matmul());
        // Force the general path with rank-3 operands of batch 1.
        let a3 = a.reshaped(f32s(&[1, m_dim, k_dim]));
        let b3 = b.reshaped(f32s(&[1, k_dim, n_dim]));
        let general = kernels::einsum(&a3, &b3, &DotDims::batch_matmul());
        prop_assert_eq!(fast.data(), general.data());
    }
}
