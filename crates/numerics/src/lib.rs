//! Tensor literals, reference kernels and an SPMD multi-device interpreter.
//!
//! The paper's central claim about its graph transformation is *semantic
//! equivalence*: the looped collective-einsum (with or without unrolling
//! and bidirectional transfer) computes exactly what the original
//! `AllGather→Einsum` / `Einsum→ReduceScatter` pair computed. This crate
//! exists to check that claim mechanically:
//!
//! * [`Literal`] — a dense tensor value,
//! * [`kernels`] — reference implementations of every op in the IR
//!   (einsum, elementwise, slicing, padding, …),
//! * [`run_spmd`] — executes a module on `num_partitions` virtual devices
//!   in lockstep, with data-level collectives (`AllGather`,
//!   `ReduceScatter`, `AllReduce`, `AllToAll`, `CollectivePermute` and the
//!   asynchronous start/done pair).
//!
//! # Example
//!
//! ```
//! use overlap_hlo::{Builder, DType, ReplicaGroups, Shape};
//! use overlap_numerics::{run_spmd, Literal};
//!
//! // Each of 2 devices holds one shard; all-gather reassembles them.
//! let mut b = Builder::new("ag", 2);
//! let x = b.parameter(Shape::new(DType::F32, vec![1, 2]), "x");
//! let g = b.all_gather(x, 0, ReplicaGroups::full(2), "g");
//! let m = b.build(vec![g]);
//!
//! let d0 = Literal::from_vec(Shape::new(DType::F32, vec![1, 2]), vec![1.0, 2.0]);
//! let d1 = Literal::from_vec(Shape::new(DType::F32, vec![1, 2]), vec![3.0, 4.0]);
//! let out = run_spmd(&m, &[vec![d0], vec![d1]]).unwrap();
//! assert_eq!(out[0][0].data(), &[1.0, 2.0, 3.0, 4.0]);
//! assert_eq!(out[0][0], out[0][1]); // replicated after the gather
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod error;
mod interp;
pub mod kernels;
mod literal;

pub use error::EvalError;
pub use interp::run_spmd;
pub use literal::Literal;
