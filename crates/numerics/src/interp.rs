//! Lockstep SPMD interpretation of modules on virtual devices.

use overlap_hlo::{Module, Op, Shape, WireFormat};

use crate::{kernels, EvalError, Literal};

/// Executes `module` on `module.num_partitions()` virtual devices in
/// lockstep and returns each device's output values.
///
/// `inputs[d]` holds device `d`'s parameter values in parameter-index
/// order. The result is indexed `[output][device]`.
///
/// SPMD lockstep evaluation makes collective semantics direct: when a
/// collective instruction is reached, every device's operand value is
/// already available, so `AllGather` concatenates the group's literals,
/// `ReduceScatter`/`AllReduce` sum them, `AllToAll` exchanges slices, and
/// `CollectivePermute` routes whole literals between partitions (devices
/// that receive nothing get zeros, matching XLA). The asynchronous
/// `CollectivePermuteStart` carries its operand forward unchanged and the
/// paired `Done` performs the routing — data-wise equivalent to the
/// synchronous permute, which is exactly the §5.2 contract.
///
/// # Errors
///
/// Returns [`EvalError::InvalidModule`] if the module fails verification
/// and [`EvalError::BadInputs`] if the input arity or shapes are wrong.
pub fn run_spmd(
    module: &Module,
    inputs: &[Vec<Literal>],
) -> Result<Vec<Vec<Literal>>, EvalError> {
    module.verify()?;
    let n = module.num_partitions();
    if inputs.len() != n {
        return Err(EvalError::BadInputs(format!(
            "expected inputs for {n} devices, got {}",
            inputs.len()
        )));
    }
    let params = module.parameters();
    for (d, dev_inputs) in inputs.iter().enumerate() {
        if dev_inputs.len() != params.len() {
            return Err(EvalError::BadInputs(format!(
                "device {d}: expected {} parameters, got {}",
                params.len(),
                dev_inputs.len()
            )));
        }
        for (p, (param, lit)) in params.iter().zip(dev_inputs).enumerate() {
            if module.shape_of(*param).dims() != lit.shape().dims() {
                return Err(EvalError::BadInputs(format!(
                    "device {d}, parameter {p}: expected {}, got {}",
                    module.shape_of(*param),
                    lit.shape()
                )));
            }
        }
    }

    // values[instr][device]
    let mut values: Vec<Vec<Literal>> = Vec::with_capacity(module.len());
    for (id, ins) in module.iter() {
        let mut per_device: Vec<Literal> = Vec::with_capacity(n);
        for d in 0..n {
            let operand = |i: usize| &values[ins.operands()[i].index()][d];
            let lit = match ins.op() {
                Op::Parameter { index } => inputs[d][*index].clone(),
                Op::Constant { value } => Literal::splat(ins.shape().clone(), *value),
                Op::ConstantTensor { values } => {
                    Literal::from_vec(ins.shape().clone(), values.clone())
                }
                Op::Iota { dim } => kernels::iota(ins.shape(), *dim),
                Op::Broadcast { operand_dims } => {
                    kernels::broadcast(operand(0), ins.shape(), operand_dims)
                }
                Op::Reshape => operand(0).reshaped(ins.shape().clone()),
                Op::Transpose { perm } => kernels::transpose(operand(0), perm),
                Op::Slice { starts, limits } => kernels::slice(operand(0), starts, limits),
                Op::DynamicSlice { sizes } => {
                    let starts = runtime_indices(&values, ins.operands(), 1, d);
                    kernels::dynamic_slice(operand(0), &starts, sizes)
                }
                Op::DynamicUpdateSlice => {
                    let starts = runtime_indices(&values, ins.operands(), 2, d);
                    kernels::dynamic_update_slice(operand(0), operand(1), &starts)
                }
                Op::Concatenate { dim } => {
                    let ops: Vec<&Literal> =
                        (0..ins.operands().len()).map(operand).collect();
                    kernels::concatenate(&ops, *dim)
                }
                Op::Pad { config } => {
                    kernels::pad(operand(0), operand(1).as_scalar(), config)
                }
                Op::Binary(k) => kernels::binary(*k, operand(0), operand(1)),
                Op::Unary(k) => kernels::unary(*k, operand(0)),
                Op::Copy => operand(0).clone(),
                Op::Einsum(dims) => kernels::einsum(operand(0), operand(1), dims),
                Op::AllGather { dim, groups, wire } => {
                    let group = groups.group_containing(d as u32).expect("verified groups");
                    // Each shard is encoded once at its source and stays
                    // encoded while it circulates the ring, so every
                    // device (including the source) sees the same decoded
                    // bytes: one round-trip of error regardless of hops.
                    let members: Vec<Literal> = group
                        .iter()
                        .map(|&m| {
                            let mut lit =
                                values[ins.operands()[0].index()][m as usize].clone();
                            wire.apply(lit.data_mut());
                            lit
                        })
                        .collect();
                    let refs: Vec<&Literal> = members.iter().collect();
                    kernels::concatenate(&refs, *dim)
                }
                Op::ReduceScatter { dim, groups, wire } => {
                    let group = groups.group_containing(d as u32).expect("verified groups");
                    let sum = group_sum_wire(&values, ins.operands()[0], group, *wire);
                    let rank = groups.rank_in_group(d as u32).expect("member");
                    let shard = ins.shape().dim(*dim);
                    let mut starts = vec![0usize; sum.shape().rank()];
                    let mut limits = sum.shape().dims().to_vec();
                    starts[*dim] = rank * shard;
                    limits[*dim] = (rank + 1) * shard;
                    kernels::slice(&sum, &starts, &limits)
                }
                Op::AllReduce { groups, wire } => {
                    let group = groups.group_containing(d as u32).expect("verified groups");
                    group_sum_wire(&values, ins.operands()[0], group, *wire)
                }
                Op::AllToAll { split_dim, concat_dim, groups } => {
                    let group = groups.group_containing(d as u32).expect("verified groups");
                    let rank = groups.rank_in_group(d as u32).expect("member");
                    let in_shape =
                        module.shape_of(ins.operands()[0]).clone();
                    let shard = in_shape.dim(*split_dim) / group.len();
                    let pieces: Vec<Literal> = group
                        .iter()
                        .map(|&m| {
                            let src = &values[ins.operands()[0].index()][m as usize];
                            let mut starts = vec![0usize; in_shape.rank()];
                            let mut limits = in_shape.dims().to_vec();
                            starts[*split_dim] = rank * shard;
                            limits[*split_dim] = (rank + 1) * shard;
                            kernels::slice(src, &starts, &limits)
                        })
                        .collect();
                    let refs: Vec<&Literal> = pieces.iter().collect();
                    kernels::concatenate(&refs, *concat_dim)
                }
                Op::CollectivePermute { pairs, wire }
                | Op::CollectivePermuteStart { pairs, wire } => {
                    // For the synchronous permute this is the final value;
                    // for the start it is evaluated by the paired done.
                    // Either way the routing math is identical.
                    if matches!(ins.op(), Op::CollectivePermuteStart { .. }) {
                        // Carry the operand; Done routes.
                        operand(0).clone()
                    } else {
                        let mut lit =
                            route_permute(&values, ins.operands()[0], pairs, d, ins.shape());
                        wire.apply(lit.data_mut());
                        lit
                    }
                }
                Op::CollectivePermuteDone => {
                    let start_id = ins.operands()[0];
                    let Op::CollectivePermuteStart { pairs, wire } =
                        module.instr(start_id).op()
                    else {
                        unreachable!("verifier guarantees done consumes start")
                    };
                    // Route using the start's carried operand values; the
                    // payload decodes on receipt.
                    let mut lit = route_permute(&values, start_id, pairs, d, ins.shape());
                    wire.apply(lit.data_mut());
                    lit
                }
                Op::PartitionId => Literal::scalar(overlap_hlo::DType::U32, d as f64),
            };
            debug_assert_eq!(
                lit.shape().dims(),
                ins.shape().dims(),
                "{} produced wrong shape on device {d}",
                ins.name()
            );
            per_device.push(lit);
        }
        debug_assert_eq!(values.len(), id.index());
        values.push(per_device);
    }

    Ok(module
        .outputs()
        .iter()
        .map(|o| values[o.index()].clone())
        .collect())
}

fn runtime_indices(
    values: &[Vec<Literal>],
    operands: &[overlap_hlo::InstrId],
    skip: usize,
    device: usize,
) -> Vec<i64> {
    operands[skip..]
        .iter()
        .map(|idx| values[idx.index()][device].as_scalar() as i64)
        .collect()
}

fn group_sum(values: &[Vec<Literal>], operand: overlap_hlo::InstrId, group: &[u32]) -> Literal {
    let first = &values[operand.index()][group[0] as usize];
    let mut sum = first.clone();
    for &m in &group[1..] {
        let other = &values[operand.index()][m as usize];
        for (a, b) in sum.data_mut().iter_mut().zip(other.data()) {
            *a += b;
        }
    }
    sum
}

/// [`group_sum`] under a wire encoding: each device's contribution is
/// quantized once at its source, then the encoded values reduce exactly.
/// Error therefore grows with the group size, not with ring hops, and
/// every member computes the identical sum.
fn group_sum_wire(
    values: &[Vec<Literal>],
    operand: overlap_hlo::InstrId,
    group: &[u32],
    wire: WireFormat,
) -> Literal {
    if wire.is_lossless() {
        return group_sum(values, operand, group);
    }
    let mut sum = values[operand.index()][group[0] as usize].clone();
    wire.apply(sum.data_mut());
    let mut contribution = Vec::new();
    for &m in &group[1..] {
        let other = &values[operand.index()][m as usize];
        contribution.clear();
        contribution.extend_from_slice(other.data());
        wire.apply(&mut contribution);
        for (a, b) in sum.data_mut().iter_mut().zip(&contribution) {
            *a += b;
        }
    }
    sum
}

fn route_permute(
    values: &[Vec<Literal>],
    operand: overlap_hlo::InstrId,
    pairs: &[(u32, u32)],
    device: usize,
    shape: &Shape,
) -> Literal {
    match pairs.iter().find(|&&(_, dst)| dst as usize == device) {
        Some(&(src, _)) => values[operand.index()][src as usize].clone(),
        None => Literal::zeros(shape.clone()),
    }
}

#[cfg(test)]
mod tests {
    use overlap_hlo::{Builder, DType, DotDims, ReplicaGroups, Shape};

    use super::*;

    fn f32s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    fn lit(dims: &[usize], data: Vec<f64>) -> Literal {
        Literal::from_vec(f32s(dims), data)
    }

    #[test]
    fn all_gather_concatenates_in_group_order() {
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[1, 2]), "x");
        let g = b.all_gather(x, 0, ReplicaGroups::full(2), "g");
        let m = b.build(vec![g]);
        let out = run_spmd(
            &m,
            &[vec![lit(&[1, 2], vec![1.0, 2.0])], vec![lit(&[1, 2], vec![3.0, 4.0])]],
        )
        .unwrap();
        assert_eq!(out[0][0].data(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(out[0][1].data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn reduce_scatter_sums_and_shards() {
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[2, 2]), "x");
        let r = b.reduce_scatter(x, 0, ReplicaGroups::full(2), "r");
        let m = b.build(vec![r]);
        let d0 = lit(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let d1 = lit(&[2, 2], vec![10.0, 20.0, 30.0, 40.0]);
        let out = run_spmd(&m, &[vec![d0], vec![d1]]).unwrap();
        assert_eq!(out[0][0].data(), &[11.0, 22.0]);
        assert_eq!(out[0][1].data(), &[33.0, 44.0]);
    }

    #[test]
    fn all_reduce_replicates_sum() {
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[2]), "x");
        let r = b.all_reduce(x, ReplicaGroups::full(2), "r");
        let m = b.build(vec![r]);
        let out = run_spmd(
            &m,
            &[vec![lit(&[2], vec![1.0, 2.0])], vec![lit(&[2], vec![3.0, 4.0])]],
        )
        .unwrap();
        assert_eq!(out[0][0].data(), &[4.0, 6.0]);
        assert_eq!(out[0][1].data(), &[4.0, 6.0]);
    }

    #[test]
    fn all_reduce_equals_rs_plus_ag() {
        // §2.1: AllReduce == ReduceScatter then AllGather.
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[2]), "x");
        let ar = b.all_reduce(x, ReplicaGroups::full(2), "ar");
        let rs = b.reduce_scatter(x, 0, ReplicaGroups::full(2), "rs");
        let ag = b.all_gather(rs, 0, ReplicaGroups::full(2), "ag");
        let m = b.build(vec![ar, ag]);
        let out = run_spmd(
            &m,
            &[vec![lit(&[2], vec![1.0, -2.0])], vec![lit(&[2], vec![0.5, 8.0])]],
        )
        .unwrap();
        for (a, b) in out[0].iter().zip(&out[1]) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn collective_permute_routes_and_zero_fills() {
        let mut b = Builder::new("m", 3);
        let x = b.parameter(f32s(&[1]), "x");
        // 0 -> 1, 1 -> 2; device 0 receives nothing.
        let p = b.collective_permute(x, vec![(0, 1), (1, 2)], "p");
        let m = b.build(vec![p]);
        let out = run_spmd(
            &m,
            &[
                vec![lit(&[1], vec![10.0])],
                vec![lit(&[1], vec![20.0])],
                vec![lit(&[1], vec![30.0])],
            ],
        )
        .unwrap();
        assert_eq!(out[0][0].data(), &[0.0]);
        assert_eq!(out[0][1].data(), &[10.0]);
        assert_eq!(out[0][2].data(), &[20.0]);
    }

    #[test]
    fn async_permute_matches_sync() {
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[2]), "x");
        let pairs = vec![(0u32, 1u32), (1, 0)];
        let sync = b.collective_permute(x, pairs.clone(), "sync");
        let start = b.collective_permute_start(x, pairs, "start");
        let done = b.collective_permute_done(start, "done");
        let m = b.build(vec![sync, done]);
        let out = run_spmd(
            &m,
            &[vec![lit(&[2], vec![1.0, 2.0])], vec![lit(&[2], vec![3.0, 4.0])]],
        )
        .unwrap();
        for (a, b) in out[0].iter().zip(&out[1]) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn quantized_all_gather_quantizes_each_shard_once() {
        // A wire-annotated AllGather must deliver exactly the per-shard
        // quantization of every member's contribution — one encode per
        // shard, regardless of how it circulates.
        let wire = WireFormat::int8();
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[1, 2]), "x");
        let g = b.all_gather_wire(x, 0, ReplicaGroups::full(2), wire, "g");
        let m = b.build(vec![g]);
        let (d0, d1) = (vec![1.0, 2.7], vec![-3.9, 4.2]);
        let out = run_spmd(
            &m,
            &[vec![lit(&[1, 2], d0.clone())], vec![lit(&[1, 2], d1.clone())]],
        )
        .unwrap();
        let mut want = wire.quantize_dequantize(&d0);
        want.extend(wire.quantize_dequantize(&d1));
        assert_eq!(out[0][0].data(), &want[..]);
        assert_eq!(out[0][1].data(), &want[..]);
    }

    #[test]
    fn quantized_reduction_sums_singly_quantized_contributions() {
        // Reduction semantics: each contribution is quantized once at its
        // source, then summed exactly — so the error is bounded by
        // `group_size` quantization events, not by ring hops.
        let wire = WireFormat::Bf16;
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[2]), "x");
        let ar = b.all_reduce_wire(x, ReplicaGroups::full(2), wire, "ar");
        let m = b.build(vec![ar]);
        let (d0, d1) = (vec![1.001, -2.7], vec![0.339, 8.01]);
        let out =
            run_spmd(&m, &[vec![lit(&[2], d0.clone())], vec![lit(&[2], d1.clone())]]).unwrap();
        let q0 = wire.quantize_dequantize(&d0);
        let q1 = wire.quantize_dequantize(&d1);
        let want: Vec<f64> = q0.iter().zip(&q1).map(|(a, b)| a + b).collect();
        assert_eq!(out[0][0].data(), &want[..]);
        assert_eq!(out[0][1].data(), &want[..]);
        // And the measured error indeed sits inside the documented
        // group-size bound the error-budget gate relies on.
        let exact: Vec<f64> = d0.iter().zip(&d1).map(|(a, b)| a + b).collect();
        let max_abs = exact.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let bound = wire.predicted_rel_error(2) * max_abs;
        for (w, e) in want.iter().zip(&exact) {
            assert!((w - e).abs() <= bound, "error {} over bound {bound}", (w - e).abs());
        }
    }

    #[test]
    fn all_to_all_transposes_shards() {
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[2, 1]), "x");
        let t = b.all_to_all(x, 0, 0, ReplicaGroups::full(2), "t");
        let m = b.build(vec![t]);
        let out = run_spmd(
            &m,
            &[vec![lit(&[2, 1], vec![1.0, 2.0])], vec![lit(&[2, 1], vec![3.0, 4.0])]],
        )
        .unwrap();
        // Device 0 keeps shard 0 of everyone: [1, 3]; device 1: [2, 4].
        assert_eq!(out[0][0].data(), &[1.0, 3.0]);
        assert_eq!(out[0][1].data(), &[2.0, 4.0]);
    }

    #[test]
    fn partition_id_and_index_arithmetic() {
        // shard = (pid + 1) % n, used to dynamic-slice a replicated tensor
        // — the exact index pattern of the looped collective-einsum.
        let n = 4usize;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[4]), "x");
        let pid = b.partition_id("pid");
        let one = b.constant(Shape::scalar(DType::U32), 1.0, "one");
        let nn = b.constant(Shape::scalar(DType::U32), n as f64, "n");
        let sum = b.add(pid, one, "pid_plus_1");
        let idx = b.rem(sum, nn, "idx");
        let sl = b.dynamic_slice(x, &[idx], vec![1], "sl");
        let m = b.build(vec![sl, pid]);
        let inputs: Vec<Vec<Literal>> = (0..n)
            .map(|_| vec![lit(&[4], vec![10.0, 11.0, 12.0, 13.0])])
            .collect();
        let out = run_spmd(&m, &inputs).unwrap();
        for (d, (sliced, pid)) in out[0].iter().zip(&out[1]).enumerate() {
            let expect = 10.0 + ((d + 1) % n) as f64;
            assert_eq!(sliced.data(), &[expect]);
            assert_eq!(pid.as_scalar(), d as f64);
        }
    }

    #[test]
    fn subgroup_all_gather() {
        let mut b = Builder::new("m", 4);
        let x = b.parameter(f32s(&[1]), "x");
        let groups = ReplicaGroups::new(vec![vec![0, 2], vec![1, 3]]).unwrap();
        let g = b.all_gather(x, 0, groups, "g");
        let m = b.build(vec![g]);
        let inputs: Vec<Vec<Literal>> =
            (0..4).map(|d| vec![lit(&[1], vec![d as f64])]).collect();
        let out = run_spmd(&m, &inputs).unwrap();
        assert_eq!(out[0][0].data(), &[0.0, 2.0]);
        assert_eq!(out[0][2].data(), &[0.0, 2.0]);
        assert_eq!(out[0][1].data(), &[1.0, 3.0]);
        assert_eq!(out[0][3].data(), &[1.0, 3.0]);
    }

    #[test]
    fn sharded_matmul_end_to_end() {
        // Fig. 2 pattern, one layer: x:[B/N, F] per device, w:[F/N, H]
        // per device; AllGather(w) then einsum == full matmul.
        let n = 2;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[1, 4]), "x");
        let w = b.parameter(f32s(&[2, 3]), "w");
        let wg = b.all_gather(w, 0, ReplicaGroups::full(n), "wg");
        let y = b.einsum(x, wg, DotDims::matmul(), "y");
        let m = b.build(vec![y]);

        let full_w = lit(&[4, 3], (0..12).map(|i| i as f64).collect());
        let w0 = kernels::slice(&full_w, &[0, 0], &[2, 3]);
        let w1 = kernels::slice(&full_w, &[2, 0], &[4, 3]);
        let x0 = lit(&[1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let x1 = lit(&[1, 4], vec![5.0, 6.0, 7.0, 8.0]);

        let out = run_spmd(&m, &[vec![x0.clone(), w0], vec![x1.clone(), w1]]).unwrap();
        let expect0 = kernels::einsum(&x0, &full_w, &DotDims::matmul());
        let expect1 = kernels::einsum(&x1, &full_w, &DotDims::matmul());
        assert!(out[0][0].allclose(&expect0, 1e-12));
        assert!(out[0][1].allclose(&expect1, 1e-12));
    }

    #[test]
    fn bad_inputs_rejected() {
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[2]), "x");
        let m = b.build(vec![x]);
        assert!(run_spmd(&m, &[vec![lit(&[2], vec![0.0, 0.0])]]).is_err());
        assert!(run_spmd(&m, &[vec![], vec![]]).is_err());
        let wrong_shape = lit(&[3], vec![0.0; 3]);
        assert!(
            run_spmd(&m, &[vec![wrong_shape.clone()], vec![wrong_shape]]).is_err()
        );
    }
}
