//! Reference (unoptimized, obviously-correct) kernels for every op.
//!
//! These are the ground truth the equivalence tests compare against; they
//! favor clarity over speed and are only used on test-sized tensors.

use overlap_hlo::{BinaryKind, DotDims, PadDim, Shape, UnaryKind};

use crate::Literal;

/// Where each operand dimension of an einsum gets its index from.
#[derive(Debug, Clone, Copy)]
enum DimSource {
    /// From output position `i` (batch or free dimension).
    Out(usize),
    /// From contracting-loop position `i`.
    Contract(usize),
}

/// Computes, for each operand dimension, where its index comes from.
/// `free_offset` is where this operand's free block starts in the output
/// (batch count for the LHS; batch count + LHS free count for the RHS).
fn dim_sources(dims: &DotDims, rank: usize, is_lhs: bool, free_offset: usize) -> Vec<DimSource> {
    let mut sources = vec![DimSource::Out(0); rank];
    let pick = |pair: &(usize, usize)| if is_lhs { pair.0 } else { pair.1 };
    for (bi, pair) in dims.batch().iter().enumerate() {
        sources[pick(pair)] = DimSource::Out(bi);
    }
    for (ki, pair) in dims.contracting().iter().enumerate() {
        sources[pick(pair)] = DimSource::Contract(ki);
    }
    let free: Vec<usize> =
        if is_lhs { dims.lhs_free_dims(rank) } else { dims.rhs_free_dims(rank) };
    for (fi, &d) in free.iter().enumerate() {
        sources[d] = DimSource::Out(free_offset + fi);
    }
    sources
}

/// Reference einsum over two literals.
///
/// # Panics
///
/// Panics if the dimension numbers are inconsistent with the shapes (the
/// verifier guarantees this never happens for verified modules).
#[must_use]
pub fn einsum(lhs: &Literal, rhs: &Literal, dims: &DotDims) -> Literal {
    let out_shape = dims
        .output_shape(lhs.shape(), rhs.shape())
        .expect("einsum shapes validated by verifier");
    // Fast path: plain 2-D matmul `[m,k] x [k,n]` (the overwhelmingly
    // common case in tests and examples) with flat, cache-friendly
    // indexing.
    if dims.batch().is_empty()
        && dims.contracting() == [(1, 0)]
        && lhs.shape().rank() == 2
        && rhs.shape().rank() == 2
    {
        let (m, k) = (lhs.shape().dim(0), lhs.shape().dim(1));
        let n = rhs.shape().dim(1);
        let (a, b) = (lhs.data(), rhs.data());
        let mut out = vec![0.0f64; m * n];
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        return Literal::from_vec(out_shape, out);
    }
    let lhs_rank = lhs.shape().rank();
    let rhs_rank = rhs.shape().rank();
    let lhs_free_count = dims.lhs_free_dims(lhs_rank).len();
    let lhs_src = dim_sources(dims, lhs_rank, true, dims.batch().len());
    let rhs_src = dim_sources(dims, rhs_rank, false, dims.batch().len() + lhs_free_count);

    let contract_sizes: Vec<usize> =
        dims.contracting().iter().map(|&(l, _)| lhs.shape().dim(l)).collect();
    let contract_total: usize = contract_sizes.iter().product();

    let mut out = Literal::zeros(out_shape.clone());
    let mut lhs_idx = vec![0usize; lhs_rank];
    let mut rhs_idx = vec![0usize; rhs_rank];
    let mut k_idx = vec![0usize; contract_sizes.len()];
    for out_idx in Literal::indices(&out_shape) {
        let mut acc = 0.0f64;
        for mut k_flat in 0..contract_total {
            for d in (0..contract_sizes.len()).rev() {
                k_idx[d] = k_flat % contract_sizes[d];
                k_flat /= contract_sizes[d];
            }
            for (d, src) in lhs_src.iter().enumerate() {
                lhs_idx[d] = match src {
                    DimSource::Out(i) => out_idx[*i],
                    DimSource::Contract(i) => k_idx[*i],
                };
            }
            for (d, src) in rhs_src.iter().enumerate() {
                rhs_idx[d] = match src {
                    DimSource::Out(i) => out_idx[*i],
                    DimSource::Contract(i) => k_idx[*i],
                };
            }
            acc += lhs.at(&lhs_idx) * rhs.at(&rhs_idx);
        }
        out.set(&out_idx, acc);
    }
    out
}

/// Elementwise binary op on same-shaped literals.
///
/// # Panics
///
/// Panics if the shapes' dimensions differ.
#[must_use]
pub fn binary(kind: BinaryKind, a: &Literal, b: &Literal) -> Literal {
    assert_eq!(a.shape().dims(), b.shape().dims(), "binary shape mismatch");
    let data = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| match kind {
            BinaryKind::Add => x + y,
            BinaryKind::Sub => x - y,
            BinaryKind::Mul => x * y,
            BinaryKind::Div => x / y,
            BinaryKind::Max => x.max(y),
            BinaryKind::Min => x.min(y),
            BinaryKind::Rem => (x as i64).rem_euclid(y as i64) as f64,
        })
        .collect();
    Literal::from_vec(a.shape().clone(), data)
}

/// Elementwise unary op.
#[must_use]
pub fn unary(kind: UnaryKind, x: &Literal) -> Literal {
    let data = x
        .data()
        .iter()
        .map(|&v| match kind {
            UnaryKind::Neg => -v,
            UnaryKind::Relu => v.max(0.0),
            UnaryKind::Step => {
                if v > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        })
        .collect();
    Literal::from_vec(x.shape().clone(), data)
}

/// Broadcast per the IR's `Broadcast` semantics.
///
/// # Panics
///
/// Panics if the mapping is inconsistent with the shapes.
#[must_use]
pub fn broadcast(x: &Literal, out_shape: &Shape, operand_dims: &[usize]) -> Literal {
    let mut out = Literal::zeros(out_shape.clone());
    let mut x_idx = vec![0usize; x.shape().rank()];
    for out_idx in Literal::indices(out_shape) {
        for (i, &d) in operand_dims.iter().enumerate() {
            x_idx[i] = out_idx[d];
        }
        out.set(&out_idx, x.at(&x_idx));
    }
    out
}

/// Transpose: output dim `i` is operand dim `perm[i]`.
///
/// # Panics
///
/// Panics if `perm` is not a permutation.
#[must_use]
pub fn transpose(x: &Literal, perm: &[usize]) -> Literal {
    let dims: Vec<usize> = perm.iter().map(|&p| x.shape().dim(p)).collect();
    let out_shape = Shape::new(x.shape().dtype(), dims);
    let mut out = Literal::zeros(out_shape.clone());
    let mut x_idx = vec![0usize; x.shape().rank()];
    for out_idx in Literal::indices(&out_shape) {
        for (i, &p) in perm.iter().enumerate() {
            x_idx[p] = out_idx[i];
        }
        out.set(&out_idx, x.at(&x_idx));
    }
    out
}

/// Static slice `[starts, limits)`.
///
/// # Panics
///
/// Panics if the bounds are invalid.
#[must_use]
pub fn slice(x: &Literal, starts: &[usize], limits: &[usize]) -> Literal {
    let dims: Vec<usize> = starts.iter().zip(limits).map(|(&s, &l)| l - s).collect();
    let out_shape = Shape::new(x.shape().dtype(), dims);
    let mut out = Literal::zeros(out_shape.clone());
    let mut x_idx = vec![0usize; x.shape().rank()];
    for out_idx in Literal::indices(&out_shape) {
        for d in 0..x_idx.len() {
            x_idx[d] = out_idx[d] + starts[d];
        }
        out.set(&out_idx, x.at(&x_idx));
    }
    out
}

/// Clamps a dynamic start index per XLA semantics.
fn clamp_start(start: i64, dim: usize, size: usize) -> usize {
    start.clamp(0, (dim - size) as i64) as usize
}

/// Dynamic slice with XLA index clamping.
///
/// # Panics
///
/// Panics if `sizes` exceed the operand dimensions.
#[must_use]
pub fn dynamic_slice(x: &Literal, starts: &[i64], sizes: &[usize]) -> Literal {
    let clamped: Vec<usize> = starts
        .iter()
        .zip(sizes)
        .enumerate()
        .map(|(d, (&s, &size))| clamp_start(s, x.shape().dim(d), size))
        .collect();
    let limits: Vec<usize> = clamped.iter().zip(sizes).map(|(&s, &z)| s + z).collect();
    slice(x, &clamped, &limits)
}

/// Dynamic update slice with XLA index clamping.
///
/// # Panics
///
/// Panics if the update exceeds the operand dimensions.
#[must_use]
pub fn dynamic_update_slice(x: &Literal, update: &Literal, starts: &[i64]) -> Literal {
    let clamped: Vec<usize> = starts
        .iter()
        .enumerate()
        .map(|(d, &s)| clamp_start(s, x.shape().dim(d), update.shape().dim(d)))
        .collect();
    let mut out = x.clone();
    let mut x_idx = vec![0usize; x.shape().rank()];
    for u_idx in Literal::indices(update.shape()) {
        for d in 0..x_idx.len() {
            x_idx[d] = u_idx[d] + clamped[d];
        }
        out.set(&x_idx, update.at(&u_idx));
    }
    out
}

/// Concatenation along `dim`.
///
/// # Panics
///
/// Panics if operands disagree off-`dim` or the list is empty.
#[must_use]
pub fn concatenate(xs: &[&Literal], dim: usize) -> Literal {
    assert!(!xs.is_empty());
    let total: usize = xs.iter().map(|x| x.shape().dim(dim)).sum();
    let out_shape = xs[0].shape().with_dim(dim, total);
    let mut out = Literal::zeros(out_shape);
    let mut offset = 0usize;
    for x in xs {
        let mut o_idx = vec![0usize; x.shape().rank()];
        for idx in Literal::indices(x.shape()) {
            o_idx.copy_from_slice(&idx);
            o_idx[dim] += offset;
            out.set(&o_idx, x.at(&idx));
        }
        offset += x.shape().dim(dim);
    }
    out
}

/// Pad with a scalar value.
///
/// # Panics
///
/// Panics if `config` arity differs from the operand rank.
#[must_use]
pub fn pad(x: &Literal, value: f64, config: &[PadDim]) -> Literal {
    let dims: Vec<usize> = x
        .shape()
        .dims()
        .iter()
        .zip(config)
        .map(|(&d, p)| d + p.low + p.high)
        .collect();
    let out_shape = Shape::new(x.shape().dtype(), dims);
    let mut out = Literal::splat(out_shape, value);
    let mut o_idx = vec![0usize; x.shape().rank()];
    for idx in Literal::indices(x.shape()) {
        for d in 0..o_idx.len() {
            o_idx[d] = idx[d] + config[d].low;
        }
        out.set(&o_idx, x.at(&idx));
    }
    out
}

/// Iota: elements count up along `dim`.
#[must_use]
pub fn iota(shape: &Shape, dim: usize) -> Literal {
    let mut out = Literal::zeros(shape.clone());
    for idx in Literal::indices(shape) {
        let v = idx[dim] as f64;
        out.set(&idx, v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlap_hlo::DType;

    fn f32s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    fn lit(dims: &[usize], data: Vec<f64>) -> Literal {
        Literal::from_vec(f32s(dims), data)
    }

    #[test]
    fn einsum_matmul() {
        // [[1,2],[3,4]] x [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = lit(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = lit(&[2, 2], vec![5.0, 6.0, 7.0, 8.0]);
        let c = einsum(&a, &b, &DotDims::matmul());
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn einsum_batch() {
        let a = lit(&[2, 1, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = lit(&[2, 2, 1], vec![1.0, 1.0, 2.0, 2.0]);
        let c = einsum(&a, &b, &DotDims::batch_matmul());
        assert_eq!(c.shape().dims(), &[2, 1, 1]);
        assert_eq!(c.data(), &[3.0, 14.0]);
    }

    #[test]
    fn einsum_outer_product() {
        let a = lit(&[2], vec![1.0, 2.0]);
        let b = lit(&[3], vec![1.0, 10.0, 100.0]);
        let d = DotDims::new(vec![], vec![]).unwrap();
        let c = einsum(&a, &b, &d);
        assert_eq!(c.shape().dims(), &[2, 3]);
        assert_eq!(c.data(), &[1.0, 10.0, 100.0, 2.0, 20.0, 200.0]);
    }

    #[test]
    fn einsum_contract_first_dim() {
        // Contract lhs dim 0 with rhs dim 0: a^T @ b.
        let a = lit(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = lit(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let d = DotDims::new(vec![], vec![(0, 0)]).unwrap();
        let c = einsum(&a, &b, &d);
        assert_eq!(c.shape().dims(), &[3, 2]);
        assert_eq!(c.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn binary_ops() {
        let a = lit(&[3], vec![1.0, 5.0, -2.0]);
        let b = lit(&[3], vec![2.0, 3.0, 4.0]);
        assert_eq!(binary(BinaryKind::Add, &a, &b).data(), &[3.0, 8.0, 2.0]);
        assert_eq!(binary(BinaryKind::Sub, &a, &b).data(), &[-1.0, 2.0, -6.0]);
        assert_eq!(binary(BinaryKind::Mul, &a, &b).data(), &[2.0, 15.0, -8.0]);
        assert_eq!(binary(BinaryKind::Max, &a, &b).data(), &[2.0, 5.0, 4.0]);
        assert_eq!(binary(BinaryKind::Min, &a, &b).data(), &[1.0, 3.0, -2.0]);
        // rem_euclid keeps results non-negative (index arithmetic).
        assert_eq!(binary(BinaryKind::Rem, &a, &b).data(), &[1.0, 2.0, 2.0]);
    }

    #[test]
    fn unary_neg() {
        let a = lit(&[2], vec![1.0, -2.0]);
        assert_eq!(unary(UnaryKind::Neg, &a).data(), &[-1.0, 2.0]);
    }

    #[test]
    fn broadcast_vector_to_matrix() {
        let v = lit(&[2], vec![1.0, 2.0]);
        let out = broadcast(&v, &f32s(&[2, 3]), &[0]);
        assert_eq!(out.data(), &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        let out2 = broadcast(&v, &f32s(&[3, 2]), &[1]);
        assert_eq!(out2.data(), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn transpose_2d() {
        let a = lit(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = transpose(&a, &[1, 0]);
        assert_eq!(t.shape().dims(), &[3, 2]);
        assert_eq!(t.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn slicing() {
        let a = lit(&[2, 4], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let s = slice(&a, &[0, 1], &[2, 3]);
        assert_eq!(s.data(), &[1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn dynamic_slice_clamps() {
        let a = lit(&[4], vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(dynamic_slice(&a, &[1], &[2]).data(), &[1.0, 2.0]);
        // Start 3 with size 2 clamps to 2.
        assert_eq!(dynamic_slice(&a, &[3], &[2]).data(), &[2.0, 3.0]);
        // Negative start clamps to 0.
        assert_eq!(dynamic_slice(&a, &[-5], &[2]).data(), &[0.0, 1.0]);
    }

    #[test]
    fn dynamic_update_slice_clamps() {
        let a = lit(&[4], vec![0.0; 4]);
        let u = lit(&[2], vec![9.0, 9.0]);
        assert_eq!(dynamic_update_slice(&a, &u, &[1]).data(), &[0.0, 9.0, 9.0, 0.0]);
        assert_eq!(dynamic_update_slice(&a, &u, &[9]).data(), &[0.0, 0.0, 9.0, 9.0]);
    }

    #[test]
    fn concatenation() {
        let a = lit(&[1, 2], vec![1.0, 2.0]);
        let b = lit(&[1, 2], vec![3.0, 4.0]);
        assert_eq!(concatenate(&[&a, &b], 0).data(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(concatenate(&[&a, &b], 1).data(), &[1.0, 2.0, 3.0, 4.0]);
        let c1 = concatenate(&[&a, &b], 1);
        assert_eq!(c1.shape().dims(), &[1, 4]);
    }

    #[test]
    fn padding() {
        let a = lit(&[2], vec![1.0, 2.0]);
        let p = pad(&a, -1.0, &[PadDim::new(1, 2)]);
        assert_eq!(p.data(), &[-1.0, 1.0, 2.0, -1.0, -1.0]);
    }

    #[test]
    fn pad_then_max_equals_concat() {
        // The §5.4.3 rewrite: Concat(a, b) == Max(PadHigh(a), PadLow(b))
        // for the padding value -inf.
        let a = lit(&[2], vec![1.0, 2.0]);
        let b = lit(&[2], vec![3.0, 4.0]);
        let pa = pad(&a, f64::NEG_INFINITY, &[PadDim::new(0, 2)]);
        let pb = pad(&b, f64::NEG_INFINITY, &[PadDim::new(2, 0)]);
        let m = binary(BinaryKind::Max, &pa, &pb);
        let c = concatenate(&[&a, &b], 0);
        assert_eq!(m.data(), c.data());
    }

    #[test]
    fn iota_counts_along_dim() {
        let s = Shape::new(DType::S32, vec![2, 3]);
        assert_eq!(iota(&s, 1).data(), &[0.0, 1.0, 2.0, 0.0, 1.0, 2.0]);
        assert_eq!(iota(&s, 0).data(), &[0.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
    }
}
