//! Interpreter error type.

use std::error::Error;
use std::fmt;

use overlap_hlo::HloError;

/// Errors produced while evaluating a module on the SPMD interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EvalError {
    /// The module failed verification before execution.
    InvalidModule(HloError),
    /// The per-device input lists have the wrong arity.
    BadInputs(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::InvalidModule(e) => write!(f, "invalid module: {e}"),
            EvalError::BadInputs(m) => write!(f, "bad inputs: {m}"),
        }
    }
}

impl Error for EvalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EvalError::InvalidModule(e) => Some(e),
            EvalError::BadInputs(_) => None,
        }
    }
}

impl From<HloError> for EvalError {
    fn from(e: HloError) -> Self {
        EvalError::InvalidModule(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = EvalError::from(HloError::Verification("x".into()));
        assert!(e.to_string().contains("invalid module"));
        assert!(Error::source(&e).is_some());
        let b = EvalError::BadInputs("y".into());
        assert!(Error::source(&b).is_none());
        assert!(b.to_string().contains("bad inputs"));
    }
}
