//! Dense tensor values.

use std::fmt;

use overlap_hlo::Shape;

/// A dense tensor value in row-major order.
///
/// Elements are stored as `f64` regardless of the declared
/// [`DType`](overlap_hlo::DType); integer dtypes hold exactly-representable
/// integral values (the interpreter only performs integer arithmetic on
/// small indices, far below the 2^53 exactness limit). This keeps the
/// reference kernels simple while preserving bit-level reasoning for the
/// equivalence tests.
#[derive(Clone, PartialEq)]
pub struct Literal {
    shape: Shape,
    data: Vec<f64>,
}

impl Literal {
    /// Creates a literal from a shape and row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.num_elements()`.
    #[must_use]
    pub fn from_vec(shape: Shape, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            shape.num_elements(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Literal { shape, data }
    }

    /// An all-`value` literal of the given shape.
    #[must_use]
    pub fn splat(shape: Shape, value: f64) -> Self {
        let n = shape.num_elements();
        Literal { shape, data: vec![value; n] }
    }

    /// An all-zeros literal of the given shape.
    #[must_use]
    pub fn zeros(shape: Shape) -> Self {
        Literal::splat(shape, 0.0)
    }

    /// A rank-0 scalar literal.
    #[must_use]
    pub fn scalar(dtype: overlap_hlo::DType, value: f64) -> Self {
        Literal::from_vec(Shape::new(dtype, vec![]), vec![value])
    }

    /// A literal filled by `f(flat_index)`.
    #[must_use]
    pub fn from_fn(shape: Shape, f: impl Fn(usize) -> f64) -> Self {
        let n = shape.num_elements();
        Literal { shape, data: (0..n).map(f).collect() }
    }

    /// The shape.
    #[must_use]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The row-major element data.
    #[must_use]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the row-major element data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The value of a rank-0 (or single-element) literal.
    ///
    /// # Panics
    ///
    /// Panics if the literal has more than one element.
    #[must_use]
    pub fn as_scalar(&self) -> f64 {
        assert_eq!(self.data.len(), 1, "as_scalar on non-scalar {}", self.shape);
        self.data[0]
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or has the wrong arity.
    #[must_use]
    pub fn at(&self, index: &[usize]) -> f64 {
        self.data[self.flat_index(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or has the wrong arity.
    pub fn set(&mut self, index: &[usize], value: f64) {
        let i = self.flat_index(index);
        self.data[i] = value;
    }

    fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.rank(), "index arity");
        let mut flat = 0usize;
        for (d, &i) in index.iter().enumerate() {
            assert!(i < self.shape.dim(d), "index {i} out of bounds on dim {d}");
            flat = flat * self.shape.dim(d) + i;
        }
        flat
    }

    /// Returns a literal with the same data but a new shape of equal
    /// element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    #[must_use]
    pub fn reshaped(&self, shape: Shape) -> Self {
        assert_eq!(self.shape.num_elements(), shape.num_elements(), "reshape count");
        Literal { shape, data: self.data.clone() }
    }

    /// Whether all elements are within `tol` of `other`'s elements.
    ///
    /// # Panics
    ///
    /// Panics if the shapes' dimensions differ.
    #[must_use]
    pub fn allclose(&self, other: &Literal, tol: f64) -> bool {
        assert_eq!(self.shape.dims(), other.shape.dims(), "allclose shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .all(|(a, b)| (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())))
    }

    /// Largest absolute elementwise difference from `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes' dimensions differ.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Literal) -> f64 {
        assert_eq!(self.shape.dims(), other.shape.dims(), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Iterates over all multi-dimensional indices of `shape` in row-major
    /// order.
    pub fn indices(shape: &Shape) -> impl Iterator<Item = Vec<usize>> + '_ {
        let rank = shape.rank();
        let total = shape.num_elements();
        (0..total).map(move |mut flat| {
            let mut idx = vec![0usize; rank];
            for d in (0..rank).rev() {
                idx[d] = flat % shape.dim(d);
                flat /= shape.dim(d);
            }
            idx
        })
    }
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Literal({} ", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, "{:?}", self.data)?;
        } else {
            write!(f, "[{} elements, first {:?}…]", self.data.len(), &self.data[..8])?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlap_hlo::DType;

    fn f32s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    #[test]
    fn from_vec_checks_len() {
        let l = Literal::from_vec(f32s(&[2, 2]), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(l.at(&[1, 0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_len() {
        let _ = Literal::from_vec(f32s(&[2, 2]), vec![1.0]);
    }

    #[test]
    fn set_and_get() {
        let mut l = Literal::zeros(f32s(&[2, 3]));
        l.set(&[1, 2], 7.0);
        assert_eq!(l.at(&[1, 2]), 7.0);
        assert_eq!(l.data()[5], 7.0);
    }

    #[test]
    fn indices_row_major() {
        let s = f32s(&[2, 2]);
        let idx: Vec<Vec<usize>> = Literal::indices(&s).collect();
        assert_eq!(idx, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn allclose_and_diff() {
        let a = Literal::from_vec(f32s(&[2]), vec![1.0, 2.0]);
        let b = Literal::from_vec(f32s(&[2]), vec![1.0, 2.0 + 1e-12]);
        assert!(a.allclose(&b, 1e-9));
        assert!(a.max_abs_diff(&b) < 1e-9);
        let c = Literal::from_vec(f32s(&[2]), vec![1.0, 3.0]);
        assert!(!a.allclose(&c, 1e-9));
        assert_eq!(a.max_abs_diff(&c), 1.0);
    }

    #[test]
    fn scalar_and_splat() {
        assert_eq!(Literal::scalar(DType::S32, 3.0).as_scalar(), 3.0);
        let s = Literal::splat(f32s(&[3]), 2.5);
        assert_eq!(s.data(), &[2.5, 2.5, 2.5]);
    }

    #[test]
    fn debug_truncates() {
        let big = Literal::zeros(f32s(&[100]));
        let text = format!("{big:?}");
        assert!(text.contains("100 elements"));
    }
}
