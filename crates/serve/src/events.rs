//! The structured serve event bus: typed progress events with
//! pluggable observers.
//!
//! Every step of a request's life — accept, admit, batch coalesce,
//! compile start/finish, cache outcome, shed, drain — is published as
//! one [`ServeEvent`] wrapped in an [`EventRecord`] (monotone sequence
//! number + milliseconds since the bus was built). Observers are
//! `Arc<dyn EventObserver>`; the bus fans each record out to all of
//! them synchronously, so an observer must be cheap (counter bumps,
//! buffered writes) and must never block on the emitting thread.
//!
//! Shipped observers:
//!
//! * [`MetricsObserver`] — the PR-5 histogram/counter metrics,
//!   re-expressed as a bus subscriber instead of ad-hoc calls strewn
//!   through the server.
//! * [`ChromeTraceObserver`] — compile and request spans as a
//!   `chrome://tracing` / Perfetto JSON array.
//! * [`RecordObserver`] — the full stream as JSON lines
//!   (`overlapd --record FILE`); [`parse_records`] reads it back and
//!   [`DecisionSummary`] projects it to the deterministic decisions
//!   (cache outcomes, sheds, coalesces) for record/replay assertions.
//! * [`CollectObserver`] — an in-memory `Vec<EventRecord>` for tests.
//! * [`SubscriptionHub`] — fan-out to live `subscribe` connections:
//!   each event is encoded once as a `Response::Event` frame and
//!   queued per subscriber; the event loop drains the queues into the
//!   matching connections' write buffers.
//!
//! The wire/file schema is one object per record:
//! `{"seq": N, "t_ms": T, "event": {"type": "<kind>", ...fields}}` —
//! documented field-by-field in DESIGN.md §Service layer.

use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use overlap_json::{FromJson, Json, ToJson};

use crate::metrics::ServerMetrics;

/// One typed step in the life of the server. `conn` and `req` are the
/// server's own monotone identifiers (first connection is 1; request
/// ids are global, not per-connection).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeEvent {
    /// A connection was accepted into the event loop.
    Accept {
        /// Connection id.
        conn: u64,
    },
    /// A frame decoded into a request and entered service.
    Admit {
        /// Connection id.
        conn: u64,
        /// Request id.
        req: u64,
        /// Request kind (`compile`, `ping`, `stats`, `shutdown`,
        /// `subscribe`).
        kind: String,
        /// Whether the connection already had at least one request in
        /// flight when this one arrived (wire pipelining observed).
        pipelined: bool,
    },
    /// A compile request joined an already in-flight batch with the
    /// same `(module, machine, options, faults)` fingerprint instead
    /// of dispatching its own job.
    BatchCoalesce {
        /// Connection id of the joining request.
        conn: u64,
        /// Request id of the joining request.
        req: u64,
        /// Batch key (hex fingerprint).
        batch: String,
    },
    /// A compile job left the dispatch queue and started executing on
    /// a pool worker.
    CompileStart {
        /// Batch key (hex fingerprint).
        batch: String,
        /// Model label of the batch's representative request.
        model: String,
    },
    /// A compile job finished (successfully or not).
    CompileFinish {
        /// Batch key (hex fingerprint).
        batch: String,
        /// Model label of the batch's representative request.
        model: String,
        /// Wall-clock the pool worker spent executing.
        compile_ms: f64,
        /// `memory`, `disk`, `compiled`, or `error`.
        outcome: String,
    },
    /// Cache provenance of one answered compile request (`memory`,
    /// `disk`, `compiled`, or `coalesced` for batch followers).
    CacheOutcome {
        /// Connection id.
        conn: u64,
        /// Request id.
        req: u64,
        /// The provenance string, exactly as `ServedInfo::source`.
        source: String,
    },
    /// Load was refused with a typed `overloaded` answer.
    Shed {
        /// Connection id (0 when the connection was shed at accept,
        /// before it was assigned an id).
        conn: u64,
        /// `connection` (shed at accept) or `request` (dispatch queue
        /// full).
        scope: String,
    },
    /// One request was fully answered; phase timings in milliseconds.
    Done {
        /// Connection id.
        conn: u64,
        /// Request id.
        req: u64,
        /// Request kind, as in [`ServeEvent::Admit`].
        kind: String,
        /// Whether the answer was a success response.
        ok: bool,
        /// Decode-to-dispatch wait (admission + dispatch queue).
        queue_ms: f64,
        /// Pool execution time (0 for inline requests).
        compile_ms: f64,
        /// Response encoding time.
        serialize_ms: f64,
    },
    /// The server began draining.
    Drain {
        /// `signal`, `shutdown-request`, or `listener-error`.
        reason: String,
    },
    /// A connection left the event loop.
    Close {
        /// Connection id.
        conn: u64,
    },
    /// A cache-peering `fetch` frame was answered.
    Fetch {
        /// Connection id.
        conn: u64,
        /// Request id.
        req: u64,
        /// Hex artifact key asked for.
        key: String,
        /// Whether a local entry was shipped back.
        hit: bool,
    },
    /// One outbound peer-fetch attempt this node made on a local miss.
    PeerFetch {
        /// Peer node id.
        node: String,
        /// Hex artifact key asked for.
        key: String,
        /// `hit`, `absent` (peer answered but holds no entry),
        /// `rejected` (entry failed revalidation), or `unreachable`.
        outcome: String,
    },
    /// A peer's health state changed in this node's (or the router's)
    /// failure tracker.
    PeerState {
        /// Peer node id.
        node: String,
        /// `alive`, `probation`, or `ejected`.
        state: String,
    },
}

impl ServeEvent {
    /// The stable `type` tag.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ServeEvent::Accept { .. } => "accept",
            ServeEvent::Admit { .. } => "admit",
            ServeEvent::BatchCoalesce { .. } => "batch-coalesce",
            ServeEvent::CompileStart { .. } => "compile-start",
            ServeEvent::CompileFinish { .. } => "compile-finish",
            ServeEvent::CacheOutcome { .. } => "cache-outcome",
            ServeEvent::Shed { .. } => "shed",
            ServeEvent::Done { .. } => "done",
            ServeEvent::Drain { .. } => "drain",
            ServeEvent::Close { .. } => "close",
            ServeEvent::Fetch { .. } => "fetch",
            ServeEvent::PeerFetch { .. } => "peer-fetch",
            ServeEvent::PeerState { .. } => "peer-state",
        }
    }
}

impl ToJson for ServeEvent {
    fn to_json(&self) -> Json {
        let v = Json::obj().with("type", self.kind());
        match self {
            ServeEvent::Accept { conn } | ServeEvent::Close { conn } => v.with("conn", *conn),
            ServeEvent::Admit { conn, req, kind, pipelined } => v
                .with("conn", *conn)
                .with("req", *req)
                .with("kind", kind.as_str())
                .with("pipelined", *pipelined),
            ServeEvent::BatchCoalesce { conn, req, batch } => {
                v.with("conn", *conn).with("req", *req).with("batch", batch.as_str())
            }
            ServeEvent::CompileStart { batch, model } => {
                v.with("batch", batch.as_str()).with("model", model.as_str())
            }
            ServeEvent::CompileFinish { batch, model, compile_ms, outcome } => v
                .with("batch", batch.as_str())
                .with("model", model.as_str())
                .with("compile_ms", *compile_ms)
                .with("outcome", outcome.as_str()),
            ServeEvent::CacheOutcome { conn, req, source } => {
                v.with("conn", *conn).with("req", *req).with("source", source.as_str())
            }
            ServeEvent::Shed { conn, scope } => {
                v.with("conn", *conn).with("scope", scope.as_str())
            }
            ServeEvent::Done { conn, req, kind, ok, queue_ms, compile_ms, serialize_ms } => v
                .with("conn", *conn)
                .with("req", *req)
                .with("kind", kind.as_str())
                .with("ok", *ok)
                .with("queue_ms", *queue_ms)
                .with("compile_ms", *compile_ms)
                .with("serialize_ms", *serialize_ms),
            ServeEvent::Drain { reason } => v.with("reason", reason.as_str()),
            ServeEvent::Fetch { conn, req, key, hit } => v
                .with("conn", *conn)
                .with("req", *req)
                .with("key", key.as_str())
                .with("hit", *hit),
            ServeEvent::PeerFetch { node, key, outcome } => v
                .with("node", node.as_str())
                .with("key", key.as_str())
                .with("outcome", outcome.as_str()),
            ServeEvent::PeerState { node, state } => {
                v.with("node", node.as_str()).with("state", state.as_str())
            }
        }
    }
}

impl FromJson for ServeEvent {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v.decode_field::<String>("type")?.as_str() {
            "accept" => Ok(ServeEvent::Accept { conn: v.decode_field("conn")? }),
            "close" => Ok(ServeEvent::Close { conn: v.decode_field("conn")? }),
            "admit" => Ok(ServeEvent::Admit {
                conn: v.decode_field("conn")?,
                req: v.decode_field("req")?,
                kind: v.decode_field("kind")?,
                pipelined: v.decode_field("pipelined")?,
            }),
            "batch-coalesce" => Ok(ServeEvent::BatchCoalesce {
                conn: v.decode_field("conn")?,
                req: v.decode_field("req")?,
                batch: v.decode_field("batch")?,
            }),
            "compile-start" => Ok(ServeEvent::CompileStart {
                batch: v.decode_field("batch")?,
                model: v.decode_field("model")?,
            }),
            "compile-finish" => Ok(ServeEvent::CompileFinish {
                batch: v.decode_field("batch")?,
                model: v.decode_field("model")?,
                compile_ms: v.decode_field("compile_ms")?,
                outcome: v.decode_field("outcome")?,
            }),
            "cache-outcome" => Ok(ServeEvent::CacheOutcome {
                conn: v.decode_field("conn")?,
                req: v.decode_field("req")?,
                source: v.decode_field("source")?,
            }),
            "shed" => Ok(ServeEvent::Shed {
                conn: v.decode_field("conn")?,
                scope: v.decode_field("scope")?,
            }),
            "done" => Ok(ServeEvent::Done {
                conn: v.decode_field("conn")?,
                req: v.decode_field("req")?,
                kind: v.decode_field("kind")?,
                ok: v.decode_field("ok")?,
                queue_ms: v.decode_field("queue_ms")?,
                compile_ms: v.decode_field("compile_ms")?,
                serialize_ms: v.decode_field("serialize_ms")?,
            }),
            "drain" => Ok(ServeEvent::Drain { reason: v.decode_field("reason")? }),
            "fetch" => Ok(ServeEvent::Fetch {
                conn: v.decode_field("conn")?,
                req: v.decode_field("req")?,
                key: v.decode_field("key")?,
                hit: v.decode_field("hit")?,
            }),
            "peer-fetch" => Ok(ServeEvent::PeerFetch {
                node: v.decode_field("node")?,
                key: v.decode_field("key")?,
                outcome: v.decode_field("outcome")?,
            }),
            "peer-state" => Ok(ServeEvent::PeerState {
                node: v.decode_field("node")?,
                state: v.decode_field("state")?,
            }),
            other => Err(format!("unknown serve event type {other:?}")),
        }
    }
}

/// A [`ServeEvent`] stamped by the bus.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Monotone per-bus sequence number, starting at 1.
    pub seq: u64,
    /// Milliseconds since the bus was built. Wall-clock flavored;
    /// *not* part of any determinism contract (see
    /// [`DecisionSummary`]).
    pub t_ms: f64,
    /// The typed event.
    pub event: ServeEvent,
}

impl ToJson for EventRecord {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("seq", self.seq)
            .with("t_ms", self.t_ms)
            .with("event", self.event.to_json())
    }
}

impl FromJson for EventRecord {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(EventRecord {
            seq: v.decode_field("seq")?,
            t_ms: v.decode_field("t_ms")?,
            event: v.decode_field("event")?,
        })
    }
}

/// Something that watches the event stream. Called synchronously from
/// the emitting thread (event loop or a pool worker) — implementations
/// must be cheap and lock briefly, if at all.
pub trait EventObserver: Send + Sync {
    /// One stamped event.
    fn on_event(&self, record: &EventRecord);
}

/// The bus: a sequence stamp, a clock, and a fan-out list.
pub struct EventBus {
    observers: Vec<Arc<dyn EventObserver>>,
    seq: AtomicU64,
    start: Instant,
}

impl EventBus {
    /// A bus with the given observers (fixed for the bus's lifetime —
    /// fan-out is lock-free).
    #[must_use]
    pub fn new(observers: Vec<Arc<dyn EventObserver>>) -> EventBus {
        EventBus { observers, seq: AtomicU64::new(0), start: Instant::now() }
    }

    /// Stamps and publishes one event to every observer.
    pub fn emit(&self, event: ServeEvent) {
        let record = EventRecord {
            seq: self.seq.fetch_add(1, Ordering::Relaxed) + 1,
            t_ms: self.start.elapsed().as_secs_f64() * 1e3,
            event,
        };
        for obs in &self.observers {
            obs.on_event(&record);
        }
    }

    /// Events emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Observers
// ---------------------------------------------------------------------------

/// The PR-5 counters and latency histogram, fed from the bus: `Admit`
/// counts requests (and pipelined arrivals), `Done` records ok/error
/// and the queue+compile+serialize latency, `Shed`/`BatchCoalesce`/
/// `CompileStart` bump their counters.
pub struct MetricsObserver(pub Arc<ServerMetrics>);

impl EventObserver for MetricsObserver {
    fn on_event(&self, record: &EventRecord) {
        let m = &self.0;
        match &record.event {
            ServeEvent::Admit { pipelined, .. } => {
                m.requests.fetch_add(1, Ordering::Relaxed);
                if *pipelined {
                    m.pipelined.fetch_add(1, Ordering::Relaxed);
                }
            }
            ServeEvent::Done { ok, queue_ms, compile_ms, serialize_ms, .. } => {
                if *ok {
                    m.ok.fetch_add(1, Ordering::Relaxed);
                } else {
                    m.errors.fetch_add(1, Ordering::Relaxed);
                }
                m.latency.record(queue_ms + compile_ms + serialize_ms);
            }
            ServeEvent::Shed { .. } => {
                m.shed.fetch_add(1, Ordering::Relaxed);
            }
            ServeEvent::BatchCoalesce { .. } => {
                m.coalesced.fetch_add(1, Ordering::Relaxed);
            }
            ServeEvent::CompileStart { .. } => {
                m.batches.fetch_add(1, Ordering::Relaxed);
            }
            ServeEvent::Fetch { .. } => {
                m.fetches.fetch_add(1, Ordering::Relaxed);
            }
            ServeEvent::PeerFetch { .. } => {
                m.peer_fetches.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

/// Collects every record in memory; the test observer.
#[derive(Default)]
pub struct CollectObserver(pub Mutex<Vec<EventRecord>>);

impl CollectObserver {
    /// A snapshot of everything observed so far.
    ///
    /// # Panics
    ///
    /// Panics if a previous observer call panicked holding the lock.
    #[must_use]
    pub fn snapshot(&self) -> Vec<EventRecord> {
        self.0.lock().expect("collect observer lock").clone()
    }
}

impl EventObserver for CollectObserver {
    fn on_event(&self, record: &EventRecord) {
        self.0.lock().expect("collect observer lock").push(record.clone());
    }
}

/// Streams every record as one compact JSON line (the
/// `overlapd --record FILE` format). Lines flush on `Drain` and on
/// drop, so a SIGTERM'd daemon leaves a complete stream behind.
pub struct RecordObserver {
    out: Mutex<Box<dyn Write + Send>>,
}

impl RecordObserver {
    /// Records into any line sink.
    #[must_use]
    pub fn new(sink: Box<dyn Write + Send>) -> RecordObserver {
        RecordObserver { out: Mutex::new(sink) }
    }

    /// Records into a (buffered) file.
    ///
    /// # Errors
    ///
    /// Returns the file-creation failure.
    pub fn to_file(path: &str) -> std::io::Result<RecordObserver> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(std::io::BufWriter::new(file))))
    }
}

impl EventObserver for RecordObserver {
    fn on_event(&self, record: &EventRecord) {
        let line = record.to_json().to_string();
        let mut out = self.out.lock().expect("record observer lock");
        let _ = writeln!(out, "{line}");
        if matches!(record.event, ServeEvent::Drain { .. }) {
            let _ = out.flush();
        }
    }
}

impl Drop for RecordObserver {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

/// Compile jobs and answered requests as complete (`"ph": "X"`) spans
/// in the Chrome tracing JSON-array format — load the file in
/// `chrome://tracing` or Perfetto. Written on drain and on drop.
pub struct ChromeTraceObserver {
    path: String,
    spans: Mutex<Vec<Json>>,
}

impl ChromeTraceObserver {
    /// Traces into `path` (written when the server drains).
    #[must_use]
    pub fn new(path: impl Into<String>) -> ChromeTraceObserver {
        ChromeTraceObserver { path: path.into(), spans: Mutex::new(Vec::new()) }
    }

    fn span(name: &str, tid: u64, end_ms: f64, dur_ms: f64, args: Json) -> Json {
        Json::obj()
            .with("name", name)
            .with("ph", "X")
            .with("pid", 1u64)
            .with("tid", tid)
            .with("ts", (end_ms - dur_ms).max(0.0) * 1e3)
            .with("dur", dur_ms.max(0.0) * 1e3)
            .with("args", args)
    }

    fn write_out(&self) {
        let spans = self.spans.lock().expect("trace observer lock");
        let body = Json::Arr(spans.clone()).to_string();
        drop(spans);
        if let Err(e) = std::fs::write(&self.path, body) {
            eprintln!("overlap-serve: cannot write chrome trace {}: {e}", self.path);
        }
    }
}

impl EventObserver for ChromeTraceObserver {
    fn on_event(&self, record: &EventRecord) {
        match &record.event {
            ServeEvent::CompileFinish { batch, model, compile_ms, outcome } => {
                let span = Self::span(
                    &format!("compile {model}"),
                    0,
                    record.t_ms,
                    *compile_ms,
                    Json::obj()
                        .with("batch", batch.as_str())
                        .with("outcome", outcome.as_str()),
                );
                self.spans.lock().expect("trace observer lock").push(span);
            }
            ServeEvent::Done { conn, req, kind, queue_ms, compile_ms, serialize_ms, .. } => {
                let total = queue_ms + compile_ms + serialize_ms;
                let span = Self::span(
                    &format!("request {kind}"),
                    *conn,
                    record.t_ms,
                    total,
                    Json::obj()
                        .with("req", *req)
                        .with("queue_ms", *queue_ms)
                        .with("compile_ms", *compile_ms)
                        .with("serialize_ms", *serialize_ms),
                );
                self.spans.lock().expect("trace observer lock").push(span);
            }
            ServeEvent::Drain { .. } => self.write_out(),
            _ => {}
        }
    }
}

impl Drop for ChromeTraceObserver {
    fn drop(&mut self) {
        self.write_out();
    }
}

/// Fan-out to live protocol subscribers. The observer side encodes
/// each record once as a `{"response":"event",...}` frame payload and
/// queues it per subscriber; the event loop side drains the queues
/// into the matching connections' write buffers each tick (the loop
/// wakes at least every poll timeout, bounding staleness).
#[derive(Default)]
pub struct SubscriptionHub {
    queues: Mutex<HashMap<u64, Vec<String>>>,
}

impl SubscriptionHub {
    /// An empty hub.
    #[must_use]
    pub fn new() -> SubscriptionHub {
        SubscriptionHub::default()
    }

    /// Starts streaming to connection `conn`.
    ///
    /// # Panics
    ///
    /// Panics only if the hub lock was poisoned.
    pub fn subscribe(&self, conn: u64) {
        self.queues.lock().expect("subscription hub lock").entry(conn).or_default();
    }

    /// Stops streaming to connection `conn` (idempotent).
    ///
    /// # Panics
    ///
    /// Panics only if the hub lock was poisoned.
    pub fn unsubscribe(&self, conn: u64) {
        self.queues.lock().expect("subscription hub lock").remove(&conn);
    }

    /// Whether anyone is subscribed (cheap pre-check for emitters).
    ///
    /// # Panics
    ///
    /// Panics only if the hub lock was poisoned.
    #[must_use]
    pub fn is_active(&self) -> bool {
        !self.queues.lock().expect("subscription hub lock").is_empty()
    }

    /// Takes every pending `(conn, frames)` batch, clearing the queues.
    ///
    /// # Panics
    ///
    /// Panics only if the hub lock was poisoned.
    #[must_use]
    pub fn take_pending(&self) -> Vec<(u64, Vec<String>)> {
        let mut queues = self.queues.lock().expect("subscription hub lock");
        queues
            .iter_mut()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&conn, q)| (conn, std::mem::take(q)))
            .collect()
    }
}

impl EventObserver for SubscriptionHub {
    fn on_event(&self, record: &EventRecord) {
        let mut queues = self.queues.lock().expect("subscription hub lock");
        if queues.is_empty() {
            return;
        }
        let payload = crate::protocol::event_frame_payload(record).to_string();
        for q in queues.values_mut() {
            q.push(payload.clone());
        }
    }
}

// ---------------------------------------------------------------------------
// Record / replay
// ---------------------------------------------------------------------------

/// Parses a `--record` stream (one JSON record per line) back into
/// typed records.
///
/// # Errors
///
/// Returns the first unparseable line, 1-indexed.
pub fn parse_records(text: &str) -> Result<Vec<EventRecord>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            let v = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            EventRecord::from_json(&v).map_err(|e| format!("line {}: {e}", i + 1))
        })
        .collect()
}

/// The *deterministic* projection of an event stream: every decision
/// the server made, in order, with wall-clock stripped. Two runs of
/// the same single-threaded workload produce equal summaries; a
/// recorded stream replayed through [`parse_records`] produces a
/// summary equal to the live one — that is the record/replay contract
/// tested in `tests/serve_events.rs`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecisionSummary {
    /// `(request kind, ok)` per answered request, in completion order.
    pub answers: Vec<(String, bool)>,
    /// Cache provenance per compile answer, in completion order.
    pub cache_outcomes: Vec<String>,
    /// Compile-job outcomes (`memory`/`disk`/`compiled`/`error`) in
    /// completion order.
    pub job_outcomes: Vec<String>,
    /// Requests or connections shed.
    pub sheds: u64,
    /// Requests that joined an in-flight batch.
    pub coalesced: u64,
    /// Whether a drain was recorded.
    pub drained: bool,
}

impl DecisionSummary {
    /// Projects a stream to its decisions.
    #[must_use]
    pub fn from_records(records: &[EventRecord]) -> DecisionSummary {
        let mut s = DecisionSummary::default();
        for r in records {
            match &r.event {
                ServeEvent::Done { kind, ok, .. } => s.answers.push((kind.clone(), *ok)),
                ServeEvent::CacheOutcome { source, .. } => {
                    s.cache_outcomes.push(source.clone());
                }
                ServeEvent::CompileFinish { outcome, .. } => {
                    s.job_outcomes.push(outcome.clone());
                }
                ServeEvent::Shed { .. } => s.sheds += 1,
                ServeEvent::BatchCoalesce { .. } => s.coalesced += 1,
                ServeEvent::Drain { .. } => s.drained = true,
                _ => {}
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<ServeEvent> {
        vec![
            ServeEvent::Accept { conn: 1 },
            ServeEvent::Admit { conn: 1, req: 1, kind: "compile".into(), pipelined: false },
            ServeEvent::BatchCoalesce { conn: 1, req: 2, batch: "abcd".into() },
            ServeEvent::CompileStart { batch: "abcd".into(), model: "GPT_32B".into() },
            ServeEvent::CompileFinish {
                batch: "abcd".into(),
                model: "GPT_32B".into(),
                compile_ms: 12.5,
                outcome: "compiled".into(),
            },
            ServeEvent::CacheOutcome { conn: 1, req: 1, source: "compiled".into() },
            ServeEvent::Shed { conn: 0, scope: "connection".into() },
            ServeEvent::Done {
                conn: 1,
                req: 1,
                kind: "compile".into(),
                ok: true,
                queue_ms: 0.5,
                compile_ms: 12.5,
                serialize_ms: 0.25,
            },
            ServeEvent::Drain { reason: "shutdown-request".into() },
            ServeEvent::Close { conn: 1 },
        ]
    }

    #[test]
    fn every_event_roundtrips_through_json() {
        for event in sample_events() {
            let wire = event.to_json().to_string();
            let back = ServeEvent::from_json(&Json::parse(&wire).unwrap()).unwrap();
            assert_eq!(event, back, "event did not survive the wire: {wire}");
        }
    }

    #[test]
    fn bus_stamps_monotone_sequence_and_fans_out() {
        let collect = Arc::new(CollectObserver::default());
        let bus = EventBus::new(vec![Arc::clone(&collect) as Arc<dyn EventObserver>]);
        for event in sample_events() {
            bus.emit(event);
        }
        let seen = collect.snapshot();
        assert_eq!(seen.len(), 10);
        assert_eq!(bus.emitted(), 10);
        for (i, r) in seen.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1, "sequence must be dense and 1-based");
        }
        assert!(seen.windows(2).all(|w| w[0].t_ms <= w[1].t_ms));
    }

    #[test]
    fn record_stream_parses_back_and_summarizes() {
        let sink: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let collect = Arc::new(CollectObserver::default());
        let bus = EventBus::new(vec![
            Arc::new(RecordObserver::new(Box::new(Shared(Arc::clone(&sink))))),
            Arc::clone(&collect) as Arc<dyn EventObserver>,
        ]);
        for event in sample_events() {
            bus.emit(event);
        }
        let text = String::from_utf8(sink.lock().unwrap().clone()).unwrap();
        let parsed = parse_records(&text).unwrap();
        assert_eq!(parsed, collect.snapshot(), "file stream must equal the live stream");

        let summary = DecisionSummary::from_records(&parsed);
        assert_eq!(summary.answers, vec![("compile".to_string(), true)]);
        assert_eq!(summary.cache_outcomes, vec!["compiled"]);
        assert_eq!(summary.job_outcomes, vec!["compiled"]);
        assert_eq!(summary.sheds, 1);
        assert_eq!(summary.coalesced, 1);
        assert!(summary.drained);
    }

    #[test]
    fn metrics_observer_feeds_the_histogram_and_counters() {
        let metrics = Arc::new(ServerMetrics::new());
        let bus = EventBus::new(vec![Arc::new(MetricsObserver(Arc::clone(&metrics)))]);
        bus.emit(ServeEvent::Admit { conn: 1, req: 1, kind: "compile".into(), pipelined: false });
        bus.emit(ServeEvent::Admit { conn: 1, req: 2, kind: "compile".into(), pipelined: true });
        bus.emit(ServeEvent::CompileStart { batch: "k".into(), model: "m".into() });
        bus.emit(ServeEvent::BatchCoalesce { conn: 1, req: 2, batch: "k".into() });
        bus.emit(ServeEvent::Done {
            conn: 1,
            req: 1,
            kind: "compile".into(),
            ok: true,
            queue_ms: 1.0,
            compile_ms: 2.0,
            serialize_ms: 0.5,
        });
        bus.emit(ServeEvent::Done {
            conn: 1,
            req: 2,
            kind: "compile".into(),
            ok: false,
            queue_ms: 0.0,
            compile_ms: 0.0,
            serialize_ms: 0.0,
        });
        bus.emit(ServeEvent::Shed { conn: 0, scope: "connection".into() });
        assert_eq!(metrics.requests.load(Ordering::Relaxed), 2);
        assert_eq!(metrics.pipelined.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.batches.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.coalesced.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.ok.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.errors.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.shed.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.latency.count(), 2);
    }

    #[test]
    fn subscription_hub_queues_per_subscriber() {
        let hub = Arc::new(SubscriptionHub::new());
        let bus = EventBus::new(vec![Arc::clone(&hub) as Arc<dyn EventObserver>]);
        bus.emit(ServeEvent::Accept { conn: 9 }); // no subscribers: dropped
        hub.subscribe(4);
        hub.subscribe(5);
        bus.emit(ServeEvent::Close { conn: 9 });
        hub.unsubscribe(5);
        bus.emit(ServeEvent::Drain { reason: "signal".into() });
        let mut pending = hub.take_pending();
        pending.sort_by_key(|(conn, _)| *conn);
        assert_eq!(pending.len(), 1, "conn 5 unsubscribed with frames pending");
        assert_eq!(pending[0].0, 4);
        assert_eq!(pending[0].1.len(), 2);
        assert!(pending[0].1[0].contains("\"close\""));
        assert!(hub.take_pending().is_empty(), "taking drains the queues");
    }
}
