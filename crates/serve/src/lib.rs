//! overlap-serve: the compile-and-simulate service layer.
//!
//! Everything below the bins: the versioned wire protocol
//! ([`protocol`]), the shared request-execution path ([`exec`] — the
//! same function the daemon and the byte-identity checkers call), the
//! zero-dependency readiness reactor ([`reactor`]), the event-loop
//! server with request pipelining and fingerprint batching
//! ([`server`]), the typed event bus its progress publishes on
//! ([`events`]), a blocking client ([`client`]), lock-free latency
//! metrics ([`metrics`] — fed from the bus like any other observer),
//! and the fault-tolerant fleet layer ([`fleet`] — consistent-hash
//! routing, cache peering, health tracking and kill-a-node failover
//! across N daemons).
//!
//! The service contract, in one sentence: a compile request's `result`
//! object is a pure function of (model, machine, options, fault spec)
//! — byte-identical to a direct `OverlapPipeline::compile_cached` +
//! `simulate` run — while provenance and timing ride separately in
//! `served`, and overload, drain and malformed input all answer with
//! typed errors instead of dropped connections.

pub mod client;
pub mod events;
pub mod exec;
pub mod fleet;
pub mod metrics;
pub mod protocol;
pub mod reactor;
pub mod server;

pub use client::{Client, ClientError, EventStream};
pub use events::{
    parse_records, ChromeTraceObserver, CollectObserver, DecisionSummary, EventBus,
    EventObserver, EventRecord, MetricsObserver, RecordObserver, ServeEvent, SubscriptionHub,
};
pub use exec::{batch_key, execute, execute_with_peers, Deadline, ExecError};
pub use fleet::{
    aggregate_stats, node_id, FleetConfig, FleetHarness, FleetState, HashRing, HealthPolicy,
    HealthState, NodeHealth, RetryPolicy, Router, RouterSession, DEFAULT_VNODES,
};
pub use metrics::{Histogram, ServerMetrics};
pub use protocol::{
    event_frame_payload, read_frame, write_frame, ArtifactResponse, CompileRequest,
    CompileResponse, CompileResult, ErrorKind, ErrorResponse, FleetNodeStatus,
    FleetStatsResponse, FrameEvent, FrameReader, LatencySummary, MachineSpec, ModelRef, Request,
    Response, ServedInfo, SimSummary, StatsResponse, WireError, MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
};
pub use reactor::{Event, Interest, Pollable, Poller, Token, Waker};
pub use server::{ServeConfig, Server, ShutdownHandle};
