//! overlap-serve: the compile-and-simulate service layer.
//!
//! Everything below the bins: the versioned wire protocol
//! ([`protocol`]), the shared request-execution path ([`exec`] — the
//! same function the daemon and the byte-identity checkers call), the
//! bounded-admission server ([`server`]), a blocking client
//! ([`client`]) and lock-free latency metrics ([`metrics`]).
//!
//! The service contract, in one sentence: a compile request's `result`
//! object is a pure function of (model, machine, options, fault spec)
//! — byte-identical to a direct `OverlapPipeline::compile_cached` +
//! `simulate` run — while provenance and timing ride separately in
//! `served`, and overload, drain and malformed input all answer with
//! typed errors instead of dropped connections.

pub mod client;
pub mod exec;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError};
pub use exec::{execute, Deadline, ExecError};
pub use metrics::{Histogram, ServerMetrics};
pub use protocol::{
    read_frame, write_frame, CompileRequest, CompileResponse, CompileResult, ErrorKind,
    ErrorResponse, FrameEvent, FrameReader, LatencySummary, MachineSpec, ModelRef, Request,
    Response, ServedInfo, SimSummary, StatsResponse, WireError, MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
};
pub use server::{ServeConfig, Server, ShutdownHandle};
