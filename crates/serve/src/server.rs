//! The daemon: admission, worker pool, drain.
//!
//! One acceptor thread owns the listener; a fixed pool of worker
//! threads owns connections. Between them sits a *bounded* admission
//! queue: when it is full the acceptor does not buffer, block or drop
//! silently — it answers the connection with a typed
//! [`ErrorKind::Overloaded`] frame and closes it (load shedding with
//! an explicit receipt, so clients can back off instead of timing
//! out). Everything runs on `std::thread::scope`; no runtime, no new
//! dependencies.
//!
//! Draining ([`ShutdownHandle::request`], a client `shutdown` request,
//! or SIGTERM forwarded by `overlapd`) stops admission, lets workers
//! finish every request already admitted, then joins. Disk-cache
//! writes stay atomic throughout (temp file + rename inside
//! `ArtifactCache`), so a drain can never leave a torn entry — only
//! `.tmp` droppings from a *kill -9*, which CI checks for.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use overlap_core::ArtifactCache;
use overlap_json::{FromJson, ToJson};

use crate::exec::{execute, Deadline};
use crate::metrics::ServerMetrics;
use crate::protocol::{
    write_frame, CompileResponse, ErrorKind, ErrorResponse, FrameEvent, FrameReader, Request,
    Response, ServedInfo, StatsResponse,
};

/// How often parked threads re-check the drain flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Tuning for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (each serves one connection at a time).
    pub workers: usize,
    /// Admitted-but-unserved connections to hold before shedding.
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));
        ServeConfig { addr: "127.0.0.1:0".to_string(), workers, queue_depth: 2 * workers }
    }
}

/// Requests a drain from outside the server's threads (signal
/// handlers, tests, an embedding process).
#[derive(Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Flips the drain flag; idempotent, async-signal-safe (one atomic
    /// store).
    pub fn request(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested.
    #[must_use]
    pub fn is_requested(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// A connection waiting for a worker, stamped at admission so queue
/// time is measurable.
struct Admitted {
    stream: TcpStream,
    at: Instant,
}

/// State shared by the acceptor and every worker.
struct Shared {
    queue: Mutex<VecDeque<Admitted>>,
    ready: Condvar,
    draining: Arc<AtomicBool>,
    metrics: ServerMetrics,
    cache: ArtifactCache,
    workers: usize,
    queue_depth: usize,
}

impl Shared {
    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

/// A bound-but-not-yet-running service instance.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and prepares shared state. `cache` is the
    /// process-wide artifact cache every request compiles through —
    /// its single-flight machinery is what dedups identical in-flight
    /// requests down to one pipeline run.
    ///
    /// # Errors
    ///
    /// Returns the bind failure.
    pub fn bind(config: &ServeConfig, cache: ArtifactCache) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                ready: Condvar::new(),
                draining: Arc::new(AtomicBool::new(false)),
                metrics: ServerMetrics::new(),
                cache,
                workers: config.workers.max(1),
                queue_depth: config.queue_depth.max(1),
            }),
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Returns the socket introspection failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can request a drain from any thread.
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shared.draining))
    }

    /// Serves until drained: accepts, sheds, dispatches; returns once
    /// every admitted connection has been answered and all workers
    /// have exited.
    ///
    /// # Errors
    ///
    /// Returns only fatal listener errors; per-connection I/O failures
    /// are contained to their connection.
    pub fn run(self) -> std::io::Result<()> {
        let shared = &self.shared;
        self.listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            for _ in 0..shared.workers {
                scope.spawn(|| worker_loop(shared));
            }
            loop {
                if shared.is_draining() {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => admit(shared, stream),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        // A fatal listener error drains the server
                        // rather than leaving it half-alive.
                        eprintln!("overlapd: listener error: {e}; draining");
                        shared.draining.store(true, Ordering::SeqCst);
                    }
                }
            }
            // Drain: workers finish the queue, then observe the flag
            // and exit; wake any that are parked.
            shared.ready.notify_all();
        });
        Ok(())
    }
}

/// Admission: enqueue within the configured bound, shed beyond it.
fn admit(shared: &Shared, stream: TcpStream) {
    let mut queue = shared.queue.lock().expect("admission queue lock");
    if queue.len() >= shared.queue_depth {
        drop(queue);
        shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
        shed(stream);
        return;
    }
    queue.push_back(Admitted { stream, at: Instant::now() });
    drop(queue);
    shared.ready.notify_one();
}

/// Answers a shed connection with a typed `overloaded` error. Best
/// effort: the client may already be gone.
fn shed(mut stream: TcpStream) {
    let resp = Response::Error(ErrorResponse {
        kind: ErrorKind::Overloaded,
        message: "admission queue full; retry later".to_string(),
    });
    let _ = write_frame(&mut stream, &resp.to_json());
    let _ = stream.flush();
}

/// One worker: pop a connection, serve it to completion, repeat;
/// exit when draining and the queue is empty.
fn worker_loop(shared: &Shared) {
    loop {
        let admitted = {
            let mut queue = shared.queue.lock().expect("admission queue lock");
            loop {
                if let Some(c) = queue.pop_front() {
                    break Some(c);
                }
                if shared.is_draining() {
                    break None;
                }
                let (q, _timeout) = shared
                    .ready
                    .wait_timeout(queue, POLL_INTERVAL)
                    .expect("admission queue lock");
                queue = q;
            }
        };
        match admitted {
            Some(conn) => serve_connection(shared, conn),
            None => return,
        }
    }
}

/// Serves every request on one connection. Read timeouts keep the
/// worker responsive to drain; the incremental [`FrameReader`] makes
/// them safe (a timeout mid-frame loses nothing).
fn serve_connection(shared: &Shared, conn: Admitted) {
    let Admitted { mut stream, at } = conn;
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    stream.set_nodelay(true).ok();
    let mut reader = FrameReader::new();
    let mut queue_ms = at.elapsed().as_secs_f64() * 1e3;
    loop {
        match reader.poll(&mut stream) {
            FrameEvent::Frame(payload) => {
                let started = Instant::now();
                let (resp, shutdown) = handle(shared, &payload);
                let service_ms = started.elapsed().as_secs_f64() * 1e3;
                let resp = finalize(resp, queue_ms, service_ms);
                record(shared, &resp, queue_ms + service_ms);
                let ok = write_frame(&mut stream, &resp.to_json()).is_ok();
                if shutdown {
                    shared.draining.store(true, Ordering::SeqCst);
                    shared.ready.notify_all();
                }
                // Only the first request on a connection pays its
                // admission wait.
                queue_ms = 0.0;
                if !ok || shutdown || shared.is_draining() {
                    return;
                }
            }
            FrameEvent::Idle => {
                if shared.is_draining() {
                    return; // idle keep-alive connection; nothing in flight
                }
            }
            FrameEvent::Closed => return,
            FrameEvent::Error(e) => {
                if let Some(kind) = e.to_error_kind() {
                    let resp = Response::Error(ErrorResponse {
                        kind,
                        message: e.to_string(),
                    });
                    record(shared, &resp, queue_ms);
                    let _ = write_frame(&mut stream, &resp.to_json());
                }
                // After a framing violation the stream offset is
                // unknowable; close rather than misparse.
                return;
            }
        }
    }
}

/// Stamps the served-info of a compile response with this request's
/// timing (exec fills in the cache source; timing is only known here).
fn finalize(resp: Response, queue_ms: f64, service_ms: f64) -> Response {
    match resp {
        Response::Compiled(mut c) => {
            c.served.queue_ms = queue_ms;
            c.served.service_ms = service_ms;
            Response::Compiled(c)
        }
        other => other,
    }
}

fn record(shared: &Shared, resp: &Response, total_ms: f64) {
    shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
    match resp {
        Response::Error(_) => shared.metrics.errors.fetch_add(1, Ordering::Relaxed),
        _ => shared.metrics.ok.fetch_add(1, Ordering::Relaxed),
    };
    shared.metrics.latency.record(total_ms);
}

/// Decodes and executes one request payload. Returns the response and
/// whether the server should drain afterwards.
fn handle(shared: &Shared, payload: &overlap_json::Json) -> (Response, bool) {
    let request = match Request::from_json(payload) {
        Ok(r) => r,
        Err(e) => {
            return (
                Response::Error(ErrorResponse {
                    kind: ErrorKind::InvalidRequest,
                    message: e,
                }),
                false,
            );
        }
    };
    match request {
        Request::Ping => (Response::Pong, false),
        Request::Stats => (Response::Stats(Box::new(stats(shared))), false),
        Request::Shutdown => (Response::ShuttingDown, true),
        Request::Compile(req) => {
            if shared.is_draining() {
                return (
                    Response::Error(ErrorResponse {
                        kind: ErrorKind::ShuttingDown,
                        message: "server is draining".to_string(),
                    }),
                    false,
                );
            }
            let deadline = Deadline::from_request(req.deadline_ms);
            match execute(&req, &shared.cache, deadline) {
                Ok((result, outcome)) => (
                    Response::Compiled(Box::new(CompileResponse {
                        result,
                        served: ServedInfo {
                            source: outcome.as_str().to_string(),
                            queue_ms: 0.0, // stamped in `finalize`
                            service_ms: 0.0,
                        },
                    })),
                    false,
                ),
                Err(e) => (
                    Response::Error(ErrorResponse { kind: e.kind, message: e.message }),
                    false,
                ),
            }
        }
    }
}

fn stats(shared: &Shared) -> StatsResponse {
    let cache = shared.cache.stats();
    let m = &shared.metrics;
    StatsResponse {
        uptime_ms: m.uptime_ms(),
        requests: m.requests.load(Ordering::Relaxed),
        ok: m.ok.load(Ordering::Relaxed),
        errors: m.errors.load(Ordering::Relaxed),
        shed: m.shed.load(Ordering::Relaxed),
        queue_depth: shared.queue.lock().expect("admission queue lock").len(),
        workers: shared.workers,
        qps: m.qps(),
        cache_memory_hits: cache.memory_hits,
        cache_disk_hits: cache.disk_hits,
        cache_misses: cache.misses,
        cache_hit_rate: cache.hit_rate(),
        latency: m.latency.summary(),
    }
}
