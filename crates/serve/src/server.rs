//! The daemon: a readiness-driven event loop over nonblocking sockets.
//!
//! One thread — the caller of [`Server::run`] — owns every socket: the
//! listener, a [`Waker`] the compile pool rings on completion, and one
//! nonblocking [`Conn`] state machine per live connection. The loop
//! never blocks on anything but [`Poller::poll`]; reads drain through
//! the incremental [`FrameReader`] until `WouldBlock`, writes drain
//! through a buffered [`OutBuf`] that survives torn (partial) writes
//! mid-frame. Requests *pipeline*: a connection may have any number of
//! frames in flight, each gets an ordered response slot, and responses
//! go out strictly in request order no matter which completes first —
//! that is the `overlap-serve/1` contract.
//!
//! Compiles never run on the loop thread. Each is a job on a small CPU
//! pool, delivered back through a completion list plus a waker ring.
//! In front of the pool sits *fingerprint batching*: a compile request
//! whose [`batch_key`] matches a job still in flight joins that job as
//! a follower instead of dispatching its own (its `served.source` says
//! `"coalesced"`); only the representative request executes, and the
//! single-flight `ArtifactCache` underneath still dedups across
//! *different* batches. Requests carrying a `deadline_ms` always
//! dispatch solo — a deadline is a per-request promise that must not
//! silently extend to batch-mates.
//!
//! Backpressure is per *request* now, not per connection: when the
//! pool's dispatch queue is at `queue_depth`, a compile is answered
//! with a typed [`ErrorKind::Overloaded`] frame on its own slot and
//! the connection lives on.
//!
//! Everything the server does is published on the [`EventBus`]
//! (accept, admit, batch-coalesce, compile-start/finish,
//! cache-outcome, shed, drain, done) — metrics are just one observer,
//! and `subscribe` turns any connection into a live event stream.
//!
//! Draining ([`ShutdownHandle::request`], a client `shutdown` request,
//! SIGTERM forwarded by `overlapd`, or a fatal listener error) stops
//! accepting, answers new compiles with [`ErrorKind::ShuttingDown`],
//! lets every in-flight job finish and flush, then joins the pool.
//! Disk-cache writes stay atomic throughout (temp file + rename inside
//! `ArtifactCache`), so a drain can never leave a torn entry.

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use overlap_core::{ArtifactCache, CacheOutcome};
use overlap_json::{Fingerprint, FromJson, Json, ToJson};

use crate::events::{
    EventBus, EventObserver, MetricsObserver, ServeEvent, SubscriptionHub,
};
use crate::exec::{batch_key, execute_with_peers, Deadline, ExecError};
use crate::fleet::{aggregate_stats, FleetState};
use crate::metrics::ServerMetrics;
use crate::protocol::{
    write_frame, ArtifactResponse, CompileRequest, CompileResponse, CompileResult, ErrorKind,
    ErrorResponse, FleetStatsResponse, FrameEvent, FrameReader, ModelRef, Request, Response,
    ServedInfo, StatsResponse, PROTOCOL_VERSION,
};
use crate::reactor::{Interest, Poller, Token, Waker};

/// The loop's poll timeout: the upper bound on how stale the drain
/// flag or a subscriber's event queue can get while nothing else is
/// happening. Completions don't wait on it — the pool rings the waker.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Reads a `usize` tuning knob from the environment; unset, empty or
/// unparseable values fall back.
fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Tuning for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Compile-pool worker threads (the event loop itself is one more
    /// thread and never blocks on a compile).
    pub workers: usize,
    /// Compile jobs the dispatch queue holds before shedding requests.
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        // The pool does the CPU work, so it gets the machine: one
        // worker per core, overridable with OVERLAP_SERVE_WORKERS.
        // (The old default capped at 8, which starved large hosts.)
        let workers = env_usize("OVERLAP_SERVE_WORKERS")
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()))
            .max(1);
        let queue_depth = env_usize("OVERLAP_SERVE_QUEUE").unwrap_or(4 * workers).max(1);
        ServeConfig { addr: "127.0.0.1:0".to_string(), workers, queue_depth }
    }
}

/// Requests a drain from outside the server's threads (signal
/// handlers, tests, an embedding process).
#[derive(Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Flips the drain flag; idempotent, async-signal-safe (one atomic
    /// store).
    pub fn request(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested.
    #[must_use]
    pub fn is_requested(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// What a pool job does. Compiles dominate; `fleet-stats` rides the
/// pool too because it blocks on peer sockets, which the loop thread
/// must never do.
enum JobWork {
    Compile(Box<CompileRequest>),
    FleetStats,
}

/// One job handed to the pool. Members (who gets the answer) stay
/// loop-side; the pool only needs what to execute.
struct Job {
    id: u64,
    /// Hex batch fingerprint (or a synthetic tag), for events.
    batch: String,
    work: JobWork,
    /// Anchored at request receipt, so pool queueing counts against it.
    deadline: Deadline,
}

/// A pool job's successful payload.
enum JobOutput {
    Compile(Box<CompileResult>, CacheOutcome),
    FleetStats(Box<FleetStatsResponse>),
}

/// What the pool sends back.
struct Completion {
    job_id: u64,
    result: Result<JobOutput, ExecError>,
    compile_ms: f64,
}

/// State shared between the event loop and the pool workers.
struct Shared {
    draining: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
    cache: ArtifactCache,
    bus: EventBus,
    hub: Arc<SubscriptionHub>,
    jobs: Mutex<VecDeque<Job>>,
    jobs_ready: Condvar,
    /// Set by the loop once no more jobs will ever be pushed.
    pool_stop: AtomicBool,
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
    workers: usize,
    queue_depth: usize,
    /// Set once (before `run`) when this daemon joins a fleet.
    fleet: OnceLock<Arc<FleetState>>,
}

impl Shared {
    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn queued_jobs(&self) -> usize {
        self.jobs.lock().expect("job queue lock").len()
    }

    /// A point-in-time stats snapshot. Lives on `Shared` (not the
    /// loop) because pool workers build it too, when aggregating
    /// `fleet-stats`.
    fn stats(&self) -> StatsResponse {
        let cache = self.cache.stats();
        let m = &self.metrics;
        StatsResponse {
            node: self.fleet.get().map_or_else(String::new, |f| f.node_id()),
            uptime_ms: m.uptime_ms(),
            requests: m.requests.load(Ordering::Relaxed),
            ok: m.ok.load(Ordering::Relaxed),
            errors: m.errors.load(Ordering::Relaxed),
            shed: m.shed.load(Ordering::Relaxed),
            coalesced: m.coalesced.load(Ordering::Relaxed),
            batches: m.batches.load(Ordering::Relaxed),
            pipelined: m.pipelined.load(Ordering::Relaxed),
            queue_depth: self.queued_jobs(),
            workers: self.workers,
            qps: m.qps(),
            cache_memory_hits: cache.memory_hits,
            cache_disk_hits: cache.disk_hits,
            cache_peer_hits: cache.peer_hits,
            cache_misses: cache.misses,
            cache_hit_rate: cache.hit_rate(),
            fetches: m.fetches.load(Ordering::Relaxed),
            peer_fetches: m.peer_fetches.load(Ordering::Relaxed),
            latency: m.latency.summary().into(),
            latency_buckets: m.latency.bucket_counts(),
        }
    }
}

/// A bound-but-not-yet-running service instance.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// The model label for events, without resolving anything.
fn model_label(req: &CompileRequest) -> String {
    match &req.model {
        ModelRef::Named(name) => name.clone(),
        ModelRef::Inline(module) => module.name().to_string(),
    }
}

/// Encodes one frame (header + compact payload) into bytes.
fn encode_frame(payload: &Json) -> Vec<u8> {
    let mut bytes = Vec::new();
    // Vec<u8> never fails to write.
    write_frame(&mut bytes, payload).expect("encoding a frame into memory");
    bytes
}

/// Frames an already-encoded payload string (the subscription hub
/// encodes each event once, not once per subscriber).
fn frame_payload_str(payload: &str) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(payload.len() + 32);
    bytes.extend_from_slice(format!("{PROTOCOL_VERSION} {}\n", payload.len()).as_bytes());
    bytes.extend_from_slice(payload.as_bytes());
    bytes
}

impl Server {
    /// Binds the listener and prepares shared state. `cache` is the
    /// process-wide artifact cache every job compiles through — its
    /// single-flight machinery dedups identical compiles *across*
    /// batches, while fingerprint batching dedups *within* the
    /// server's own in-flight window.
    ///
    /// # Errors
    ///
    /// Returns the bind (or waker construction) failure.
    pub fn bind(config: &ServeConfig, cache: ArtifactCache) -> std::io::Result<Server> {
        Self::bind_with_observers(config, cache, Vec::new())
    }

    /// [`Server::bind`], plus extra event-bus observers (recorders,
    /// chrome traces, test collectors). Metrics and the subscription
    /// hub are always attached.
    ///
    /// # Errors
    ///
    /// Returns the bind (or waker construction) failure.
    pub fn bind_with_observers(
        config: &ServeConfig,
        cache: ArtifactCache,
        extra: Vec<Arc<dyn EventObserver>>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let metrics = Arc::new(ServerMetrics::new());
        let hub = Arc::new(SubscriptionHub::new());
        let mut observers: Vec<Arc<dyn EventObserver>> = vec![
            Arc::new(MetricsObserver(Arc::clone(&metrics))),
            Arc::clone(&hub) as Arc<dyn EventObserver>,
        ];
        observers.extend(extra);
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                draining: Arc::new(AtomicBool::new(false)),
                metrics,
                cache,
                bus: EventBus::new(observers),
                hub,
                jobs: Mutex::new(VecDeque::new()),
                jobs_ready: Condvar::new(),
                pool_stop: AtomicBool::new(false),
                completions: Mutex::new(Vec::new()),
                waker: Waker::new()?,
                workers: config.workers.max(1),
                queue_depth: config.queue_depth.max(1),
                fleet: OnceLock::new(),
            }),
        })
    }

    /// Joins this daemon to a fleet: the ring decides which artifacts
    /// it owns, every local cache miss consults the ring's peers, and
    /// `fleet-stats` aggregates across the member list. Call between
    /// [`Server::bind`] and [`Server::run`]; later calls are ignored
    /// (the fleet view is fixed once serving starts).
    pub fn configure_fleet(&self, state: FleetState) {
        let _ = self.shared.fleet.set(Arc::new(state));
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Returns the socket introspection failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can request a drain from any thread.
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shared.draining))
    }

    /// Serves until drained: returns once every admitted request has
    /// been answered, every response flushed, and the pool joined.
    ///
    /// # Errors
    ///
    /// Returns only fatal setup errors; per-connection I/O failures
    /// are contained to their connection.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let shared = &*self.shared;
        std::thread::scope(|scope| {
            for _ in 0..shared.workers {
                scope.spawn(|| pool_worker(shared));
            }
            EventLoop::new(shared, &self.listener).run();
            // No more jobs will arrive; let idle workers exit.
            shared.pool_stop.store(true, Ordering::SeqCst);
            shared.jobs_ready.notify_all();
        });
        Ok(())
    }
}

/// One pool worker: pop a job, execute it, report back, ring the loop.
fn pool_worker(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.jobs.lock().expect("job queue lock");
            loop {
                if let Some(j) = queue.pop_front() {
                    break Some(j);
                }
                if shared.pool_stop.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared.jobs_ready.wait(queue).expect("job queue lock");
            }
        };
        let Some(job) = job else { return };
        let completion = match job.work {
            JobWork::Compile(req) => {
                let model = model_label(&req);
                shared.bus.emit(ServeEvent::CompileStart {
                    batch: job.batch.clone(),
                    model: model.clone(),
                });
                let started = Instant::now();
                let fleet = shared.fleet.get().map(Arc::as_ref);
                let result = execute_with_peers(
                    &req,
                    &shared.cache,
                    job.deadline,
                    fleet,
                    Some(&shared.bus),
                );
                let compile_ms = started.elapsed().as_secs_f64() * 1e3;
                let outcome = match &result {
                    Ok((_, o)) => o.as_str().to_string(),
                    Err(_) => "error".to_string(),
                };
                shared.bus.emit(ServeEvent::CompileFinish {
                    batch: job.batch,
                    model,
                    compile_ms,
                    outcome,
                });
                Completion {
                    job_id: job.id,
                    result: result.map(|(r, o)| JobOutput::Compile(Box::new(r), o)),
                    compile_ms,
                }
            }
            JobWork::FleetStats => {
                let started = Instant::now();
                let fleet = shared.fleet.get().map(Arc::as_ref);
                let agg = aggregate_stats(fleet, shared.stats(), Some(&shared.bus));
                Completion {
                    job_id: job.id,
                    result: Ok(JobOutput::FleetStats(Box::new(agg))),
                    compile_ms: started.elapsed().as_secs_f64() * 1e3,
                }
            }
        };
        shared.completions.lock().expect("completion list lock").push(completion);
        shared.waker.wake();
    }
}

// ---------------------------------------------------------------------------
// The event loop
// ---------------------------------------------------------------------------

/// A buffered nonblocking writer: frames append at the back, a cursor
/// tracks how far the kernel has accepted. A torn write mid-frame
/// simply leaves the cursor inside the frame; the next writable event
/// resumes exactly there.
#[derive(Default)]
struct OutBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl OutBuf {
    fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn push(&mut self, bytes: &[u8]) {
        // Reclaim the consumed prefix before growing, so a long-lived
        // chatty connection doesn't accrete its whole history.
        if self.pos > 0 && (self.is_empty() || self.pos >= 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Writes as much as the socket accepts. `Ok(true)` when fully
    /// flushed, `Ok(false)` on `WouldBlock` with bytes remaining.
    fn flush_to(&mut self, w: &mut impl Write) -> std::io::Result<bool> {
        while self.pos < self.buf.len() {
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ));
                }
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(true)
    }
}

/// One ordered response slot. Responses leave in request order: the
/// front slot must be `Ready` before anything behind it ships.
enum Slot {
    /// Waiting on a pool completion.
    Pending { req_id: u64 },
    /// Encoded and ready to ship.
    Ready { frame: Vec<u8> },
}

/// Per-connection state machine.
struct Conn {
    id: u64,
    stream: TcpStream,
    reader: FrameReader,
    out: OutBuf,
    /// In-order response slots for every admitted request.
    slots: VecDeque<Slot>,
    /// Peer closed its write half; serve out the pipeline, then drop.
    read_closed: bool,
    /// Close as soon as `out` drains (framing violation or drain).
    closing: bool,
    /// Receives streamed event frames.
    subscriber: bool,
}

impl Conn {
    fn has_pending(&self) -> bool {
        self.slots.iter().any(|s| matches!(s, Slot::Pending { .. }))
    }

    /// The interest this connection currently needs.
    fn interest(&self) -> Interest {
        Interest { readable: !self.read_closed && !self.closing, writable: !self.out.is_empty() }
    }
}

/// A request waiting on a job: which slot of which connection.
struct Member {
    token: Token,
    req_id: u64,
    kind: &'static str,
    admitted: Instant,
    /// Followers joined an in-flight batch; their provenance says so.
    leader: bool,
}

const LISTENER: Token = Token(0);
const WAKER: Token = Token(1);

struct EventLoop<'a> {
    shared: &'a Shared,
    listener: &'a TcpListener,
    poller: Poller,
    conns: HashMap<Token, Conn>,
    /// Loop-side job bookkeeping: who to answer when `job_id` lands.
    members: HashMap<u64, Vec<Member>>,
    /// Coalescing window: batch fingerprint → in-flight job id.
    batch_index: HashMap<u128, u64>,
    next_token: usize,
    next_conn_id: u64,
    next_req_id: u64,
    next_job_id: u64,
    /// The drain event fired (only once).
    drain_emitted: bool,
    accepting: bool,
}

impl<'a> EventLoop<'a> {
    fn new(shared: &'a Shared, listener: &'a TcpListener) -> EventLoop<'a> {
        let mut poller = Poller::new();
        poller.register(listener, LISTENER, Interest::READ);
        poller.register(shared.waker.reader(), WAKER, Interest::READ);
        EventLoop {
            shared,
            listener,
            poller,
            conns: HashMap::new(),
            members: HashMap::new(),
            batch_index: HashMap::new(),
            next_token: 2,
            next_conn_id: 0,
            next_req_id: 0,
            next_job_id: 0,
            drain_emitted: false,
            accepting: true,
        }
    }

    fn run(&mut self) {
        loop {
            let ready: Vec<crate::reactor::Event> =
                self.poller.poll(POLL_INTERVAL).to_vec();
            for ev in ready {
                match ev.token {
                    LISTENER => self.accept_ready(),
                    WAKER => self.shared.waker.drain(),
                    token => self.conn_ready(token, ev.readable, ev.writable, ev.hangup),
                }
            }
            self.deliver_completions();
            self.on_drain_edge();
            self.stream_to_subscribers();
            if self.drained() {
                return;
            }
        }
    }

    /// Notices the drain flag flipping (from a signal handler, a
    /// shutdown request, or a listener error): emits the drain event,
    /// stops accepting.
    fn on_drain_edge(&mut self) {
        if !self.shared.is_draining() {
            return;
        }
        if !self.drain_emitted {
            // A shutdown *request* emits its own drain with a precise
            // reason before setting the flag; reaching here means the
            // flag flipped externally.
            self.emit_drain("signal");
        }
        if self.accepting {
            self.accepting = false;
            self.poller.deregister(LISTENER);
        }
    }

    fn emit_drain(&mut self, reason: &str) {
        if !self.drain_emitted {
            self.drain_emitted = true;
            self.shared.bus.emit(ServeEvent::Drain { reason: reason.to_string() });
        }
    }

    /// Drained means: flag set, no job will ever complete again, and
    /// every answer a peer can still receive has been handed to the
    /// kernel. Subscriber backlogs don't hold the process hostage.
    fn drained(&mut self) -> bool {
        if !self.shared.is_draining() || !self.members.is_empty() {
            return false;
        }
        if self.shared.queued_jobs() > 0 || !self.shared.completions.lock().expect("completion list lock").is_empty() {
            return false;
        }
        if self.conns.values().any(|c| !c.subscriber && (!c.out.is_empty() || c.has_pending())) {
            return false;
        }
        // Best-effort final flush for subscribers, then close everyone.
        let tokens: Vec<Token> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                let _ = conn.out.flush_to(&mut conn.stream);
            }
            self.drop_conn(token);
        }
        true
    }

    // -- accept ------------------------------------------------------------

    fn accept_ready(&mut self) {
        if !self.accepting {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.accept_one(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    // A fatal listener error drains the server rather
                    // than leaving it half-alive.
                    eprintln!("overlapd: listener error: {e}; draining");
                    self.emit_drain("listener-error");
                    self.shared.draining.store(true, Ordering::SeqCst);
                    return;
                }
            }
        }
    }

    fn accept_one(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        stream.set_nodelay(true).ok();
        self.next_conn_id += 1;
        let id = self.next_conn_id;
        let token = Token(self.next_token);
        self.next_token += 1;
        self.poller.register(&stream, token, Interest::READ);
        self.conns.insert(
            token,
            Conn {
                id,
                stream,
                reader: FrameReader::new(),
                out: OutBuf::default(),
                slots: VecDeque::new(),
                read_closed: false,
                closing: false,
                subscriber: false,
            },
        );
        self.shared.bus.emit(ServeEvent::Accept { conn: id });
    }

    // -- per-connection readiness ------------------------------------------

    fn conn_ready(&mut self, token: Token, readable: bool, writable: bool, hangup: bool) {
        if !self.conns.contains_key(&token) {
            return;
        }
        if readable {
            self.read_ready(token);
        }
        if writable {
            self.write_ready(token);
        }
        let Some(conn) = self.conns.get_mut(&token) else { return };
        // A hangup with nothing left to read means the peer is gone for
        // good; pending work for it is undeliverable.
        if hangup && !readable {
            self.drop_conn(token);
            return;
        }
        let done = conn.out.is_empty();
        if (conn.closing && done)
            || (conn.read_closed && done && conn.slots.is_empty() && !conn.subscriber)
        {
            self.drop_conn(token);
            return;
        }
        let interest = conn.interest();
        self.poller.set_interest(token, interest);
    }

    /// Drains every buffered frame off the socket (level-triggered:
    /// stop only at `WouldBlock`, never leave bytes behind).
    fn read_ready(&mut self, token: Token) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            if conn.closing {
                return;
            }
            match conn.reader.poll(&mut conn.stream) {
                FrameEvent::Frame(payload) => self.admit_frame(token, &payload),
                FrameEvent::Idle => return,
                FrameEvent::Closed => {
                    let Some(conn) = self.conns.get_mut(&token) else { return };
                    conn.read_closed = true;
                    return;
                }
                FrameEvent::Error(e) => {
                    // After a framing violation the stream offset is
                    // unknowable; answer if possible, then close once
                    // the pipeline ahead of the answer flushes.
                    if let Some(kind) = e.to_error_kind() {
                        let resp =
                            Response::Error(ErrorResponse { kind, message: e.to_string() });
                        self.next_req_id += 1;
                        let req_id = self.next_req_id;
                        self.fill_inline(token, req_id, "error", &resp, false);
                    }
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.closing = true;
                    }
                    return;
                }
            }
        }
    }

    fn write_ready(&mut self, token: Token) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if conn.out.flush_to(&mut conn.stream).is_err() {
            self.drop_conn(token);
        }
    }

    fn drop_conn(&mut self, token: Token) {
        if let Some(conn) = self.conns.remove(&token) {
            self.poller.deregister(token);
            if conn.subscriber {
                self.shared.hub.unsubscribe(conn.id);
            }
            self.shared.bus.emit(ServeEvent::Close { conn: conn.id });
        }
    }

    // -- admission ----------------------------------------------------------

    /// One decoded frame becomes one ordered response slot.
    fn admit_frame(&mut self, token: Token, payload: &Json) {
        self.next_req_id += 1;
        let req_id = self.next_req_id;
        let Some(conn) = self.conns.get_mut(&token) else { return };
        let conn_id = conn.id;
        let pipelined = !conn.slots.is_empty();
        let admitted = Instant::now();
        let request = Request::from_json(payload);
        let kind = match &request {
            Ok(Request::Compile(_)) => "compile",
            Ok(Request::Stats) => "stats",
            Ok(Request::Fetch { .. }) => "fetch",
            Ok(Request::FleetStats) => "fleet-stats",
            Ok(Request::Ping) => "ping",
            Ok(Request::Shutdown) => "shutdown",
            Ok(Request::Subscribe) => "subscribe",
            Err(_) => "invalid",
        };
        self.shared.bus.emit(ServeEvent::Admit {
            conn: conn_id,
            req: req_id,
            kind: kind.to_string(),
            pipelined,
        });
        match request {
            Ok(Request::Compile(req)) => {
                self.admit_compile(token, req_id, admitted, req);
            }
            Ok(Request::Ping) => self.fill_inline(token, req_id, kind, &Response::Pong, true),
            Ok(Request::Stats) => {
                let resp = Response::Stats(Box::new(self.shared.stats()));
                self.fill_inline(token, req_id, kind, &resp, true);
            }
            Ok(Request::Fetch { key }) => {
                // Cache peering: answer from the local tiers only,
                // never compile and never re-fetch — a fetch must be
                // cheap and must not recurse across the fleet.
                let entry = Fingerprint::from_hex(&key)
                    .and_then(|fp| self.shared.cache.export_entry(fp));
                self.shared.bus.emit(ServeEvent::Fetch {
                    conn: conn_id,
                    req: req_id,
                    key: key.clone(),
                    hit: entry.is_some(),
                });
                let resp = Response::Artifact(Box::new(ArtifactResponse { key, entry }));
                self.fill_inline(token, req_id, kind, &resp, true);
            }
            Ok(Request::FleetStats) => self.admit_fleet_stats(token, req_id, admitted),
            Ok(Request::Shutdown) => {
                self.emit_drain("shutdown-request");
                self.shared.draining.store(true, Ordering::SeqCst);
                self.fill_inline(token, req_id, kind, &Response::ShuttingDown, true);
            }
            Ok(Request::Subscribe) => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.subscriber = true;
                    self.shared.hub.subscribe(conn_id);
                }
                self.fill_inline(token, req_id, kind, &Response::Subscribed, true);
            }
            Err(e) => {
                let resp = Response::Error(ErrorResponse {
                    kind: ErrorKind::InvalidRequest,
                    message: e,
                });
                self.fill_inline(token, req_id, kind, &resp, false);
            }
        }
    }

    /// Inline requests (everything but compile) answer on the spot —
    /// but still through a slot, so pipelined ordering holds.
    fn fill_inline(
        &mut self,
        token: Token,
        req_id: u64,
        kind: &'static str,
        resp: &Response,
        ok: bool,
    ) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        let conn_id = conn.id;
        let started = Instant::now();
        let frame = encode_frame(&resp.to_json());
        let serialize_ms = started.elapsed().as_secs_f64() * 1e3;
        conn.slots.push_back(Slot::Ready { frame });
        self.shared.bus.emit(ServeEvent::Done {
            conn: conn_id,
            req: req_id,
            kind: kind.to_string(),
            ok,
            queue_ms: 0.0,
            compile_ms: 0.0,
            serialize_ms,
        });
        self.ship(token);
    }

    fn admit_compile(
        &mut self,
        token: Token,
        req_id: u64,
        admitted: Instant,
        req: Box<CompileRequest>,
    ) {
        if self.shared.is_draining() {
            let resp = Response::Error(ErrorResponse {
                kind: ErrorKind::ShuttingDown,
                message: "server is draining".to_string(),
            });
            self.fill_inline(token, req_id, "compile", &resp, false);
            return;
        }
        // Batching first: joining an in-flight job costs nothing, so
        // it is exempt from queue-depth shedding.
        let solo = req.deadline_ms.is_some();
        let key = if solo { None } else { Some(batch_key(&req)) };
        if let Some(key) = key {
            if let Some(&job_id) = self.batch_index.get(&key.as_u128()) {
                if let Some(members) = self.members.get_mut(&job_id) {
                    let conn_id = self.conns.get(&token).map_or(0, |c| c.id);
                    members.push(Member {
                        token,
                        req_id,
                        kind: "compile",
                        admitted,
                        leader: false,
                    });
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.slots.push_back(Slot::Pending { req_id });
                    }
                    self.shared.bus.emit(ServeEvent::BatchCoalesce {
                        conn: conn_id,
                        req: req_id,
                        batch: key.to_string(),
                    });
                    return;
                }
                // Stale index entry (job already delivered): fall
                // through and dispatch fresh.
                self.batch_index.remove(&key.as_u128());
            }
        }
        if self.shared.queued_jobs() >= self.shared.queue_depth {
            let conn_id = self.conns.get(&token).map_or(0, |c| c.id);
            self.shared
                .bus
                .emit(ServeEvent::Shed { conn: conn_id, scope: "request".to_string() });
            let resp = Response::Error(ErrorResponse {
                kind: ErrorKind::Overloaded,
                message: "compile queue full; retry later".to_string(),
            });
            self.fill_inline(token, req_id, "compile", &resp, false);
            return;
        }
        self.next_job_id += 1;
        let job_id = self.next_job_id;
        let deadline = Deadline::from_request(req.deadline_ms);
        let batch = key.map_or_else(|| format!("solo-{job_id}"), |k| k.to_string());
        if let Some(k) = key {
            self.batch_index.insert(k.as_u128(), job_id);
        }
        self.members.insert(
            job_id,
            vec![Member { token, req_id, kind: "compile", admitted, leader: true }],
        );
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.slots.push_back(Slot::Pending { req_id });
        }
        {
            let mut queue = self.shared.jobs.lock().expect("job queue lock");
            queue.push_back(Job { id: job_id, batch, work: JobWork::Compile(req), deadline });
        }
        self.shared.jobs_ready.notify_one();
    }

    /// `fleet-stats` fans out to peer sockets, so it runs on the pool
    /// like a compile. It is deliberately *not* refused during a drain
    /// and not shed under queue pressure: it is how operators watch a
    /// drain converge, and [`EventLoop::drained`] already waits for
    /// every queued job.
    fn admit_fleet_stats(&mut self, token: Token, req_id: u64, admitted: Instant) {
        self.next_job_id += 1;
        let job_id = self.next_job_id;
        self.members.insert(
            job_id,
            vec![Member { token, req_id, kind: "fleet-stats", admitted, leader: true }],
        );
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.slots.push_back(Slot::Pending { req_id });
        }
        {
            let mut queue = self.shared.jobs.lock().expect("job queue lock");
            queue.push_back(Job {
                id: job_id,
                batch: format!("fleet-stats-{job_id}"),
                work: JobWork::FleetStats,
                deadline: Deadline::none(),
            });
        }
        self.shared.jobs_ready.notify_one();
    }

    // -- completion delivery -------------------------------------------------

    fn deliver_completions(&mut self) {
        let completions: Vec<Completion> =
            std::mem::take(&mut *self.shared.completions.lock().expect("completion list lock"));
        for completion in completions {
            let Some(members) = self.members.remove(&completion.job_id) else { continue };
            // Retire the coalescing window for this job, if it was the
            // one indexed.
            self.batch_index.retain(|_, &mut id| id != completion.job_id);
            for member in members {
                self.answer_member(&member, &completion);
            }
        }
    }

    /// Builds one member's response from a job completion and fills
    /// its slot.
    fn answer_member(&mut self, member: &Member, completion: &Completion) {
        let Some(conn) = self.conns.get_mut(&member.token) else { return };
        let conn_id = conn.id;
        let total_ms = member.admitted.elapsed().as_secs_f64() * 1e3;
        let queue_ms = (total_ms - completion.compile_ms).max(0.0);
        let (resp, ok, source) = match &completion.result {
            Ok(JobOutput::Compile(result, outcome)) => {
                let source = if member.leader {
                    outcome.as_str().to_string()
                } else {
                    "coalesced".to_string()
                };
                (
                    Response::Compiled(Box::new(CompileResponse {
                        result: (**result).clone(),
                        served: ServedInfo {
                            source: source.clone(),
                            queue_ms,
                            service_ms: completion.compile_ms,
                        },
                    })),
                    true,
                    Some(source),
                )
            }
            Ok(JobOutput::FleetStats(agg)) => {
                (Response::FleetStats(agg.clone()), true, None)
            }
            Err(e) => (
                Response::Error(ErrorResponse { kind: e.kind, message: e.message.clone() }),
                false,
                None,
            ),
        };
        let started = Instant::now();
        let frame = encode_frame(&resp.to_json());
        let serialize_ms = started.elapsed().as_secs_f64() * 1e3;
        // Fill the matching slot (it is Pending; order within the
        // conn's pipeline is preserved because slots never reorder).
        for slot in &mut conn.slots {
            if matches!(slot, Slot::Pending { req_id } if *req_id == member.req_id) {
                *slot = Slot::Ready { frame };
                break;
            }
        }
        if let Some(source) = source {
            self.shared.bus.emit(ServeEvent::CacheOutcome {
                conn: conn_id,
                req: member.req_id,
                source,
            });
        }
        self.shared.bus.emit(ServeEvent::Done {
            conn: conn_id,
            req: member.req_id,
            kind: member.kind.to_string(),
            ok,
            queue_ms,
            compile_ms: completion.compile_ms,
            serialize_ms,
        });
        self.ship(member.token);
    }

    /// Moves every leading `Ready` slot into the out buffer (request
    /// order!), flushes what the socket accepts, updates interest.
    fn ship(&mut self, token: Token) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        while let Some(Slot::Ready { .. }) = conn.slots.front() {
            let Some(Slot::Ready { frame }) = conn.slots.pop_front() else { unreachable!() };
            conn.out.push(&frame);
        }
        if conn.out.flush_to(&mut conn.stream).is_err() {
            self.drop_conn(token);
            return;
        }
        let Some(conn) = self.conns.get(&token) else { return };
        let finished = conn.out.is_empty() && !conn.has_pending();
        if finished && (conn.closing || (conn.read_closed && conn.slots.is_empty() && !conn.subscriber)) {
            self.drop_conn(token);
            return;
        }
        let interest = conn.interest();
        self.poller.set_interest(token, interest);
    }

    /// Forwards queued event frames to subscriber connections.
    fn stream_to_subscribers(&mut self) {
        if !self.shared.hub.is_active() {
            return;
        }
        let by_id: HashMap<u64, Token> =
            self.conns.iter().map(|(&t, c)| (c.id, t)).collect();
        for (conn_id, frames) in self.shared.hub.take_pending() {
            let Some(&token) = by_id.get(&conn_id) else {
                self.shared.hub.unsubscribe(conn_id);
                continue;
            };
            let Some(conn) = self.conns.get_mut(&token) else { continue };
            for payload in frames {
                conn.out.push(&frame_payload_str(&payload));
            }
            if conn.out.flush_to(&mut conn.stream).is_err() {
                self.drop_conn(token);
                continue;
            }
            if let Some(conn) = self.conns.get(&token) {
                let interest = conn.interest();
                self.poller.set_interest(token, interest);
            }
        }
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    /// A pathological nonblocking socket: accepts at most `cap` bytes
    /// per call, only while `budget` lasts, `WouldBlock` otherwise.
    struct ShortWriter {
        accepted: Vec<u8>,
        cap: usize,
        budget: usize,
    }

    impl ShortWriter {
        fn new(cap: usize) -> ShortWriter {
            ShortWriter { accepted: Vec::new(), cap, budget: 0 }
        }
    }

    impl Write for ShortWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.cap).min(self.budget);
            if n == 0 {
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            self.budget -= n;
            self.accepted.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn outbuf_resumes_mid_frame_after_torn_writes() {
        let mut out = OutBuf::default();
        let frame_a = frame_payload_str("{\"response\":\"pong\"}");
        let frame_b = frame_payload_str("{\"response\":\"subscribed\"}");
        out.push(&frame_a);
        out.push(&frame_b);
        let total = frame_a.len() + frame_b.len();
        let mut w = ShortWriter::new(3);
        // Dribble the budget out three bytes at a time: every flush
        // tears mid-frame, and the cursor must resume exactly where
        // the kernel stopped accepting.
        let mut rounds = 0;
        loop {
            rounds += 1;
            assert!(rounds < 1000, "flush never completed");
            w.budget += 3;
            match out.flush_to(&mut w) {
                Ok(true) => break,
                Ok(false) => {}
                Err(e) => panic!("flush failed: {e}"),
            }
        }
        let mut expect = frame_a.clone();
        expect.extend_from_slice(&frame_b);
        assert_eq!(w.accepted.len(), total);
        assert_eq!(w.accepted, expect, "bytes must arrive exactly once, in order");
        assert!(out.is_empty());
    }

    #[test]
    fn outbuf_push_after_partial_flush_keeps_order() {
        let mut out = OutBuf::default();
        out.push(b"aaaa");
        let mut w = ShortWriter::new(64);
        w.budget = 2; // the socket accepts 2 of 4 bytes, then stalls
        assert!(!out.flush_to(&mut w).unwrap());
        out.push(b"bbbb"); // a new frame lands while the old is torn
        w.budget = 64;
        assert!(out.flush_to(&mut w).unwrap());
        assert_eq!(&w.accepted, b"aaaabbbb");
        assert!(out.is_empty());
    }

    #[test]
    fn default_config_reads_env_knobs() {
        std::env::set_var("OVERLAP_SERVE_WORKERS", "3");
        std::env::set_var("OVERLAP_SERVE_QUEUE", "17");
        let cfg = ServeConfig::default();
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.queue_depth, 17);
        std::env::remove_var("OVERLAP_SERVE_WORKERS");
        std::env::remove_var("OVERLAP_SERVE_QUEUE");
        let cfg = ServeConfig::default();
        assert!(cfg.workers >= 1, "cores-derived default must be positive");
        assert_eq!(cfg.queue_depth, 4 * cfg.workers);
    }
}
