//! Request execution, shared verbatim by the daemon and by clients
//! that check it.
//!
//! [`execute`] is the single code path that turns a [`CompileRequest`]
//! into a [`CompileResult`]: resolve the model and machine, validate
//! the fault spec, compile through the shared [`ArtifactCache`]
//! (single-flight, so concurrent identical requests compile once),
//! simulate baseline and overlapped schedules, and project the reports
//! to wire summaries. Because `overlapd` and the loadgen's local
//! expectation both call this function, "the server's `result` object
//! is byte-identical to direct `OverlapPipeline` calls" is enforced by
//! construction *and* checked over the wire in CI.

use std::time::Instant;

use overlap_core::{artifact_key_faulted, ArtifactCache, CacheOutcome, OverlapPipeline};
use overlap_hlo::Module;
use overlap_json::{Fingerprint, StableHasher, ToJson};
use overlap_mesh::Machine;
use overlap_models::{find_model, model_names};
use overlap_sim::{
    simulate, simulate_faulted, simulate_order, simulate_order_faulted, SimError,
};

use crate::events::EventBus;
use crate::fleet::FleetState;
use crate::protocol::{
    CompileRequest, CompileResult, ErrorKind, MachineSpec, ModelRef, SimSummary,
};

/// The coalescing key for fingerprint batching: two compile requests
/// with equal keys provably produce byte-identical [`CompileResult`]s,
/// so the server may answer both from one execution.
///
/// Hashes the request's canonical wire encoding of (model, machine,
/// options, fault spec) — `deadline_ms` is deliberately excluded from
/// the JSON by construction here, but batchers must still dispatch
/// deadline-carrying requests solo: a deadline is a per-request
/// wall-clock promise that cannot be shared across batch members.
#[must_use]
pub fn batch_key(req: &CompileRequest) -> Fingerprint {
    let mut h = StableHasher::new("serve-batch/1");
    h.write_str(&req.model.to_json().to_string());
    h.write_str(&req.machine.to_json().to_string());
    h.write_str(&req.options.to_json().to_string());
    match &req.fault_spec {
        Some(spec) => h.write_str(&spec.to_json().to_string()),
        None => h.write_str(""),
    }
    h.finish()
}

/// A typed execution failure; maps 1:1 onto a wire error response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// The wire category.
    pub kind: ErrorKind,
    /// Human-readable elaboration.
    pub message: String,
}

impl ExecError {
    fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        ExecError { kind, message: message.into() }
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

/// The request's wall-clock budget, if any, anchored at receipt.
#[derive(Debug, Clone, Copy)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// No budget: [`Deadline::check`] always passes.
    #[must_use]
    pub fn none() -> Self {
        Deadline(None)
    }

    /// A budget of `ms` milliseconds starting now.
    #[must_use]
    pub fn in_ms(ms: u64) -> Self {
        Deadline(Some(Instant::now() + std::time::Duration::from_millis(ms)))
    }

    /// From a request field.
    #[must_use]
    pub fn from_request(deadline_ms: Option<u64>) -> Self {
        match deadline_ms {
            Some(ms) => Self::in_ms(ms),
            None => Self::none(),
        }
    }

    /// Fails with [`ErrorKind::DeadlineExceeded`] once the budget is
    /// spent. Called at phase boundaries (compilation and simulation
    /// are indivisible; a deadline cannot interrupt them mid-flight,
    /// only between them — the *simulated-time* watchdog inside
    /// `FaultSpec::with_time_limit` covers runaway simulations).
    ///
    /// # Errors
    ///
    /// Returns the typed deadline error naming the phase that would
    /// have started.
    pub fn check(&self, phase: &str) -> Result<(), ExecError> {
        match self.0 {
            Some(t) if Instant::now() >= t => Err(ExecError::new(
                ErrorKind::DeadlineExceeded,
                format!("deadline expired before {phase}"),
            )),
            _ => Ok(()),
        }
    }
}

/// A request resolved to concrete inputs.
struct Resolved {
    label: String,
    module: Module,
    machine: Machine,
}

fn resolve(req: &CompileRequest) -> Result<Resolved, ExecError> {
    let (label, module, default_machine) = match &req.model {
        ModelRef::Named(name) => {
            let Some(cfg) = find_model(name) else {
                return Err(ExecError::new(
                    ErrorKind::UnknownModel,
                    format!("unknown model {name:?}; known names: {}", model_names().join(", ")),
                ));
            };
            let machine = cfg.machine();
            (cfg.name.to_string(), cfg.layer_module(), machine)
        }
        ModelRef::Inline(module) => {
            // Inline modules arrive from the network: untrusted until
            // verified.
            if let Err(e) = module.verify() {
                return Err(ExecError::new(
                    ErrorKind::InvalidModule,
                    format!("module failed verification: {e}"),
                ));
            }
            let machine = Machine::tpu_v4_like(module.num_partitions());
            (module.name().to_string(), (**module).clone(), machine)
        }
    };
    let machine = match req.machine {
        MachineSpec::ModelDefault => default_machine,
        MachineSpec::TpuV4 { chips } => Machine::tpu_v4_like(chips),
        MachineSpec::GpuCluster { chips } => Machine::gpu_cluster_like(chips),
    };
    if machine.mesh().num_devices() != module.num_partitions() {
        return Err(ExecError::new(
            ErrorKind::InvalidRequest,
            format!(
                "machine has {} devices but the module is partitioned {} ways",
                machine.mesh().num_devices(),
                module.num_partitions()
            ),
        ));
    }
    if let Some(spec) = &req.fault_spec {
        if let Err(e) = spec.validate(machine.mesh()) {
            return Err(ExecError::new(
                ErrorKind::InvalidFaultSpec,
                format!("fault spec does not fit the machine: {e}"),
            ));
        }
    }
    Ok(Resolved { label, module, machine })
}

fn sim_error(what: &str, e: &SimError) -> ExecError {
    let kind = match e {
        // The simulated-time watchdog and the wall-clock budget report
        // through the same typed error.
        SimError::Timeout => ErrorKind::DeadlineExceeded,
        // A collective that cannot route is the fault spec's doing.
        SimError::LinkDown { .. } => ErrorKind::InvalidFaultSpec,
        _ => ErrorKind::Internal,
    };
    ExecError::new(kind, format!("cannot simulate the {what}: {e}"))
}

/// Runs one compile-and-simulate request to completion.
///
/// Deterministic: every field of the returned [`CompileResult`] is a
/// pure function of the request, so two calls — on different machines,
/// processes or sides of a socket — encode to identical bytes. The
/// [`CacheOutcome`] is the per-request provenance (advisory, excluded
/// from that contract).
///
/// # Errors
///
/// Returns a typed [`ExecError`] for unknown models, invalid modules
/// or fault specs, expired deadlines, and pipeline/simulator failures.
pub fn execute(
    req: &CompileRequest,
    cache: &ArtifactCache,
    deadline: Deadline,
) -> Result<(CompileResult, CacheOutcome), ExecError> {
    execute_with_peers(req, cache, deadline, None, None)
}

/// [`execute`] with a fleet peer tier: when both local cache tiers
/// miss and `fleet` is present, the artifact's ring owner (then its
/// hedge successor) is asked for the entry before compiling locally.
/// Fetched entries go through the full disk-tier revalidation inside
/// the cache, so a lying or corrupt peer degrades to an ordinary local
/// compile — never a wrong answer. With `fleet` absent this *is*
/// [`execute`].
///
/// # Errors
///
/// Exactly as [`execute`] — peer trouble is never an error, only a
/// provenance change.
pub fn execute_with_peers(
    req: &CompileRequest,
    cache: &ArtifactCache,
    deadline: Deadline,
    fleet: Option<&FleetState>,
    bus: Option<&EventBus>,
) -> Result<(CompileResult, CacheOutcome), ExecError> {
    let resolved = resolve(req)?;
    let Resolved { label, module, machine } = resolved;
    deadline.check("compilation")?;

    let mut pipeline = OverlapPipeline::new(req.options);
    if let Some(spec) = &req.fault_spec {
        pipeline = pipeline.with_faults(spec.clone());
    }
    // The peer tier keys by the *artifact* fingerprint — computed
    // exactly as the cache computes it, or owners would be asked for
    // keys they never store.
    let artifact_key = artifact_key_faulted(
        &module,
        &machine,
        pipeline.options(),
        pipeline.effective_faults(),
    );
    let mut fetcher = fleet.map(|f| f.fetcher(artifact_key, bus));
    let mut fetch = move || fetcher.as_mut().and_then(super::fleet::PeerFetcher::next_entry);
    let (compiled, outcome) = cache
        .compile_traced_with_fetch(&pipeline, &module, &machine, &mut fetch)
        .map_err(|e| ExecError::new(ErrorKind::Internal, format!("cannot compile: {e}")))?;
    deadline.check("simulation")?;

    let (baseline, overlapped) = match &req.fault_spec {
        Some(spec) => (
            simulate_faulted(&module, &machine, spec)
                .map_err(|e| sim_error("faulted baseline", &e))?,
            simulate_order_faulted(&compiled.module, &machine, &compiled.order, spec)
                .map_err(|e| sim_error("faulted overlapped schedule", &e))?,
        ),
        None => (
            simulate(&module, &machine).map_err(|e| sim_error("baseline", &e))?,
            simulate_order(&compiled.module, &machine, &compiled.order)
                .map_err(|e| sim_error("overlapped schedule", &e))?,
        ),
    };
    deadline.check("response encoding")?;

    let key = artifact_key_faulted(&module, &machine, &req.options, req.fault_spec.as_ref());
    let baseline = SimSummary::of(&baseline);
    let overlapped = SimSummary::of(&overlapped);
    let speedup = baseline.makespan / overlapped.makespan;
    let result = CompileResult {
        model: label,
        num_partitions: module.num_partitions(),
        artifact_key: key.to_string(),
        module_fingerprint: module.fingerprint().to_string(),
        machine_fingerprint: machine.fingerprint().to_string(),
        options_fingerprint: req.options.fingerprint().to_string(),
        input_identity: module.identity_fingerprint().to_string(),
        compiled_identity: compiled.module.identity_fingerprint().to_string(),
        order_len: compiled.order.len(),
        decisions: compiled.decisions,
        summaries: compiled.summaries,
        fallbacks: compiled.fallbacks,
        baseline,
        overlapped,
        speedup,
    };
    Ok((result, outcome))
}
