//! The fleet layer: N cooperating overlapd daemons behind one hash
//! ring.
//!
//! One daemon compiles each artifact; everyone else *fetches*. The
//! pieces:
//!
//! * [`HashRing`] — consistent hashing of artifact [`Fingerprint`]s
//!   onto node indices, with virtual nodes so membership changes move
//!   ~1/N of the keyspace instead of reshuffling everything. The ring
//!   is a pure function of `(node count, virtual-node count)`: every
//!   router and every daemon derives the identical ring, so "who owns
//!   this key" needs no coordination traffic.
//! * [`NodeHealth`] — the per-peer failure tracker: consecutive
//!   failures eject a node, an ejected node is skipped outright (a
//!   dead peer must cost nothing per request), and after a probation
//!   interval one probe is allowed back through; success re-admits,
//!   failure re-ejects.
//! * [`RetryPolicy`] — capped exponential backoff with *seeded* jitter
//!   (a counter-based `splitmix64`, no global RNG), so identically
//!   seeded runs replay identical delays and the fleet smoke can
//!   assert byte-identical outcomes.
//! * [`FleetState`] — a daemon's view of its fleet: ring + health +
//!   peer addresses. Its [`PeerFetcher`] is the cache's peer tier —
//!   on a local miss it asks the key's owner (then, past the hedge
//!   timeout, the ring successor) for the versioned JSON entry, which
//!   the cache revalidates as thoroughly as a disk file before
//!   serving. [`aggregate_stats`] fans a stats probe across the fleet
//!   and merges histograms bucket-by-bucket.
//! * [`Router`] / [`RouterSession`] — the client side: route each
//!   compile to its owner, fail over along the ring when the owner is
//!   down or draining, retry sheds with backoff.
//! * [`FleetHarness`] — N real servers on ephemeral ports inside one
//!   process, for tests and perfgate; `ci.sh` runs the same topology
//!   as separate `overlapd --fleet` processes and SIGKILLs one.
//!
//! The failure matrix, in short: a *shed* retries the same node after
//! a backoff; a *draining* or *unreachable* node fails over to the
//! next ring node and counts toward ejection; a *slow* peer fetch
//! hedges to the successor after the I/O timeout; a *corrupt* peer
//! entry is skipped (never retried — the next candidate is asked
//! instead); a *permanent* typed error (unknown model, invalid spec)
//! is the caller's answer, whoever serves it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use overlap_core::ArtifactCache;
use overlap_json::{Fingerprint, Json, StableHasher};

use crate::client::{Client, ClientError};
use crate::events::{EventBus, ServeEvent};
use crate::exec::batch_key;
use crate::protocol::{
    CompileRequest, CompileResponse, ErrorKind, FleetNodeStatus, FleetStatsResponse,
    LatencySummary, Request, Response, StatsResponse,
};
use crate::server::{ServeConfig, Server, ShutdownHandle};
use overlap_sim::Histogram;

/// The stable id of fleet node `index`.
#[must_use]
pub fn node_id(index: usize) -> String {
    format!("node-{index}")
}

/// `splitmix64`: the jitter source. Counter-based and stateless, like
/// the fault model's draws — two runs with equal seeds see equal
/// delays.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

// ---------------------------------------------------------------------------
// Hash ring
// ---------------------------------------------------------------------------

/// Consistent hashing of 128-bit fingerprints onto node indices.
///
/// Each node contributes `vnodes` points hashed from `(index,
/// replica)` under a versioned domain; a key is owned by the first
/// point clockwise from its own hash. Determinism is the load-bearing
/// property: every participant builds the ring independently and must
/// agree on every owner.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, node index)`, sorted by point.
    points: Vec<(u64, usize)>,
    nodes: usize,
}

impl HashRing {
    /// A ring over `nodes` nodes with `vnodes` virtual points each.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `vnodes` is zero — an empty ring owns
    /// nothing.
    #[must_use]
    pub fn new(nodes: usize, vnodes: usize) -> HashRing {
        assert!(nodes > 0, "a hash ring needs at least one node");
        assert!(vnodes > 0, "a hash ring needs at least one virtual node per node");
        let mut points = Vec::with_capacity(nodes * vnodes);
        for node in 0..nodes {
            for replica in 0..vnodes {
                let mut h = StableHasher::new("serve-fleet-ring/1");
                h.write_u64(node as u64);
                h.write_u64(replica as u64);
                points.push((fold_u128(h.finish().as_u128()), node));
            }
        }
        points.sort_unstable();
        HashRing { points, nodes }
    }

    /// Fleet size.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The owner of `key`.
    #[must_use]
    pub fn owner(&self, key: Fingerprint) -> usize {
        self.points[self.position(key)].1
    }

    /// Every node, in ring order starting at the owner of `key` — the
    /// failover order: owner first, then successors.
    #[must_use]
    pub fn route(&self, key: Fingerprint) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.nodes);
        let start = self.position(key);
        for offset in 0..self.points.len() {
            let node = self.points[(start + offset) % self.points.len()].1;
            if !order.contains(&node) {
                order.push(node);
                if order.len() == self.nodes {
                    break;
                }
            }
        }
        order
    }

    fn position(&self, key: Fingerprint) -> usize {
        let point = fold_u128(key.as_u128());
        match self.points.binary_search_by(|probe| probe.0.cmp(&point)) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0,
            Err(i) => i,
        }
    }
}

/// Folds a 128-bit fingerprint onto the 64-bit ring keyspace.
fn fold_u128(x: u128) -> u64 {
    (x as u64) ^ ((x >> 64) as u64)
}

// ---------------------------------------------------------------------------
// Health tracking
// ---------------------------------------------------------------------------

/// When to eject a failing peer and when to let it audition again.
#[derive(Debug, Clone, Copy)]
pub struct HealthPolicy {
    /// Consecutive failures before ejection.
    pub eject_after: u32,
    /// How long an ejected node is skipped before one probe is
    /// allowed back through.
    pub probation: Duration,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy { eject_after: 3, probation: Duration::from_millis(500) }
    }
}

/// Where a peer stands in the failure tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Answering normally.
    Alive,
    /// Ejected, but the probation interval has elapsed: the next
    /// request may probe it. Success re-admits, failure re-ejects.
    Probation,
    /// Skipped without being tried.
    Ejected,
}

impl HealthState {
    /// The stable wire/event tag.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Alive => "alive",
            HealthState::Probation => "probation",
            HealthState::Ejected => "ejected",
        }
    }
}

/// One peer's failure tracker. The state machine:
/// `alive --(eject_after consecutive failures)--> ejected
/// --(probation elapses)--> probation --success--> alive` (or
/// `--failure--> ejected` again, timer reset).
#[derive(Debug, Clone, Default)]
pub struct NodeHealth {
    consecutive_failures: u32,
    ejected_at: Option<Instant>,
    probing: bool,
}

impl NodeHealth {
    /// The current state under `policy`.
    #[must_use]
    pub fn state(&self, policy: &HealthPolicy) -> HealthState {
        match self.ejected_at {
            None => HealthState::Alive,
            Some(at) if at.elapsed() >= policy.probation => HealthState::Probation,
            Some(_) => HealthState::Ejected,
        }
    }

    /// Whether a request should try this node now. Ejected nodes are
    /// skipped; a node in probation admits one probe at a time.
    pub fn usable(&mut self, policy: &HealthPolicy) -> bool {
        match self.state(policy) {
            HealthState::Alive => true,
            HealthState::Ejected => false,
            HealthState::Probation => {
                if self.probing {
                    false
                } else {
                    self.probing = true;
                    true
                }
            }
        }
    }

    /// Records a success; returns the new state (always alive).
    pub fn on_success(&mut self) -> HealthState {
        self.consecutive_failures = 0;
        self.ejected_at = None;
        self.probing = false;
        HealthState::Alive
    }

    /// Records a failure; returns the new state under `policy`.
    pub fn on_failure(&mut self, policy: &HealthPolicy) -> HealthState {
        self.consecutive_failures += 1;
        self.probing = false;
        if self.consecutive_failures >= policy.eject_after || self.ejected_at.is_some() {
            // A probation probe that fails re-ejects with a fresh
            // timer; an alive node crosses the threshold.
            self.ejected_at = Some(Instant::now());
        }
        self.state(policy)
    }
}

/// A shared, lock-guarded failure tracker over `n` peers that emits
/// `peer-state` events on transitions.
struct HealthTable {
    policy: HealthPolicy,
    nodes: Mutex<Vec<NodeHealth>>,
}

impl HealthTable {
    fn new(n: usize, policy: HealthPolicy) -> HealthTable {
        HealthTable { policy, nodes: Mutex::new(vec![NodeHealth::default(); n]) }
    }

    fn usable(&self, idx: usize) -> bool {
        self.nodes.lock().expect("health lock")[idx].usable(&self.policy)
    }

    fn record(&self, idx: usize, ok: bool, bus: Option<&EventBus>) {
        let mut nodes = self.nodes.lock().expect("health lock");
        let before = nodes[idx].state(&self.policy);
        let after =
            if ok { nodes[idx].on_success() } else { nodes[idx].on_failure(&self.policy) };
        drop(nodes);
        if before != after {
            if let Some(bus) = bus {
                bus.emit(ServeEvent::PeerState {
                    node: node_id(idx),
                    state: after.as_str().to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// Capped exponential backoff with seeded jitter.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Attempts per target (1 = no retry).
    pub attempts: u32,
    /// Backoff before the second attempt.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Jitter seed; equal seeds draw equal jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (1-based: the delay
    /// after the first failure is `delay(1, ..)`): `base * 2^(a-1)`
    /// capped at `cap`, plus up to half of itself in seeded jitter so
    /// a thundering herd of retries decorrelates deterministically.
    #[must_use]
    pub fn delay(&self, attempt: u32, salt: u64) -> Duration {
        let shift = attempt.saturating_sub(1).min(16);
        let backoff = self.base.saturating_mul(1 << shift).min(self.cap);
        let jitter_space = (backoff.as_millis() as u64 / 2).max(1);
        let jitter = mix64(self.seed ^ salt.rotate_left(17) ^ u64::from(attempt)) % jitter_space;
        backoff + Duration::from_millis(jitter)
    }
}

// ---------------------------------------------------------------------------
// Daemon-side fleet state
// ---------------------------------------------------------------------------

/// How a daemon joins a fleet.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// This daemon's index into `addrs`.
    pub node_index: usize,
    /// Every fleet member's address, index-aligned (including self).
    pub addrs: Vec<String>,
    /// Virtual nodes per member; all members must agree.
    pub vnodes: usize,
    /// Per-attempt connect + read deadline for peer traffic. Doubles
    /// as the hedge threshold: a fetch that outlives it moves to the
    /// ring successor.
    pub io_timeout: Duration,
    /// Backoff for transient peer-fetch failures.
    pub retry: RetryPolicy,
    /// Ejection/probation thresholds for peers.
    pub health: HealthPolicy,
}

/// Virtual nodes per member. 64 keeps owner shares within a few
/// percent of uniform at fleet sizes this layer targets, and ring
/// construction is O(N·64·log) once at startup.
pub const DEFAULT_VNODES: usize = 64;

impl FleetConfig {
    /// A config with the default knobs.
    #[must_use]
    pub fn new(node_index: usize, addrs: Vec<String>) -> FleetConfig {
        FleetConfig {
            node_index,
            addrs,
            vnodes: DEFAULT_VNODES,
            io_timeout: Duration::from_millis(2000),
            retry: RetryPolicy::default(),
            health: HealthPolicy::default(),
        }
    }
}

/// A daemon's live view of its fleet: the ring, the peer addresses,
/// and the health tracker. Shared by pool workers via `Arc`.
pub struct FleetState {
    cfg: FleetConfig,
    ring: HashRing,
    health: HealthTable,
    /// Outbound peer-fetch attempts (kept here as well as in metrics
    /// so the state is self-describing in tests).
    attempts: AtomicU64,
}

impl FleetState {
    /// Builds the ring and tracker from a config.
    ///
    /// # Panics
    ///
    /// Panics if the config is degenerate (no addresses, index out of
    /// range, zero virtual nodes).
    #[must_use]
    pub fn new(cfg: FleetConfig) -> FleetState {
        assert!(
            cfg.node_index < cfg.addrs.len(),
            "fleet node index {} out of range for {} addrs",
            cfg.node_index,
            cfg.addrs.len()
        );
        let ring = HashRing::new(cfg.addrs.len(), cfg.vnodes);
        let health = HealthTable::new(cfg.addrs.len(), cfg.health);
        FleetState { ring, health, attempts: AtomicU64::new(0), cfg }
    }

    /// This daemon's stable id.
    #[must_use]
    pub fn node_id(&self) -> String {
        node_id(self.cfg.node_index)
    }

    /// Fleet size.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.cfg.addrs.len()
    }

    /// The owner of `key` on the shared ring.
    #[must_use]
    pub fn owner(&self, key: Fingerprint) -> usize {
        self.ring.owner(key)
    }

    /// Outbound peer-fetch attempts so far.
    #[must_use]
    pub fn fetch_attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// The peer tier for one artifact key: asks the owner, then (on
    /// timeout, unreachability, or a rejected entry) the next ring
    /// successor. Self is excluded — the local tiers already missed.
    #[must_use]
    pub fn fetcher<'a>(&'a self, key: Fingerprint, bus: Option<&'a EventBus>) -> PeerFetcher<'a> {
        let plan: Vec<usize> = self
            .ring
            .route(key)
            .into_iter()
            .filter(|&n| n != self.cfg.node_index)
            .take(2)
            .collect();
        PeerFetcher { state: self, bus, key_hex: key.to_string(), plan, next: 0 }
    }

    /// One bounded fetch attempt against peer `idx` (no retry here —
    /// the caller owns the retry loop).
    fn fetch_once(&self, idx: usize, key_hex: &str) -> Result<Option<Json>, ClientError> {
        let addr = &self.cfg.addrs[idx];
        let client = Client::connect_deadline(addr, self.cfg.io_timeout)
            .map_err(|e| ClientError::Wire(crate::protocol::WireError::Io(e)))?;
        client
            .set_io_timeout(Some(self.cfg.io_timeout))
            .map_err(|e| ClientError::Wire(crate::protocol::WireError::Io(e)))?;
        let mut client = client;
        Ok(client.fetch(key_hex)?.entry)
    }
}

/// The cache's peer tier for one key: yields revalidation *candidates*
/// one at a time. The cache calls back for the next candidate whenever
/// one fails validation, so a corrupt entry is skipped — never
/// re-fetched — and the next peer gets its turn.
pub struct PeerFetcher<'a> {
    state: &'a FleetState,
    bus: Option<&'a EventBus>,
    key_hex: String,
    plan: Vec<usize>,
    next: usize,
}

impl PeerFetcher<'_> {
    /// The next candidate entry, or `None` when every planned peer has
    /// been asked. Transient failures (unreachable, timed out) retry
    /// the same peer under the seeded backoff policy before moving on;
    /// an *answered* miss (`entry: null`) is authoritative and moves
    /// on immediately.
    pub fn next_entry(&mut self) -> Option<Json> {
        while self.next < self.plan.len() {
            let idx = self.plan[self.next];
            self.next += 1;
            if !self.state.health.usable(idx) {
                continue;
            }
            let retry = self.state.cfg.retry;
            let salt = fold_u128(u128::from(mix64(idx as u64)));
            for attempt in 1..=retry.attempts {
                self.state.attempts.fetch_add(1, Ordering::Relaxed);
                match self.state.fetch_once(idx, &self.key_hex) {
                    Ok(entry) => {
                        self.state.health.record(idx, true, self.bus);
                        let outcome = if entry.is_some() { "hit" } else { "absent" };
                        self.emit(idx, outcome);
                        if let Some(entry) = entry {
                            return Some(entry);
                        }
                        break; // authoritative miss: next peer
                    }
                    Err(ClientError::Server(e)) => {
                        // A typed answer means the node is up; don't
                        // count it toward ejection, don't retry — the
                        // error is deterministic.
                        self.state.health.record(idx, true, self.bus);
                        self.emit(idx, &format!("error:{}", e.kind.as_str()));
                        break;
                    }
                    Err(_) => {
                        self.state.health.record(idx, false, self.bus);
                        self.emit(idx, "unreachable");
                        if attempt < retry.attempts {
                            std::thread::sleep(retry.delay(attempt, salt));
                        }
                    }
                }
            }
        }
        None
    }

    fn emit(&self, idx: usize, outcome: &str) {
        if let Some(bus) = self.bus {
            bus.emit(ServeEvent::PeerFetch {
                node: node_id(idx),
                key: self.key_hex.clone(),
                outcome: outcome.to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Fleet-wide stats aggregation
// ---------------------------------------------------------------------------

/// Fans a stats probe across the fleet (bounded by the fleet I/O
/// timeout per peer) and merges: counters are summed, latency
/// *histograms* are merged bucket-by-bucket — never quantiles averaged
/// — and each node's liveness is reported. With no fleet configured
/// the local stats become a 1-node aggregate, so `fleet-stats` is
/// always answerable.
#[must_use]
pub fn aggregate_stats(
    fleet: Option<&FleetState>,
    local: StatsResponse,
    bus: Option<&EventBus>,
) -> FleetStatsResponse {
    let mut per_node: Vec<(String, Option<StatsResponse>)> = Vec::new();
    match fleet {
        None => per_node.push((local.node.clone(), Some(local))),
        Some(state) => {
            for idx in 0..state.nodes() {
                if idx == state.cfg.node_index {
                    per_node.push((node_id(idx), Some(local.clone())));
                    continue;
                }
                let probed = probe_stats(state, idx);
                state.health.record(idx, probed.is_some(), bus);
                per_node.push((node_id(idx), probed));
            }
        }
    }

    let latency = Histogram::new();
    let mut agg = FleetStatsResponse {
        origin: fleet.map_or_else(|| per_node[0].0.clone(), FleetState::node_id),
        total: per_node.len(),
        alive: 0,
        requests: 0,
        ok: 0,
        errors: 0,
        shed: 0,
        coalesced: 0,
        batches: 0,
        pipelined: 0,
        fetches: 0,
        peer_fetches: 0,
        cache_memory_hits: 0,
        cache_disk_hits: 0,
        cache_peer_hits: 0,
        cache_misses: 0,
        cache_hit_rate: 0.0,
        latency: LatencySummary { count: 0, p50_ms: 0.0, p90_ms: 0.0, p99_ms: 0.0, max_ms: 0.0 },
        nodes: Vec::with_capacity(per_node.len()),
    };
    for (id, stats) in per_node {
        let Some(s) = stats else {
            agg.nodes.push(FleetNodeStatus {
                node: id,
                alive: false,
                requests: 0,
                cache_misses: 0,
                cache_peer_hits: 0,
            });
            continue;
        };
        agg.alive += 1;
        agg.requests += s.requests;
        agg.ok += s.ok;
        agg.errors += s.errors;
        agg.shed += s.shed;
        agg.coalesced += s.coalesced;
        agg.batches += s.batches;
        agg.pipelined += s.pipelined;
        agg.fetches += s.fetches;
        agg.peer_fetches += s.peer_fetches;
        agg.cache_memory_hits += s.cache_memory_hits;
        agg.cache_disk_hits += s.cache_disk_hits;
        agg.cache_peer_hits += s.cache_peer_hits;
        agg.cache_misses += s.cache_misses;
        latency.merge_buckets(&s.latency_buckets, s.latency.max_ms);
        agg.nodes.push(FleetNodeStatus {
            node: id,
            alive: true,
            requests: s.requests,
            cache_misses: s.cache_misses,
            cache_peer_hits: s.cache_peer_hits,
        });
    }
    let hits = agg.cache_memory_hits + agg.cache_disk_hits + agg.cache_peer_hits;
    let lookups = hits + agg.cache_misses;
    agg.cache_hit_rate = if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 };
    agg.latency = latency.summary().into();
    agg
}

/// One bounded stats probe; `None` on any failure (the node is
/// reported dead in the aggregate).
fn probe_stats(state: &FleetState, idx: usize) -> Option<StatsResponse> {
    let client = Client::connect_deadline(&state.cfg.addrs[idx], state.cfg.io_timeout).ok()?;
    client.set_io_timeout(Some(state.cfg.io_timeout)).ok()?;
    let mut client = client;
    match client.request_bounded(&Request::Stats) {
        Ok(Response::Stats(s)) => Some(*s),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

/// How the router treats the fleet; shared by every session.
struct RouterCore {
    addrs: Vec<String>,
    ring: HashRing,
    health: HealthTable,
    retry: RetryPolicy,
    /// Budget for a fresh connect (covers the daemon-still-binding
    /// race via `Client::connect_retry`).
    connect_budget: Duration,
}

/// The client-side fleet router: consistent-hashes every compile to
/// its owner and fails over along the ring. Cheap to clone across
/// loadgen threads; each thread works through its own
/// [`RouterSession`] (connections are not shared).
#[derive(Clone)]
pub struct Router {
    core: Arc<RouterCore>,
}

impl Router {
    /// A router over the fleet's addresses (index-aligned with the
    /// daemons' own `FleetConfig::addrs`).
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty.
    #[must_use]
    pub fn new(addrs: Vec<String>) -> Router {
        Router::with_policies(
            addrs,
            RetryPolicy::default(),
            HealthPolicy::default(),
            Duration::from_secs(5),
        )
    }

    /// [`Router::new`] with explicit retry/health policies and a
    /// connect budget (how long a refused connect keeps retrying
    /// before it counts as a node failure — the knob that bounds how
    /// quickly a dead node costs its first caller).
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty.
    #[must_use]
    pub fn with_policies(
        addrs: Vec<String>,
        retry: RetryPolicy,
        health: HealthPolicy,
        connect_budget: Duration,
    ) -> Router {
        let ring = HashRing::new(addrs.len(), DEFAULT_VNODES);
        let health = HealthTable::new(addrs.len(), health);
        Router {
            core: Arc::new(RouterCore { addrs, ring, health, retry, connect_budget }),
        }
    }

    /// Fleet size.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.core.addrs.len()
    }

    /// The address of node `idx`.
    #[must_use]
    pub fn addr(&self, idx: usize) -> &str {
        &self.core.addrs[idx]
    }

    /// Which node owns this request on the ring (the routing decision,
    /// before health is consulted). Deterministic: a pure function of
    /// the request's batch fingerprint and the fleet size.
    #[must_use]
    pub fn owner_of(&self, req: &CompileRequest) -> usize {
        self.core.ring.owner(batch_key(req))
    }

    /// A session holding this thread's connections.
    #[must_use]
    pub fn session(&self) -> RouterSession {
        RouterSession { core: Arc::clone(&self.core), conns: HashMap::new() }
    }
}

/// One thread's working connections through a [`Router`].
pub struct RouterSession {
    core: Arc<RouterCore>,
    conns: HashMap<usize, Client>,
}

impl RouterSession {
    /// Routes one compile: the ring owner first, then each successor.
    /// Per node, sheds (`overloaded`) and transport failures retry
    /// under the seeded backoff; a draining or unreachable node counts
    /// toward its ejection and the request moves down the ring. Other
    /// typed errors are deterministic answers and return immediately.
    /// Returns the response and the index of the node that served it.
    ///
    /// # Errors
    ///
    /// Returns the last failure once every node has been tried.
    pub fn compile(
        &mut self,
        req: &CompileRequest,
    ) -> Result<(CompileResponse, usize), ClientError> {
        let key = batch_key(req);
        let mut last: Option<ClientError> = None;
        for idx in self.core.ring.route(key) {
            if !self.core.health.usable(idx) {
                continue;
            }
            match self.compile_on(idx, req, fold_u128(key.as_u128())) {
                Ok(resp) => return Ok((resp, idx)),
                Err(Failover::Permanent(e)) => return Err(e),
                Err(Failover::NextNode(e)) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            ClientError::Server(crate::protocol::ErrorResponse {
                kind: ErrorKind::Overloaded,
                message: "every fleet node is ejected".to_string(),
            })
        }))
    }

    /// Pings node `idx` (health-checked connect included).
    ///
    /// # Errors
    ///
    /// As [`Client::ping`].
    pub fn ping(&mut self, idx: usize) -> Result<(), ClientError> {
        let r = self.client(idx)?.ping();
        self.settle(idx, &r);
        r
    }

    /// Per-node stats from node `idx`.
    ///
    /// # Errors
    ///
    /// As [`Client::stats`].
    pub fn stats(&mut self, idx: usize) -> Result<StatsResponse, ClientError> {
        let r = self.client(idx)?.stats();
        self.settle(idx, &r);
        r
    }

    /// Cluster aggregate, asked of the first usable node.
    ///
    /// # Errors
    ///
    /// Returns the last per-node failure if no node answers.
    pub fn fleet_stats(&mut self) -> Result<FleetStatsResponse, ClientError> {
        let mut last: Option<ClientError> = None;
        for idx in 0..self.core.addrs.len() {
            if !self.core.health.usable(idx) {
                continue;
            }
            match self.client(idx).and_then(Client::fleet_stats) {
                Ok(f) => {
                    self.core.health.record(idx, true, None);
                    return Ok(f);
                }
                Err(e) => {
                    self.conns.remove(&idx);
                    self.core.health.record(idx, false, None);
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| {
            ClientError::Server(crate::protocol::ErrorResponse {
                kind: ErrorKind::Overloaded,
                message: "every fleet node is ejected".to_string(),
            })
        }))
    }

    /// One node's share of the routing work, with same-node retries.
    fn compile_on(
        &mut self,
        idx: usize,
        req: &CompileRequest,
        salt: u64,
    ) -> Result<CompileResponse, Failover> {
        let retry = self.core.retry;
        let mut last = None;
        for attempt in 1..=retry.attempts {
            let outcome = match self.client(idx) {
                Ok(client) => client.compile(req.clone()),
                Err(e) => Err(e),
            };
            match outcome {
                Ok(resp) => {
                    self.core.health.record(idx, true, None);
                    return Ok(resp);
                }
                Err(ClientError::Server(e)) if e.kind == ErrorKind::Overloaded => {
                    // Shed: the node is alive and explicit — back off
                    // and retry it, don't fail over (the whole fleet
                    // is likely busy too).
                    self.core.health.record(idx, true, None);
                    last = Some(ClientError::Server(e));
                }
                Err(ClientError::Server(e)) if e.kind == ErrorKind::ShuttingDown => {
                    self.conns.remove(&idx);
                    self.core.health.record(idx, false, None);
                    return Err(Failover::NextNode(ClientError::Server(e)));
                }
                Err(ClientError::Server(e)) => {
                    // Deterministic typed answer (unknown model, bad
                    // spec…): the fleet agrees, failover can't help.
                    self.core.health.record(idx, true, None);
                    return Err(Failover::Permanent(ClientError::Server(e)));
                }
                Err(e) => {
                    // Transport trouble: reconnect on the next attempt.
                    self.conns.remove(&idx);
                    self.core.health.record(idx, false, None);
                    last = Some(e);
                }
            }
            if attempt < retry.attempts {
                std::thread::sleep(retry.delay(attempt, salt ^ idx as u64));
            }
        }
        Err(Failover::NextNode(last.unwrap_or_else(|| {
            ClientError::BadResponse("retries exhausted without an error".to_string())
        })))
    }

    fn client(&mut self, idx: usize) -> Result<&mut Client, ClientError> {
        if !self.conns.contains_key(&idx) {
            // A deadline, not a refused-retry loop: refusal means the
            // node is *down*, and a dead node must cost its prober
            // milliseconds (then failover), not the whole budget.
            let c = Client::connect_deadline(
                self.core.addrs[idx].as_str(),
                self.core.connect_budget,
            )
            .map_err(|e| ClientError::Wire(crate::protocol::WireError::Io(e)))?;
            self.conns.insert(idx, c);
        }
        Ok(self.conns.get_mut(&idx).expect("connection just inserted"))
    }

    fn settle<T>(&mut self, idx: usize, result: &Result<T, ClientError>) {
        match result {
            Ok(_) | Err(ClientError::Server(_)) => self.core.health.record(idx, true, None),
            Err(_) => {
                self.conns.remove(&idx);
                self.core.health.record(idx, false, None);
            }
        }
    }
}

/// Why a per-node compile attempt ended.
enum Failover {
    /// Try the next ring node.
    NextNode(ClientError),
    /// A deterministic typed answer; return it.
    Permanent(ClientError),
}

// ---------------------------------------------------------------------------
// In-process harness
// ---------------------------------------------------------------------------

/// One node of an in-process fleet.
pub struct FleetNode {
    /// The node's bound address.
    pub addr: String,
    /// Drains the node ("kill" for an in-process fleet: the node
    /// finishes in-flight work, then stops answering).
    pub shutdown: ShutdownHandle,
    thread: Option<JoinHandle<std::io::Result<()>>>,
}

/// N real servers on ephemeral ports inside one process — the test and
/// perfgate topology. `ci.sh` exercises the same layer as separate
/// `overlapd --fleet` processes (where a kill really is SIGKILL).
pub struct FleetHarness {
    nodes: Vec<FleetNode>,
}

impl FleetHarness {
    /// Binds and runs `n` daemons, each with its own cache from
    /// `mk_cache(index)`, all sharing one ring. Binding happens first
    /// so every node learns the full address list before serving.
    ///
    /// # Errors
    ///
    /// Returns the first bind failure.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn launch(
        n: usize,
        config: &ServeConfig,
        mk_cache: &dyn Fn(usize) -> ArtifactCache,
        fleet_knobs: impl Fn(FleetConfig) -> FleetConfig,
    ) -> std::io::Result<FleetHarness> {
        assert!(n > 0, "a fleet needs at least one node");
        let mut servers = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for idx in 0..n {
            let cfg = ServeConfig { addr: "127.0.0.1:0".to_string(), ..config.clone() };
            let server = Server::bind(&cfg, mk_cache(idx))?;
            addrs.push(server.local_addr()?.to_string());
            servers.push(server);
        }
        let mut nodes = Vec::with_capacity(n);
        for (idx, server) in servers.into_iter().enumerate() {
            server.configure_fleet(FleetState::new(fleet_knobs(FleetConfig::new(
                idx,
                addrs.clone(),
            ))));
            let addr = addrs[idx].clone();
            let shutdown = server.shutdown_handle();
            let thread = std::thread::spawn(move || server.run());
            nodes.push(FleetNode { addr, shutdown, thread: Some(thread) });
        }
        Ok(FleetHarness { nodes })
    }

    /// Every node's address, index-aligned with the ring.
    #[must_use]
    pub fn addrs(&self) -> Vec<String> {
        self.nodes.iter().map(|n| n.addr.clone()).collect()
    }

    /// Fleet size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the harness is empty (it never is; see
    /// [`FleetHarness::launch`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A router over this fleet.
    #[must_use]
    pub fn router(&self) -> Router {
        Router::new(self.addrs())
    }

    /// Takes node `idx` down: requests its drain and joins its thread.
    /// From the rest of the fleet's point of view the node stops
    /// answering — connects are refused — which is the in-process
    /// stand-in for a killed daemon.
    ///
    /// # Panics
    ///
    /// Panics if the node's serve thread itself panicked.
    pub fn kill(&mut self, idx: usize) {
        self.nodes[idx].shutdown.request();
        if let Some(t) = self.nodes[idx].thread.take() {
            t.join().expect("fleet node thread").expect("fleet node exit");
        }
    }

    /// Drains and joins every still-running node.
    ///
    /// # Panics
    ///
    /// Panics if a node's serve thread panicked.
    pub fn shutdown_all(mut self) {
        for idx in 0..self.nodes.len() {
            self.nodes[idx].shutdown.request();
        }
        for node in &mut self.nodes {
            if let Some(t) = node.thread.take() {
                t.join().expect("fleet node thread").expect("fleet node exit");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(i: u64) -> Fingerprint {
        let mut h = StableHasher::new("fleet-test-key");
        h.write_u64(i);
        h.finish()
    }

    #[test]
    fn ring_is_deterministic_across_independent_builds() {
        let a = HashRing::new(4, DEFAULT_VNODES);
        let b = HashRing::new(4, DEFAULT_VNODES);
        for i in 0..500 {
            let key = fp(i);
            assert_eq!(a.owner(key), b.owner(key));
            assert_eq!(a.route(key), b.route(key));
        }
    }

    #[test]
    fn ring_route_starts_at_owner_and_covers_every_node() {
        let ring = HashRing::new(5, DEFAULT_VNODES);
        for i in 0..100 {
            let route = ring.route(fp(i));
            assert_eq!(route[0], ring.owner(fp(i)));
            let mut sorted = route.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4], "route must be a permutation");
        }
    }

    #[test]
    fn ring_spreads_keys_roughly_evenly() {
        let ring = HashRing::new(4, DEFAULT_VNODES);
        let mut counts = [0usize; 4];
        let total = 4000;
        for i in 0..total {
            counts[ring.owner(fp(i as u64))] += 1;
        }
        for (node, &c) in counts.iter().enumerate() {
            let share = c as f64 / total as f64;
            assert!(
                (0.10..=0.45).contains(&share),
                "node {node} owns {share:.2} of the keyspace"
            );
        }
    }

    #[test]
    fn growing_the_ring_moves_about_one_over_n_keys() {
        let before = HashRing::new(4, DEFAULT_VNODES);
        let after = HashRing::new(5, DEFAULT_VNODES);
        let total = 4000u64;
        let moved = (0..total).filter(|&i| before.owner(fp(i)) != after.owner(fp(i))).count();
        let frac = moved as f64 / total as f64;
        // Ideal is 1/5 = 0.20; virtual nodes keep it near that instead
        // of the ~0.80 a naive mod-N rehash would shuffle.
        assert!(frac > 0.05, "suspiciously few keys moved: {frac:.3}");
        assert!(frac < 0.40, "adding one node moved {frac:.3} of the keyspace");
    }

    #[test]
    fn health_ejects_after_consecutive_failures_and_readmits_via_probation() {
        let policy = HealthPolicy { eject_after: 3, probation: Duration::from_millis(20) };
        let mut h = NodeHealth::default();
        assert_eq!(h.state(&policy), HealthState::Alive);
        h.on_failure(&policy);
        h.on_failure(&policy);
        assert_eq!(h.state(&policy), HealthState::Alive, "below the threshold");
        assert!(h.usable(&policy));
        assert_eq!(h.on_failure(&policy), HealthState::Ejected);
        assert!(!h.usable(&policy), "ejected nodes are skipped");
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(h.state(&policy), HealthState::Probation);
        assert!(h.usable(&policy), "probation admits one probe");
        assert!(!h.usable(&policy), "…but only one at a time");
        assert_eq!(h.on_success(), HealthState::Alive);
        assert!(h.usable(&policy));
    }

    #[test]
    fn probation_failure_re_ejects_with_a_fresh_timer() {
        let policy = HealthPolicy { eject_after: 1, probation: Duration::from_millis(20) };
        let mut h = NodeHealth::default();
        assert_eq!(h.on_failure(&policy), HealthState::Ejected);
        std::thread::sleep(Duration::from_millis(25));
        assert!(h.usable(&policy));
        assert_eq!(h.on_failure(&policy), HealthState::Ejected, "probe failed");
        assert!(!h.usable(&policy), "re-ejected immediately");
    }

    #[test]
    fn retry_delays_are_capped_exponential_and_seed_deterministic() {
        let p = RetryPolicy {
            attempts: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(80),
            seed: 42,
        };
        let q = p;
        for attempt in 1..=5 {
            let d = p.delay(attempt, 7);
            assert_eq!(d, q.delay(attempt, 7), "equal seeds draw equal jitter");
            let backoff = Duration::from_millis(10 << (attempt - 1)).min(p.cap);
            assert!(d >= backoff, "jitter only adds");
            assert!(d <= backoff + backoff / 2 + Duration::from_millis(1));
        }
        let r = RetryPolicy { seed: 43, ..p };
        assert!(
            (1..=5).any(|a| r.delay(a, 7) != p.delay(a, 7)),
            "different seeds should decorrelate somewhere"
        );
    }

    #[test]
    fn fetch_plan_excludes_self_and_starts_at_the_owner() {
        let addrs: Vec<String> =
            (0..4).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect();
        let state = FleetState::new(FleetConfig::new(2, addrs));
        for i in 0..200 {
            let key = fp(i);
            let fetcher = state.fetcher(key, None);
            assert!(fetcher.plan.len() <= 2, "owner plus one hedge successor at most");
            assert!(!fetcher.plan.contains(&2), "self never appears in its own plan");
            let owner = state.owner(key);
            if owner != 2 {
                assert_eq!(fetcher.plan[0], owner, "the owner is asked first");
            }
        }
    }

    #[test]
    fn aggregate_without_a_fleet_is_a_one_node_cluster() {
        let local = StatsResponse {
            node: String::new(),
            uptime_ms: 1.0,
            requests: 7,
            ok: 6,
            errors: 1,
            shed: 0,
            coalesced: 2,
            batches: 3,
            pipelined: 0,
            queue_depth: 0,
            workers: 2,
            qps: 0.0,
            cache_memory_hits: 4,
            cache_disk_hits: 1,
            cache_peer_hits: 0,
            cache_misses: 5,
            cache_hit_rate: 0.5,
            fetches: 0,
            peer_fetches: 0,
            latency: LatencySummary {
                count: 2,
                p50_ms: 1.0,
                p90_ms: 1.0,
                p99_ms: 1.0,
                max_ms: 2.0,
            },
            latency_buckets: vec![2],
        };
        let agg = aggregate_stats(None, local, None);
        assert_eq!(agg.total, 1);
        assert_eq!(agg.alive, 1);
        assert_eq!(agg.requests, 7);
        assert_eq!(agg.cache_misses, 5);
        assert_eq!(agg.latency.count, 2, "bucket merge carries the counts");
        assert!((agg.cache_hit_rate - 0.5).abs() < 1e-12);
    }
}
