//! The overlap-serve wire protocol: versioned frames of overlap-json.
//!
//! Every message — request or response — travels as one *frame*:
//!
//! ```text
//! overlap-serve/1 <payload-len>\n
//! <payload-len bytes of compact JSON>
//! ```
//!
//! The header line carries the protocol version and the exact payload
//! length, so a reader can reject a peer speaking a different version
//! before parsing anything, detect truncated payloads (short reads) and
//! bound memory before allocating. Payloads are compact (not pretty)
//! JSON; the deterministic part of a compile response re-encodes to the
//! same bytes on every honest server and client, which is what the
//! loadgen byte-identity check compares.
//!
//! Requests are tagged by a `"request"` member (`compile`, `stats`,
//! `ping`, `shutdown`, `subscribe`, `fetch`, `fleet-stats`), responses
//! by `"response"` (`compiled`, `stats`, `pong`, `shutting-down`,
//! `subscribed`, `event`, `artifact`, `fleet-stats`, `error`). Unknown
//! tags and undecodable bodies produce typed [`ErrorKind`] responses,
//! never a dropped connection.
//!
//! The `fetch`/`artifact` pair is the fleet's cache-peering channel: a
//! node that misses on an artifact it does not own asks the owner for
//! the full versioned cache entry (the same JSON the disk tier
//! persists) and revalidates it locally — payload hash, verify-on-load,
//! cost-table rebuild — before serving it. `fleet-stats` asks one node
//! to fan out `stats` to its peers and answer the cluster-wide
//! aggregate, with per-node liveness.

use std::io::{Read, Write};

use overlap_core::{DecomposeSummary, FallbackRecord, GateDecision, OverlapOptions};
use overlap_hlo::Module;
use overlap_json::{FromJson, Json, ToJson};
use overlap_mesh::FaultSpec;
use overlap_sim::Report;

use crate::events::EventRecord;

/// Version token every frame header must lead with. Bump on any wire
/// layout change; old peers then fail fast with
/// [`ErrorKind::UnknownVersion`] instead of misparsing.
pub const PROTOCOL_VERSION: &str = "overlap-serve/1";

/// Upper bound on one frame's payload. Large enough for an inline
/// module of tens of thousands of instructions, small enough that a
/// corrupt length header cannot OOM the server.
pub const MAX_FRAME_BYTES: usize = 32 << 20;

/// Longest legal header line (`overlap-serve/1 <len>\n`); anything
/// longer without a newline is garbage, not a slow peer.
const MAX_HEADER_BYTES: usize = 64;

/// What went wrong at the framing layer, before any request semantics.
#[derive(Debug)]
pub enum WireError {
    /// Transport failure (other than a clean close between frames).
    Io(std::io::Error),
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The header named a protocol version this build does not speak.
    UnknownVersion(String),
    /// Unparseable header, truncated payload or invalid payload JSON.
    Malformed(String),
    /// The header announced a payload beyond [`MAX_FRAME_BYTES`].
    FrameTooLarge(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Closed => write!(f, "connection closed"),
            WireError::UnknownVersion(v) => {
                write!(f, "unknown protocol version {v:?} (this build speaks {PROTOCOL_VERSION})")
            }
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
            WireError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME_BYTES}-byte limit")
            }
        }
    }
}

impl WireError {
    /// The typed error a server should answer with, if the connection
    /// is still coherent enough to answer on (`None` for transport
    /// failures, where writing would be futile).
    #[must_use]
    pub fn to_error_kind(&self) -> Option<ErrorKind> {
        match self {
            WireError::Io(_) | WireError::Closed => None,
            WireError::UnknownVersion(_) => Some(ErrorKind::UnknownVersion),
            WireError::Malformed(_) => Some(ErrorKind::Malformed),
            WireError::FrameTooLarge(_) => Some(ErrorKind::FrameTooLarge),
        }
    }
}

/// Writes one frame (header + compact payload) and flushes.
///
/// # Errors
///
/// Returns the underlying I/O error; the caller decides whether the
/// connection is worth keeping.
pub fn write_frame(w: &mut impl Write, payload: &Json) -> std::io::Result<()> {
    let body = payload.to_string();
    // Header and payload go out as one write: two small segments on a
    // real socket trip Nagle + delayed-ACK stalls (tens of ms a frame).
    let mut frame = Vec::with_capacity(body.len() + MAX_HEADER_BYTES);
    frame.extend_from_slice(format!("{PROTOCOL_VERSION} {}\n", body.len()).as_bytes());
    frame.extend_from_slice(body.as_bytes());
    w.write_all(&frame)?;
    w.flush()
}

/// One step of frame extraction: what [`FrameReader::poll`] observed.
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete, parseable frame.
    Frame(Json),
    /// The read timed out with no complete frame buffered; the caller
    /// may check shutdown flags and poll again.
    Idle,
    /// Clean end of stream between frames.
    Closed,
    /// A framing violation; see [`WireError`].
    Error(WireError),
}

/// Incremental frame reader that survives short reads and read
/// timeouts: bytes accumulate across [`FrameReader::poll`] calls until
/// a full header + payload is buffered. This is what lets the server
/// park on an idle keep-alive connection with a read timeout and still
/// notice a drain request between polls, without ever losing a
/// half-received frame.
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// A reader with no buffered bytes.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads from `r` until a full frame is buffered, the stream ends,
    /// or the read times out (`WouldBlock`/`TimedOut` → [`FrameEvent::Idle`]).
    pub fn poll(&mut self, r: &mut impl Read) -> FrameEvent {
        loop {
            match self.try_extract() {
                Ok(Some(frame)) => return FrameEvent::Frame(frame),
                Ok(None) => {}
                Err(e) => return FrameEvent::Error(e),
            }
            let mut chunk = [0u8; 8192];
            match r.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        FrameEvent::Closed
                    } else {
                        FrameEvent::Error(WireError::Malformed(format!(
                            "stream ended inside a frame ({} bytes buffered)",
                            self.buf.len()
                        )))
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return FrameEvent::Idle;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return FrameEvent::Error(WireError::Io(e)),
            }
        }
    }

    /// Attempts to cut one frame off the front of the buffer.
    fn try_extract(&mut self) -> Result<Option<Json>, WireError> {
        let Some(nl) = self.buf.iter().position(|&b| b == b'\n') else {
            if self.buf.len() > MAX_HEADER_BYTES {
                return Err(WireError::Malformed(format!(
                    "no newline within the first {MAX_HEADER_BYTES} bytes"
                )));
            }
            return Ok(None);
        };
        let header = std::str::from_utf8(&self.buf[..nl])
            .map_err(|_| WireError::Malformed("non-UTF-8 header".into()))?;
        let (version, len) = header
            .split_once(' ')
            .ok_or_else(|| WireError::Malformed(format!("header {header:?} lacks a length")))?;
        if version != PROTOCOL_VERSION {
            return Err(WireError::UnknownVersion(version.to_string()));
        }
        let len: usize = len
            .trim()
            .parse()
            .map_err(|_| WireError::Malformed(format!("unparseable payload length {len:?}")))?;
        if len > MAX_FRAME_BYTES {
            return Err(WireError::FrameTooLarge(len));
        }
        if self.buf.len() < nl + 1 + len {
            return Ok(None); // payload not fully buffered yet
        }
        let payload = std::str::from_utf8(&self.buf[nl + 1..nl + 1 + len])
            .map_err(|_| WireError::Malformed("non-UTF-8 payload".into()))?;
        let parsed =
            Json::parse(payload).map_err(|e| WireError::Malformed(format!("payload: {e}")))?;
        self.buf.drain(..nl + 1 + len);
        Ok(Some(parsed))
    }
}

/// Blocking convenience: polls until something other than
/// [`FrameEvent::Idle`] happens (a stream without a read timeout never
/// yields `Idle`, so this is what clients use).
pub fn read_frame(r: &mut impl Read, reader: &mut FrameReader) -> Result<Json, WireError> {
    loop {
        match reader.poll(r) {
            FrameEvent::Frame(v) => return Ok(v),
            FrameEvent::Idle => {}
            FrameEvent::Closed => return Err(WireError::Closed),
            FrameEvent::Error(e) => return Err(e),
        }
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// What to compile: a model from the zoo by name, or a module shipped
/// inline in the request (the `overlapc` use case over the wire).
#[derive(Debug, Clone, PartialEq)]
pub enum ModelRef {
    /// A name resolved against `overlap_models::find_model`.
    Named(String),
    /// A full serialized module (verified server-side before use).
    Inline(Box<Module>),
}

impl ToJson for ModelRef {
    fn to_json(&self) -> Json {
        match self {
            ModelRef::Named(name) => Json::from(name.as_str()),
            ModelRef::Inline(module) => Json::obj().with("module", module.to_json()),
        }
    }
}

impl FromJson for ModelRef {
    fn from_json(v: &Json) -> Result<Self, String> {
        if let Some(name) = v.as_str() {
            return Ok(ModelRef::Named(name.to_string()));
        }
        match v.get("module") {
            Some(m) => Ok(ModelRef::Inline(Box::new(Module::from_json(m)?))),
            None => Err("model must be a name or {\"module\": ...}".into()),
        }
    }
}

/// Which machine to compile for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineSpec {
    /// The model's own Table-1/Table-2 machine (for a named model), or
    /// a TPUv4-like machine sized to the module's partition count (for
    /// an inline module).
    ModelDefault,
    /// `Machine::tpu_v4_like(chips)`.
    TpuV4 { chips: usize },
    /// `Machine::gpu_cluster_like(chips)`.
    GpuCluster { chips: usize },
}

impl ToJson for MachineSpec {
    fn to_json(&self) -> Json {
        match self {
            MachineSpec::ModelDefault => Json::from("model-default"),
            MachineSpec::TpuV4 { chips } => {
                Json::obj().with("kind", "tpu_v4").with("chips", *chips)
            }
            MachineSpec::GpuCluster { chips } => {
                Json::obj().with("kind", "gpu_cluster").with("chips", *chips)
            }
        }
    }
}

impl FromJson for MachineSpec {
    fn from_json(v: &Json) -> Result<Self, String> {
        if let Some(s) = v.as_str() {
            return match s {
                "model-default" => Ok(MachineSpec::ModelDefault),
                other => Err(format!("unknown machine {other:?} (expected \"model-default\")")),
            };
        }
        let chips = v.decode_field::<usize>("chips")?;
        match v.decode_field::<String>("kind")?.as_str() {
            "tpu_v4" => Ok(MachineSpec::TpuV4 { chips }),
            "gpu_cluster" => Ok(MachineSpec::GpuCluster { chips }),
            other => Err(format!("unknown machine kind {other:?}")),
        }
    }
}

/// One compile-and-simulate job.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileRequest {
    /// What to compile.
    pub model: ModelRef,
    /// The target machine (defaults to [`MachineSpec::ModelDefault`]).
    pub machine: MachineSpec,
    /// Pipeline options (defaults to `OverlapOptions::paper_default()`).
    pub options: OverlapOptions,
    /// Optional degraded-machine spec; joins the artifact key.
    pub fault_spec: Option<FaultSpec>,
    /// Wall-clock budget measured from request receipt; exceeded →
    /// [`ErrorKind::DeadlineExceeded`]. The simulated-time watchdog
    /// (`FaultSpec::with_time_limit`) reports through the same error
    /// kind when it trips.
    pub deadline_ms: Option<u64>,
}

impl CompileRequest {
    /// A paper-defaults request for a named zoo model.
    #[must_use]
    pub fn named(name: impl Into<String>) -> Self {
        CompileRequest {
            model: ModelRef::Named(name.into()),
            machine: MachineSpec::ModelDefault,
            options: OverlapOptions::paper_default(),
            fault_spec: None,
            deadline_ms: None,
        }
    }

    /// Like [`CompileRequest::named`], but with the strategy the offline
    /// autotuner picked for this model's paper machine
    /// ([`OverlapOptions::autotuned`]). Unknown names keep the paper
    /// defaults — the server rejects them later with the usual
    /// model-not-found error, same as [`CompileRequest::named`].
    #[must_use]
    pub fn tuned(name: impl Into<String>) -> Self {
        let name = name.into();
        let options = match overlap_models::find_model(&name) {
            Some(cfg) => OverlapOptions::autotuned(&name, &cfg.machine()),
            None => OverlapOptions::paper_default(),
        };
        CompileRequest { options, ..CompileRequest::named(name) }
    }
}

/// Every request the server understands.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Compile + simulate; answered by [`Response::Compiled`].
    Compile(Box<CompileRequest>),
    /// Server counters and latency quantiles; [`Response::Stats`].
    Stats,
    /// Liveness probe; [`Response::Pong`].
    Ping,
    /// Ask the server to drain and exit; [`Response::ShuttingDown`].
    Shutdown,
    /// Turn this connection into a live event stream: answered by
    /// [`Response::Subscribed`], then [`Response::Event`] frames flow
    /// until the connection closes or the server drains.
    Subscribe,
    /// Cache peering: ask this node for the full versioned artifact
    /// entry under the given hex key; answered by
    /// [`Response::Artifact`] (with a `null` entry on a local miss —
    /// peers never compile on each other's behalf).
    Fetch {
        /// Hex artifact-key fingerprint (`artifact_key_faulted`).
        key: String,
    },
    /// Fleet-wide stats: the answering node fans [`Request::Stats`] out
    /// to its peers, sums the counters, merges the latency histograms
    /// and reports per-node liveness; [`Response::FleetStats`]. A node
    /// with no fleet configured answers for itself alone.
    FleetStats,
}

impl ToJson for Request {
    fn to_json(&self) -> Json {
        match self {
            Request::Compile(c) => {
                let mut v = Json::obj()
                    .with("request", "compile")
                    .with("model", c.model.to_json())
                    .with("machine", c.machine.to_json())
                    .with("options", c.options.to_json());
                if let Some(spec) = &c.fault_spec {
                    v.set("fault_spec", spec.to_json());
                }
                if let Some(ms) = c.deadline_ms {
                    v.set("deadline_ms", ms.to_json());
                }
                v
            }
            Request::Stats => Json::obj().with("request", "stats"),
            Request::Ping => Json::obj().with("request", "ping"),
            Request::Shutdown => Json::obj().with("request", "shutdown"),
            Request::Subscribe => Json::obj().with("request", "subscribe"),
            Request::Fetch { key } => {
                Json::obj().with("request", "fetch").with("key", key.as_str())
            }
            Request::FleetStats => Json::obj().with("request", "fleet-stats"),
        }
    }
}

impl FromJson for Request {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v.decode_field::<String>("request")?.as_str() {
            "compile" => {
                let machine = match v.get("machine") {
                    Some(m) => MachineSpec::from_json(m)?,
                    None => MachineSpec::ModelDefault,
                };
                let options = match v.get("options") {
                    Some(o) => OverlapOptions::from_json(o)?,
                    None => OverlapOptions::paper_default(),
                };
                let fault_spec = match v.get("fault_spec") {
                    Some(s) if !s.is_null() => Some(FaultSpec::from_json(s)?),
                    _ => None,
                };
                let deadline_ms = match v.get("deadline_ms") {
                    Some(d) if !d.is_null() => Some(u64::from_json(d)?),
                    _ => None,
                };
                Ok(Request::Compile(Box::new(CompileRequest {
                    model: v.decode_field("model")?,
                    machine,
                    options,
                    fault_spec,
                    deadline_ms,
                })))
            }
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            "subscribe" => Ok(Request::Subscribe),
            "fetch" => Ok(Request::Fetch { key: v.decode_field("key")? }),
            "fleet-stats" => Ok(Request::FleetStats),
            other => Err(format!("unknown request {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Typed failure categories; the stable wire names are kebab-case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Frame header named a version this build does not speak.
    UnknownVersion,
    /// Unparseable frame or payload (including short reads).
    Malformed,
    /// Announced payload length exceeds [`MAX_FRAME_BYTES`].
    FrameTooLarge,
    /// Named model not in the zoo.
    UnknownModel,
    /// Inline module failed verification.
    InvalidModule,
    /// Fault spec does not fit the target machine.
    InvalidFaultSpec,
    /// Well-formed JSON that is not a valid request.
    InvalidRequest,
    /// Admission queue full; retry later (backpressure shed).
    Overloaded,
    /// The request's wall-clock budget ran out, or the simulated-time
    /// watchdog tripped.
    DeadlineExceeded,
    /// Server is draining and takes no new work.
    ShuttingDown,
    /// Pipeline or simulator failure the client cannot fix.
    Internal,
}

impl ErrorKind {
    /// The stable wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::UnknownVersion => "unknown-version",
            ErrorKind::Malformed => "malformed",
            ErrorKind::FrameTooLarge => "frame-too-large",
            ErrorKind::UnknownModel => "unknown-model",
            ErrorKind::InvalidModule => "invalid-module",
            ErrorKind::InvalidFaultSpec => "invalid-fault-spec",
            ErrorKind::InvalidRequest => "invalid-request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline-exceeded",
            ErrorKind::ShuttingDown => "shutting-down",
            ErrorKind::Internal => "internal",
        }
    }

    /// Whether retrying the identical request later can succeed
    /// (admission shed and drain are transient; everything else is the
    /// request's or the server's fault).
    #[must_use]
    pub fn is_backpressure(self) -> bool {
        matches!(self, ErrorKind::Overloaded | ErrorKind::ShuttingDown)
    }
}

impl FromJson for ErrorKind {
    fn from_json(v: &Json) -> Result<Self, String> {
        let s = v.as_str().ok_or("error kind must be a string")?;
        [
            ErrorKind::UnknownVersion,
            ErrorKind::Malformed,
            ErrorKind::FrameTooLarge,
            ErrorKind::UnknownModel,
            ErrorKind::InvalidModule,
            ErrorKind::InvalidFaultSpec,
            ErrorKind::InvalidRequest,
            ErrorKind::Overloaded,
            ErrorKind::DeadlineExceeded,
            ErrorKind::ShuttingDown,
            ErrorKind::Internal,
        ]
        .into_iter()
        .find(|k| k.as_str() == s)
        .ok_or_else(|| format!("unknown error kind {s:?}"))
    }
}

impl ToJson for ErrorKind {
    fn to_json(&self) -> Json {
        Json::from(self.as_str())
    }
}

/// A typed failure with a human-readable elaboration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorResponse {
    /// The category; stable across message rewording.
    pub kind: ErrorKind,
    /// Details for humans and logs; not meant for matching.
    pub message: String,
}

impl ToJson for ErrorResponse {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("response", "error")
            .with("kind", self.kind.to_json())
            .with("message", self.message.as_str())
    }
}

impl FromJson for ErrorResponse {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(ErrorResponse {
            kind: v.decode_field("kind")?,
            message: v.decode_field("message")?,
        })
    }
}

/// The scalar summary of one simulation, mirroring `Report`'s getters.
/// Carries everything the dashboards plot without shipping the whole
/// span timeline over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSummary {
    /// End-to-end simulated step time (seconds).
    pub makespan: f64,
    /// Busy time attributed to compute spans.
    pub compute_time: f64,
    /// Busy time attributed to memory-bound spans.
    pub memory_time: f64,
    /// Synchronous (blocking) collective time.
    pub sync_comm_time: f64,
    /// Async collective time the schedule failed to hide.
    pub exposed_async_time: f64,
    /// Async collective time hidden under compute.
    pub hidden_async_time: f64,
    /// Fraction of the makespan spent in exposed communication.
    pub comm_fraction: f64,
    /// Total floating-point work simulated.
    pub total_flops: u64,
}

impl SimSummary {
    /// Projects a full report down to the wire summary.
    #[must_use]
    pub fn of(r: &Report) -> Self {
        SimSummary {
            makespan: r.makespan(),
            compute_time: r.compute_time(),
            memory_time: r.memory_time(),
            sync_comm_time: r.sync_comm_time(),
            exposed_async_time: r.exposed_async_time(),
            hidden_async_time: r.hidden_async_time(),
            comm_fraction: r.comm_fraction(),
            total_flops: r.total_flops(),
        }
    }
}

impl ToJson for SimSummary {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("makespan", self.makespan)
            .with("compute_time", self.compute_time)
            .with("memory_time", self.memory_time)
            .with("sync_comm_time", self.sync_comm_time)
            .with("exposed_async_time", self.exposed_async_time)
            .with("hidden_async_time", self.hidden_async_time)
            .with("comm_fraction", self.comm_fraction)
            .with("total_flops", self.total_flops)
    }
}

impl FromJson for SimSummary {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(SimSummary {
            makespan: v.decode_field("makespan")?,
            compute_time: v.decode_field("compute_time")?,
            memory_time: v.decode_field("memory_time")?,
            sync_comm_time: v.decode_field("sync_comm_time")?,
            exposed_async_time: v.decode_field("exposed_async_time")?,
            hidden_async_time: v.decode_field("hidden_async_time")?,
            comm_fraction: v.decode_field("comm_fraction")?,
            total_flops: v.decode_field("total_flops")?,
        })
    }
}

/// The *deterministic* half of a compile response: everything here is
/// a pure function of (module, machine, options, fault spec), so an
/// honest server's `result` object re-encodes byte-identically to what
/// a client computes with direct `OverlapPipeline` calls. Cache
/// provenance and timing live in [`ServedInfo`] instead, precisely
/// because they vary run to run.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileResult {
    /// Model name (or the inline module's own name).
    pub model: String,
    /// Partition count the module was built for.
    pub num_partitions: usize,
    /// Content-addressed artifact key (hex fingerprint).
    pub artifact_key: String,
    /// Structural module fingerprint.
    pub module_fingerprint: String,
    /// Machine fingerprint.
    pub machine_fingerprint: String,
    /// Options fingerprint.
    pub options_fingerprint: String,
    /// Input identity fingerprint (names included).
    pub input_identity: String,
    /// Identity fingerprint of the compiled module.
    pub compiled_identity: String,
    /// Length of the compiled schedule.
    pub order_len: usize,
    /// §5.5 gate decisions, one per candidate pattern.
    pub decisions: Vec<GateDecision>,
    /// Decomposition summaries for patterns actually rewritten.
    pub summaries: Vec<DecomposeSummary>,
    /// Degraded-machine fallback records (empty when fault-free).
    pub fallbacks: Vec<FallbackRecord>,
    /// Baseline (undecomposed) simulation.
    pub baseline: SimSummary,
    /// Overlapped-schedule simulation.
    pub overlapped: SimSummary,
    /// `baseline.makespan / overlapped.makespan`.
    pub speedup: f64,
}

impl ToJson for CompileResult {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("model", self.model.as_str())
            .with("num_partitions", self.num_partitions)
            .with("artifact_key", self.artifact_key.as_str())
            .with("module_fingerprint", self.module_fingerprint.as_str())
            .with("machine_fingerprint", self.machine_fingerprint.as_str())
            .with("options_fingerprint", self.options_fingerprint.as_str())
            .with("input_identity", self.input_identity.as_str())
            .with("compiled_identity", self.compiled_identity.as_str())
            .with("order_len", self.order_len)
            .with("decisions", self.decisions.to_json())
            .with("summaries", self.summaries.to_json())
            .with("fallbacks", self.fallbacks.to_json())
            .with("baseline", self.baseline.to_json())
            .with("overlapped", self.overlapped.to_json())
            .with("speedup", self.speedup)
    }
}

impl FromJson for CompileResult {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(CompileResult {
            model: v.decode_field("model")?,
            num_partitions: v.decode_field("num_partitions")?,
            artifact_key: v.decode_field("artifact_key")?,
            module_fingerprint: v.decode_field("module_fingerprint")?,
            machine_fingerprint: v.decode_field("machine_fingerprint")?,
            options_fingerprint: v.decode_field("options_fingerprint")?,
            input_identity: v.decode_field("input_identity")?,
            compiled_identity: v.decode_field("compiled_identity")?,
            order_len: v.decode_field("order_len")?,
            decisions: v.decode_field("decisions")?,
            summaries: v.decode_field("summaries")?,
            fallbacks: v.decode_field("fallbacks")?,
            baseline: v.decode_field("baseline")?,
            overlapped: v.decode_field("overlapped")?,
            speedup: v.decode_field("speedup")?,
        })
    }
}

/// The *advisory* half of a compile response: where the artifact came
/// from and how long the server took. Deliberately outside
/// [`CompileResult`] so the byte-identity contract ignores it.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedInfo {
    /// `"memory"`, `"disk"` or `"compiled"` (`CacheOutcome::as_str`),
    /// or `"coalesced"` for a request that joined another request's
    /// in-flight batch and shared its artifact.
    pub source: String,
    /// Time the request waited between frame decode and dispatch
    /// (admission plus compile-pool queueing).
    pub queue_ms: f64,
    /// Time spent executing the request.
    pub service_ms: f64,
}

impl ToJson for ServedInfo {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("source", self.source.as_str())
            .with("queue_ms", self.queue_ms)
            .with("service_ms", self.service_ms)
    }
}

impl FromJson for ServedInfo {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(ServedInfo {
            source: v.decode_field("source")?,
            queue_ms: v.decode_field("queue_ms")?,
            service_ms: v.decode_field("service_ms")?,
        })
    }
}

/// Latency quantiles from the server's log-bucketed histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Median, in milliseconds (bucket upper bound).
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Largest single sample.
    pub max_ms: f64,
}

impl ToJson for LatencySummary {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("count", self.count)
            .with("p50_ms", self.p50_ms)
            .with("p90_ms", self.p90_ms)
            .with("p99_ms", self.p99_ms)
            .with("max_ms", self.max_ms)
    }
}

impl FromJson for LatencySummary {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(LatencySummary {
            count: v.decode_field("count")?,
            p50_ms: v.decode_field("p50_ms")?,
            p90_ms: v.decode_field("p90_ms")?,
            p99_ms: v.decode_field("p99_ms")?,
            max_ms: v.decode_field("max_ms")?,
        })
    }
}

/// Server-wide counters answered to a [`Request::Stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct StatsResponse {
    /// Fleet node id (`""` for a solo daemon).
    pub node: String,
    /// Wall-clock since the server started.
    pub uptime_ms: f64,
    /// Frames decoded into requests.
    pub requests: u64,
    /// Requests answered with a success response.
    pub ok: u64,
    /// Requests answered with a typed error.
    pub errors: u64,
    /// Requests or connections shed under backpressure.
    pub shed: u64,
    /// Compile requests that joined an in-flight batch instead of
    /// dispatching their own job.
    pub coalesced: u64,
    /// Compile jobs dispatched to the pool (each may answer several
    /// coalesced requests).
    pub batches: u64,
    /// Requests that arrived while the same connection already had a
    /// request in flight (wire pipelining observed).
    pub pipelined: u64,
    /// Compile jobs waiting for a pool worker right now.
    pub queue_depth: usize,
    /// Compile-pool worker threads.
    pub workers: usize,
    /// `requests / uptime`, in requests per second.
    pub qps: f64,
    /// Artifact-cache lookups served from the in-memory tier.
    pub cache_memory_hits: u64,
    /// Artifact-cache lookups served from the disk tier.
    pub cache_disk_hits: u64,
    /// Artifact-cache lookups served by fetching a peer's entry.
    pub cache_peer_hits: u64,
    /// Artifact-cache lookups that ran the pipeline.
    pub cache_misses: u64,
    /// `hits / lookups` (0 when nothing was looked up).
    pub cache_hit_rate: f64,
    /// Peer [`Request::Fetch`] frames this node answered.
    pub fetches: u64,
    /// Outbound peer-fetch attempts this node made on its own misses.
    pub peer_fetches: u64,
    /// Queue+service latency distribution of answered requests.
    pub latency: LatencySummary,
    /// Raw histogram bucket counts behind `latency` (trailing zeros
    /// trimmed), so a fleet aggregator can merge distributions instead
    /// of averaging quantiles. Indices follow
    /// `overlap_sim::Histogram::bucket_counts`.
    pub latency_buckets: Vec<u64>,
}

impl ToJson for StatsResponse {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("response", "stats")
            .with("node", self.node.as_str())
            .with("uptime_ms", self.uptime_ms)
            .with("requests", self.requests)
            .with("ok", self.ok)
            .with("errors", self.errors)
            .with("shed", self.shed)
            .with("coalesced", self.coalesced)
            .with("batches", self.batches)
            .with("pipelined", self.pipelined)
            .with("queue_depth", self.queue_depth)
            .with("workers", self.workers)
            .with("qps", self.qps)
            .with("cache_memory_hits", self.cache_memory_hits)
            .with("cache_disk_hits", self.cache_disk_hits)
            .with("cache_peer_hits", self.cache_peer_hits)
            .with("cache_misses", self.cache_misses)
            .with("cache_hit_rate", self.cache_hit_rate)
            .with("fetches", self.fetches)
            .with("peer_fetches", self.peer_fetches)
            .with("latency", self.latency.to_json())
            .with("latency_buckets", self.latency_buckets.to_json())
    }
}

impl FromJson for StatsResponse {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(StatsResponse {
            node: v.decode_field("node")?,
            uptime_ms: v.decode_field("uptime_ms")?,
            requests: v.decode_field("requests")?,
            ok: v.decode_field("ok")?,
            errors: v.decode_field("errors")?,
            shed: v.decode_field("shed")?,
            coalesced: v.decode_field("coalesced")?,
            batches: v.decode_field("batches")?,
            pipelined: v.decode_field("pipelined")?,
            queue_depth: v.decode_field("queue_depth")?,
            workers: v.decode_field("workers")?,
            qps: v.decode_field("qps")?,
            cache_memory_hits: v.decode_field("cache_memory_hits")?,
            cache_disk_hits: v.decode_field("cache_disk_hits")?,
            cache_peer_hits: v.decode_field("cache_peer_hits")?,
            cache_misses: v.decode_field("cache_misses")?,
            cache_hit_rate: v.decode_field("cache_hit_rate")?,
            fetches: v.decode_field("fetches")?,
            peer_fetches: v.decode_field("peer_fetches")?,
            latency: v.decode_field("latency")?,
            latency_buckets: v.decode_field("latency_buckets")?,
        })
    }
}

/// Answer to a cache-peering [`Request::Fetch`].
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactResponse {
    /// The hex key that was asked for, echoed back.
    pub key: String,
    /// The full versioned cache entry (the disk tier's JSON layout), or
    /// `None` when this node holds no entry for the key. The entry is
    /// *untrusted* on arrival: the fetcher revalidates every metadata
    /// fingerprint, the payload hash and the decoded module before
    /// serving it.
    pub entry: Option<Json>,
}

impl ToJson for ArtifactResponse {
    fn to_json(&self) -> Json {
        let entry = match &self.entry {
            Some(e) => e.clone(),
            None => Json::Null,
        };
        Json::obj()
            .with("response", "artifact")
            .with("key", self.key.as_str())
            .with("entry", entry)
    }
}

impl FromJson for ArtifactResponse {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(ArtifactResponse {
            key: v.decode_field("key")?,
            entry: v.get("entry").filter(|e| !e.is_null()).cloned(),
        })
    }
}

/// One node's slice of a [`FleetStatsResponse`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetNodeStatus {
    /// Stable fleet node id (`node-0` …).
    pub node: String,
    /// Whether the node answered the stats fan-out.
    pub alive: bool,
    /// The node's frame count (0 when dead).
    pub requests: u64,
    /// The node's local compiles — cache misses (0 when dead).
    pub cache_misses: u64,
    /// The node's peer-served lookups (0 when dead).
    pub cache_peer_hits: u64,
}

impl ToJson for FleetNodeStatus {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("node", self.node.as_str())
            .with("alive", self.alive)
            .with("requests", self.requests)
            .with("cache_misses", self.cache_misses)
            .with("cache_peer_hits", self.cache_peer_hits)
    }
}

impl FromJson for FleetNodeStatus {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(FleetNodeStatus {
            node: v.decode_field("node")?,
            alive: v.decode_field("alive")?,
            requests: v.decode_field("requests")?,
            cache_misses: v.decode_field("cache_misses")?,
            cache_peer_hits: v.decode_field("cache_peer_hits")?,
        })
    }
}

/// Cluster-wide aggregate answered to a [`Request::FleetStats`]:
/// counters summed over every node that answered, latency histograms
/// merged bucket-by-bucket (not quantile-averaged), and per-node
/// liveness. Nodes are sorted by id, so two aggregations over the same
/// fleet state encode identically.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStatsResponse {
    /// Node that performed the fan-out.
    pub origin: String,
    /// Fleet size by configuration.
    pub total: usize,
    /// Nodes that answered.
    pub alive: usize,
    /// Summed frame count.
    pub requests: u64,
    /// Summed success responses.
    pub ok: u64,
    /// Summed typed-error responses.
    pub errors: u64,
    /// Summed backpressure sheds.
    pub shed: u64,
    /// Summed batch-coalesced compile requests.
    pub coalesced: u64,
    /// Summed dispatched compile jobs.
    pub batches: u64,
    /// Summed pipelined frames.
    pub pipelined: u64,
    /// Summed peer fetches answered.
    pub fetches: u64,
    /// Summed outbound peer-fetch attempts.
    pub peer_fetches: u64,
    /// Summed memory-tier cache hits.
    pub cache_memory_hits: u64,
    /// Summed disk-tier cache hits.
    pub cache_disk_hits: u64,
    /// Summed peer-tier cache hits.
    pub cache_peer_hits: u64,
    /// Summed cache misses — the cluster-wide compile count.
    pub cache_misses: u64,
    /// Cluster-wide `hits / lookups`.
    pub cache_hit_rate: f64,
    /// Quantiles of the *merged* latency histogram.
    pub latency: LatencySummary,
    /// Per-node liveness and headline counters, sorted by node id.
    pub nodes: Vec<FleetNodeStatus>,
}

impl ToJson for FleetStatsResponse {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("response", "fleet-stats")
            .with("origin", self.origin.as_str())
            .with("total", self.total)
            .with("alive", self.alive)
            .with("requests", self.requests)
            .with("ok", self.ok)
            .with("errors", self.errors)
            .with("shed", self.shed)
            .with("coalesced", self.coalesced)
            .with("batches", self.batches)
            .with("pipelined", self.pipelined)
            .with("fetches", self.fetches)
            .with("peer_fetches", self.peer_fetches)
            .with("cache_memory_hits", self.cache_memory_hits)
            .with("cache_disk_hits", self.cache_disk_hits)
            .with("cache_peer_hits", self.cache_peer_hits)
            .with("cache_misses", self.cache_misses)
            .with("cache_hit_rate", self.cache_hit_rate)
            .with("latency", self.latency.to_json())
            .with("nodes", self.nodes.to_json())
    }
}

impl FromJson for FleetStatsResponse {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(FleetStatsResponse {
            origin: v.decode_field("origin")?,
            total: v.decode_field("total")?,
            alive: v.decode_field("alive")?,
            requests: v.decode_field("requests")?,
            ok: v.decode_field("ok")?,
            errors: v.decode_field("errors")?,
            shed: v.decode_field("shed")?,
            coalesced: v.decode_field("coalesced")?,
            batches: v.decode_field("batches")?,
            pipelined: v.decode_field("pipelined")?,
            fetches: v.decode_field("fetches")?,
            peer_fetches: v.decode_field("peer_fetches")?,
            cache_memory_hits: v.decode_field("cache_memory_hits")?,
            cache_disk_hits: v.decode_field("cache_disk_hits")?,
            cache_peer_hits: v.decode_field("cache_peer_hits")?,
            cache_misses: v.decode_field("cache_misses")?,
            cache_hit_rate: v.decode_field("cache_hit_rate")?,
            latency: v.decode_field("latency")?,
            nodes: v.decode_field("nodes")?,
        })
    }
}

/// A successful compile: the deterministic result plus how it was served.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileResponse {
    /// Byte-identical across servers and direct pipeline calls.
    pub result: CompileResult,
    /// Cache provenance and timing; varies run to run.
    pub served: ServedInfo,
}

/// Every response the server sends.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Compile`].
    Compiled(Box<CompileResponse>),
    /// Answer to [`Request::Stats`].
    Stats(Box<StatsResponse>),
    /// Answer to [`Request::Ping`].
    Pong,
    /// Acknowledges [`Request::Shutdown`]; the server then drains.
    ShuttingDown,
    /// Acknowledges [`Request::Subscribe`]; [`Response::Event`] frames
    /// follow on the same connection.
    Subscribed,
    /// One live event-bus record, streamed to a subscriber.
    Event(Box<EventRecord>),
    /// Answer to a cache-peering [`Request::Fetch`].
    Artifact(Box<ArtifactResponse>),
    /// Answer to [`Request::FleetStats`].
    FleetStats(Box<FleetStatsResponse>),
    /// Any failure, typed.
    Error(ErrorResponse),
}

/// The payload of one streamed [`Response::Event`] frame. Factored out
/// so the subscription hub can encode a record once per event instead
/// of once per subscriber per event.
#[must_use]
pub fn event_frame_payload(record: &EventRecord) -> Json {
    Json::obj().with("response", "event").with("record", record.to_json())
}

impl ToJson for Response {
    fn to_json(&self) -> Json {
        match self {
            Response::Compiled(c) => Json::obj()
                .with("response", "compiled")
                .with("result", c.result.to_json())
                .with("served", c.served.to_json()),
            Response::Stats(s) => s.to_json(),
            Response::Pong => Json::obj().with("response", "pong"),
            Response::ShuttingDown => Json::obj().with("response", "shutting-down"),
            Response::Subscribed => Json::obj().with("response", "subscribed"),
            Response::Event(r) => event_frame_payload(r),
            Response::Artifact(a) => a.to_json(),
            Response::FleetStats(f) => f.to_json(),
            Response::Error(e) => e.to_json(),
        }
    }
}

impl FromJson for Response {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v.decode_field::<String>("response")?.as_str() {
            "compiled" => Ok(Response::Compiled(Box::new(CompileResponse {
                result: v.decode_field("result")?,
                served: v.decode_field("served")?,
            }))),
            "stats" => Ok(Response::Stats(Box::new(StatsResponse::from_json(v)?))),
            "pong" => Ok(Response::Pong),
            "shutting-down" => Ok(Response::ShuttingDown),
            "subscribed" => Ok(Response::Subscribed),
            "event" => Ok(Response::Event(Box::new(v.decode_field("record")?))),
            "artifact" => Ok(Response::Artifact(Box::new(ArtifactResponse::from_json(v)?))),
            "fleet-stats" => {
                Ok(Response::FleetStats(Box::new(FleetStatsResponse::from_json(v)?)))
            }
            "error" => Ok(Response::Error(ErrorResponse::from_json(v)?)),
            other => Err(format!("unknown response {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_requests_resolve_the_autotuned_options() {
        // Every Table-1 machine is a long ring, where the autotuner kept
        // the paper default — so tuned() and named() must agree there,
        // and both must survive the wire round-trip.
        for name in overlap_models::model_names() {
            let name = name.as_str();
            let tuned = CompileRequest::tuned(name);
            assert_eq!(tuned, CompileRequest::named(name));
            let cfg = overlap_models::find_model(name).expect("zoo model");
            assert_eq!(
                tuned.options,
                OverlapOptions::autotuned(name, &cfg.machine()),
                "{name}"
            );
            let wire = Request::Compile(Box::new(tuned.clone()));
            let back = Request::from_json(&wire.to_json()).expect("roundtrip");
            assert_eq!(back, wire);
        }
        // Unknown names keep paper defaults; the server rejects them
        // later with its usual model-not-found error.
        assert_eq!(CompileRequest::tuned("no-such-model"), CompileRequest::named("no-such-model"));
    }

    #[test]
    fn precision_annotated_requests_round_trip() {
        use overlap_core::StrategySpec;
        use overlap_hlo::WireFormat;
        // A quantized strategy plus an error budget must survive the
        // frame codec exactly: the daemon keys its artifact cache on the
        // decoded options, so a lossy decode would alias distinct
        // compiles.
        for wire in [WireFormat::Bf16, WireFormat::int8()] {
            let mut req = CompileRequest::named("GPT_64B");
            req.options = OverlapOptions {
                error_budget: Some(1e-2),
                ..OverlapOptions::with_strategy(StrategySpec::paper_default().with_wire(wire))
            };
            let framed = Request::Compile(Box::new(req));
            let back = Request::from_json(&framed.to_json()).expect("roundtrip");
            assert_eq!(back, framed);
        }
        // The lossless default contributes no JSON at all: a default
        // request's encoding must not mention the precision knobs.
        let framed = Request::Compile(Box::new(CompileRequest::named("GPT_64B")));
        let text = framed.to_json().to_string();
        assert!(!text.contains("wire"), "lossless encoding leaks the wire field: {text}");
        assert!(!text.contains("error_budget"), "unset budget leaks into the encoding: {text}");
    }
}
