//! Lock-free service metrics: counters plus the shared log-bucketed
//! latency histogram.
//!
//! The histogram itself lives in `overlap-sim` ([`Histogram`] is a
//! re-export) so the daemon's latency percentiles and the
//! distributional simulator's tail percentiles share one quantile rank
//! rule and can never drift; this module adds only the server-side
//! counters around it.

use std::sync::atomic::AtomicU64;
use std::time::Instant;

pub use overlap_sim::{Histogram, HistogramSummary};

use crate::protocol::LatencySummary;

impl From<HistogramSummary> for LatencySummary {
    fn from(s: HistogramSummary) -> Self {
        LatencySummary {
            count: s.count,
            p50_ms: s.p50_ms,
            p90_ms: s.p90_ms,
            p99_ms: s.p99_ms,
            max_ms: s.max_ms,
        }
    }
}

/// All server-side counters, shared across workers and the acceptor.
pub struct ServerMetrics {
    start: Instant,
    /// Frames successfully decoded into requests.
    pub requests: AtomicU64,
    /// Requests answered with a success response.
    pub ok: AtomicU64,
    /// Requests answered with a typed error.
    pub errors: AtomicU64,
    /// Requests or connections shed under backpressure.
    pub shed: AtomicU64,
    /// Compile requests that joined an in-flight batch instead of
    /// dispatching their own job.
    pub coalesced: AtomicU64,
    /// Compile jobs dispatched to the pool.
    pub batches: AtomicU64,
    /// Requests that arrived while their connection already had a
    /// request in flight.
    pub pipelined: AtomicU64,
    /// Cache-peering `fetch` frames this node answered.
    pub fetches: AtomicU64,
    /// Outbound peer-fetch attempts this node made on local misses.
    pub peer_fetches: AtomicU64,
    /// Queue+service latency of every answered request.
    pub latency: Histogram,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    /// Fresh counters; uptime starts now.
    #[must_use]
    pub fn new() -> Self {
        ServerMetrics {
            start: Instant::now(),
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            pipelined: AtomicU64::new(0),
            fetches: AtomicU64::new(0),
            peer_fetches: AtomicU64::new(0),
            latency: Histogram::new(),
        }
    }

    /// Milliseconds since construction.
    #[must_use]
    pub fn uptime_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Requests per second over the whole uptime.
    #[must_use]
    pub fn qps(&self) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.requests.load(std::sync::atomic::Ordering::Relaxed) as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_summary_converts_to_wire_summary() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(1.0);
        }
        h.record(1000.0);
        let s: LatencySummary = h.summary().into();
        assert_eq!(s.count, 100);
        assert!((1.0..=1.3).contains(&s.p50_ms), "p50 {}", s.p50_ms);
        assert!(s.p99_ms < 2.0);
        assert_eq!(s.max_ms, 1000.0);
    }
}
