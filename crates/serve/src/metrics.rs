//! Lock-free service metrics: counters plus a log-bucketed latency
//! histogram.
//!
//! The histogram trades exactness for constant memory and wait-free
//! recording: buckets grow geometrically from 10 µs by 25 % per step,
//! so a reported quantile overstates the true one by at most that
//! bucket width. Good enough to watch a p99 move; no allocation, no
//! lock, no sample buffer that grows with load.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::protocol::LatencySummary;

/// Bucket count; the last bucket absorbs everything beyond the range.
const BUCKETS: usize = 96;
/// Upper bound of bucket 0, in microseconds.
const BASE_MICROS: f64 = 10.0;
/// Geometric growth per bucket (96 buckets reach ≈ 5.9 hours).
const GROWTH: f64 = 1.25;

/// A fixed-size geometric histogram of latencies in milliseconds.
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    total: AtomicU64,
    /// Largest sample seen, as `f64::to_bits` (monotone for positive
    /// floats, so compare-and-swap on the bit pattern is a float max).
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            max_bits: AtomicU64::new(0),
        }
    }

    /// Records one sample (milliseconds; negatives clamp to zero).
    pub fn record(&self, ms: f64) {
        let ms = ms.max(0.0);
        self.counts[Self::bucket_of(ms * 1e3)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.max_bits.fetch_max(ms.to_bits(), Ordering::Relaxed);
    }

    fn bucket_of(micros: f64) -> usize {
        if micros <= BASE_MICROS {
            return 0;
        }
        let idx = (micros / BASE_MICROS).log(GROWTH).ceil();
        if idx >= BUCKETS as f64 { BUCKETS - 1 } else { idx as usize }
    }

    /// Upper bound of bucket `i`, in milliseconds.
    fn upper_ms(i: usize) -> f64 {
        BASE_MICROS * GROWTH.powi(i as i32) / 1e3
    }

    /// Samples recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) as the matching bucket's upper
    /// bound, 0 when empty. Overstates by at most one bucket width.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        // ceil(q * total) with a floor of 1: the rank of the sample
        // that q of the distribution sits at or below.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::upper_ms(i);
            }
        }
        Self::upper_ms(BUCKETS - 1)
    }

    /// The summary the stats response carries.
    #[must_use]
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            p50_ms: self.quantile(0.50),
            p90_ms: self.quantile(0.90),
            p99_ms: self.quantile(0.99),
            max_ms: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
        }
    }
}

/// All server-side counters, shared across workers and the acceptor.
pub struct ServerMetrics {
    start: Instant,
    /// Frames successfully decoded into requests.
    pub requests: AtomicU64,
    /// Requests answered with a success response.
    pub ok: AtomicU64,
    /// Requests answered with a typed error.
    pub errors: AtomicU64,
    /// Requests or connections shed under backpressure.
    pub shed: AtomicU64,
    /// Compile requests that joined an in-flight batch instead of
    /// dispatching their own job.
    pub coalesced: AtomicU64,
    /// Compile jobs dispatched to the pool.
    pub batches: AtomicU64,
    /// Requests that arrived while their connection already had a
    /// request in flight.
    pub pipelined: AtomicU64,
    /// Queue+service latency of every answered request.
    pub latency: Histogram,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    /// Fresh counters; uptime starts now.
    #[must_use]
    pub fn new() -> Self {
        ServerMetrics {
            start: Instant::now(),
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            pipelined: AtomicU64::new(0),
            latency: Histogram::new(),
        }
    }

    /// Milliseconds since construction.
    #[must_use]
    pub fn uptime_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Requests per second over the whole uptime.
    #[must_use]
    pub fn qps(&self) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.requests.load(Ordering::Relaxed) as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.max_ms, 0.0);
    }

    #[test]
    fn quantiles_bracket_samples() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(1.0); // 1 ms
        }
        h.record(1000.0); // one 1 s outlier
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50);
        assert!((1.0..=1.3).contains(&p50), "p50 {p50} should be ~1 ms");
        // p99 covers rank 99, still inside the 1 ms mass.
        assert!(h.quantile(0.99) < 2.0);
        // The max and the top quantile see the outlier.
        assert!(h.quantile(1.0) >= 1000.0);
        assert_eq!(h.summary().max_ms, 1000.0);
    }

    #[test]
    fn tiny_and_huge_samples_clamp_to_end_buckets() {
        let h = Histogram::new();
        h.record(0.0001); // under bucket 0's bound
        h.record(1e12); // far past the last bucket
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.5) <= 0.011);
        assert!(h.quantile(1.0) > 1e3);
    }
}
