//! A blocking client for the overlap-serve protocol.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use overlap_json::{FromJson, ToJson};

use crate::events::EventRecord;
use crate::protocol::{
    read_frame, write_frame, ArtifactResponse, CompileRequest, CompileResponse, ErrorResponse,
    FleetStatsResponse, FrameEvent, FrameReader, Request, Response, StatsResponse, WireError,
};

/// What a request can fail with, client-side.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Wire(WireError),
    /// The response frame decoded to something other than a response.
    BadResponse(String),
    /// The server answered with a typed error.
    Server(ErrorResponse),
    /// The server answered, but with a response of the wrong shape for
    /// the request (e.g. `pong` to a compile).
    Unexpected(&'static str, Response),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::BadResponse(m) => write!(f, "undecodable response: {m}"),
            ClientError::Server(e) => {
                write!(f, "server error [{}]: {}", e.kind.as_str(), e.message)
            }
            ClientError::Unexpected(want, got) => {
                write!(f, "expected a {want} response, got {got:?}")
            }
        }
    }
}

/// One connection to an overlap-serve daemon.
///
/// [`Client::request`] is the strict send-one-read-one path. For wire
/// pipelining, pair [`Client::send`] with [`Client::recv`]: the server
/// answers in request order, so N sends followed by N recvs match up
/// positionally.
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
}

impl Client {
    /// Connects (blocking, no timeout: the admission queue decides how
    /// long connecting takes to pay off).
    ///
    /// # Errors
    ///
    /// Returns the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream, reader: FrameReader::new() })
    }

    /// Connects with a per-attempt deadline on the TCP handshake — the
    /// fleet's peer-fetch path, where a dead node must cost a bounded
    /// wait, not a kernel-default connect timeout.
    ///
    /// # Errors
    ///
    /// Returns the resolution or connect failure (a timeout surfaces
    /// as `TimedOut`).
    pub fn connect_deadline(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<Client> {
        let resolved: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let Some(first) = resolved.first() else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            ));
        };
        let stream = TcpStream::connect_timeout(first, timeout)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream, reader: FrameReader::new() })
    }

    /// Connects, retrying `ECONNREFUSED` (and `ECONNRESET` /
    /// not-yet-bound races) with a short capped backoff for up to
    /// `budget`. This is the client-side half of daemon startup: a
    /// loadgen launched in the same breath as `overlapd` waits for the
    /// listener instead of failing its whole run on the first attempt.
    /// Errors other than refused/reset (unroutable address, permission)
    /// fail immediately — waiting cannot fix those.
    ///
    /// # Errors
    ///
    /// Returns the last connect failure once the budget is spent.
    pub fn connect_retry(addr: impl ToSocketAddrs + Copy, budget: Duration) -> std::io::Result<Client> {
        let started = Instant::now();
        let mut delay = Duration::from_millis(10);
        loop {
            match Self::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionRefused
                            | std::io::ErrorKind::ConnectionReset
                    ) && started.elapsed() + delay < budget =>
                {
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(Duration::from_millis(200));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Caps how long a single blocking read or write on this
    /// connection may stall (`None` removes the cap). Peer fetches use
    /// this as the hedge threshold: a stalled owner turns into a
    /// `TimedOut` wire error and the fetcher moves to the ring
    /// successor.
    ///
    /// # Errors
    ///
    /// Returns the socket-option failure.
    pub fn set_io_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Sends one request and reads its response.
    ///
    /// A send failure does not abort immediately: a shed server writes
    /// its `overloaded` frame and closes before reading, which can
    /// surface here as a broken pipe on write — the typed error is
    /// still sitting in the socket, so the read is attempted anyway.
    ///
    /// # Errors
    ///
    /// Returns a [`ClientError::Wire`] on transport problems or
    /// [`ClientError::BadResponse`] if the frame is not a response.
    /// Typed server errors are returned as `Ok(Response::Error(..))`,
    /// not as `Err` — shape-specific helpers below lift them.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let sent = write_frame(&mut self.stream, &req.to_json());
        match read_frame(&mut self.stream, &mut self.reader) {
            Ok(v) => Response::from_json(&v).map_err(ClientError::BadResponse),
            Err(e) => {
                // Neither a response nor a send: report the send error
                // context if the read just saw the close it caused.
                if let (Err(io), WireError::Closed) = (&sent, &e) {
                    return Err(ClientError::Wire(WireError::Malformed(format!(
                        "connection closed after send failure: {io}"
                    ))));
                }
                Err(ClientError::Wire(e))
            }
        }
    }

    /// Compiles; lifts typed server errors into `Err`.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Server`] for typed failures (including
    /// `overloaded` sheds) and wire errors as [`ClientError::Wire`].
    pub fn compile(&mut self, req: CompileRequest) -> Result<CompileResponse, ClientError> {
        match self.request(&Request::Compile(Box::new(req)))? {
            Response::Compiled(c) => Ok(*c),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Unexpected("compiled", other)),
        }
    }

    /// As [`Client::request`], but a socket read timeout (armed via
    /// [`Client::set_io_timeout`]) surfaces as a `TimedOut` wire error
    /// instead of spinning: on a blocking socket [`FrameReader::poll`]
    /// only reports `Idle` when the kernel timer fired with no frame
    /// complete, which is exactly the hedge-threshold signal.
    ///
    /// # Errors
    ///
    /// As [`Client::request`], plus `TimedOut` on a stalled read.
    pub fn request_bounded(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &req.to_json())
            .map_err(|e| ClientError::Wire(WireError::Io(e)))?;
        // `poll` itself loops until a full frame, timeout, close or error,
        // so a single dispatch suffices here.
        match self.reader.poll(&mut self.stream) {
            FrameEvent::Frame(v) => Response::from_json(&v).map_err(ClientError::BadResponse),
            FrameEvent::Idle => Err(ClientError::Wire(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "response timed out",
            )))),
            FrameEvent::Closed => Err(ClientError::Wire(WireError::Closed)),
            FrameEvent::Error(e) => Err(ClientError::Wire(e)),
        }
    }

    /// Cache peering: asks this node for the full versioned artifact
    /// entry under `key`. Honors the I/O timeout — this is the fleet's
    /// bounded peer-fetch primitive.
    ///
    /// # Errors
    ///
    /// As [`Client::compile`], plus `TimedOut` on a stalled read.
    pub fn fetch(&mut self, key: &str) -> Result<ArtifactResponse, ClientError> {
        match self.request_bounded(&Request::Fetch { key: key.to_string() })? {
            Response::Artifact(a) => Ok(*a),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Unexpected("artifact", other)),
        }
    }

    /// Asks this node to fan out a stats aggregation over its fleet.
    ///
    /// # Errors
    ///
    /// As [`Client::compile`].
    pub fn fleet_stats(&mut self) -> Result<FleetStatsResponse, ClientError> {
        match self.request(&Request::FleetStats)? {
            Response::FleetStats(f) => Ok(*f),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Unexpected("fleet-stats", other)),
        }
    }

    /// Fetches server stats.
    ///
    /// # Errors
    ///
    /// As [`Client::compile`].
    pub fn stats(&mut self) -> Result<StatsResponse, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(*s),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Unexpected("stats", other)),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// As [`Client::compile`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Unexpected("pong", other)),
        }
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// As [`Client::compile`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Unexpected("shutting-down", other)),
        }
    }

    /// Sends one request frame without reading anything — the first
    /// half of a pipelined exchange.
    ///
    /// # Errors
    ///
    /// Returns the transport failure as [`ClientError::Wire`].
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &req.to_json())
            .map_err(|e| ClientError::Wire(WireError::Io(e)))
    }

    /// Reads the next response frame — the second half of a pipelined
    /// exchange. Responses arrive in the order their requests were
    /// sent.
    ///
    /// # Errors
    ///
    /// Returns a [`ClientError::Wire`] on transport problems or
    /// [`ClientError::BadResponse`] if the frame is not a response.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        match read_frame(&mut self.stream, &mut self.reader) {
            Ok(v) => Response::from_json(&v).map_err(ClientError::BadResponse),
            Err(e) => Err(ClientError::Wire(e)),
        }
    }

    /// Turns this connection into a live event stream: sends
    /// `subscribe`, checks the acknowledgement, and returns an
    /// iterator-style reader of [`EventRecord`]s.
    ///
    /// # Errors
    ///
    /// As [`Client::compile`].
    pub fn subscribe(mut self) -> Result<EventStream, ClientError> {
        match self.request(&Request::Subscribe)? {
            Response::Subscribed => {
                Ok(EventStream { stream: self.stream, reader: self.reader })
            }
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Unexpected("subscribed", other)),
        }
    }
}

/// A subscribed connection: yields server events until the server
/// drains or the connection drops.
pub struct EventStream {
    stream: TcpStream,
    reader: FrameReader,
}

impl EventStream {
    /// Blocks for the next event. `Ok(None)` on a clean end of stream
    /// (the server drained).
    ///
    /// # Errors
    ///
    /// Returns transport problems as [`ClientError::Wire`] and
    /// non-event frames as [`ClientError::Unexpected`].
    pub fn next_event(&mut self) -> Result<Option<EventRecord>, ClientError> {
        match read_frame(&mut self.stream, &mut self.reader) {
            Ok(v) => match Response::from_json(&v).map_err(ClientError::BadResponse)? {
                Response::Event(record) => Ok(Some(*record)),
                other => Err(ClientError::Unexpected("event", other)),
            },
            Err(WireError::Closed) => Ok(None),
            Err(e) => Err(ClientError::Wire(e)),
        }
    }
}
