//! A thin, zero-dependency readiness reactor over `poll(2)`.
//!
//! The event loop in [`crate::server`] needs exactly three primitives:
//! register a socket under a token with a read/write interest, block
//! until one of them is ready (or a timeout lapses), and be woken from
//! another thread. This module provides all three with nothing beyond
//! `std` — the `poll` syscall is declared directly (the same discipline
//! `overlapd` already uses for `signal(2)`), and the cross-thread
//! [`Waker`] is a loopback TCP socket pair, which is portable and
//! async-signal-safe to write to.
//!
//! Readiness is *level-triggered*: a socket with buffered bytes (or
//! writable space) reports ready on every poll until it is drained.
//! Consumers must therefore read/write until `WouldBlock` — exactly
//! what the incremental `FrameReader` and the buffered [`crate::server`]
//! writer do — but can never lose an edge.
//!
//! On non-Unix hosts (where there is no `poll`) the same API degrades
//! to a bounded sleep that reports every registered socket ready.
//! Spurious readiness is harmless with nonblocking I/O — each consumer
//! immediately observes `WouldBlock` and moves on — it only costs CPU,
//! and only on platforms this daemon does not target.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// Identifies one registered socket across [`Poller::poll`] calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// What to watch a socket for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when a read would make progress (or the peer hung up).
    pub readable: bool,
    /// Wake when a write would make progress.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest (the common steady state of a connection).
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Read + write interest (a connection with buffered output).
    pub const READ_WRITE: Interest = Interest { readable: true, writable: true };
}

/// One readiness report from [`Poller::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the socket was registered under.
    pub token: Token,
    /// A read would make progress.
    pub readable: bool,
    /// A write would make progress.
    pub writable: bool,
    /// The peer closed or the socket errored (`POLLHUP`/`POLLERR`/
    /// `POLLNVAL`). Reads still drain whatever is buffered first.
    pub hangup: bool,
}

#[cfg(unix)]
mod sys {
    use std::os::unix::io::RawFd;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    /// Mirrors `struct pollfd`; layout fixed by POSIX.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        // POSIX `poll(2)`. `nfds_t` is `unsigned long` on every libc
        // this builds against.
        pub fn poll(
            fds: *mut PollFd,
            nfds: std::os::raw::c_ulong,
            timeout: std::os::raw::c_int,
        ) -> std::os::raw::c_int;
    }
}

/// The raw descriptor type registrations are keyed on. On non-Unix
/// hosts there are no descriptors; tokens alone identify sockets.
#[cfg(unix)]
type Fd = std::os::unix::io::RawFd;
#[cfg(not(unix))]
type Fd = usize;

/// Anything the reactor can watch.
pub trait Pollable {
    /// The raw descriptor to poll (ignored on non-Unix hosts).
    fn raw(&self) -> Fd;
}

#[cfg(unix)]
impl Pollable for TcpStream {
    fn raw(&self) -> Fd {
        std::os::unix::io::AsRawFd::as_raw_fd(self)
    }
}

#[cfg(unix)]
impl Pollable for TcpListener {
    fn raw(&self) -> Fd {
        std::os::unix::io::AsRawFd::as_raw_fd(self)
    }
}

#[cfg(not(unix))]
impl Pollable for TcpStream {
    fn raw(&self) -> Fd {
        0
    }
}

#[cfg(not(unix))]
impl Pollable for TcpListener {
    fn raw(&self) -> Fd {
        0
    }
}

/// A level-triggered readiness multiplexer. Registrations persist
/// until [`Poller::deregister`]; interests change with
/// [`Poller::set_interest`] (cheap — the poll set is rebuilt per call
/// from the registration map, which stays small: one entry per live
/// connection).
pub struct Poller {
    registered: HashMap<Token, (Fd, Interest)>,
    /// Scratch reused across polls to avoid per-tick allocation.
    #[cfg(unix)]
    fds: Vec<sys::PollFd>,
    #[cfg(unix)]
    tokens: Vec<Token>,
    events: Vec<Event>,
}

impl Default for Poller {
    fn default() -> Self {
        Self::new()
    }
}

impl Poller {
    /// An empty poller.
    #[must_use]
    pub fn new() -> Poller {
        Poller {
            registered: HashMap::new(),
            #[cfg(unix)]
            fds: Vec::new(),
            #[cfg(unix)]
            tokens: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Watches `source` under `token`. A token may only be registered
    /// once; re-registering replaces the previous entry.
    pub fn register(&mut self, source: &impl Pollable, token: Token, interest: Interest) {
        self.registered.insert(token, (source.raw(), interest));
    }

    /// Updates what `token` is watched for. No-op for unknown tokens.
    pub fn set_interest(&mut self, token: Token, interest: Interest) {
        if let Some(entry) = self.registered.get_mut(&token) {
            entry.1 = interest;
        }
    }

    /// Stops watching `token`.
    pub fn deregister(&mut self, token: Token) {
        self.registered.remove(&token);
    }

    /// Number of live registrations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.registered.len()
    }

    /// Whether nothing is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.registered.is_empty()
    }

    /// Blocks until at least one registered socket is ready or
    /// `timeout` lapses, and returns the ready set (empty on timeout).
    ///
    /// Sockets registered with neither interest are still watched for
    /// hangup, so a half-closed idle connection is noticed.
    #[cfg(unix)]
    pub fn poll(&mut self, timeout: Duration) -> &[Event] {
        self.events.clear();
        self.fds.clear();
        self.tokens.clear();
        for (&token, &(fd, interest)) in &self.registered {
            let mut events = 0i16;
            if interest.readable {
                events |= sys::POLLIN;
            }
            if interest.writable {
                events |= sys::POLLOUT;
            }
            self.fds.push(sys::PollFd { fd, events, revents: 0 });
            self.tokens.push(token);
        }
        let millis = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX);
        let n = unsafe {
            sys::poll(self.fds.as_mut_ptr(), self.fds.len() as std::os::raw::c_ulong, millis)
        };
        if n <= 0 {
            // Timeout, EINTR, or an empty set; the caller re-checks its
            // own flags and polls again either way.
            return &self.events;
        }
        for (fd, &token) in self.fds.iter().zip(&self.tokens) {
            let r = fd.revents;
            if r == 0 {
                continue;
            }
            self.events.push(Event {
                token,
                readable: r & sys::POLLIN != 0,
                writable: r & sys::POLLOUT != 0,
                hangup: r & (sys::POLLHUP | sys::POLLERR | sys::POLLNVAL) != 0,
            });
        }
        &self.events
    }

    /// Portable fallback: sleep a bounded slice of `timeout`, then
    /// report every registered socket ready for its interests. With
    /// nonblocking sockets a spurious report costs one `WouldBlock`.
    #[cfg(not(unix))]
    pub fn poll(&mut self, timeout: Duration) -> &[Event] {
        self.events.clear();
        std::thread::sleep(timeout.min(Duration::from_millis(5)));
        for (&token, &(_, interest)) in &self.registered {
            self.events.push(Event {
                token,
                readable: interest.readable,
                writable: interest.writable,
                hangup: false,
            });
        }
        &self.events
    }
}

/// Wakes a [`Poller`] blocked in [`Poller::poll`] from another thread.
///
/// Implemented as a loopback TCP socket pair: [`Waker::wake`] writes
/// one byte to the send half; the receive half is registered in the
/// poller and reports readable. Multiple wakes between polls collapse
/// into one readable event; [`Waker::drain`] clears the buffered bytes
/// so a wake is consumed exactly once.
pub struct Waker {
    tx: TcpStream,
    rx: TcpStream,
}

impl Waker {
    /// Builds the socket pair. The listener exists only for the
    /// handshake and is dropped immediately.
    ///
    /// # Errors
    ///
    /// Returns the underlying socket error (loopback must be usable).
    pub fn new() -> std::io::Result<Waker> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let tx = TcpStream::connect(listener.local_addr()?)?;
        let (rx, _) = listener.accept()?;
        tx.set_nodelay(true).ok();
        rx.set_nonblocking(true)?;
        Ok(Waker { tx, rx })
    }

    /// The half to register in the poller (readable interest).
    #[must_use]
    pub fn reader(&self) -> &TcpStream {
        &self.rx
    }

    /// Wakes the poller. Cheap, thread-safe (`&self` writes on a
    /// shared socket are atomic for one byte), and best-effort: a full
    /// pipe means a wake is already pending, which is all we need.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }

    /// Consumes every pending wake byte. Call on each readable event
    /// for the waker's token.
    pub fn drain(&self) {
        let mut sink = [0u8; 64];
        while let Ok(n) = (&self.rx).read(&mut sink) {
            if n == 0 {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn timeout_returns_empty() {
        let mut poller = Poller::new();
        let (a, _b) = pair();
        poller.register(&a, Token(1), Interest::READ);
        let events = poller.poll(Duration::from_millis(10));
        assert!(events.iter().all(|e| !e.readable), "nothing was written yet");
    }

    #[test]
    fn readable_when_bytes_arrive_and_writable_when_registered() {
        let mut poller = Poller::new();
        let (a, mut b) = pair();
        poller.register(&a, Token(7), Interest::READ_WRITE);
        b.write_all(b"x").unwrap();
        // Wait out scheduling: the byte must eventually surface.
        let mut saw_read = false;
        let mut saw_write = false;
        for _ in 0..200 {
            for e in poller.poll(Duration::from_millis(25)) {
                assert_eq!(e.token, Token(7));
                saw_read |= e.readable;
                saw_write |= e.writable;
            }
            if saw_read && saw_write {
                break;
            }
        }
        assert!(saw_read, "one byte was in flight");
        assert!(saw_write, "an empty socket buffer is writable");
    }

    #[test]
    fn hangup_is_reported_after_peer_close() {
        let mut poller = Poller::new();
        let (a, b) = pair();
        poller.register(&a, Token(3), Interest::READ);
        drop(b);
        let mut closed = false;
        for _ in 0..200 {
            for e in poller.poll(Duration::from_millis(25)) {
                // A close surfaces as hangup and/or a readable EOF;
                // either is enough for the loop to notice.
                closed |= e.hangup || e.readable;
            }
            if closed {
                break;
            }
        }
        assert!(closed, "peer close never surfaced");
    }

    #[test]
    fn waker_wakes_a_blocked_poll_and_drains() {
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        let mut poller = Poller::new();
        const WAKE: Token = Token(0);
        poller.register(waker.reader(), WAKE, Interest::READ);

        let remote = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake();
            remote.wake(); // coalesces with the first
        });
        let mut woke = false;
        for _ in 0..200 {
            let events = poller.poll(Duration::from_millis(25));
            if events.iter().any(|e| e.token == WAKE && e.readable) {
                waker.drain();
                woke = true;
                break;
            }
        }
        t.join().unwrap();
        assert!(woke, "wake() must interrupt poll()");
        // Drained: the next poll times out quietly.
        let events = poller.poll(Duration::from_millis(10));
        assert!(events.iter().all(|e| !(e.token == WAKE && e.readable)));
    }

    #[test]
    fn deregister_and_set_interest_change_the_watch_set() {
        let mut poller = Poller::new();
        let (a, mut b) = pair();
        poller.register(&a, Token(1), Interest::READ);
        assert_eq!(poller.len(), 1);
        b.write_all(b"y").unwrap();
        poller.deregister(Token(1));
        assert!(poller.is_empty());
        let events = poller.poll(Duration::from_millis(10));
        assert!(events.is_empty(), "deregistered sockets never report");

        poller.register(&a, Token(2), Interest { readable: false, writable: false });
        // Interest off: the buffered byte must not report readable.
        let quiet = poller.poll(Duration::from_millis(10)).iter().any(|e| e.readable);
        assert!(!quiet);
        poller.set_interest(Token(2), Interest::READ);
        let mut loud = false;
        for _ in 0..200 {
            loud = poller.poll(Duration::from_millis(25)).iter().any(|e| e.readable);
            if loud {
                break;
            }
        }
        assert!(loud, "restored interest must surface the byte");
    }
}
