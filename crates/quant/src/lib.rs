//! Wire formats for precision-annotated collectives.
//!
//! EQuARX (see PAPERS.md) shows that a collective can trade wire *bits*
//! for bandwidth: quantize on the sending side, transfer the narrow
//! encoding, dequantize on arrival. This crate is the single source of
//! truth for that trade in the workspace:
//!
//! * [`WireFormat`] — the encoding a transfer uses on the wire:
//!   lossless passthrough, bf16 truncation, or blockwise-scaled int8;
//! * deterministic **reference kernels** ([`WireFormat::apply`] /
//!   [`WireFormat::quantize_dequantize`]) that compute exactly what a
//!   receiver observes after the quantize→transfer→dequantize round
//!   trip, used by the `overlap-numerics` SPMD interpreter so measured
//!   end-to-end error is the real thing, not a model;
//! * **wire-byte accounting** ([`WireFormat::wire_bytes`]) that the
//!   mesh/sim cost model prices transfers with, and
//!   [`WireFormat::codec_bytes_moved`] for the memory traffic the
//!   (de)quantization passes themselves add to compute;
//! * a documented, testable **error model**
//!   ([`WireFormat::per_hop_rel_error`]) the §5.5 gate uses to predict
//!   accumulated error before committing to a quantized emission, and
//!   that the proptests hold the kernels to.
//!
//! Everything here is deterministic: no RNG, no platform-dependent
//! float paths (rounding is explicit bit manipulation), so byte-for-
//! byte reproducibility of figures and cache artifacts survives the
//! precision axis.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use overlap_json::{FromJson, Json, StableHasher, ToJson};
use serde::{Deserialize, Serialize};

/// Block width [`WireFormat::Int8Block`] uses when no explicit width is
/// requested: small enough that one outlier only inflates 64 elements'
/// quantization step, large enough that the 4-byte scale amortizes to
/// 1/16 byte per element.
pub const DEFAULT_INT8_BLOCK: usize = 64;

/// Widest accepted int8 block: beyond this a single outlier washes out
/// the whole tensor's resolution and the scale overhead is already
/// negligible, so larger widths are rejected by [`WireFormat::validate`]
/// rather than silently accepted.
pub const MAX_INT8_BLOCK: usize = 4096;

/// The encoding a transfer uses on the wire.
///
/// `Lossless` is the identity format: zero error, full-width bytes, and
/// — by construction everywhere this enum is threaded — byte-identical
/// behavior to a build that predates the precision axis. The other
/// formats shrink wire bytes at a documented, bounded accuracy cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WireFormat {
    /// Full-width passthrough: what every transfer did before the
    /// precision axis existed. Zero error, zero codec cost.
    #[default]
    Lossless,
    /// Truncate each element to bfloat16 (8-bit exponent, 7-bit
    /// mantissa) with round-to-nearest-even. Halves f32 wire bytes.
    /// Per-element relative error ≤ 2⁻⁸ for finite normal values;
    /// infinities and NaN pass through unchanged.
    Bf16,
    /// Blockwise-scaled int8: each block of `block` consecutive
    /// elements shares one f32 scale `max_abs/127`; elements quantize
    /// to `round(x/scale)` in `[-127, 127]`. Per-element absolute error
    /// ≤ `block_max_abs/254`. Blocks containing a non-finite value pass
    /// through lossless (the §5.4.3 pad join uses -inf sentinels that
    /// must survive the wire exactly).
    Int8Block {
        /// Elements sharing one scale; must be in `1..=MAX_INT8_BLOCK`.
        block: usize,
    },
}

impl WireFormat {
    /// The int8 format with the default block width.
    #[must_use]
    pub fn int8() -> WireFormat {
        WireFormat::Int8Block { block: DEFAULT_INT8_BLOCK }
    }

    /// Whether this is the identity format.
    #[must_use]
    pub fn is_lossless(&self) -> bool {
        matches!(self, WireFormat::Lossless)
    }

    /// Rejects out-of-range parameters with a message naming the
    /// offending field and value (the strategy validator surfaces this
    /// verbatim to `overlapc --strategy` users).
    ///
    /// # Errors
    ///
    /// Returns a message when the int8 block width is 0 or exceeds
    /// [`MAX_INT8_BLOCK`].
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            WireFormat::Int8Block { block: 0 } => {
                Err("wire int8 block width must be at least 1 (got 0)".into())
            }
            WireFormat::Int8Block { block } if block > MAX_INT8_BLOCK => Err(format!(
                "wire int8 block width must be at most {MAX_INT8_BLOCK} (got {block})"
            )),
            _ => Ok(()),
        }
    }

    /// Bytes this format puts on the wire for `elements` values stored
    /// at `elem_bytes` each. Lossless is exact; bf16 never widens a
    /// storage type already at or below 2 bytes; int8 pays 1 byte per
    /// element plus a 4-byte f32 scale per (possibly partial) block.
    #[must_use]
    pub fn wire_bytes(&self, elements: usize, elem_bytes: usize) -> usize {
        match *self {
            WireFormat::Lossless => elements * elem_bytes,
            WireFormat::Bf16 => elements * elem_bytes.min(2),
            WireFormat::Int8Block { block } => {
                let b = block.max(1);
                elements + elements.div_ceil(b) * 4
            }
        }
    }

    /// Memory traffic the quantize pass (sender) plus the dequantize
    /// pass (receiver) add to the compute streams, in bytes: each side
    /// streams the full-width payload once and the wire encoding once.
    /// Zero for lossless — the identity codec runs no pass at all.
    #[must_use]
    pub fn codec_bytes_moved(&self, elements: usize, elem_bytes: usize) -> usize {
        if self.is_lossless() {
            return 0;
        }
        2 * (elements * elem_bytes + self.wire_bytes(elements, elem_bytes))
    }

    /// Documented per-hop relative error bound: after one
    /// quantize→dequantize round trip, each element differs from its
    /// input by at most this fraction of the relevant magnitude (the
    /// element itself for bf16, the block max for int8). The §5.5 gate
    /// multiplies this by the number of sequential quantized hops to
    /// bound accumulated error before emission; the proptests hold
    /// [`WireFormat::apply`] to exactly this bound.
    #[must_use]
    pub fn per_hop_rel_error(&self) -> f64 {
        match *self {
            WireFormat::Lossless => 0.0,
            // 1 implicit + 7 explicit mantissa bits, round to nearest:
            // half an ulp is 2^-8 of the value.
            WireFormat::Bf16 => 1.0 / 256.0,
            // Step is max_abs/127, round-half error is step/2.
            WireFormat::Int8Block { .. } => 1.0 / 254.0,
        }
    }

    /// Predicted relative error after `encodes` independent quantization
    /// events: one per circulated shard for an AllGather (re-encoding a
    /// shard already on the wire grid is exact, so hops beyond the first
    /// add nothing), one per summed contribution for a ReduceScatter or
    /// AllReduce. The numerics harness measures the realized error
    /// against this bound; the pipeline's error budget gates on it.
    #[must_use]
    pub fn predicted_rel_error(&self, encodes: usize) -> f64 {
        self.per_hop_rel_error() * encodes as f64
    }

    /// Applies the quantize→dequantize round trip in place: `data`
    /// becomes exactly what a receiver observes after the wire.
    pub fn apply(&self, data: &mut [f64]) {
        match *self {
            WireFormat::Lossless => {}
            WireFormat::Bf16 => {
                for x in data {
                    *x = bf16_round_trip(*x);
                }
            }
            WireFormat::Int8Block { block } => {
                let b = block.max(1);
                for chunk in data.chunks_mut(b) {
                    int8_block_round_trip(chunk);
                }
            }
        }
    }

    /// [`WireFormat::apply`] on a copy.
    #[must_use]
    pub fn quantize_dequantize(&self, data: &[f64]) -> Vec<f64> {
        let mut out = data.to_vec();
        self.apply(&mut out);
        out
    }

    /// Short human-readable form: `lossless`, `bf16`, `int8x64`.
    #[must_use]
    pub fn describe(&self) -> String {
        match *self {
            WireFormat::Lossless => "lossless".into(),
            WireFormat::Bf16 => "bf16".into(),
            WireFormat::Int8Block { block } => format!("int8x{block}"),
        }
    }

    /// Parses the [`WireFormat::describe`] form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unrecognized text.
    pub fn parse(text: &str) -> Result<WireFormat, String> {
        match text {
            "lossless" => Ok(WireFormat::Lossless),
            "bf16" => Ok(WireFormat::Bf16),
            "int8" => Ok(WireFormat::int8()),
            other => match other.strip_prefix("int8x") {
                Some(width) => match width.parse::<usize>() {
                    Ok(block) => {
                        let f = WireFormat::Int8Block { block };
                        f.validate()?;
                        Ok(f)
                    }
                    Err(_) => Err(format!("bad int8 block width {width:?} in {other:?}")),
                },
                None => Err(format!(
                    "unknown wire format {other:?} (expected lossless, bf16 or int8[xN])"
                )),
            },
        }
    }

    /// Hashes the format into a fingerprint. Callers follow the
    /// workspace's hash-only-when-non-default convention — a lossless
    /// wire is usually *not* written at all so historical fingerprints
    /// survive — but the encoding itself covers every variant, lossless
    /// included, for contexts that always write it.
    pub fn write_to(&self, h: &mut StableHasher) {
        match *self {
            WireFormat::Lossless => h.write_str("wire-lossless"),
            WireFormat::Bf16 => h.write_str("wire-bf16"),
            WireFormat::Int8Block { block } => {
                h.write_str("wire-int8");
                h.write_usize(block);
            }
        }
    }
}

impl std::fmt::Display for WireFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.describe())
    }
}

/// Externally-tagged layout mirroring derived serde: unit variants as
/// bare strings, the int8 variant as `{"Int8Block":{"block":N}}`.
impl ToJson for WireFormat {
    fn to_json(&self) -> Json {
        match *self {
            WireFormat::Lossless => Json::from("Lossless"),
            WireFormat::Bf16 => Json::from("Bf16"),
            WireFormat::Int8Block { block } => Json::obj()
                .with("Int8Block", Json::obj().with("block", block as u64)),
        }
    }
}

impl FromJson for WireFormat {
    fn from_json(v: &Json) -> Result<WireFormat, String> {
        if let Some(name) = v.as_str() {
            return match name {
                "Lossless" => Ok(WireFormat::Lossless),
                "Bf16" => Ok(WireFormat::Bf16),
                other => Err(format!("unknown wire format {other:?}")),
            };
        }
        match v.get("Int8Block") {
            Some(payload) => Ok(WireFormat::Int8Block { block: payload.decode_field("block")? }),
            None => Err(format!("expected wire format, got {v}")),
        }
    }
}

/// One f64 through the bf16 wire: narrow to f32 (hardware rounding,
/// nearest-even), then round the f32 to bfloat16 by explicit
/// round-to-nearest-even on bit 16, then widen back. Non-finite values
/// survive unchanged (bf16 shares f32's exponent range).
#[must_use]
fn bf16_round_trip(x: f64) -> f64 {
    let f = x as f32;
    if !f.is_finite() {
        return f64::from(f);
    }
    let bits = f.to_bits();
    // Round to nearest, ties to even, on the low 16 bits.
    let rounded = bits.wrapping_add(0x7FFF + ((bits >> 16) & 1));
    f64::from(f32::from_bits(rounded & 0xFFFF_0000))
}

/// One block through the int8 wire: shared f32 scale `max_abs/127`,
/// round-half-away-from-zero to an integer step in `[-127, 127]`.
/// All-zero blocks stay zero; blocks containing a non-finite value pass
/// through unchanged (exactly like the wire sending them lossless).
fn int8_block_round_trip(chunk: &mut [f64]) {
    let mut max_abs = 0.0f64;
    for &x in chunk.iter() {
        if !x.is_finite() {
            return;
        }
        max_abs = max_abs.max(x.abs());
    }
    if max_abs == 0.0 {
        return;
    }
    // The scale travels as f32 (4 wire bytes), so quantize *and*
    // dequantize use the f32-rounded value, like a real receiver.
    let scale = f64::from((max_abs / 127.0) as f32);
    if scale == 0.0 {
        // max_abs underflowed f32: the whole block is denormal-tiny;
        // transmit as zeros (error still far under the documented
        // bound, which is relative to max_abs).
        for x in chunk.iter_mut() {
            *x = 0.0;
        }
        return;
    }
    for x in chunk.iter_mut() {
        let q = (*x / scale).round().clamp(-127.0, 127.0);
        *x = q * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_is_default_and_identity() {
        assert_eq!(WireFormat::default(), WireFormat::Lossless);
        let data = vec![1.0, -2.5, f64::NEG_INFINITY, 0.0];
        assert_eq!(WireFormat::Lossless.quantize_dequantize(&data), data);
        assert_eq!(WireFormat::Lossless.wire_bytes(100, 4), 400);
        assert_eq!(WireFormat::Lossless.codec_bytes_moved(100, 4), 0);
        assert_eq!(WireFormat::Lossless.per_hop_rel_error(), 0.0);
    }

    #[test]
    fn wire_bytes_shrink_as_documented() {
        // f32 storage: bf16 halves, int8 quarters (plus scales).
        assert_eq!(WireFormat::Bf16.wire_bytes(128, 4), 256);
        assert_eq!(WireFormat::int8().wire_bytes(128, 4), 128 + 2 * 4);
        // bf16 storage: bf16 wire is free, int8 still shrinks.
        assert_eq!(WireFormat::Bf16.wire_bytes(128, 2), 256);
        assert_eq!(WireFormat::int8().wire_bytes(128, 2), 136);
        // Partial blocks still pay a whole scale.
        assert_eq!(WireFormat::Int8Block { block: 64 }.wire_bytes(65, 4), 65 + 2 * 4);
    }

    #[test]
    fn bf16_error_stays_within_bound() {
        let vals = [1.0, -1.0, 2.71875, 1e-3, 65504.0, 1.0 / 3.0, -7.25e8, 2.0f64.powi(-30)];
        for &x in &vals {
            let y = bf16_round_trip(x);
            assert!(
                (y - x).abs() <= x.abs() * WireFormat::Bf16.per_hop_rel_error(),
                "bf16({x}) = {y} outside bound"
            );
        }
        // Exactly representable values round-trip exactly.
        for &x in &[0.0, 1.0, -2.0, 0.5, 384.0] {
            assert_eq!(bf16_round_trip(x), x);
        }
        // Non-finite passthrough.
        assert_eq!(bf16_round_trip(f64::NEG_INFINITY), f64::NEG_INFINITY);
        assert!(bf16_round_trip(f64::NAN).is_nan());
    }

    #[test]
    fn bf16_rounds_to_nearest_even() {
        // 1 + 2^-8 sits exactly between bf16(1.0) and bf16(1 + 2^-7):
        // nearest-even picks the even mantissa (1.0).
        assert_eq!(bf16_round_trip(1.0 + 1.0 / 256.0), 1.0);
        // 1 + 3*2^-8 ties toward 1 + 2^-6's even neighbor 1 + 2^-7... the
        // midpoint above an odd mantissa rounds *up* to the even one.
        assert_eq!(bf16_round_trip(1.0 + 3.0 / 256.0), 1.0 + 4.0 / 256.0);
    }

    #[test]
    fn int8_error_stays_within_block_bound() {
        let data: Vec<f64> = (0..130).map(|i| ((i * 37 % 101) as f64 - 50.0) * 0.3).collect();
        let f = WireFormat::Int8Block { block: 32 };
        let out = f.quantize_dequantize(&data);
        for (chunk_in, chunk_out) in data.chunks(32).zip(out.chunks(32)) {
            let max_abs = chunk_in.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
            let bound = max_abs * f.per_hop_rel_error() + 1e-12;
            for (&x, &y) in chunk_in.iter().zip(chunk_out) {
                assert!((y - x).abs() <= bound, "int8({x}) = {y} outside {bound}");
            }
        }
    }

    #[test]
    fn int8_preserves_zero_blocks_and_nonfinite_blocks() {
        let f = WireFormat::Int8Block { block: 4 };
        assert_eq!(f.quantize_dequantize(&[0.0; 8]), vec![0.0; 8]);
        // The §5.4.3 pad join's -inf sentinels survive the wire exactly.
        let with_inf = vec![1.0, f64::NEG_INFINITY, 3.0, 4.0];
        assert_eq!(f.quantize_dequantize(&with_inf), with_inf);
    }

    #[test]
    fn int8_is_idempotent() {
        // A second pass over already-quantized data is a no-op: the
        // block max is a representable level, so the f32 scale and every
        // quantized level reproduce themselves.
        let data: Vec<f64> = (0..64).map(|i| (i as f64 - 31.0) * 0.17).collect();
        let f = WireFormat::int8();
        let once = f.quantize_dequantize(&data);
        assert_eq!(f.quantize_dequantize(&once), once);
    }

    #[test]
    fn describe_parse_round_trips() {
        for f in [
            WireFormat::Lossless,
            WireFormat::Bf16,
            WireFormat::int8(),
            WireFormat::Int8Block { block: 7 },
        ] {
            assert_eq!(WireFormat::parse(&f.describe()), Ok(f));
        }
        assert_eq!(WireFormat::parse("int8"), Ok(WireFormat::int8()));
        assert!(WireFormat::parse("fp4").is_err());
        assert!(WireFormat::parse("int8x").is_err());
        assert!(WireFormat::parse("int8x0").is_err());
    }

    #[test]
    fn validate_names_field_and_value() {
        let e = WireFormat::Int8Block { block: 0 }.validate().unwrap_err();
        assert!(e.contains("block width") && e.contains("got 0"), "{e}");
        let e = WireFormat::Int8Block { block: 99999 }.validate().unwrap_err();
        assert!(e.contains("4096") && e.contains("99999"), "{e}");
        assert_eq!(WireFormat::Bf16.validate(), Ok(()));
    }

    #[test]
    fn json_round_trips_mirror_serde_layout() {
        for f in [WireFormat::Lossless, WireFormat::Bf16, WireFormat::Int8Block { block: 9 }] {
            let j = f.to_json();
            assert_eq!(WireFormat::from_json(&j), Ok(f));
        }
        assert_eq!(WireFormat::Lossless.to_json().to_string(), "\"Lossless\"");
        assert_eq!(
            WireFormat::Int8Block { block: 64 }.to_json().to_string(),
            "{\"Int8Block\":{\"block\":64}}"
        );
        assert!(WireFormat::from_json(&Json::from("Int4")).is_err());
    }

    #[test]
    fn fingerprints_distinguish_every_variant() {
        let fp = |f: WireFormat| {
            let mut h = StableHasher::new("test-wire");
            f.write_to(&mut h);
            h.finish()
        };
        let all = [
            fp(WireFormat::Lossless),
            fp(WireFormat::Bf16),
            fp(WireFormat::Int8Block { block: 32 }),
            fp(WireFormat::Int8Block { block: 64 }),
        ];
        for i in 0..all.len() {
            for j in 0..i {
                assert_ne!(all[i], all[j], "variants {i} and {j} collide");
            }
        }
    }

    proptest::proptest! {
        /// The documented error model holds on arbitrary finite data:
        /// after one quantize→dequantize round trip, every element is
        /// within `per_hop_rel_error()` of the original, relative to the
        /// bf16 element's own magnitude / the int8 block's max magnitude.
        #[test]
        fn round_trip_error_within_documented_bound(
            data in proptest::collection::vec(-1e6f64..1e6, 1..200),
            block in 1usize..=64,
            use_bf16 in proptest::prelude::any::<bool>(),
        ) {
            let f = if use_bf16 { WireFormat::Bf16 } else { WireFormat::Int8Block { block } };
            let out = f.quantize_dequantize(&data);
            let rel = f.per_hop_rel_error();
            match f {
                WireFormat::Bf16 => {
                    for (&x, &y) in data.iter().zip(&out) {
                        proptest::prop_assert!(
                            (y - x).abs() <= x.abs() * rel,
                            "bf16({x}) = {y} outside its relative bound"
                        );
                    }
                }
                WireFormat::Int8Block { block } => {
                    for (ins, outs) in data.chunks(block).zip(out.chunks(block)) {
                        let max_abs = ins.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
                        // Tiny absolute slack for the f32-rounded scale.
                        let bound = max_abs * rel + max_abs * 1e-7;
                        for (&x, &y) in ins.iter().zip(outs) {
                            proptest::prop_assert!(
                                (y - x).abs() <= bound,
                                "int8x{block}({x}) = {y} outside block bound {bound}"
                            );
                        }
                    }
                }
                WireFormat::Lossless => unreachable!(),
            }
            // Re-encoding wire-grid data is exact — the property the
            // shard-circulating AllGather loop relies on to quantize
            // once instead of once per hop.
            proptest::prop_assert_eq!(f.quantize_dequantize(&out), out);
        }
    }
}
