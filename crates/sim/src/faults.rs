//! Fault interpretation for the discrete-event engine.
//!
//! A [`FaultModel`] compiles a [`FaultSpec`] against a [`Machine`] into
//! dense per-link state the engine consults on every instruction. The
//! model is *passive*: it perturbs durations (and occasionally reports a
//! transfer as unroutable) but never mutates the spec or the machine, so
//! one model can serve any number of simulations.
//!
//! Determinism discipline: every random quantity (per-hop jitter, DMA
//! stall draws) is a pure function of `(seed, domain, instruction,
//! repetition, hop)` via the counter-based xorshift mix in
//! [`overlap_mesh::fault`]. There is no RNG stream to advance, so draws
//! do not depend on evaluation order, thread count, or whether a cost
//! table came from the artifact cache.
//!
//! Each perturbation checks its own activation and returns the pristine
//! value untouched when inactive, so a [`FaultSpec::default()`] model is
//! bit-identical to the fault-free engine — not merely close.

use overlap_hlo::{InstrId, Module, Op};
use overlap_mesh::fault::{mix64, unit_f64};
use overlap_mesh::{DeviceMesh, FaultSpec, LinkId, Machine};

use crate::SimError;

/// Domain tags separating the random streams of the different fault
/// kinds (jitter draws must not correlate with stall draws).
const DOMAIN_JITTER: u64 = 0x4A49_5454; // "JITT"
const DOMAIN_STALL: u64 = 0x5354_414C; // "STAL"

/// Outcome of routing one asynchronous transfer under faults.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct TransferOutcome {
    /// Wire time under faults (derates, detours, jitter), seconds.
    pub(crate) seconds: f64,
    /// Extra wire time versus the pristine transfer (attributed to
    /// links; includes jitter), seconds.
    pub(crate) link_extra: f64,
    /// Backoff time spent in stall retries before the wire moves,
    /// seconds.
    pub(crate) stall_extra: f64,
    /// Number of stall retries taken.
    pub(crate) retries: u64,
}

/// A [`FaultSpec`] compiled against one [`Machine`] for fast per-event
/// queries by the engine.
#[derive(Debug, Clone)]
pub struct FaultModel {
    seed: u64,
    mesh: DeviceMesh,
    link_bandwidth: f64,
    hop_latency: f64,
    /// Per directed link: fraction of nominal bandwidth delivered
    /// (`1.0` nominal), indexed `(device * rank + axis) * 2 + dir`.
    link_derate: Vec<f64>,
    /// Per directed link: true when the link is down.
    link_down: Vec<bool>,
    /// Worst-chip multiplicative compute/memory slowdown (`1.0` when no
    /// stragglers). The SPMD step is gated by the slowest chip.
    max_straggler: f64,
    /// Slowdown factor for ring collectives: worst alive link derate,
    /// doubled when any link is down (the bidirectional ring falls back
    /// to its surviving direction).
    collective_factor: f64,
    /// True when any link is derated or down (activates path routing).
    has_link_faults: bool,
    jitter_seconds: f64,
    stall_probability: f64,
    stall_seconds: f64,
    stall_max_retries: u32,
    time_limit: Option<f64>,
}

impl FaultModel {
    /// Compiles `spec` against `machine`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFaultSpec`] when the spec references
    /// devices or axes outside the mesh or carries out-of-range
    /// parameters, and [`SimError::LinkDown`] when some device has every
    /// outgoing link down (the SPMD program cannot run at all).
    pub fn new(machine: &Machine, spec: &FaultSpec) -> Result<Self, SimError> {
        let mesh = machine.mesh();
        spec.validate(mesh).map_err(SimError::InvalidFaultSpec)?;
        let rank = mesh.rank();
        let devices = mesh.num_devices();
        let n_links = devices * rank * 2;
        let mut link_derate = vec![1.0f64; n_links];
        let mut link_down = vec![false; n_links];
        let slot = |l: &LinkId| (l.device as usize * rank + l.axis) * 2 + usize::from(!l.forward);
        for d in &spec.link_derates {
            let s = slot(&d.link);
            link_derate[s] = link_derate[s].min(d.derate);
        }
        for l in &spec.down_links {
            link_down[slot(l)] = true;
        }
        // A device with every outgoing link down is unreachable: fail
        // fast instead of simulating a program that could never run.
        let wired_axes: Vec<usize> = (0..rank).filter(|&a| mesh.shape()[a] > 1).collect();
        if !wired_axes.is_empty() {
            for device in 0..devices {
                let base = device * rank * 2;
                let all_down = wired_axes
                    .iter()
                    .all(|&a| link_down[base + a * 2] && link_down[base + a * 2 + 1]);
                if all_down {
                    return Err(SimError::LinkDown { device: device as u32, axis: wired_axes[0] });
                }
            }
        }
        let max_straggler = spec
            .stragglers
            .iter()
            .map(|s| s.slowdown)
            .fold(1.0f64, f64::max);
        let worst_alive = link_derate
            .iter()
            .zip(&link_down)
            .filter(|&(_, &down)| !down)
            .map(|(&d, _)| 1.0 / d)
            .fold(1.0f64, f64::max);
        let any_down = link_down.iter().any(|&d| d);
        let collective_factor = if any_down { 2.0 * worst_alive } else { worst_alive };
        Ok(FaultModel {
            seed: spec.seed,
            mesh: mesh.clone(),
            link_bandwidth: machine.link_bandwidth(),
            hop_latency: machine.hop_latency(),
            link_derate,
            link_down,
            max_straggler,
            collective_factor,
            has_link_faults: spec.link_derates.iter().any(|d| d.derate < 1.0) || any_down,
            jitter_seconds: spec.jitter_seconds,
            stall_probability: spec.stall_probability,
            stall_seconds: spec.stall_seconds,
            stall_max_retries: spec.stall_max_retries,
            time_limit: (spec.time_limit_seconds > 0.0).then_some(spec.time_limit_seconds),
        })
    }

    /// Watchdog limit on simulated time, if configured.
    #[must_use]
    pub fn time_limit(&self) -> Option<f64> {
        self.time_limit
    }

    /// Worst-chip multiplicative slowdown gating compute and memory
    /// spans (`1.0` when no stragglers).
    #[must_use]
    pub fn compute_factor(&self) -> f64 {
        self.max_straggler
    }

    /// Slowdown factor applied to blocking ring collectives.
    #[must_use]
    pub fn collective_factor(&self) -> f64 {
        if self.has_link_faults {
            self.collective_factor
        } else {
            1.0
        }
    }

    /// Duration of a compute/memory span on the degraded machine.
    /// Returns `seconds` untouched when no straggler is configured.
    #[must_use]
    pub fn compute_seconds(&self, seconds: f64) -> f64 {
        if self.max_straggler == 1.0 {
            seconds
        } else {
            seconds * self.max_straggler
        }
    }

    /// Duration of a blocking collective on the degraded machine.
    /// Returns `seconds` untouched when no link fault is configured.
    #[must_use]
    pub fn collective_seconds(&self, seconds: f64) -> f64 {
        if self.has_link_faults {
            seconds * self.collective_factor
        } else {
            seconds
        }
    }

    fn link_slot(&self, device: u32, axis: usize, forward: bool) -> usize {
        (device as usize * self.mesh.rank() + axis) * 2 + usize::from(!forward)
    }

    /// A uniform draw in `[0, 1)` keyed purely by event identity.
    fn draw(&self, domain: u64, a: u64, b: u64, c: u64) -> f64 {
        let mut x = self.seed ^ domain;
        x = mix64(x ^ a);
        x = mix64(x ^ b);
        x = mix64(x ^ c);
        unit_f64(x)
    }

    /// Routes one asynchronous `CollectivePermuteStart` transfer under
    /// faults. `pristine_seconds` is the fault-free wire time from the
    /// cost table; when no link fault and no jitter is active it is
    /// returned untouched so the noop spec stays bit-identical.
    ///
    /// The permute is bulk-synchronous across devices: the slowest
    /// pair's path gates the step, so the wire time is the max over all
    /// pairs. Down links reroute the long way around their ring (torus
    /// detour) at a hop-count penalty; a detour that is itself blocked
    /// makes the transfer unroutable.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::LinkDown`] for an unroutable pair or when the
    /// DMA stall retry budget is exhausted.
    pub(crate) fn transfer(
        &self,
        module: &Module,
        id: InstrId,
        pristine_seconds: f64,
        rep: usize,
    ) -> Result<TransferOutcome, SimError> {
        let ins = module.instr(id);
        let mut out = TransferOutcome { seconds: pristine_seconds, ..TransferOutcome::default() };
        let pairs: &[(u32, u32)] = match ins.op() {
            Op::CollectivePermuteStart { pairs, .. } | Op::CollectivePermute { pairs, .. } => {
                pairs
            }
            // Defensive: the engine only calls this for permutes.
            _ => &[],
        };
        if (self.has_link_faults || self.jitter_seconds > 0.0) && !pairs.is_empty() {
            // Links carry the wire encoding, not the dense payload.
            let bytes = crate::cost::wire_payload_bytes(ins.op().wire(), ins.shape());
            let mut worst = 0.0f64;
            for (pi, &(src, dst)) in pairs.iter().enumerate() {
                let t =
                    self.pair_seconds(src, dst, bytes, id.index() as u64, rep as u64, pi as u64)?;
                worst = worst.max(t);
            }
            out.seconds = worst;
            out.link_extra = (worst - pristine_seconds).max(0.0);
        }
        let (device, axis) = pairs
            .first()
            .map(|&(src, dst)| (src, self.first_diff_axis(src, dst)))
            .unwrap_or((0, 0));
        self.sample_stalls(&mut out, id, rep, device, axis)?;
        Ok(out)
    }

    /// Wire time of one `(src, dst)` pair under faults: walk the torus
    /// path axis by axis (shorter way around each ring, exactly as the
    /// pristine classifier chooses), detour down links the long way
    /// around their ring, take the worst derate along the path for the
    /// serialization term, and add seeded per-hop jitter.
    fn pair_seconds(
        &self,
        src: u32,
        dst: u32,
        bytes: usize,
        instr: u64,
        rep: u64,
        pair: u64,
    ) -> Result<f64, SimError> {
        let path = self.walk_path(src, dst)?;
        let mut jitter = 0.0;
        if self.jitter_seconds > 0.0 {
            for hop in 0..path.hops.max(1) {
                jitter += self.jitter_seconds
                    * self.draw(DOMAIN_JITTER, instr, rep, (pair << 16) | hop as u64);
            }
        }
        if path.hops == 0 {
            // Same-device "transfer": the pristine model charges one hop
            // latency; keep that and only add jitter.
            return Ok(self.hop_latency + jitter);
        }
        Ok(bytes as f64 / (self.link_bandwidth * path.min_derate)
            + path.hops as f64 * self.hop_latency
            + jitter)
    }

    /// Walks the torus path from `src` to `dst`, accumulating hop count
    /// and the worst bandwidth derate crossed. Down links force a detour
    /// the other way around the affected ring.
    fn walk_path(&self, src: u32, dst: u32) -> Result<PathInfo, SimError> {
        let a = self.mesh.coords(src);
        let b = self.mesh.coords(dst);
        let mut cur = a.clone();
        let mut info = PathInfo { hops: 0, min_derate: 1.0 };
        for axis in 0..self.mesh.rank() {
            if a[axis] == b[axis] {
                continue;
            }
            let size = self.mesh.shape()[axis];
            let fwd = (b[axis] + size - a[axis]) % size;
            let bwd = (a[axis] + size - b[axis]) % size;
            // Same short-way tie-break as `permute_transfer`.
            let (steps, forward) = if fwd <= bwd { (fwd, true) } else { (bwd, false) };
            if self.axis_leg(&mut cur, axis, steps, forward, &mut info).is_err() {
                // The short way hits a down link: detour the long way
                // around this ring. Restart the leg from the original
                // coordinate (walks are per-axis, so `cur[axis]` is
                // still `a[axis]` when the leg failed part-way only in
                // the accounting sense — reset it explicitly).
                let mut detour = PathInfo { hops: 0, min_derate: 1.0 };
                cur[axis] = a[axis];
                let long_steps = size - steps;
                self.axis_leg(&mut cur, axis, long_steps, !forward, &mut detour)
                    .map_err(|(device, axis)| SimError::LinkDown { device, axis })?;
                info.hops += detour.hops;
                info.min_derate = info.min_derate.min(detour.min_derate);
            }
        }
        Ok(info)
    }

    /// Advances `cur` by `steps` hops along `axis`, folding link state
    /// into `info`. On a down link, `cur[axis]` is left wherever the
    /// walk stopped and the offending link is returned.
    fn axis_leg(
        &self,
        cur: &mut [usize],
        axis: usize,
        steps: usize,
        forward: bool,
        info: &mut PathInfo,
    ) -> Result<(), (u32, usize)> {
        let size = self.mesh.shape()[axis];
        let entry_hops = info.hops;
        let entry_derate = info.min_derate;
        let entry_coord = cur[axis];
        for _ in 0..steps {
            let device = self.mesh.device_at(cur);
            let s = self.link_slot(device, axis, forward);
            if self.link_down[s] {
                info.hops = entry_hops;
                info.min_derate = entry_derate;
                cur[axis] = entry_coord;
                return Err((device, axis));
            }
            info.hops += 1;
            info.min_derate = info.min_derate.min(self.link_derate[s]);
            cur[axis] = if forward { (cur[axis] + 1) % size } else { (cur[axis] + size - 1) % size };
        }
        Ok(())
    }

    fn first_diff_axis(&self, src: u32, dst: u32) -> usize {
        let a = self.mesh.coords(src);
        let b = self.mesh.coords(dst);
        a.iter().zip(&b).position(|(x, y)| x != y).unwrap_or(0)
    }

    /// Samples the bounded stall/retry loop for one transfer. Each
    /// attempt stalls with `stall_probability`; retry `k` backs off for
    /// `k * stall_seconds`. Exhausting the retry budget reports the
    /// transfer's link as down.
    fn sample_stalls(
        &self,
        out: &mut TransferOutcome,
        id: InstrId,
        rep: usize,
        device: u32,
        axis: usize,
    ) -> Result<(), SimError> {
        if self.stall_probability <= 0.0 {
            return Ok(());
        }
        let mut attempt = 0u32;
        loop {
            let u = self.draw(DOMAIN_STALL, id.index() as u64, rep as u64, u64::from(attempt));
            if u >= self.stall_probability {
                return Ok(());
            }
            attempt += 1;
            if attempt > self.stall_max_retries {
                return Err(SimError::LinkDown { device, axis });
            }
            out.stall_extra += f64::from(attempt) * self.stall_seconds;
            out.retries += 1;
        }
    }
}

struct PathInfo {
    hops: usize,
    min_derate: f64,
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use overlap_hlo::{Builder, DType, Module, Shape};

    use super::*;

    fn f32s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    fn ring_machine(n: usize) -> Machine {
        Machine::with_mesh(DeviceMesh::ring(n))
    }

    /// One forward-shift permute start on an `n`-ring, returning the
    /// module, the start id and the pristine wire time.
    fn shift_module(n: usize, elems: usize) -> (Module, InstrId, f64) {
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[elems]), "x");
        let pairs: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let s = b.collective_permute_start(x, pairs, "s");
        let d = b.collective_permute_done(s, "d");
        let m = b.build(vec![d]);
        let machine = ring_machine(n);
        let t = crate::permute_transfer(
            match m.instr(s).op() {
                Op::CollectivePermuteStart { pairs, .. } => pairs,
                _ => unreachable!(),
            },
            m.instr(s).shape().byte_size(),
            &machine,
        );
        (m, s, t.seconds)
    }

    #[test]
    fn noop_spec_leaves_everything_untouched() {
        let machine = ring_machine(4);
        let fm = FaultModel::new(&machine, &FaultSpec::default()).unwrap();
        assert_eq!(fm.compute_seconds(1.25), 1.25);
        assert_eq!(fm.collective_seconds(0.75), 0.75);
        assert_eq!(fm.compute_factor(), 1.0);
        assert_eq!(fm.collective_factor(), 1.0);
        assert_eq!(fm.time_limit(), None);
        let (m, s, pristine) = shift_module(4, 1 << 16);
        let out = fm.transfer(&m, s, pristine, 0).unwrap();
        assert_eq!(out.seconds, pristine);
        assert_eq!(out.stall_extra, 0.0);
        assert_eq!(out.retries, 0);
    }

    #[test]
    fn straggler_gates_compute() {
        let machine = ring_machine(4);
        let spec = FaultSpec::default().with_straggler(2, 1.5).with_straggler(3, 1.2);
        let fm = FaultModel::new(&machine, &spec).unwrap();
        assert_eq!(fm.compute_seconds(2.0), 3.0);
        // Collectives are unaffected by stragglers alone.
        assert_eq!(fm.collective_seconds(2.0), 2.0);
    }

    #[test]
    fn derated_link_stretches_only_paths_crossing_it() {
        let machine = ring_machine(8);
        let spec = FaultSpec::default()
            .with_link_derate(LinkId { device: 3, axis: 0, forward: true }, 0.5);
        let fm = FaultModel::new(&machine, &spec).unwrap();
        let (m, s, pristine) = shift_module(8, 1 << 18);
        let out = fm.transfer(&m, s, pristine, 0).unwrap();
        // The slowest pair (3 -> 4) pays double serialization time.
        let bytes = m.instr(s).shape().byte_size() as f64;
        let expect = bytes / (machine.link_bandwidth() * 0.5) + machine.hop_latency();
        assert!((out.seconds - expect).abs() < 1e-15);
        assert!(out.link_extra > 0.0);
    }

    #[test]
    fn down_link_detours_the_long_way() {
        let n = 8;
        let machine = ring_machine(n);
        let spec =
            FaultSpec::default().with_down_link(LinkId { device: 3, axis: 0, forward: true });
        let fm = FaultModel::new(&machine, &spec).unwrap();
        let (m, s, pristine) = shift_module(n, 1 << 18);
        let out = fm.transfer(&m, s, pristine, 0).unwrap();
        // Pair (3 -> 4) reroutes backward around the ring: 7 hops.
        let bytes = m.instr(s).shape().byte_size() as f64;
        let expect = bytes / machine.link_bandwidth() + 7.0 * machine.hop_latency();
        assert!((out.seconds - expect).abs() < 1e-15);
    }

    #[test]
    fn blocked_detour_is_link_down() {
        let n = 4;
        let machine = ring_machine(n);
        // Forward link 1 -> 2 down; the backward detour passes 1 -> 0
        // but dies on 0 -> 3. No device is fully cut, yet pair (1 -> 2)
        // is unroutable.
        let spec = FaultSpec::default()
            .with_down_link(LinkId { device: 1, axis: 0, forward: true })
            .with_down_link(LinkId { device: 0, axis: 0, forward: false });
        let fm = FaultModel::new(&machine, &spec).unwrap();
        let (m, s, pristine) = shift_module(n, 1 << 10);
        assert_eq!(
            fm.transfer(&m, s, pristine, 0),
            Err(SimError::LinkDown { device: 0, axis: 0 })
        );
    }

    #[test]
    fn fully_cut_device_rejected_at_model_build() {
        let machine = ring_machine(4);
        let spec = FaultSpec::default()
            .with_down_link(LinkId { device: 2, axis: 0, forward: true })
            .with_down_link(LinkId { device: 2, axis: 0, forward: false });
        assert_eq!(
            FaultModel::new(&machine, &spec).unwrap_err(),
            SimError::LinkDown { device: 2, axis: 0 }
        );
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let machine = ring_machine(8);
        let amp = 5e-6;
        let spec = FaultSpec::seeded(9).with_jitter(amp);
        let fm = FaultModel::new(&machine, &spec).unwrap();
        let (m, s, pristine) = shift_module(8, 1 << 16);
        let a = fm.transfer(&m, s, pristine, 0).unwrap();
        let b = fm.transfer(&m, s, pristine, 0).unwrap();
        assert_eq!(a, b, "same event identity draws the same jitter");
        assert!(a.seconds >= pristine);
        assert!(a.seconds < pristine + amp, "one hop draws less than the amplitude");
        let c = fm.transfer(&m, s, pristine, 1).unwrap();
        assert_ne!(a.seconds, c.seconds, "different repetition draws differently");
        let other_seed = FaultModel::new(&machine, &FaultSpec::seeded(10).with_jitter(amp)).unwrap();
        assert_ne!(
            other_seed.transfer(&m, s, pristine, 0).unwrap().seconds,
            a.seconds,
            "different seed draws differently"
        );
    }

    #[test]
    fn stalls_retry_with_backoff_and_bound() {
        let machine = ring_machine(4);
        let (m, s, pristine) = shift_module(4, 1 << 10);
        // Certain stall: every attempt fails, so the budget exhausts.
        let certain = FaultSpec::seeded(1).with_dma_stalls(1.0, 1e-6, 3);
        let fm = FaultModel::new(&machine, &certain).unwrap();
        assert!(matches!(
            fm.transfer(&m, s, pristine, 0),
            Err(SimError::LinkDown { .. })
        ));
        // Moderate stall probability: some repetition stalls, retries
        // are counted and backoff accumulates.
        let sometimes = FaultSpec::seeded(1).with_dma_stalls(0.5, 1e-6, 10);
        let fm = FaultModel::new(&machine, &sometimes).unwrap();
        let mut total_retries = 0;
        for rep in 0..32 {
            let out = fm.transfer(&m, s, pristine, rep).unwrap();
            if out.retries > 0 {
                assert!(out.stall_extra > 0.0);
            }
            total_retries += out.retries;
        }
        assert!(total_retries > 0, "a 50% stall rate must stall somewhere in 32 reps");
    }

    #[test]
    fn invalid_spec_is_typed() {
        let machine = ring_machine(4);
        let spec = FaultSpec::default().with_straggler(99, 2.0);
        assert!(matches!(
            FaultModel::new(&machine, &spec),
            Err(SimError::InvalidFaultSpec(_))
        ));
    }
}
