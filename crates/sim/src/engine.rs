//! The discrete-event execution engine.

use overlap_hlo::{InstrId, Module};
use overlap_mesh::{FaultSpec, Machine};

use crate::cost::{Direction, InstrCost};
use crate::faults::FaultModel;
use crate::report::{FaultAttribution, Report, Span, SpanKind, Timeline};
use crate::table::{CostTable, NO_GROUP};
use crate::SimError;

/// Simulates `module` in its arena (builder) order.
///
/// Equivalent to [`simulate_order`] with [`Module::ids`]. Arena order is
/// the order a straightforward compiler would emit — synchronous
/// collectives inline, no latency hiding — so this is the paper's
/// *baseline* execution.
///
/// # Errors
///
/// Returns [`SimError::InvalidModule`] if verification fails.
pub fn simulate(module: &Module, machine: &Machine) -> Result<Report, SimError> {
    simulate_order(module, machine, &module.arena_order())
}

/// Simulates `module` executing instructions in the given linear order.
///
/// The order must be a permutation of all instruction ids in which every
/// operand precedes its users (the schedulers in `overlap-core` produce
/// such orders). See the crate docs for the execution model.
///
/// Builds a fresh [`CostTable`] for the call; when simulating the same
/// module repeatedly, build the table once and use
/// [`simulate_order_with`].
///
/// # Errors
///
/// Returns [`SimError::InvalidModule`] on verification failure and
/// [`SimError::InvalidSchedule`] if the order is not a complete
/// topological order.
pub fn simulate_order(
    module: &Module,
    machine: &Machine,
    order: &[InstrId],
) -> Result<Report, SimError> {
    let table = CostTable::new(module, machine)?;
    simulate_order_with(&table, module, machine, order)
}

/// Simulates one execution of `module` under `order` using a
/// pre-built [`CostTable`] (built for this same `(module, machine)`
/// pair), skipping re-verification and cost re-derivation.
///
/// # Errors
///
/// Returns [`SimError::InvalidSchedule`] if the order is not a complete
/// topological order or the table does not cover the module.
pub fn simulate_order_with(
    table: &CostTable,
    module: &Module,
    machine: &Machine,
    order: &[InstrId],
) -> Result<Report, SimError> {
    check_table(table, module)?;
    validate_order(module, order)?;
    let mut scratch = EngineScratch::for_len(module.len());
    run_engine(module, machine, order, table, &mut scratch, &mut EngineState::default(), None, 0)
}

/// Simulates `module` in arena order on a degraded machine described by
/// `spec` — the fault-injection counterpart of [`simulate`].
///
/// Same seed ⇒ bit-identical report: all randomness (jitter, stalls) is
/// a pure function of the seed and the event identity. With
/// [`FaultSpec::default()`] the result is bit-identical to [`simulate`].
///
/// # Errors
///
/// Same conditions as [`simulate`], plus [`SimError::InvalidFaultSpec`]
/// for a spec that does not fit the machine, [`SimError::LinkDown`] for
/// unroutable transfers, and [`SimError::Timeout`] /
/// [`SimError::Deadlock`] from the watchdog.
pub fn simulate_faulted(
    module: &Module,
    machine: &Machine,
    spec: &FaultSpec,
) -> Result<Report, SimError> {
    simulate_order_faulted(module, machine, &module.arena_order(), spec)
}

/// Simulates `module` under `order` on a degraded machine described by
/// `spec` — the fault-injection counterpart of [`simulate_order`].
///
/// # Errors
///
/// Same conditions as [`simulate_order`] plus the fault-path errors
/// listed on [`simulate_faulted`].
pub fn simulate_order_faulted(
    module: &Module,
    machine: &Machine,
    order: &[InstrId],
    spec: &FaultSpec,
) -> Result<Report, SimError> {
    let table = CostTable::new(module, machine)?;
    simulate_order_faulted_with(&table, module, machine, order, spec)
}

/// [`simulate_order_faulted`] with a pre-built [`CostTable`]. The table
/// holds *pristine* costs; the fault model perturbs them at execution
/// time, so one table serves every fault spec.
///
/// # Errors
///
/// Same conditions as [`simulate_order_with`] plus the fault-path errors
/// listed on [`simulate_faulted`].
pub fn simulate_order_faulted_with(
    table: &CostTable,
    module: &Module,
    machine: &Machine,
    order: &[InstrId],
    spec: &FaultSpec,
) -> Result<Report, SimError> {
    check_table(table, module)?;
    validate_order(module, order)?;
    let model = FaultModel::new(machine, spec)?;
    let mut scratch = EngineScratch::for_len(module.len());
    run_engine(
        module,
        machine,
        order,
        table,
        &mut scratch,
        &mut EngineState::default(),
        Some(&model),
        0,
    )
}

/// [`simulate_order_repeated`] on a degraded machine: `reps`
/// back-to-back executions under `spec`, stream clocks carrying across
/// repetitions. Each repetition draws its own jitter/stall values (the
/// repetition index is part of every event identity).
///
/// # Errors
///
/// Same conditions as [`simulate_order_repeated`] plus the fault-path
/// errors listed on [`simulate_faulted`].
pub fn simulate_order_repeated_faulted(
    module: &Module,
    machine: &Machine,
    order: &[InstrId],
    reps: usize,
    spec: &FaultSpec,
) -> Result<Report, SimError> {
    let table = CostTable::new(module, machine)?;
    simulate_order_repeated_faulted_with(&table, module, machine, order, reps, spec)
}

/// [`simulate_order_repeated_faulted`] with a pre-built [`CostTable`].
///
/// # Errors
///
/// Same conditions as [`simulate_order_repeated_with`] plus the
/// fault-path errors listed on [`simulate_faulted`].
pub fn simulate_order_repeated_faulted_with(
    table: &CostTable,
    module: &Module,
    machine: &Machine,
    order: &[InstrId],
    reps: usize,
    spec: &FaultSpec,
) -> Result<Report, SimError> {
    check_table(table, module)?;
    validate_order(module, order)?;
    if reps == 0 {
        return Err(SimError::ZeroRepetitions);
    }
    let model = FaultModel::new(machine, spec)?;
    let mut scratch = EngineScratch::for_len(module.len());
    let mut state = EngineState::default();
    let mut combined =
        run_engine(module, machine, order, table, &mut scratch, &mut state, Some(&model), 0)?;
    for rep in 1..reps {
        let report = run_engine(
            module,
            machine,
            order,
            table,
            &mut scratch,
            &mut state,
            Some(&model),
            rep,
        )?;
        combined.absorb(report);
    }
    Ok(combined)
}

/// Simulates `reps` back-to-back executions of `module` under `order`
/// (e.g. the identical layers of a transformer): stream clocks and
/// in-flight transfers carry across repetitions, so a prologue transfer
/// of repetition `i+1` can hide under the tail compute of repetition `i`
/// — overlap that multiplying a single-layer makespan by the layer count
/// would miss.
///
/// # Errors
///
/// Same conditions as [`simulate_order`], plus
/// [`SimError::ZeroRepetitions`] when `reps == 0`.
pub fn simulate_order_repeated(
    module: &Module,
    machine: &Machine,
    order: &[InstrId],
    reps: usize,
) -> Result<Report, SimError> {
    let table = CostTable::new(module, machine)?;
    simulate_order_repeated_with(&table, module, machine, order, reps)
}

/// [`simulate_order_repeated`] with a pre-built [`CostTable`]: the module
/// is verified and the order validated once, and dense per-instruction
/// engine state is reused across all `reps` executions.
///
/// # Errors
///
/// Returns [`SimError::InvalidSchedule`] if the order is not a complete
/// topological order or the table does not cover the module, and
/// [`SimError::ZeroRepetitions`] when `reps == 0`.
pub fn simulate_order_repeated_with(
    table: &CostTable,
    module: &Module,
    machine: &Machine,
    order: &[InstrId],
    reps: usize,
) -> Result<Report, SimError> {
    check_table(table, module)?;
    validate_order(module, order)?;
    if reps == 0 {
        return Err(SimError::ZeroRepetitions);
    }
    let mut scratch = EngineScratch::for_len(module.len());
    let mut state = EngineState::default();
    let mut combined =
        run_engine(module, machine, order, table, &mut scratch, &mut state, None, 0)?;
    for rep in 1..reps {
        let report =
            run_engine(module, machine, order, table, &mut scratch, &mut state, None, rep)?;
        combined.absorb(report);
    }
    Ok(combined)
}

/// Draws `draws` *independent* seeded executions of `module` under
/// `order` on the degraded machine described by `spec` and returns the
/// per-draw makespans in draw order — the distributional entry point
/// behind the tail-latency report (`fig_tail`, the perfgate `tail`
/// section).
///
/// Unlike [`simulate_order_repeated_faulted`], stream clocks do **not**
/// carry across draws: every draw starts from a fresh engine state, so
/// the result is `draws` samples of the *same* step's makespan under
/// different fault realizations, not one long run. Draw `i` uses `i` as
/// the repetition index of every fault-event identity, so the sample
/// set is a pure function of `(spec, module, order)` — independent of
/// evaluation order and thread count, and each draw's jitter values are
/// distinct. Summarize with
/// [`TailSummary::from_samples`](crate::TailSummary::from_samples).
///
/// # Errors
///
/// Same conditions as [`simulate_order_faulted`], plus
/// [`SimError::ZeroRepetitions`] when `draws == 0`. A failing draw
/// (watchdog, unroutable link) fails the whole call — tail percentiles
/// over a censored sample set would be lies.
pub fn simulate_order_tail(
    module: &Module,
    machine: &Machine,
    order: &[InstrId],
    spec: &FaultSpec,
    draws: usize,
) -> Result<Vec<f64>, SimError> {
    let table = CostTable::new(module, machine)?;
    simulate_order_tail_with(&table, module, machine, order, spec, draws)
}

/// [`simulate_order_tail`] with a pre-built [`CostTable`].
///
/// # Errors
///
/// Same conditions as [`simulate_order_tail`].
pub fn simulate_order_tail_with(
    table: &CostTable,
    module: &Module,
    machine: &Machine,
    order: &[InstrId],
    spec: &FaultSpec,
    draws: usize,
) -> Result<Vec<f64>, SimError> {
    check_table(table, module)?;
    validate_order(module, order)?;
    if draws == 0 {
        return Err(SimError::ZeroRepetitions);
    }
    let model = FaultModel::new(machine, spec)?;
    let mut scratch = EngineScratch::for_len(module.len());
    let mut makespans = Vec::with_capacity(draws);
    for draw in 0..draws {
        // Fresh state per draw: each sample is an independent execution.
        let report = run_engine(
            module,
            machine,
            order,
            table,
            &mut scratch,
            &mut EngineState::default(),
            Some(&model),
            draw,
        )?;
        makespans.push(report.makespan());
    }
    Ok(makespans)
}

fn check_table(table: &CostTable, module: &Module) -> Result<(), SimError> {
    if table.len() == module.len() {
        Ok(())
    } else {
        Err(SimError::InvalidSchedule(format!(
            "cost table covers {} instructions but module has {}",
            table.len(),
            module.len()
        )))
    }
}

/// Stream clocks carried across repeated executions.
#[derive(Debug, Clone, Copy, Default)]
struct EngineState {
    t_compute: f64,
    dma_free: [f64; 2],
}

/// Dense per-instruction engine state, reusable across repetitions so
/// repeated simulation allocates nothing per repetition.
struct EngineScratch {
    /// Time each instruction's result becomes available.
    ready: Vec<f64>,
    /// Wire-completion time of each `CollectivePermuteStart`, indexed by
    /// the start's id (only read after the start executed, which the
    /// topological order guarantees).
    transfer_end: Vec<f64>,
    /// Transfer duration of each start, same indexing.
    transfer_dur: Vec<f64>,
}

impl EngineScratch {
    fn for_len(n: usize) -> Self {
        EngineScratch {
            ready: vec![0.0; n],
            transfer_end: vec![0.0; n],
            transfer_dur: vec![0.0; n],
        }
    }
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn run_engine(
    module: &Module,
    machine: &Machine,
    order: &[InstrId],
    table: &CostTable,
    scratch: &mut EngineScratch,
    state: &mut EngineState,
    faults: Option<&FaultModel>,
    rep: usize,
) -> Result<Report, SimError> {
    scratch.ready.fill(state.t_compute);
    let ready = &mut scratch.ready;
    let mut t_compute = state.t_compute;
    let mut dma_free = state.dma_free;
    let mut inflight = 0usize;

    // Watchdog state (fault path only): the clock at entry detects a
    // repetition that charges work without advancing simulated time.
    let entry_clock = state.t_compute.max(state.dma_free[0]).max(state.dma_free[1]);
    let time_limit = faults.and_then(FaultModel::time_limit);
    let mut attribution = FaultAttribution::default();

    let mut compute_time = 0.0;
    let mut memory_time = 0.0;
    let mut sync_comm_time = 0.0;
    let mut exposed_async_time = 0.0;
    let mut hidden_async_time = 0.0;
    let mut total_flops = 0u64;
    let mut timeline = Timeline::default();

    for &id in order {
        // Watchdog: simulated time past the configured limit aborts the
        // run instead of grinding through the rest of the schedule.
        if let Some(limit) = time_limit {
            if t_compute.max(dma_free[0]).max(dma_free[1]) > limit {
                return Err(SimError::Timeout);
            }
        }
        let ins = module.instr(id);
        // Non-root fusion members are accounted at their group root.
        if table.group_of[id.index()] != NO_GROUP && table.root_group[id.index()] == NO_GROUP {
            continue;
        }

        // Compute running while a DMA engine is actively moving data pays
        // the machine's interference factor (the DMA steals HBM
        // bandwidth). The penalty applies to the portion of the span that
        // overlaps wire time, estimated first-order from the nominal
        // duration.
        let penalized = |start: f64, seconds: f64, dma_free: &[f64; 2]| -> f64 {
            let overlap = dma_free
                .iter()
                .map(|&busy_until| (busy_until.min(start + seconds) - start).max(0.0))
                .fold(0.0f64, f64::max);
            start + seconds + machine.dma_interference() * overlap
        };

        let gi = table.root_group[id.index()];
        if gi != NO_GROUP {
            // Execute the whole fusion group as one kernel.
            let group = &table.groups[gi as usize];
            let mut operands_ready = 0.0f64;
            for &op in &group.external_operands {
                operands_ready = operands_ready.max(ready[op.index()]);
            }
            let seconds = match faults {
                Some(f) => {
                    let s = f.compute_seconds(group.seconds);
                    attribution.straggler_seconds += s - group.seconds;
                    s
                }
                None => group.seconds,
            };
            let start = t_compute.max(operands_ready);
            let end = penalized(start, seconds, &dma_free);
            t_compute = end;
            for &m in &group.members {
                ready[m.index()] = end;
            }
            if group.has_compute {
                compute_time += seconds;
            } else {
                memory_time += seconds;
            }
            total_flops += group.flops;
            timeline.spans.push(Span {
                name: format!("fusion.{}", ins.name()),
                kind: if group.has_compute { SpanKind::Compute } else { SpanKind::Memory },
                start,
                end,
            });
            continue;
        }

        let operands_ready = ins
            .operands()
            .iter()
            .map(|o| ready[o.index()])
            .fold(0.0f64, f64::max);

        match table.cost(id) {
            InstrCost::Free => {
                ready[id.index()] = operands_ready;
            }
            InstrCost::Compute { seconds, flops } => {
                let seconds = match faults {
                    Some(f) => {
                        let s = f.compute_seconds(seconds);
                        attribution.straggler_seconds += s - seconds;
                        s
                    }
                    None => seconds,
                };
                let start = t_compute.max(operands_ready);
                let end = penalized(start, seconds, &dma_free);
                t_compute = end;
                ready[id.index()] = end;
                compute_time += seconds;
                total_flops += flops;
                timeline.spans.push(Span {
                    name: ins.name().to_string(),
                    kind: SpanKind::Compute,
                    start,
                    end,
                });
            }
            InstrCost::Memory { seconds } => {
                let seconds = match faults {
                    Some(f) => {
                        let s = f.compute_seconds(seconds);
                        attribution.straggler_seconds += s - seconds;
                        s
                    }
                    None => seconds,
                };
                let start = t_compute.max(operands_ready);
                let end = penalized(start, seconds, &dma_free);
                t_compute = end;
                ready[id.index()] = end;
                memory_time += seconds;
                timeline.spans.push(Span {
                    name: ins.name().to_string(),
                    kind: SpanKind::Memory,
                    start,
                    end,
                });
            }
            InstrCost::SyncCollective { seconds } => {
                // Blocks the compute stream and takes link priority:
                // subsequent asynchronous transfers queue behind it, but it
                // does not wait for transfers already in flight (link
                // sharing between the two is modeled as free, which is
                // mildly optimistic; the schedulers place blocking
                // collectives in link-idle gaps anyway).
                let seconds = match faults {
                    Some(f) => {
                        let s = f.collective_seconds(seconds);
                        attribution.link_seconds += s - seconds;
                        s
                    }
                    None => seconds,
                };
                let start = t_compute.max(operands_ready);
                let end = start + seconds;
                t_compute = end;
                dma_free = [dma_free[0].max(end), dma_free[1].max(end)];
                ready[id.index()] = end;
                sync_comm_time += seconds;
                timeline.spans.push(Span {
                    name: ins.name().to_string(),
                    kind: SpanKind::SyncCollective,
                    start,
                    end,
                });
            }
            InstrCost::AsyncStart(transfer) => {
                let lane = match transfer.direction {
                    Direction::Forward => 0,
                    Direction::Backward => 1,
                };
                // Under faults the transfer is re-routed at execution
                // time: derated/dead links stretch (or detour) the wire
                // time and DMA stalls delay the issue with bounded
                // retry/backoff. With no active fault category the
                // pristine table value comes back untouched.
                let (wire_seconds, stall_extra) = match faults {
                    Some(f) => {
                        let o = f.transfer(module, id, transfer.seconds, rep)?;
                        attribution.link_seconds += o.link_extra;
                        attribution.stall_seconds += o.stall_extra;
                        attribution.stall_retries += o.retries;
                        (o.seconds, o.stall_extra)
                    }
                    None => (transfer.seconds, 0.0),
                };
                let issue = t_compute.max(operands_ready);
                let begin = issue.max(dma_free[lane]);
                let wire_begin = begin + stall_extra;
                let end = wire_begin + wire_seconds;
                dma_free[lane] = end;
                scratch.transfer_end[id.index()] = end;
                scratch.transfer_dur[id.index()] = stall_extra + wire_seconds;
                if inflight >= machine.max_inflight_async() {
                    // No synchronization flag available: the transfer
                    // degrades to blocking (footnote 11 of the paper says
                    // the scheduler keeps this rare).
                    t_compute = t_compute.max(end);
                } else {
                    inflight += 1;
                }
                ready[id.index()] = issue;
                if stall_extra > 0.0 {
                    // The retry/backoff window occupies the lane before
                    // the wire moves — an extra event in the timeline.
                    timeline.spans.push(Span {
                        name: format!("{}.dma_stall", ins.name()),
                        kind: SpanKind::Stall,
                        start: begin,
                        end: wire_begin,
                    });
                }
                timeline.spans.push(Span {
                    name: ins.name().to_string(),
                    kind: match transfer.direction {
                        Direction::Forward => SpanKind::DmaForward,
                        Direction::Backward => SpanKind::DmaBackward,
                    },
                    start: wire_begin,
                    end,
                });
            }
            InstrCost::AsyncDone => {
                let start_id = ins.operands().first().copied().ok_or_else(|| {
                    SimError::InvalidSchedule(format!(
                        "done op {} has no start operand to wait on",
                        ins.name()
                    ))
                })?;
                let end = scratch.transfer_end[start_id.index()];
                let dur = scratch.transfer_dur[start_id.index()];
                inflight = inflight.saturating_sub(1);
                let stall = (end - t_compute.max(operands_ready)).max(0.0);
                if stall > 0.0 {
                    timeline.spans.push(Span {
                        name: ins.name().to_string(),
                        kind: SpanKind::Stall,
                        start: t_compute,
                        end: t_compute + stall,
                    });
                }
                exposed_async_time += stall;
                hidden_async_time += (dur - stall).max(0.0);
                t_compute = t_compute.max(operands_ready).max(end);
                ready[id.index()] = t_compute;
            }
        }
    }

    let makespan = t_compute.max(dma_free[0]).max(dma_free[1]);
    if faults.is_some() {
        // No-progress deadlock detector: a repetition that charged work
        // but did not advance (or drove non-finite) any stream clock can
        // never finish — corrupt costs, not a slow schedule.
        let charged = compute_time
            + memory_time
            + sync_comm_time
            + exposed_async_time
            + hidden_async_time;
        if !makespan.is_finite() || (charged != 0.0 && makespan <= entry_clock) {
            return Err(SimError::Deadlock);
        }
        if let Some(limit) = time_limit {
            if makespan > limit {
                return Err(SimError::Timeout);
            }
        }
    }
    state.t_compute = t_compute;
    state.dma_free = dma_free;
    let mut report = Report::new(
        makespan,
        compute_time,
        memory_time,
        sync_comm_time,
        exposed_async_time,
        hidden_async_time,
        total_flops,
        timeline,
    );
    report.set_fault_attribution(attribution);
    Ok(report)
}

fn validate_order(module: &Module, order: &[InstrId]) -> Result<(), SimError> {
    if order.len() != module.len() {
        return Err(SimError::InvalidSchedule(format!(
            "order has {} entries for {} instructions",
            order.len(),
            module.len()
        )));
    }
    let mut position = vec![usize::MAX; module.len()];
    for (pos, &id) in order.iter().enumerate() {
        if id.index() >= module.len() {
            return Err(SimError::InvalidSchedule(format!("unknown id {id}")));
        }
        if position[id.index()] != usize::MAX {
            return Err(SimError::InvalidSchedule(format!(
                "{} scheduled twice",
                module.instr(id).name()
            )));
        }
        position[id.index()] = pos;
    }
    for &id in order {
        for &op in module.instr(id).operands() {
            if position[op.index()] > position[id.index()] {
                return Err(SimError::InvalidSchedule(format!(
                    "{} scheduled before its operand {}",
                    module.instr(id).name(),
                    module.instr(op).name()
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use overlap_hlo::{Builder, DType, DotDims, FusionGroup, ReplicaGroups, Shape};

    use super::*;

    fn f32s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    fn machine(n: usize) -> Machine {
        Machine::tpu_v4_like(n)
    }

    #[test]
    fn baseline_ag_einsum_serializes() {
        let n = 4;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[256, 1024]), "x");
        let w = b.parameter(f32s(&[256, 1024]), "w");
        let wg = b.all_gather(w, 0, ReplicaGroups::full(n), "wg");
        let y = b.einsum(x, wg, DotDims::new(vec![], vec![(1, 0)]).unwrap(), "y");
        let m = b.build(vec![y]);
        let r = simulate(&m, &machine(n)).unwrap();
        // Makespan ≈ collective + einsum (serialized).
        assert!(r.sync_comm_time() > 0.0);
        assert!(r.compute_time() > 0.0);
        assert!(r.makespan() >= r.sync_comm_time() + r.compute_time() - 1e-12);
        assert!(r.comm_fraction() > 0.0);
    }

    #[test]
    fn zero_repetitions_is_a_dedicated_error() {
        let n = 2;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[64, 64]), "x");
        let w = b.parameter(f32s(&[64, 64]), "w");
        let y = b.einsum(x, w, DotDims::matmul(), "y");
        let m = b.build(vec![y]);
        let machine = machine(n);
        let order = m.arena_order();
        let table = CostTable::new(&m, &machine).unwrap();
        // Matchable variant, not a stringly InvalidSchedule.
        assert_eq!(
            simulate_order_repeated_with(&table, &m, &machine, &order, 0),
            Err(SimError::ZeroRepetitions)
        );
        assert_eq!(
            simulate_order_repeated(&m, &machine, &order, 0),
            Err(SimError::ZeroRepetitions)
        );
        // And one repetition still simulates.
        assert!(simulate_order_repeated(&m, &machine, &order, 1).is_ok());
    }

    #[test]
    fn async_transfer_overlaps_independent_compute() {
        let n = 2;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[1024, 1024]), "x");
        let w = b.parameter(f32s(&[1024, 1024]), "w");
        let small = b.parameter(f32s(&[64]), "small");
        let s = b.collective_permute_start(small, vec![(0, 1), (1, 0)], "s");
        let y = b.einsum(x, w, DotDims::matmul(), "y"); // independent big compute
        let d = b.collective_permute_done(s, "d");
        let m = b.build(vec![y, d]);
        let r = simulate(&m, &machine(n)).unwrap();
        // The tiny transfer hides entirely behind the big einsum.
        assert_eq!(r.exposed_async_time(), 0.0);
        assert!(r.hidden_async_time() > 0.0);
    }

    #[test]
    fn dependent_done_exposes_transfer() {
        let n = 2;
        let mut b = Builder::new("m", n);
        let big = b.parameter(f32s(&[4096, 4096]), "big");
        let s = b.collective_permute_start(big, vec![(0, 1), (1, 0)], "s");
        let d = b.collective_permute_done(s, "d");
        let c = b.copy(d, "c");
        let m = b.build(vec![c]);
        let r = simulate(&m, &machine(n)).unwrap();
        // Nothing to overlap with: the transfer is fully exposed.
        assert!(r.exposed_async_time() > 0.0);
        assert!(r.hidden_async_time() < 1e-12);
    }

    #[test]
    fn opposite_directions_run_concurrently() {
        let n = 4;
        let ring = Machine::with_mesh(overlap_mesh::DeviceMesh::ring(n));
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[1 << 20]), "x");
        let fwd_pairs = vec![(0, 1), (1, 2), (2, 3), (3, 0)];
        let bwd_pairs = vec![(0, 3), (1, 0), (2, 1), (3, 2)];
        let s1 = b.collective_permute_start(x, fwd_pairs.clone(), "s1");
        let s2 = b.collective_permute_start(x, bwd_pairs, "s2");
        let d1 = b.collective_permute_done(s1, "d1");
        let d2 = b.collective_permute_done(s2, "d2");
        let m = b.build(vec![d1, d2]);
        let r = simulate(&m, &ring).unwrap();

        // Same two transfers, same direction: they serialize on one lane.
        let mut b2 = Builder::new("m2", n);
        let x2 = b2.parameter(f32s(&[1 << 20]), "x");
        let s1 = b2.collective_permute_start(x2, fwd_pairs.clone(), "s1");
        let s2 = b2.collective_permute_start(x2, fwd_pairs, "s2");
        let d1 = b2.collective_permute_done(s1, "d1");
        let d2 = b2.collective_permute_done(s2, "d2");
        let m2 = b2.build(vec![d1, d2]);
        let r2 = simulate(&m2, &ring).unwrap();
        assert!(r.makespan() < r2.makespan());
    }

    #[test]
    fn fusion_group_hides_elementwise_cost() {
        let n = 1;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[512, 512]), "x");
        let w = b.parameter(f32s(&[512, 512]), "w");
        let acc = b.parameter(f32s(&[512, 512]), "acc");
        let y = b.einsum(x, w, DotDims::matmul(), "y");
        let z = b.add(y, acc, "z");
        let m = b.build(vec![z]);
        let unfused = simulate(&m, &machine(n)).unwrap();
        let fused_module = m
            .with_fusion_groups(vec![FusionGroup { members: vec![y, z], root: z }])
            .unwrap();
        let fused = simulate(&fused_module, &machine(n)).unwrap();
        assert!(fused.makespan() < unfused.makespan());
    }

    #[test]
    fn order_validation_rejects_bad_orders() {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[4]), "x");
        let c = b.copy(x, "c");
        let m = b.build(vec![c]);
        let mach = machine(1);
        // Reversed (use before def).
        assert!(simulate_order(&m, &mach, &[c, x]).is_err());
        // Duplicate.
        assert!(simulate_order(&m, &mach, &[x, x]).is_err());
        // Incomplete.
        assert!(simulate_order(&m, &mach, &[x]).is_err());
        // Valid.
        assert!(simulate_order(&m, &mach, &[x, c]).is_ok());
    }

    #[test]
    fn inflight_budget_degrades_to_blocking() {
        let n = 2;
        let mach = machine(n).with_max_inflight_async(1);
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[1 << 18]), "x");
        let pairs = vec![(0u32, 1u32), (1, 0)];
        let s1 = b.collective_permute_start(x, pairs.clone(), "s1");
        let s2 = b.collective_permute_start(x, pairs.clone(), "s2");
        let s3 = b.collective_permute_start(x, pairs, "s3");
        let big = b.parameter(f32s(&[2048, 2048]), "big");
        let w = b.parameter(f32s(&[2048, 2048]), "w");
        let y = b.einsum(big, w, DotDims::matmul(), "y");
        let d1 = b.collective_permute_done(s1, "d1");
        let d2 = b.collective_permute_done(s2, "d2");
        let d3 = b.collective_permute_done(s3, "d3");
        let m = b.build(vec![y, d1, d2, d3]);
        let constrained = simulate(&m, &mach).unwrap();
        let unconstrained = simulate(&m, &machine(n)).unwrap();
        assert!(constrained.makespan() >= unconstrained.makespan());
    }

    #[test]
    fn repeated_simulation_carries_state() {
        // A module whose schedule ends with an in-flight transfer hidden
        // by nothing: chaining repetitions lets the tail transfer hide
        // under the next repetition's compute.
        let n = 2;
        let machine = Machine::tpu_v4_like(n);
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[2048, 2048]), "x");
        let w = b.parameter(f32s(&[2048, 2048]), "w");
        let y = b.einsum(x, w, DotDims::matmul(), "y");
        let s = b.collective_permute_start(x, vec![(0, 1), (1, 0)], "s");
        let d = b.collective_permute_done(s, "d");
        let m = b.build(vec![y, d]);
        // Order: compute first, transfer at the tail (exposed in a single
        // run, hidden when repetitions chain).
        let order = vec![x, w, y, s, d];
        let single = simulate_order(&m, &machine, &order).unwrap();
        let five = simulate_order_repeated(&m, &machine, &order, 5).unwrap();
        assert_eq!(
            simulate_order_repeated(&m, &machine, &order, 1).unwrap().makespan(),
            single.makespan()
        );
        assert!(five.makespan() <= 5.0 * single.makespan() + 1e-12);
        assert_eq!(five.total_flops(), 5 * single.total_flops());
    }

    #[test]
    fn table_reuse_matches_fresh_simulation() {
        let n = 4;
        let machine = Machine::tpu_v4_like(n);
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[512, 1024]), "x");
        let w = b.parameter(f32s(&[256, 1024]), "w");
        let wg = b.all_gather(w, 0, ReplicaGroups::full(n), "wg");
        let y = b.einsum(x, wg, DotDims::new(vec![], vec![(1, 0)]).unwrap(), "y");
        let s = b.collective_permute_start(x, vec![(0, 1), (1, 2), (2, 3), (3, 0)], "s");
        let d = b.collective_permute_done(s, "d");
        let m = b.build(vec![y, d]);
        let order = m.arena_order();
        let table = CostTable::new(&m, &machine).unwrap();
        let fresh = simulate_order(&m, &machine, &order).unwrap();
        let cached = simulate_order_with(&table, &m, &machine, &order).unwrap();
        assert_eq!(fresh, cached);
        let fresh5 = simulate_order_repeated(&m, &machine, &order, 5).unwrap();
        let cached5 =
            simulate_order_repeated_with(&table, &m, &machine, &order, 5).unwrap();
        assert_eq!(fresh5, cached5);
    }

    #[test]
    fn mismatched_table_is_rejected() {
        let machine = Machine::tpu_v4_like(1);
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[4]), "x");
        let c = b.copy(x, "c");
        let m = b.build(vec![c]);
        let mut b2 = Builder::new("m2", 1);
        let x2 = b2.parameter(f32s(&[4]), "x2");
        let m2 = b2.build(vec![x2]);
        let table = CostTable::new(&m2, &machine).unwrap();
        assert!(simulate_order_with(&table, &m, &machine, &[x, c]).is_err());
    }

    #[test]
    fn sync_collective_duration_matches_analytic_cost() {
        // The simulator must charge exactly the closed-form ring time the
        // §5.5 gate uses — otherwise gate decisions and measurements
        // would diverge.
        let n = 8;
        let machine = Machine::with_mesh(overlap_mesh::DeviceMesh::ring(n));
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[1024, 512]), "x");
        let g = b.all_gather(x, 0, ReplicaGroups::full(n), "g");
        let m = b.build(vec![g]);
        let r = simulate(&m, &machine).unwrap();
        let expect = overlap_mesh::cost::all_gather_time(
            &machine,
            n,
            m.shape_of(g).byte_size(),
        );
        let span = r
            .timeline()
            .spans
            .iter()
            .find(|s| s.name == "g")
            .expect("collective span recorded");
        assert!((span.duration() - expect).abs() < 1e-15);
        assert!((r.sync_comm_time() - expect).abs() < 1e-15);
    }

    #[test]
    fn makespan_bounds() {
        // Makespan is at least the larger of total compute and the sum of
        // same-lane transfers, and at most their sum.
        let n = 2;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[512, 512]), "x");
        let w = b.parameter(f32s(&[512, 512]), "w");
        let s = b.collective_permute_start(x, vec![(0, 1), (1, 0)], "s");
        let y = b.einsum(x, w, DotDims::matmul(), "y");
        let d = b.collective_permute_done(s, "d");
        let z = b.add(d, y, "z");
        let m = b.build(vec![z]);
        let r = simulate(&m, &machine(n)).unwrap();
        let busy = r.compute_time() + r.memory_time();
        assert!(r.makespan() + 1e-15 >= busy);
        assert!(r.makespan() <= busy + r.comm_time() + r.hidden_async_time() + 1e-12);
    }

    #[test]
    fn default_fault_spec_is_bit_identical_to_pristine() {
        let n = 4;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[256, 1024]), "x");
        let w = b.parameter(f32s(&[256, 1024]), "w");
        let wg = b.all_gather(w, 0, ReplicaGroups::full(n), "wg");
        let s = b.collective_permute_start(x, vec![(0, 1), (1, 2), (2, 3), (3, 0)], "s");
        let y = b.einsum(x, wg, DotDims::new(vec![], vec![(1, 0)]).unwrap(), "y");
        let d = b.collective_permute_done(s, "d");
        let z = b.add(d, y, "z");
        let m = b.build(vec![z]);
        let machine = machine(n);
        let order = m.arena_order();
        let pristine = simulate_order(&m, &machine, &order).unwrap();
        let faulted =
            simulate_order_faulted(&m, &machine, &order, &FaultSpec::default()).unwrap();
        // Bit-identical, including the timeline and zero attribution.
        assert_eq!(pristine, faulted);
        assert!(faulted.fault_attribution().is_zero());
        let rp = simulate_order_repeated(&m, &machine, &order, 3).unwrap();
        let rf =
            simulate_order_repeated_faulted(&m, &machine, &order, 3, &FaultSpec::default())
                .unwrap();
        assert_eq!(rp, rf);
    }

    #[test]
    fn straggler_charges_fault_attribution() {
        let n = 2;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[512, 512]), "x");
        let w = b.parameter(f32s(&[512, 512]), "w");
        let y = b.einsum(x, w, DotDims::matmul(), "y");
        let m = b.build(vec![y]);
        let machine = machine(n);
        let order = m.arena_order();
        let pristine = simulate_order(&m, &machine, &order).unwrap();
        let spec = FaultSpec::seeded(7).with_straggler(0, 2.0);
        let slow = simulate_order_faulted(&m, &machine, &order, &spec).unwrap();
        assert!(slow.compute_time() > pristine.compute_time());
        let att = slow.fault_attribution();
        let lost = slow.compute_time() - pristine.compute_time();
        assert!((att.straggler_seconds - lost).abs() < 1e-15);
        assert_eq!(att.stall_retries, 0);
    }

    #[test]
    fn tail_draws_are_independent_and_deterministic() {
        let n = 2;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[512, 512]), "x");
        let w = b.parameter(f32s(&[512, 512]), "w");
        let y = b.einsum(x, w, DotDims::matmul(), "y");
        let s = b.collective_permute_start(x, vec![(0, 1), (1, 0)], "s");
        let d = b.collective_permute_done(s, "d");
        let m = b.build(vec![y, d]);
        let machine = machine(n);
        let order = m.arena_order();
        let spec = FaultSpec::seeded(7).with_jitter(1e-4);

        assert_eq!(
            simulate_order_tail(&m, &machine, &order, &spec, 0),
            Err(SimError::ZeroRepetitions)
        );
        let draws = simulate_order_tail(&m, &machine, &order, &spec, 16).unwrap();
        assert_eq!(draws.len(), 16);
        // Deterministic: the whole sample set replays bit-identically,
        // and draw i does not depend on how many draws follow it.
        assert_eq!(draws, simulate_order_tail(&m, &machine, &order, &spec, 16).unwrap());
        assert_eq!(
            draws[..4],
            simulate_order_tail(&m, &machine, &order, &spec, 4).unwrap()[..]
        );
        // Independent fresh state per draw: draw 0 is exactly the
        // single-shot faulted run, not a continuation.
        let single = simulate_order_faulted(&m, &machine, &order, &spec).unwrap();
        assert_eq!(draws[0], single.makespan());
        // Per-hop jitter re-draws per repetition index: the samples
        // actually spread.
        assert!(draws.iter().any(|&d| d != draws[0]), "jitter draws must differ");
        let t = crate::TailSummary::from_samples(&draws);
        assert_eq!(t.draws, 16);
        assert!(t.p50 <= t.p90 && t.p90 <= t.p99 && t.p99 <= t.max);
        assert!(t.min > 0.0);
    }

    #[test]
    fn watchdog_timeout_is_typed() {
        let n = 2;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[1024, 1024]), "x");
        let w = b.parameter(f32s(&[1024, 1024]), "w");
        let y = b.einsum(x, w, DotDims::matmul(), "y");
        let m = b.build(vec![y]);
        let machine = machine(n);
        let order = m.arena_order();
        // A limit below the einsum's runtime trips the watchdog ...
        let tight = FaultSpec::seeded(1).with_time_limit(1e-12);
        assert_eq!(
            simulate_order_faulted(&m, &machine, &order, &tight),
            Err(SimError::Timeout)
        );
        // ... a generous one does not perturb the run at all.
        let loose = FaultSpec::seeded(1).with_time_limit(3600.0);
        let r = simulate_order_faulted(&m, &machine, &order, &loose).unwrap();
        assert_eq!(r, simulate_order(&m, &machine, &order).unwrap());
    }

    #[test]
    fn watchdog_detects_deadlocked_tables() {
        let n = 2;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[64]), "x");
        let c = b.copy(x, "c");
        let m = b.build(vec![c]);
        let machine = machine(n);
        let order = m.arena_order();
        let model = FaultModel::new(&machine, &FaultSpec::seeded(1)).unwrap();
        // Negative cost: time is charged but the clock never advances.
        let table = CostTable::from_raw_costs(vec![
            InstrCost::Free,
            InstrCost::Compute { seconds: -1.0, flops: 0 },
        ]);
        let mut scratch = EngineScratch::for_len(m.len());
        let got = run_engine(
            &m,
            &machine,
            &order,
            &table,
            &mut scratch,
            &mut EngineState::default(),
            Some(&model),
            0,
        );
        assert_eq!(got, Err(SimError::Deadlock));
        // Non-finite cost: the clock goes NaN, which also reads as a
        // schedule that can never finish.
        let table = CostTable::from_raw_costs(vec![
            InstrCost::Free,
            InstrCost::Compute { seconds: f64::NAN, flops: 0 },
        ]);
        let mut scratch = EngineScratch::for_len(m.len());
        let got = run_engine(
            &m,
            &machine,
            &order,
            &table,
            &mut scratch,
            &mut EngineState::default(),
            Some(&model),
            0,
        );
        assert_eq!(got, Err(SimError::Deadlock));
    }
}
