//! Simulator error type.

use std::error::Error;
use std::fmt;

use overlap_hlo::HloError;

/// Errors produced by the discrete-event simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The module failed verification.
    InvalidModule(HloError),
    /// The provided instruction order is not a complete topological order
    /// of the module.
    InvalidSchedule(String),
    /// A repeated simulation was requested with zero repetitions. A
    /// dedicated variant (not a stringly [`SimError::InvalidSchedule`])
    /// so callers that drive the simulator programmatically — the
    /// artifact cache and sweep layers — can match on it.
    ZeroRepetitions,
    /// A fault spec references devices/axes outside the mesh or carries
    /// out-of-range parameters (see `FaultSpec::validate`).
    InvalidFaultSpec(String),
    /// The watchdog detected a repetition that charged work without
    /// advancing simulated time (or drove the clock non-finite): the
    /// schedule can never finish.
    Deadlock,
    /// Simulated time exceeded the watchdog limit configured in the
    /// fault spec (`time_limit_seconds`).
    Timeout,
    /// A transfer could not be routed: the link leaving `device` along
    /// `axis` is down and so is its detour, or a DMA transfer exhausted
    /// its stall retry budget on that link.
    LinkDown {
        /// Source device of the unroutable hop.
        device: u32,
        /// Mesh axis of the unroutable hop.
        axis: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidModule(e) => write!(f, "invalid module: {e}"),
            SimError::InvalidSchedule(m) => write!(f, "invalid schedule: {m}"),
            SimError::ZeroRepetitions => {
                write!(f, "repeated simulation requires at least one repetition")
            }
            SimError::InvalidFaultSpec(m) => write!(f, "invalid fault spec: {m}"),
            SimError::Deadlock => {
                write!(f, "deadlock: simulated time stopped advancing with work remaining")
            }
            SimError::Timeout => write!(f, "simulated time exceeded the watchdog limit"),
            SimError::LinkDown { device, axis } => {
                write!(f, "link down: device {device} axis {axis} is unroutable")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::InvalidModule(e) => Some(e),
            SimError::InvalidSchedule(_)
            | SimError::ZeroRepetitions
            | SimError::InvalidFaultSpec(_)
            | SimError::Deadlock
            | SimError::Timeout
            | SimError::LinkDown { .. } => None,
        }
    }
}

impl From<HloError> for SimError {
    fn from(e: HloError) -> Self {
        SimError::InvalidModule(e)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!SimError::InvalidSchedule("x".into()).to_string().is_empty());
        assert!(!SimError::ZeroRepetitions.to_string().is_empty());
        assert!(!SimError::from(HloError::Verification("v".into()))
            .to_string()
            .is_empty());
        assert!(!SimError::InvalidFaultSpec("bad".into()).to_string().is_empty());
        assert!(!SimError::Deadlock.to_string().is_empty());
        assert!(!SimError::Timeout.to_string().is_empty());
        let down = SimError::LinkDown { device: 3, axis: 1 };
        assert!(down.to_string().contains('3'));
        // The watchdog variants are matchable values, not panics.
        assert_eq!(down, SimError::LinkDown { device: 3, axis: 1 });
    }
}
