//! Simulator error type.

use std::error::Error;
use std::fmt;

use overlap_hlo::HloError;

/// Errors produced by the discrete-event simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The module failed verification.
    InvalidModule(HloError),
    /// The provided instruction order is not a complete topological order
    /// of the module.
    InvalidSchedule(String),
    /// A repeated simulation was requested with zero repetitions. A
    /// dedicated variant (not a stringly [`SimError::InvalidSchedule`])
    /// so callers that drive the simulator programmatically — the
    /// artifact cache and sweep layers — can match on it.
    ZeroRepetitions,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidModule(e) => write!(f, "invalid module: {e}"),
            SimError::InvalidSchedule(m) => write!(f, "invalid schedule: {m}"),
            SimError::ZeroRepetitions => {
                write!(f, "repeated simulation requires at least one repetition")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::InvalidModule(e) => Some(e),
            SimError::InvalidSchedule(_) | SimError::ZeroRepetitions => None,
        }
    }
}

impl From<HloError> for SimError {
    fn from(e: HloError) -> Self {
        SimError::InvalidModule(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!SimError::InvalidSchedule("x".into()).to_string().is_empty());
        assert!(!SimError::ZeroRepetitions.to_string().is_empty());
        assert!(!SimError::from(HloError::Verification("v".into()))
            .to_string()
            .is_empty());
    }
}
