//! Precomputed per-`(module, machine)` cost tables.
//!
//! [`instruction_cost`] walks shapes, dimension numbers and the machine's
//! efficiency curve on every call. That is fine for a single simulation,
//! but the experiment drivers simulate the same module hundreds of times
//! (repeated layers, scheduler comparisons, sweeps), re-deriving the same
//! costs from scratch each time. A [`CostTable`] folds that work into one
//! pass: a dense `Vec<InstrCost>` indexed by [`InstrId`], plus dense
//! fusion-group membership and per-group aggregate costs, computed once
//! and shared by every subsequent [`simulate_order_with`] call.
//!
//! [`simulate_order_with`]: crate::simulate_order_with

use overlap_hlo::{InstrId, Module, ModuleAnalysis};
use overlap_mesh::Machine;

use crate::cost::{instruction_cost, InstrCost};
use crate::SimError;

/// Sentinel for "not a member / not a root of any fusion group".
pub(crate) const NO_GROUP: u32 = u32::MAX;

/// Aggregate cost of one fusion group, accumulated in the exact order the
/// engine previously used (overhead first, then member compute times in
/// member order) so table-driven simulations are bit-identical.
#[derive(Debug, Clone)]
pub(crate) struct GroupCost {
    /// Kernel duration: launch overhead + member compute seconds, or the
    /// root's memory time when no member computes.
    pub(crate) seconds: f64,
    /// Total einsum FLOPs of the members.
    pub(crate) flops: u64,
    /// Whether any member is compute-bound (kernel classification).
    pub(crate) has_compute: bool,
    /// The group's members, in module order.
    pub(crate) members: Vec<InstrId>,
    /// Operands of members defined outside the group (duplicates kept;
    /// readiness folds with `max` so they are harmless).
    pub(crate) external_operands: Vec<InstrId>,
}

/// Dense instruction and fusion-group costs for one `(module, machine)`
/// pair.
///
/// Construction verifies the module once and classifies every
/// instruction; the table is then immutable and cheap to share across
/// repeated simulations, schedulers and cost-model queries of the *same*
/// module on the *same* machine. Using it with a different module is
/// rejected (by length) or yields meaningless results.
#[derive(Debug, Clone)]
pub struct CostTable {
    costs: Vec<InstrCost>,
    /// Fusion group index per instruction (`NO_GROUP` if unfused).
    pub(crate) group_of: Vec<u32>,
    /// Group index per instruction if it is that group's root.
    pub(crate) root_group: Vec<u32>,
    pub(crate) groups: Vec<GroupCost>,
}

impl CostTable {
    /// Builds the table: verifies `module`, classifies every instruction
    /// via [`instruction_cost`] and aggregates fusion-group costs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidModule`] if verification fails and
    /// [`SimError::InvalidSchedule`] if a fusion group contains an op
    /// that cannot be fused (collectives, async transfers).
    pub fn new(module: &Module, machine: &Machine) -> Result<Self, SimError> {
        module.verify()?;
        Self::build_tables(module, machine)
    }

    /// Builds the table for an already-verified module, skipping the
    /// verification pass: the pipeline's incremental verifier has vouched
    /// for `analysis`'s module, recorded in its watermark.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSchedule`] if a fusion group contains
    /// an op that cannot be fused (collectives, async transfers), if
    /// `analysis` does not cover `module`, or if the analysis's verified
    /// watermark does not cover the whole module (a typed error, not a
    /// panic: a stale analysis is caller state, not engine corruption).
    pub fn with_analysis(
        module: &Module,
        analysis: &ModuleAnalysis,
        machine: &Machine,
    ) -> Result<Self, SimError> {
        if analysis.len() != module.len() {
            return Err(SimError::InvalidSchedule(format!(
                "analysis covers {} instructions but module has {}",
                analysis.len(),
                module.len()
            )));
        }
        if analysis.verified_len() != module.len() {
            return Err(SimError::InvalidSchedule(format!(
                "module verified through {} of {} instructions; cost-table \
                 construction needs full verification",
                analysis.verified_len(),
                module.len()
            )));
        }
        Self::build_tables(module, machine)
    }

    fn build_tables(module: &Module, machine: &Machine) -> Result<Self, SimError> {
        let n = module.len();
        let costs: Vec<InstrCost> = module
            .ids()
            .map(|id| instruction_cost(module, id, machine))
            .collect();

        let mut group_of = vec![NO_GROUP; n];
        let mut root_group = vec![NO_GROUP; n];
        for (gi, g) in module.fusion_groups().iter().enumerate() {
            let gi = u32::try_from(gi).map_err(|_| {
                SimError::InvalidSchedule(format!("fusion group index {gi} exceeds u32"))
            })?;
            for &m in &g.members {
                group_of[m.index()] = gi;
            }
            root_group[g.root.index()] = gi;
        }

        let mut groups = Vec::with_capacity(module.fusion_groups().len());
        for (gi, g) in module.fusion_groups().iter().enumerate() {
            // Accumulation order mirrors the engine's group execution
            // exactly: overhead first, then `+=` per compute member in
            // member order. Float addition is not associative, so the
            // order is load-bearing for bit-identical reports.
            let mut seconds = machine.op_overhead();
            let mut flops = 0u64;
            let mut has_compute = false;
            let mut external_operands = Vec::new();
            for &m in &g.members {
                match costs[m.index()] {
                    InstrCost::Compute { seconds: s, flops: fl } => {
                        seconds += s;
                        flops += fl;
                        has_compute = true;
                    }
                    InstrCost::Free | InstrCost::Memory { .. } => {}
                    other => {
                        return Err(SimError::InvalidSchedule(format!(
                            "fusion group {gi} contains non-fusible op {} ({other:?})",
                            module.instr(m).name()
                        )))
                    }
                }
                for &op in module.instr(m).operands() {
                    if group_of[op.index()] as usize != gi {
                        external_operands.push(op);
                    }
                }
            }
            if !has_compute {
                seconds += machine.memory_time(module.shape_of(g.root).byte_size());
            }
            groups.push(GroupCost { seconds, flops, has_compute, members: g.members.clone(), external_operands });
        }

        Ok(CostTable { costs, group_of, root_group, groups })
    }

    /// Number of instructions covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// Whether the module had no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// The precomputed cost of instruction `id` — identical to
    /// `instruction_cost(module, id, machine)` for the pair the table was
    /// built from.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the table's module.
    #[must_use]
    pub fn cost(&self, id: InstrId) -> InstrCost {
        self.costs[id.index()]
    }

    /// Test-only constructor injecting raw costs with no fusion groups,
    /// so the engine's watchdog paths can be exercised against corrupt
    /// tables that no legitimate build would produce.
    #[cfg(test)]
    pub(crate) fn from_raw_costs(costs: Vec<InstrCost>) -> Self {
        let n = costs.len();
        CostTable {
            costs,
            group_of: vec![NO_GROUP; n],
            root_group: vec![NO_GROUP; n],
            groups: Vec::new(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use overlap_hlo::{Builder, DType, DotDims, FusionGroup, ReplicaGroups, Shape};

    use super::*;

    fn f32s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    #[test]
    fn table_matches_instruction_cost() {
        let n = 4;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[128, 256]), "x");
        let w = b.parameter(f32s(&[64, 256]), "w");
        let wg = b.all_gather(w, 0, ReplicaGroups::full(n), "wg");
        let y = b.einsum(x, wg, DotDims::new(vec![], vec![(1, 0)]).unwrap(), "y");
        let c = b.copy(y, "c");
        let m = b.build(vec![c]);
        let machine = Machine::tpu_v4_like(n);
        let table = CostTable::new(&m, &machine).unwrap();
        assert_eq!(table.len(), m.len());
        for id in m.ids() {
            assert_eq!(table.cost(id), instruction_cost(&m, id, &machine));
        }
    }

    #[test]
    fn group_cost_matches_member_sum() {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[256, 256]), "x");
        let w = b.parameter(f32s(&[256, 256]), "w");
        let acc = b.parameter(f32s(&[256, 256]), "acc");
        let y = b.einsum(x, w, DotDims::matmul(), "y");
        let z = b.add(y, acc, "z");
        let m = b
            .build(vec![z])
            .with_fusion_groups(vec![FusionGroup { members: vec![y, z], root: z }])
            .unwrap();
        let machine = Machine::tpu_v4_like(1);
        let table = CostTable::new(&m, &machine).unwrap();
        assert_eq!(table.groups.len(), 1);
        let gc = &table.groups[0];
        assert!(gc.has_compute);
        let InstrCost::Compute { seconds, flops } = instruction_cost(&m, y, &machine) else {
            panic!("einsum is compute");
        };
        assert_eq!(gc.flops, flops);
        assert!((gc.seconds - (machine.op_overhead() + seconds)).abs() < 1e-18);
        // `acc` and the einsum inputs are external; `y` is internal.
        assert!(gc.external_operands.contains(&acc));
        assert!(gc.external_operands.contains(&x));
        assert!(!gc.external_operands.contains(&y));
    }

    #[test]
    fn non_fusible_group_rejected_at_build() {
        let n = 2;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[64, 64]), "x");
        let g = b.all_gather(x, 0, ReplicaGroups::full(n), "g");
        let c = b.copy(g, "c");
        let m = b
            .build(vec![c])
            .with_fusion_groups(vec![FusionGroup { members: vec![g, c], root: c }])
            .unwrap();
        let machine = Machine::tpu_v4_like(n);
        assert!(CostTable::new(&m, &machine).is_err());
    }
}
