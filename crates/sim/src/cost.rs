//! Per-instruction cost classification.

use overlap_hlo::{InstrId, Module, Op, Shape, WireFormat};
use overlap_mesh::{cost as ccost, Machine};

/// Bytes a collective payload occupies on the wire under `wire`.
///
/// Lossless returns the dense byte size untouched so unannotated modules
/// cost exactly what they did before precision annotations existed.
#[must_use]
pub fn wire_payload_bytes(wire: WireFormat, shape: &Shape) -> usize {
    if wire.is_lossless() {
        shape.byte_size()
    } else {
        wire.wire_bytes(shape.num_elements(), shape.dtype().size_bytes())
    }
}

/// Wire bytes plus the codec time spent (de)quantizing the payload: the
/// encode/decode passes are memory-bound sweeps over payload + wire
/// buffers on each end, priced at the machine's memory bandwidth.
fn wire_transfer(machine: &Machine, wire: WireFormat, shape: &Shape) -> (usize, f64) {
    let bytes = wire_payload_bytes(wire, shape);
    if wire.is_lossless() {
        // Not even op overhead: a lossless collective runs no codec pass.
        return (bytes, 0.0);
    }
    let codec = machine.memory_time(
        wire.codec_bytes_moved(shape.num_elements(), shape.dtype().size_bytes()),
    );
    (bytes, codec)
}

/// Direction of a ring transfer, mapped onto the two DMA streams.
///
/// `Forward` moves data toward increasing ring position (clockwise),
/// `Backward` toward decreasing. The bidirectional optimization (§5.4.2)
/// issues one transfer of each direction per iteration so both ICI link
/// directions are busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Increasing ring position.
    Forward,
    /// Decreasing ring position.
    Backward,
}

/// A classified point-to-point transfer: which DMA stream it occupies and
/// for how long.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferClass {
    /// Occupied DMA stream.
    pub direction: Direction,
    /// Transfer duration in seconds.
    pub seconds: f64,
    /// Ring hops traversed.
    pub hops: usize,
}

/// What an instruction costs and which resource it occupies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InstrCost {
    /// No modeled cost (parameters, constants, scalar index arithmetic,
    /// reshapes/bitcasts).
    Free,
    /// Compute-bound work on the compute stream.
    Compute {
        /// Duration in seconds.
        seconds: f64,
        /// Floating-point operations performed.
        flops: u64,
    },
    /// Memory-bound work on the compute stream.
    Memory {
        /// Duration in seconds.
        seconds: f64,
    },
    /// A blocking collective: occupies the compute stream and both DMA
    /// streams.
    SyncCollective {
        /// Duration in seconds.
        seconds: f64,
    },
    /// An asynchronous transfer initiation (cost carried by the DMA
    /// stream described in the [`TransferClass`]).
    AsyncStart(TransferClass),
    /// Completion marker: stalls the compute stream until the paired
    /// start's transfer has finished.
    AsyncDone,
}

/// Classifies the transfer of a collective permute with the given pairs
/// moving `bytes` per device.
///
/// Under SPMD the pairs are a uniform circular shift, so the first pair
/// determines the hop count and direction for all devices: source and
/// destination coordinates differ along mesh ring(s); the shorter way
/// around each ring is taken.
#[must_use]
pub fn permute_transfer(pairs: &[(u32, u32)], bytes: usize, machine: &Machine) -> TransferClass {
    let mesh = machine.mesh();
    let Some(&(src, dst)) = pairs.first() else {
        return TransferClass { direction: Direction::Forward, seconds: 0.0, hops: 0 };
    };
    let a = mesh.coords(src);
    let b = mesh.coords(dst);
    let mut hops = 0usize;
    let mut direction = Direction::Forward;
    for (axis, (&ca, &cb)) in a.iter().zip(&b).enumerate() {
        if ca == cb {
            continue;
        }
        let size = mesh.shape()[axis];
        let fwd = (cb + size - ca) % size;
        let bwd = (ca + size - cb) % size;
        if fwd <= bwd {
            hops += fwd;
            direction = Direction::Forward;
        } else {
            hops += bwd;
            direction = Direction::Backward;
        }
    }
    let seconds = if hops == 0 {
        machine.hop_latency()
    } else {
        // Hops pipeline through intermediate routers: one serialization of
        // the payload plus per-hop latency.
        bytes as f64 / machine.link_bandwidth() + hops as f64 * machine.hop_latency()
    };
    TransferClass { direction, seconds, hops }
}

/// The `(flops, m, n, k)` key of an einsum with the given dimension
/// numbers and operand shapes: batch and free extents fold into `m`/`n`,
/// contracting extents into `k`. [`Machine::einsum_time`] depends only on
/// this key, which makes it the memoization key for
/// [`overlap_mesh::cost::EinsumTimeMemo`].
#[must_use]
pub fn einsum_cost_key(
    dims: &overlap_hlo::DotDims,
    lhs: &overlap_hlo::Shape,
    rhs: &overlap_hlo::Shape,
) -> (u64, u64, u64, u64) {
    let flops = dims.flops(lhs, rhs);
    let batch: u64 = dims.batch().iter().map(|&(l, _)| lhs.dim(l) as u64).product();
    let m: u64 = dims
        .lhs_free_dims(lhs.rank())
        .iter()
        .map(|&d| lhs.dim(d) as u64)
        .product::<u64>()
        * batch;
    let n: u64 = dims.rhs_free_dims(rhs.rank()).iter().map(|&d| rhs.dim(d) as u64).product();
    let k: u64 = dims.contracting().iter().map(|&(l, _)| lhs.dim(l) as u64).product();
    (flops, m, n, k)
}

/// Time of an einsum with the given dimension numbers and operand
/// shapes, including the machine's efficiency curve (batch and free
/// extents fold into `m`/`n`, contracting extents into `k`) and the
/// per-kernel launch overhead. Also used by the §5.5 cost model to
/// estimate the *decomposed* partial einsums.
#[must_use]
pub fn einsum_time_for(
    dims: &overlap_hlo::DotDims,
    lhs: &overlap_hlo::Shape,
    rhs: &overlap_hlo::Shape,
    machine: &Machine,
) -> f64 {
    let (flops, m, n, k) = einsum_cost_key(dims, lhs, rhs);
    machine.einsum_time(flops, m, n, k)
}

/// Computes the cost of instruction `id` on `machine`.
///
/// Scalar and near-scalar results (index arithmetic) are free; reshapes
/// are bitcasts; elementwise/data-movement ops are memory-bound;
/// `Einsum` is compute-bound; collectives use the analytic ring costs of
/// [`overlap_mesh::cost`].
///
/// # Panics
///
/// Panics if `id` is out of range (call on verified modules).
#[must_use]
pub fn instruction_cost(module: &Module, id: InstrId, machine: &Machine) -> InstrCost {
    let ins = module.instr(id);
    let out_bytes = ins.shape().byte_size();
    let memory = |extra_operand_bytes: usize| {
        InstrCost::Memory { seconds: machine.memory_time(out_bytes + extra_operand_bytes) }
    };
    let operand_bytes =
        |i: usize| module.shape_of(ins.operands()[i]).byte_size();
    match ins.op() {
        Op::Parameter { .. }
        | Op::Constant { .. }
        | Op::ConstantTensor { .. }
        | Op::Iota { .. }
        | Op::PartitionId => InstrCost::Free,
        Op::Reshape => InstrCost::Free,
        // Scalar index arithmetic is free.
        _ if ins.shape().num_elements() <= 1 && !ins.op().is_collective() => InstrCost::Free,
        Op::Broadcast { .. }
        | Op::Transpose { .. }
        | Op::Slice { .. }
        | Op::DynamicSlice { .. }
        | Op::Pad { .. }
        | Op::Copy
        | Op::Unary(_) => memory(operand_bytes(0)),
        // In-place update (XLA aliases the input buffer): only the update
        // region is read and written, not the whole result.
        Op::DynamicUpdateSlice => InstrCost::Memory {
            seconds: machine.memory_time(2 * operand_bytes(1)),
        },
        Op::Binary(_) => memory(operand_bytes(0) + operand_bytes(1)),
        Op::Concatenate { .. } => {
            let total: usize = (0..ins.operands().len()).map(operand_bytes).sum();
            memory(total)
        }
        Op::Einsum(dims) => {
            let lhs = module.shape_of(ins.operands()[0]);
            let rhs = module.shape_of(ins.operands()[1]);
            InstrCost::Compute {
                seconds: einsum_time_for(dims, lhs, rhs, machine),
                flops: dims.flops(lhs, rhs),
            }
        }
        Op::AllGather { groups, wire, .. } => {
            let (bytes, codec) = wire_transfer(machine, *wire, ins.shape());
            InstrCost::SyncCollective {
                seconds: ccost::all_gather_time(machine, groups.group_size(), bytes) + codec,
            }
        }
        Op::ReduceScatter { groups, wire, .. } => {
            let xs = module.shape_of(ins.operands()[0]);
            let (bytes, codec) = wire_transfer(machine, *wire, xs);
            InstrCost::SyncCollective {
                seconds: ccost::reduce_scatter_time(machine, groups.group_size(), bytes) + codec,
            }
        }
        Op::AllReduce { groups, wire } => {
            let (bytes, codec) = wire_transfer(machine, *wire, ins.shape());
            InstrCost::SyncCollective {
                seconds: ccost::all_reduce_time(machine, groups.group_size(), bytes) + codec,
            }
        }
        Op::AllToAll { groups, .. } => InstrCost::SyncCollective {
            seconds: ccost::all_to_all_time(machine, groups.group_size(), operand_bytes(0)),
        },
        Op::CollectivePermute { pairs, wire } => {
            let (bytes, codec) = wire_transfer(machine, *wire, ins.shape());
            let t = permute_transfer(pairs, bytes, machine);
            InstrCost::SyncCollective { seconds: t.seconds + codec }
        }
        Op::CollectivePermuteStart { pairs, wire } => {
            let (bytes, codec) = wire_transfer(machine, *wire, ins.shape());
            let mut t = permute_transfer(pairs, bytes, machine);
            // The (de)quantization passes sit on the transfer's critical
            // path: encode before the DMA fires, decode before the done
            // retires.
            t.seconds += codec;
            InstrCost::AsyncStart(t)
        }
        Op::CollectivePermuteDone => InstrCost::AsyncDone,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use overlap_hlo::{Builder, DType, DotDims, ReplicaGroups, Shape};
    use overlap_mesh::DeviceMesh;

    use super::*;

    fn f32s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    #[test]
    fn permute_directions_on_ring() {
        let machine = Machine::with_mesh(DeviceMesh::ring(4));
        let fwd = permute_transfer(&[(0, 1), (1, 2), (2, 3), (3, 0)], 1024, &machine);
        assert_eq!(fwd.direction, Direction::Forward);
        assert_eq!(fwd.hops, 1);
        let bwd = permute_transfer(&[(0, 3), (1, 0), (2, 1), (3, 2)], 1024, &machine);
        assert_eq!(bwd.direction, Direction::Backward);
        assert_eq!(bwd.hops, 1);
    }

    #[test]
    fn permute_multi_hop() {
        let machine = Machine::with_mesh(DeviceMesh::ring(8));
        let t = permute_transfer(&[(0, 2)], 1 << 20, &machine);
        assert_eq!(t.hops, 2);
        assert_eq!(t.direction, Direction::Forward);
        let one = permute_transfer(&[(0, 1)], 1 << 20, &machine);
        // Payload serializes once; extra hops only add latency.
        assert!(t.seconds > one.seconds);
        assert!(t.seconds < 2.0 * one.seconds);
    }

    #[test]
    fn permute_on_2d_mesh_axis() {
        let machine = Machine::with_mesh(DeviceMesh::new(vec![2, 4]));
        // Shift along axis 1 within row 0: 0->1.
        let t = permute_transfer(&[(0, 1)], 1024, &machine);
        assert_eq!(t.hops, 1);
        // Shift along axis 0: 0 -> 4 (coords [0,0] -> [1,0]).
        let t2 = permute_transfer(&[(0, 4)], 1024, &machine);
        assert_eq!(t2.hops, 1);
    }

    #[test]
    fn costs_classify() {
        let n = 2;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[64, 64]), "x");
        let w = b.parameter(f32s(&[32, 64]), "w");
        let wg = b.all_gather(w, 0, ReplicaGroups::full(n), "wg");
        let y = b.einsum(x, wg, DotDims::new(vec![], vec![(1, 0)]).unwrap(), "y");
        let c = b.copy(y, "c");
        let idx = b.scalar_s32(1, "idx");
        let m = b.build(vec![c, idx]);
        let machine = Machine::tpu_v4_like(n);

        assert_eq!(instruction_cost(&m, x, &machine), InstrCost::Free);
        assert!(matches!(
            instruction_cost(&m, wg, &machine),
            InstrCost::SyncCollective { .. }
        ));
        let InstrCost::Compute { flops, .. } = instruction_cost(&m, y, &machine) else {
            panic!("einsum should be compute")
        };
        assert_eq!(flops, 2 * 64 * 64 * 64);
        assert!(matches!(instruction_cost(&m, c, &machine), InstrCost::Memory { .. }));
        assert_eq!(instruction_cost(&m, idx, &machine), InstrCost::Free);
    }

    #[test]
    fn async_start_and_done_classify() {
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[16]), "x");
        let s = b.collective_permute_start(x, vec![(0, 1), (1, 0)], "s");
        let d = b.collective_permute_done(s, "d");
        let m = b.build(vec![d]);
        let machine = Machine::tpu_v4_like(2);
        assert!(matches!(instruction_cost(&m, s, &machine), InstrCost::AsyncStart(_)));
        assert_eq!(instruction_cost(&m, d, &machine), InstrCost::AsyncDone);
    }
}
