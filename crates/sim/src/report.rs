//! Simulation reports and timeline rendering.

use overlap_json::{Json, ToJson};
use serde::{Deserialize, Serialize};

/// Which lane of the device a span occupied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// Compute-bound work (einsum, fusion) on the compute stream.
    Compute,
    /// Memory-bound work on the compute stream.
    Memory,
    /// A blocking collective on the compute stream.
    SyncCollective,
    /// An asynchronous transfer on the forward DMA stream.
    DmaForward,
    /// An asynchronous transfer on the backward DMA stream.
    DmaBackward,
    /// Compute-stream stall waiting for an asynchronous transfer.
    Stall,
}

/// One timed interval in the simulated execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Instruction (or group) name.
    pub name: String,
    /// Lane the span occupied.
    pub kind: SpanKind,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
}

impl Span {
    /// Duration in seconds.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// All spans of a simulated execution, renderable as ASCII art.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// The spans in issue order.
    pub spans: Vec<Span>,
}

impl Timeline {
    /// Renders the timeline as three ASCII lanes (`compute`, `dma+`,
    /// `dma-`) of the given character width.
    ///
    /// Compute and memory spans render as `#`, sync collectives as `%`,
    /// stalls as `.`, DMA transfers as `=`.
    #[must_use]
    pub fn render(&self, width: usize) -> String {
        let makespan = self.spans.iter().map(|s| s.end).fold(0.0, f64::max);
        if makespan <= 0.0 || width == 0 {
            return String::from("(empty timeline)");
        }
        let mut lanes = vec![vec![' '; width]; 3];
        for span in &self.spans {
            let (lane, ch) = match span.kind {
                SpanKind::Compute | SpanKind::Memory => (0, '#'),
                SpanKind::SyncCollective => (0, '%'),
                SpanKind::Stall => (0, '.'),
                SpanKind::DmaForward => (1, '='),
                SpanKind::DmaBackward => (2, '='),
            };
            let s = ((span.start / makespan) * width as f64).floor() as usize;
            let e = (((span.end / makespan) * width as f64).ceil() as usize).min(width);
            for c in &mut lanes[lane][s.min(width.saturating_sub(1))..e] {
                *c = ch;
            }
        }
        let names = ["compute", "dma+   ", "dma-   "];
        lanes
            .iter()
            .zip(names)
            .map(|(lane, name)| format!("{name} |{}|", lane.iter().collect::<String>()))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Sums stall time by instruction-name prefix (the text before the
    /// first `'.'`), which for decomposed loops groups exposure by the
    /// originating einsum — the per-loop "how much communication stayed
    /// visible" diagnostic.
    ///
    /// # Example
    ///
    /// ```
    /// use overlap_sim::{Span, SpanKind, Timeline};
    /// let t = Timeline { spans: vec![
    ///     Span { name: "qkv.cp.done".into(), kind: SpanKind::Stall, start: 0.0, end: 1.0 },
    ///     Span { name: "qkv.cp.2.done".into(), kind: SpanKind::Stall, start: 2.0, end: 3.0 },
    ///     Span { name: "mlp.cp.done".into(), kind: SpanKind::Stall, start: 4.0, end: 4.5 },
    /// ]};
    /// let summary = t.stall_summary();
    /// assert_eq!(summary, vec![
    ///     ("qkv".to_string(), 2.0),
    ///     ("mlp".to_string(), 0.5),
    /// ]);
    /// ```
    #[must_use]
    pub fn stall_summary(&self) -> Vec<(String, f64)> {
        let mut order: Vec<String> = Vec::new();
        let mut totals: std::collections::HashMap<String, f64> =
            std::collections::HashMap::new();
        for s in &self.spans {
            if s.kind != SpanKind::Stall {
                continue;
            }
            let prefix = s.name.split('.').next().unwrap_or(&s.name).to_string();
            if !totals.contains_key(&prefix) {
                order.push(prefix.clone());
            }
            *totals.entry(prefix).or_insert(0.0) += s.duration();
        }
        order
            .into_iter()
            .map(|p| {
                let t = totals[&p];
                (p, t)
            })
            .collect()
    }

    /// Exports the timeline as a Chrome-tracing / Perfetto JSON array
    /// (`chrome://tracing` or <https://ui.perfetto.dev> can open it).
    /// Each span becomes a complete event (`ph: "X"`) with microsecond
    /// timestamps; the three lanes map to thread ids 0 (compute),
    /// 1 (dma+) and 2 (dma-), stalls to thread 3.
    ///
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        let events: Vec<Json> = self
            .spans
            .iter()
            .map(|s| {
                let tid = match s.kind {
                    SpanKind::Compute | SpanKind::Memory | SpanKind::SyncCollective => 0u64,
                    SpanKind::DmaForward => 1,
                    SpanKind::DmaBackward => 2,
                    SpanKind::Stall => 3,
                };
                Json::obj()
                    .with("name", Json::from(s.name.as_str()))
                    .with("cat", Json::from(format!("{:?}", s.kind)))
                    .with("ph", Json::from("X"))
                    .with("ts", Json::from(s.start * 1e6))
                    .with("dur", Json::from((s.end - s.start) * 1e6))
                    .with("pid", Json::from(0u64))
                    .with("tid", Json::from(tid))
            })
            .collect();
        Json::Arr(events).to_string()
    }
}

impl ToJson for SpanKind {
    fn to_json(&self) -> Json {
        Json::from(format!("{self:?}"))
    }
}

impl ToJson for Span {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("name", self.name.to_json())
            .with("kind", self.kind.to_json())
            .with("start", self.start.to_json())
            .with("end", self.end.to_json())
    }
}

impl ToJson for Timeline {
    fn to_json(&self) -> Json {
        Json::obj().with("spans", self.spans.to_json())
    }
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        let v = Json::obj()
            .with("makespan", self.makespan.to_json())
            .with("compute_time", self.compute_time.to_json())
            .with("memory_time", self.memory_time.to_json())
            .with("sync_comm_time", self.sync_comm_time.to_json())
            .with("exposed_async_time", self.exposed_async_time.to_json())
            .with("hidden_async_time", self.hidden_async_time.to_json())
            .with("total_flops", self.total_flops.to_json())
            .with("timeline", self.timeline.to_json());
        // Emitted only when a fault actually charged time, so fault-free
        // reports (and every pre-existing figure artifact) keep their
        // exact byte layout.
        if self.fault.is_zero() {
            v
        } else {
            v.with("fault", self.fault.to_json())
        }
    }
}

/// Where a degraded run lost time relative to the pristine machine,
/// accumulated by the engine's fault path (all zero on fault-free runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultAttribution {
    /// Extra compute/memory time charged by straggler chips, seconds.
    pub straggler_seconds: f64,
    /// Extra wire time from derated links, detours around down links and
    /// per-hop jitter (sync collectives included), seconds.
    pub link_seconds: f64,
    /// Time spent backing off in DMA stall retries, seconds.
    pub stall_seconds: f64,
    /// Number of DMA stall retries taken.
    pub stall_retries: u64,
}

impl FaultAttribution {
    /// True when no fault charged any time (the fault-free case).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == FaultAttribution::default()
    }

    /// Total time lost to faults, seconds.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.straggler_seconds + self.link_seconds + self.stall_seconds
    }
}

impl ToJson for FaultAttribution {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("straggler_seconds", self.straggler_seconds.to_json())
            .with("link_seconds", self.link_seconds.to_json())
            .with("stall_seconds", self.stall_seconds.to_json())
            .with("stall_retries", self.stall_retries.to_json())
    }
}

/// Outcome of a simulation: the makespan, the Fig.-1-style time breakdown
/// and the FLOPS bookkeeping, plus the full [`Timeline`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    makespan: f64,
    compute_time: f64,
    memory_time: f64,
    sync_comm_time: f64,
    exposed_async_time: f64,
    hidden_async_time: f64,
    total_flops: u64,
    timeline: Timeline,
    /// Fault attribution; stays at its (all-zero) default on fault-free
    /// runs so serialized fault-free reports are unchanged.
    #[serde(default, skip_serializing_if = "FaultAttribution::is_zero")]
    fault: FaultAttribution,
}

impl Report {
    #[allow(clippy::too_many_arguments)] // internal constructor mirroring the accumulated counters
    pub(crate) fn new(
        makespan: f64,
        compute_time: f64,
        memory_time: f64,
        sync_comm_time: f64,
        exposed_async_time: f64,
        hidden_async_time: f64,
        total_flops: u64,
        timeline: Timeline,
    ) -> Self {
        Report {
            makespan,
            compute_time,
            memory_time,
            sync_comm_time,
            exposed_async_time,
            hidden_async_time,
            total_flops,
            timeline,
            fault: FaultAttribution::default(),
        }
    }

    /// Installs the fault attribution accumulated by the engine's fault
    /// path (fault-free runs leave the all-zero default in place).
    pub(crate) fn set_fault_attribution(&mut self, fault: FaultAttribution) {
        self.fault = fault;
    }

    /// Folds another report into this one (for repeated executions):
    /// counters add, makespans take the max, and `other`'s spans move to
    /// the end of this timeline without re-copying the accumulated
    /// prefix.
    pub(crate) fn absorb(&mut self, other: Report) {
        self.makespan = self.makespan.max(other.makespan);
        self.compute_time += other.compute_time;
        self.memory_time += other.memory_time;
        self.sync_comm_time += other.sync_comm_time;
        self.exposed_async_time += other.exposed_async_time;
        self.hidden_async_time += other.hidden_async_time;
        self.total_flops += other.total_flops;
        self.timeline.spans.extend(other.timeline.spans);
        self.fault.straggler_seconds += other.fault.straggler_seconds;
        self.fault.link_seconds += other.fault.link_seconds;
        self.fault.stall_seconds += other.fault.stall_seconds;
        self.fault.stall_retries += other.fault.stall_retries;
    }

    /// End-to-end simulated time, seconds.
    #[must_use]
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// Compute-stream time spent in compute-bound work.
    #[must_use]
    pub fn compute_time(&self) -> f64 {
        self.compute_time
    }

    /// Compute-stream time spent in memory-bound work.
    #[must_use]
    pub fn memory_time(&self) -> f64 {
        self.memory_time
    }

    /// Compute-stream time blocked inside synchronous collectives.
    #[must_use]
    pub fn sync_comm_time(&self) -> f64 {
        self.sync_comm_time
    }

    /// Compute-stream stall waiting on asynchronous transfers (the
    /// *exposed* communication the overlap failed to hide).
    #[must_use]
    pub fn exposed_async_time(&self) -> f64 {
        self.exposed_async_time
    }

    /// Asynchronous transfer time that ran concurrently with compute (the
    /// *hidden* communication).
    #[must_use]
    pub fn hidden_async_time(&self) -> f64 {
        self.hidden_async_time
    }

    /// Total communication time visible to the compute stream
    /// (synchronous collectives + exposed asynchronous stalls).
    #[must_use]
    pub fn comm_time(&self) -> f64 {
        self.sync_comm_time + self.exposed_async_time
    }

    /// Fraction of the makespan spent on visible communication — the
    /// Fig. 1 "communication" bar.
    #[must_use]
    pub fn comm_fraction(&self) -> f64 {
        if self.makespan == 0.0 {
            0.0
        } else {
            self.comm_time() / self.makespan
        }
    }

    /// Total einsum FLOPs executed (per device).
    #[must_use]
    pub fn total_flops(&self) -> u64 {
        self.total_flops
    }

    /// Achieved fraction of `peak_flops` (the y-axis of Figs. 12/13).
    #[must_use]
    pub fn flops_utilization(&self, peak_flops: f64) -> f64 {
        if self.makespan == 0.0 {
            0.0
        } else {
            self.total_flops as f64 / (self.makespan * peak_flops)
        }
    }

    /// The recorded execution timeline.
    #[must_use]
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Time lost to injected faults, by cause (all zero on fault-free
    /// runs).
    #[must_use]
    pub fn fault_attribution(&self) -> &FaultAttribution {
        &self.fault
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn span(kind: SpanKind, start: f64, end: f64) -> Span {
        Span { name: "s".into(), kind, start, end }
    }

    #[test]
    fn report_fractions() {
        let r = Report::new(10.0, 6.0, 1.0, 2.0, 1.0, 3.0, 1000, Timeline::default());
        assert_eq!(r.comm_time(), 3.0);
        assert!((r.comm_fraction() - 0.3).abs() < 1e-12);
        assert!((r.flops_utilization(100.0) - 1.0).abs() < 1e-12);
        assert_eq!(r.hidden_async_time(), 3.0);
    }

    #[test]
    fn zero_makespan_is_safe() {
        let r = Report::new(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, Timeline::default());
        assert_eq!(r.comm_fraction(), 0.0);
        assert_eq!(r.flops_utilization(1.0), 0.0);
    }

    #[test]
    fn timeline_renders_lanes() {
        let t = Timeline {
            spans: vec![
                span(SpanKind::Compute, 0.0, 5.0),
                span(SpanKind::DmaForward, 0.0, 4.0),
                span(SpanKind::DmaBackward, 4.0, 8.0),
                span(SpanKind::Stall, 5.0, 8.0),
            ],
        };
        let text = t.render(40);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('#'));
        assert!(lines[0].contains('.'));
        assert!(lines[1].contains('='));
        assert!(lines[2].contains('='));
    }

    #[test]
    fn empty_timeline_renders_placeholder() {
        assert_eq!(Timeline::default().render(10), "(empty timeline)");
    }

    #[test]
    fn span_duration() {
        assert_eq!(span(SpanKind::Compute, 1.0, 3.5).duration(), 2.5);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_lanes() {
        let t = Timeline {
            spans: vec![
                span(SpanKind::Compute, 0.0, 1e-3),
                span(SpanKind::DmaForward, 0.0, 2e-3),
                span(SpanKind::Stall, 1e-3, 2e-3),
            ],
        };
        let json = t.to_chrome_trace();
        let parsed = Json::parse(&json).unwrap();
        let events = parsed.as_array().unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0]["tid"].as_u64(), Some(0));
        assert_eq!(events[1]["tid"].as_u64(), Some(1));
        assert_eq!(events[2]["tid"].as_u64(), Some(3));
        assert_eq!(events[0]["ph"].as_str(), Some("X"));
        assert!((events[1]["dur"].as_f64().unwrap() - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn fault_attribution_serializes_only_when_nonzero() {
        let mut r = Report::new(10.0, 6.0, 1.0, 2.0, 1.0, 3.0, 1000, Timeline::default());
        assert!(r.fault_attribution().is_zero());
        assert!(!r.to_json().to_string().contains("fault"));
        let attr = FaultAttribution {
            straggler_seconds: 1.0,
            link_seconds: 0.5,
            stall_seconds: 0.25,
            stall_retries: 3,
        };
        r.set_fault_attribution(attr);
        assert!((r.fault_attribution().total_seconds() - 1.75).abs() < 1e-12);
        let v = r.to_json();
        assert_eq!(v["fault"]["straggler_seconds"].as_f64(), Some(1.0));
        assert_eq!(v["fault"]["stall_retries"].as_u64(), Some(3));
        // absorb() adds attribution across repetitions.
        let mut other = Report::new(1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, Timeline::default());
        other.set_fault_attribution(attr);
        r.absorb(other);
        assert_eq!(r.fault_attribution().stall_retries, 6);
        assert!((r.fault_attribution().link_seconds - 1.0).abs() < 1e-12);
    }

    #[test]
    fn report_json_carries_every_counter() {
        let r = Report::new(10.0, 6.0, 1.0, 2.0, 1.0, 3.0, 1000, Timeline::default());
        let v = r.to_json();
        assert_eq!(v["makespan"].as_f64(), Some(10.0));
        assert_eq!(v["total_flops"].as_u64(), Some(1000));
        assert!(v["timeline"]["spans"].as_array().unwrap().is_empty());
        assert!(v.to_string().contains("makespan"));
    }
}
