//! Buffer-liveness analysis of instruction orders.
//!
//! The paper's §5.2 takes care not to "dramatically change the liveness
//! of variables": the baseline order is produced by a memory-minimizing
//! scheduler, and the overlap schedulers start from it. This analysis
//! measures the peak number of live bytes an order implies, so tests and
//! reports can check that latency hiding does not explode memory.

use overlap_hlo::{InstrId, Module, Op};

/// Result of a liveness sweep over one instruction order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryProfile {
    /// Peak bytes simultaneously live.
    pub peak_bytes: usize,
    /// Bytes live at the end (outputs + anything never freed).
    pub final_bytes: usize,
    /// Position (index into the order) where the peak occurs.
    pub peak_position: usize,
}

/// Computes the peak live bytes of `order`.
///
/// A value becomes live when its defining instruction executes and dies
/// after its last user executes (module outputs never die). Parameters
/// are live from position zero. `DynamicUpdateSlice` is treated as
/// in-place (its result aliases operand 0, costing no new bytes while the
/// operand dies at the same position), matching the simulator's cost
/// model.
///
/// # Example
///
/// ```
/// use overlap_hlo::{Builder, DType, Shape};
/// use overlap_sim::memory_profile;
///
/// let mut b = Builder::new("m", 1);
/// let x = b.parameter(Shape::new(DType::F32, vec![256]), "x"); // 1 KiB
/// let a = b.neg(x, "a");
/// let c = b.neg(a, "c");
/// let m = b.build(vec![c]);
/// let profile = memory_profile(&m, &m.arena_order());
/// assert_eq!(profile.peak_bytes, 2048); // producer + consumer live
/// ```
///
/// # Panics
///
/// Panics if `order` is not a complete topological order of `module`.
#[must_use]
pub fn memory_profile(module: &Module, order: &[InstrId]) -> MemoryProfile {
    assert_eq!(order.len(), module.len(), "order must cover the module");
    let mut position = vec![usize::MAX; module.len()];
    for (pos, &id) in order.iter().enumerate() {
        position[id.index()] = pos;
    }
    // Last use position of each value.
    let mut last_use = vec![0usize; module.len()];
    for (id, ins) in module.iter() {
        for &o in ins.operands() {
            last_use[o.index()] = last_use[o.index()].max(position[id.index()]);
        }
    }
    for &o in module.outputs() {
        last_use[o.index()] = usize::MAX; // outputs never die
    }

    let mut live = 0usize;
    let mut peak = 0usize;
    let mut peak_position = 0usize;
    // Parameters are resident before execution starts.
    for (_id, ins) in module.iter() {
        if matches!(ins.op(), Op::Parameter { .. }) {
            live += ins.shape().byte_size();
        }
    }
    for (pos, &id) in order.iter().enumerate() {
        let ins = module.instr(id);
        let in_place = matches!(ins.op(), Op::DynamicUpdateSlice);
        if !matches!(ins.op(), Op::Parameter { .. }) && !in_place {
            live += ins.shape().byte_size();
        }
        if live > peak {
            peak = live;
            peak_position = pos;
        }
        // Free operands whose last use is this position (in-place updates
        // hand their buffer to the result instead of freeing it).
        for (i, &o) in ins.operands().iter().enumerate() {
            if last_use[o.index()] == pos && !(in_place && i == 0) {
                live = live.saturating_sub(module.shape_of(o).byte_size());
            }
        }
    }
    MemoryProfile { peak_bytes: peak, final_bytes: live, peak_position }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use overlap_hlo::{Builder, DType, Shape};

    use super::*;

    fn f32s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    #[test]
    fn chain_frees_intermediates() {
        // x -> a -> b -> c: peak is two values (producer + consumer).
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[256]), "x"); // 1 KiB
        let a = b.neg(x, "a");
        let c = b.neg(a, "c");
        let d = b.neg(c, "d");
        let m = b.build(vec![d]);
        let p = memory_profile(&m, &m.arena_order());
        assert_eq!(p.peak_bytes, 2 * 1024);
        assert_eq!(p.final_bytes, 1024);
        let _ = (x, a, c, d);
    }

    #[test]
    fn fan_out_keeps_value_alive() {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[256]), "x");
        let a = b.neg(x, "a");
        let c = b.neg(x, "c"); // x live until here
        let s = b.add(a, c, "s");
        let m = b.build(vec![s]);
        let p = memory_profile(&m, &m.arena_order());
        // Peak: x + a + c live together (3 KiB).
        assert_eq!(p.peak_bytes, 3 * 1024);
    }

    #[test]
    fn in_place_update_costs_nothing_extra() {
        let mut b = Builder::new("m", 1);
        let big = b.parameter(f32s(&[1024]), "big"); // 4 KiB
        let small = b.parameter(f32s(&[16]), "small"); // 64 B
        let zero = b.constant(Shape::scalar(DType::U32), 0.0, "z");
        let upd = b.dynamic_update_slice(big, small, &[zero], "upd");
        let m = b.build(vec![upd]);
        let p = memory_profile(&m, &m.arena_order());
        // Peak = parameters + the 4-byte index scalar; the DUS aliases
        // `big` and costs nothing.
        assert_eq!(p.peak_bytes, 4096 + 64 + 4);
    }

    #[test]
    fn order_changes_peak() {
        // Two independent chains: interleaving them keeps both heads live.
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[256]), "x");
        let a1 = b.neg(x, "a1");
        let a2 = b.neg(a1, "a2");
        let b1 = b.neg(x, "b1");
        let b2 = b.neg(b1, "b2");
        let s = b.add(a2, b2, "s");
        let m = b.build(vec![s]);
        let seq = memory_profile(&m, &[x, a1, a2, b1, b2, s]);
        let interleaved = memory_profile(&m, &[x, a1, b1, a2, b2, s]);
        assert!(interleaved.peak_bytes >= seq.peak_bytes);
    }
}
