//! Discrete-event performance simulator for SPMD programs.
//!
//! The paper's evaluation machinery: executes one representative device's
//! instruction sequence (SPMD programs are symmetric) against a
//! [`Machine`](overlap_mesh::Machine) model with
//!
//! * a **compute stream** that runs einsums, fusions, elementwise and
//!   data-movement ops in schedule order,
//! * two **DMA streams** (one per ICI ring direction) that carry
//!   asynchronous `CollectivePermuteStart`/`Done` transfers concurrently
//!   with compute — the §5.2 execution model,
//! * synchronous collectives (`AllGather`, `ReduceScatter`, `AllReduce`,
//!   `AllToAll`, sync `CollectivePermute`) that block the compute stream
//!   for their analytic ring time,
//! * the in-flight asynchronous-collective budget (§5.2's
//!   "synchronization flags"): a `Start` cannot issue while the budget is
//!   exhausted,
//! * fusion groups executed as single kernels (fused elementwise ops are
//!   free; this is what makes the Fig. 11 fusion decisions matter).
//!
//! The output is a [`Report`] with the makespan, per-category time
//! breakdown (the Fig. 1 series), FLOPS utilization (Figs. 12/13) and a
//! renderable [`Timeline`].

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
// The engine is driven with user-supplied modules and fault specs:
// recoverable conditions must surface as typed `SimError`s, not panics.
// Test modules opt back in locally.
#![deny(clippy::unwrap_used)]

mod cost;
mod engine;
mod error;
mod faults;
mod hist;
mod memory;
mod par;
mod report;
mod table;

pub use cost::{
    einsum_cost_key, einsum_time_for, instruction_cost, permute_transfer, Direction, InstrCost,
    TransferClass,
};
pub use engine::{
    simulate, simulate_faulted, simulate_order, simulate_order_faulted,
    simulate_order_faulted_with, simulate_order_repeated, simulate_order_repeated_faulted,
    simulate_order_repeated_faulted_with, simulate_order_repeated_with, simulate_order_tail,
    simulate_order_tail_with, simulate_order_with,
};
pub use error::SimError;
pub use faults::FaultModel;
pub use hist::{quantile_rank, Histogram, HistogramSummary, TailSummary};
pub use memory::{memory_profile, MemoryProfile};
pub use par::{par_map, sweep_threads};
pub use report::{FaultAttribution, Report, Span, SpanKind, Timeline};
pub use table::CostTable;
