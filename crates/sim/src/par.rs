//! Deterministic parallel map driver.
//!
//! Lives in `overlap-sim` (rather than the bench harness it started in)
//! so the compiler passes themselves can fan work across cores — the
//! §5.5 cost gate evaluates every candidate pattern independently — while
//! the experiment sweeps keep using the same driver through the
//! `overlap-bench` re-export.

/// Number of worker threads for [`par_map`]: `RAYON_NUM_THREADS` if set
/// to a positive integer (one knob for both the rayon and the
/// std-thread execution paths), otherwise the machine's available
/// parallelism.
#[must_use]
pub fn sweep_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Applies `f` to every item across worker threads and returns the
/// results **in input order**, regardless of which thread finished when —
/// callers produce byte-identical output serial or parallel.
///
/// With the `parallel` feature the map runs on rayon's global pool;
/// otherwise a built-in scoped-thread pool with an atomic work-stealing
/// index is used. Both honor `RAYON_NUM_THREADS` (see [`sweep_threads`]).
pub fn par_map<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    #[cfg(feature = "parallel")]
    {
        use rayon::prelude::*;
        items.par_iter().map(|item| f(item)).collect()
    }
    #[cfg(not(feature = "parallel"))]
    {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::mpsc;

        let n = items.len();
        let threads = sweep_threads().min(n);
        if threads <= 1 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = f(&items[i]);
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            // Results land in their input slot as they arrive, which
            // erases completion-order nondeterminism.
            for (i, result) in rx {
                slots[i] = Some(result);
            }
        });
        slots.into_iter().map(|s| s.expect("worker computed every index")).collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = items.iter().map(|&i| i * 2 + 1).collect();
        assert_eq!(par_map(&items, |&i| i * 2 + 1), expected);
    }

    #[test]
    fn par_map_handles_empty_and_singleton() {
        let empty: [u32; 0] = [];
        assert!(par_map(&empty, |&i| i).is_empty());
        assert_eq!(par_map(&[7u32], |&i| i + 1), vec![8]);
    }

    #[test]
    fn sweep_threads_is_positive() {
        assert!(sweep_threads() >= 1);
    }
}
