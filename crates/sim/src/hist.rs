//! Shared latency/makespan percentile machinery.
//!
//! Two consumers, one rank rule: the serve daemon's lock-free
//! log-bucketed [`Histogram`] (constant memory, wait-free recording,
//! quantiles overstated by at most one bucket width) and the
//! distributional simulator's exact [`TailSummary`] (sorted samples —
//! the tail gates need strict percentile comparisons a 25 %-wide bucket
//! would wash out). Both resolve a quantile to the same
//! [`quantile_rank`], so a p99 reported by the server and a p99 reported
//! by `fig_tail` can never disagree about *which* sample they mean.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count; the last bucket absorbs everything beyond the range.
const BUCKETS: usize = 96;
/// Upper bound of bucket 0, in microseconds.
const BASE_MICROS: f64 = 10.0;
/// Geometric growth per bucket (96 buckets reach ≈ 5.9 hours).
const GROWTH: f64 = 1.25;

/// The 1-based rank of the sample that the `q`-quantile (0 ≤ q ≤ 1) of
/// `total` samples sits at or below: `ceil(q · total)` with a floor of
/// 1. Zero when `total` is zero.
#[must_use]
pub fn quantile_rank(q: f64, total: u64) -> u64 {
    if total == 0 {
        return 0;
    }
    ((q * total as f64).ceil() as u64).clamp(1, total)
}

/// The percentile summary a [`Histogram`] reports. Field names mirror
/// the serve protocol's wire summary so the daemon can copy it across
/// field by field.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Median, milliseconds (bucket upper bound).
    pub p50_ms: f64,
    /// 90th percentile, milliseconds.
    pub p90_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// Largest sample seen, milliseconds (exact).
    pub max_ms: f64,
}

/// A fixed-size geometric histogram of latencies in milliseconds.
///
/// Trades exactness for constant memory and wait-free recording:
/// buckets grow geometrically from 10 µs by 25 % per step, so a
/// reported quantile overstates the true one by at most that bucket
/// width. Good enough to watch a p99 move; no allocation, no lock, no
/// sample buffer that grows with load.
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    total: AtomicU64,
    /// Largest sample seen, as `f64::to_bits` (monotone for positive
    /// floats, so compare-and-swap on the bit pattern is a float max).
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            max_bits: AtomicU64::new(0),
        }
    }

    /// Records one sample (milliseconds; negatives clamp to zero).
    pub fn record(&self, ms: f64) {
        let ms = ms.max(0.0);
        self.counts[Self::bucket_of(ms * 1e3)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.max_bits.fetch_max(ms.to_bits(), Ordering::Relaxed);
    }

    fn bucket_of(micros: f64) -> usize {
        if micros <= BASE_MICROS {
            return 0;
        }
        let idx = (micros / BASE_MICROS).log(GROWTH).ceil();
        if idx >= BUCKETS as f64 { BUCKETS - 1 } else { idx as usize }
    }

    /// Upper bound of bucket `i`, in milliseconds.
    fn upper_ms(i: usize) -> f64 {
        BASE_MICROS * GROWTH.powi(i as i32) / 1e3
    }

    /// Samples recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) as the matching bucket's upper
    /// bound, 0 when empty. Overstates by at most one bucket width.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = quantile_rank(q, total);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::upper_ms(i);
            }
        }
        Self::upper_ms(BUCKETS - 1)
    }

    /// A snapshot of the per-bucket counts, trailing zero buckets
    /// trimmed (an empty histogram yields an empty vector). The indices
    /// line up with [`Histogram::merge_buckets`], so a snapshot taken
    /// on one node can be folded into an aggregate on another — that is
    /// how the serve fleet merges per-daemon latency histograms without
    /// shipping raw samples.
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        let mut counts: Vec<u64> =
            self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        while counts.last() == Some(&0) {
            counts.pop();
        }
        counts
    }

    /// Largest sample seen, in milliseconds (0 when empty).
    #[must_use]
    pub fn max_ms(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// Folds another histogram's [`Histogram::bucket_counts`] snapshot
    /// (and its exact max) into this one. Buckets beyond this
    /// histogram's range collapse into the last bucket, mirroring how
    /// `record` clamps oversized samples; short snapshots (trimmed
    /// trailing zeros) are fine.
    pub fn merge_buckets(&self, counts: &[u64], max_ms: f64) {
        let mut added = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            self.counts[i.min(BUCKETS - 1)].fetch_add(c, Ordering::Relaxed);
            added += c;
        }
        if added > 0 {
            self.total.fetch_add(added, Ordering::Relaxed);
            self.max_bits.fetch_max(max_ms.max(0.0).to_bits(), Ordering::Relaxed);
        }
    }

    /// The p50/p90/p99/max summary.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            p50_ms: self.quantile(0.50),
            p90_ms: self.quantile(0.90),
            p99_ms: self.quantile(0.99),
            max_ms: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Exact percentile summary of a set of simulated makespan draws
/// (seconds). Unlike [`Histogram`] this sorts the full sample set, so
/// it is only for offline use (figure sweeps, gates) where the strict
/// comparisons — "window 2's p99 must beat window 1's" — need exact
/// sample values, not bucket upper bounds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TailSummary {
    /// Number of draws summarized.
    pub draws: usize,
    /// Median draw.
    pub p50: f64,
    /// 90th-percentile draw.
    pub p90: f64,
    /// 99th-percentile draw.
    pub p99: f64,
    /// Mean over all draws.
    pub mean: f64,
    /// Fastest draw.
    pub min: f64,
    /// Slowest draw.
    pub max: f64,
}

impl TailSummary {
    /// Summarizes `samples` (not required to be sorted; empty input
    /// yields the all-zero summary). Percentiles are exact order
    /// statistics at [`quantile_rank`].
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return TailSummary::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
        let n = sorted.len();
        let at = |q: f64| sorted[(quantile_rank(q, n as u64) as usize) - 1];
        TailSummary {
            draws: n,
            p50: at(0.50),
            p90: at(0.90),
            p99: at(0.99),
            mean: sorted.iter().sum::<f64>() / n as f64,
            min: sorted[0],
            max: sorted[n - 1],
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.max_ms, 0.0);
    }

    #[test]
    fn quantiles_bracket_samples() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(1.0); // 1 ms
        }
        h.record(1000.0); // one 1 s outlier
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50);
        assert!((1.0..=1.3).contains(&p50), "p50 {p50} should be ~1 ms");
        // p99 covers rank 99, still inside the 1 ms mass.
        assert!(h.quantile(0.99) < 2.0);
        // The max and the top quantile see the outlier.
        assert!(h.quantile(1.0) >= 1000.0);
        assert_eq!(h.summary().max_ms, 1000.0);
    }

    #[test]
    fn tiny_and_huge_samples_clamp_to_end_buckets() {
        let h = Histogram::new();
        h.record(0.0001); // under bucket 0's bound
        h.record(1e12); // far past the last bucket
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.5) <= 0.011);
        assert!(h.quantile(1.0) > 1e3);
    }

    #[test]
    fn rank_rule_is_shared() {
        assert_eq!(quantile_rank(0.5, 0), 0);
        assert_eq!(quantile_rank(0.0, 10), 1);
        assert_eq!(quantile_rank(0.5, 10), 5);
        assert_eq!(quantile_rank(0.99, 100), 99);
        assert_eq!(quantile_rank(0.99, 33), 33);
        assert_eq!(quantile_rank(1.0, 7), 7);
    }

    #[test]
    fn merged_histograms_agree_with_a_single_combined_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for ms in [0.5, 1.0, 2.0, 150.0] {
            a.record(ms);
            combined.record(ms);
        }
        for ms in [3.0, 900.0] {
            b.record(ms);
            combined.record(ms);
        }
        let merged = Histogram::new();
        merged.merge_buckets(&a.bucket_counts(), a.max_ms());
        merged.merge_buckets(&b.bucket_counts(), b.max_ms());
        assert_eq!(merged.count(), combined.count());
        assert_eq!(merged.summary(), combined.summary());
        // Empty snapshots are no-ops and don't disturb the max.
        merged.merge_buckets(&[], 1e9);
        merged.merge_buckets(&Histogram::new().bucket_counts(), 1e9);
        assert_eq!(merged.summary(), combined.summary());
    }

    #[test]
    fn oversized_merge_snapshots_clamp_to_the_last_bucket() {
        let h = Histogram::new();
        let mut counts = vec![0u64; 300];
        counts[0] = 1;
        counts[299] = 2;
        h.merge_buckets(&counts, 7200.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.summary().max_ms, 7200.0);
        assert!(h.quantile(1.0) > 1e3);
    }

    #[test]
    fn tail_summary_is_exact_order_statistics() {
        let samples: Vec<f64> = (1..=100).rev().map(|i| i as f64).collect();
        let t = TailSummary::from_samples(&samples);
        assert_eq!(t.draws, 100);
        assert_eq!(t.p50, 50.0);
        assert_eq!(t.p90, 90.0);
        assert_eq!(t.p99, 99.0);
        assert_eq!(t.min, 1.0);
        assert_eq!(t.max, 100.0);
        assert!((t.mean - 50.5).abs() < 1e-12);
        assert_eq!(TailSummary::from_samples(&[]), TailSummary::default());
    }

    #[test]
    fn histogram_and_tail_agree_on_the_rank() {
        // 33 identical 1 ms samples + no outliers: both report the same
        // sample for every quantile (the histogram up to bucket width).
        let h = Histogram::new();
        let v = vec![1.0; 33];
        for &ms in &v {
            h.record(ms);
        }
        let t = TailSummary::from_samples(&v);
        assert_eq!(t.p99, 1.0);
        assert!(h.quantile(0.99) >= 1.0 && h.quantile(0.99) <= 1.3);
    }
}
