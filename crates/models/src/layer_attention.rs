//! Transformer layer with an explicit multi-head attention core.
//!
//! [`build_layer_module`](crate::build_layer_module) folds the sequence
//! into the token dimension and omits the attention score/context
//! einsums, because their cost depends on an unpublished sequence length
//! and they carry no collectives under head sharding. This module builds
//! the *full* layer — rank-3 activations `[B, S, D]`, per-head rank-4
//! Q/K/V tensors `[B, S, H, dh]`, batched attention einsums — which
//! exercises the einsum partitioner's batch-dimension rules end to end
//! and demonstrates why the attention core is communication-free when
//! heads are sharded along the mesh's `x` axis:
//!
//! * batch `B` is sharded along `y` on every activation,
//! * heads `H` are sharded along `x` (the same axis that shards `D`),
//! * the score einsum `[B,S,H,dh] × [B,S,H,dh] → [B,H,S,S]` and the
//!   context einsum batch over `(B, H)` — both axes agree on both
//!   operands, so no collective is needed (exactly how Megatron-style
//!   systems keep attention local).

use overlap_hlo::{Builder, DType, DotDims, InstrId, Module, Shape};
use overlap_mesh::Axis;
use overlap_sharding::{partition_einsum, ShardingError, TensorSharding};

use crate::ModelConfig;

/// Builds a forward transformer layer with the explicit attention core
/// for a 2-D-partitioned configuration.
///
/// `heads` must divide the model dimension and the mesh's `x` axis size
/// must divide `heads`; `cfg.batch` (sequences) must divide the `y` axis
/// size and `cfg.seq_len` is used as the real sequence length.
///
/// # Errors
///
/// Returns [`ShardingError`] if the sizes do not divide the mesh.
pub fn build_attention_layer(cfg: &ModelConfig, heads: usize) -> Result<Module, ShardingError> {
    let mesh = cfg.mesh();
    if mesh.rank() != 2 {
        return Err(ShardingError::Invalid("attention layer needs a 2-D mesh".into()));
    }
    let (x_ax, y_ax) = (Axis(0), Axis(1));
    let d = cfg.model_dim;
    if !d.is_multiple_of(heads) {
        return Err(ShardingError::Invalid(format!(
            "model dim {d} not divisible by {heads} heads"
        )));
    }
    let dh = d / heads;
    let (bsz, s, f) = (cfg.batch, cfg.seq_len, cfg.ff_dim);

    let mut b = Builder::new(format!("{}_attention_layer", cfg.name), mesh.num_devices());
    let param = |b: &mut Builder,
                 global: &[usize],
                 sharding: &TensorSharding,
                 name: &str|
     -> Result<InstrId, ShardingError> {
        let g = Shape::new(DType::BF16, global.to_vec());
        let local = sharding.local_shape(&g, &mesh)?;
        Ok(b.parameter(local, name))
    };

    // Activations [B, S, D]: batch on y, model dim on x.
    let act3 = TensorSharding::new(vec![Some(y_ax), None, Some(x_ax)]);
    // Per-head activations [B, S, H, dh]: batch on y, heads on x.
    let act4 = TensorSharding::new(vec![Some(y_ax), None, Some(x_ax), None]);
    // Projection weights [D, H, dh]: input dim on y, heads on x.
    let w_proj = TensorSharding::new(vec![Some(y_ax), Some(x_ax), None]);
    // Output projection [H, dh, D]: heads on x, model dim on y.
    let w_out_proj = TensorSharding::new(vec![Some(x_ax), None, Some(y_ax)]);
    // MLP weights as in the folded layer.
    let w_in_s = TensorSharding::new(vec![Some(y_ax), Some(x_ax)]);
    let w_out_s = TensorSharding::new(vec![Some(x_ax), Some(y_ax)]);
    let mlp_act = TensorSharding::new(vec![Some(y_ax), None, Some(x_ax)]);

    let x0 = param(&mut b, &[bsz, s, d], &act3, "x0")?;
    let wq = param(&mut b, &[d, heads, dh], &w_proj, "wq")?;
    let wk = param(&mut b, &[d, heads, dh], &w_proj, "wk")?;
    let wv = param(&mut b, &[d, heads, dh], &w_proj, "wv")?;
    let wo = param(&mut b, &[heads, dh, d], &w_out_proj, "wo")?;
    let w_in = param(&mut b, &[d, f], &w_in_s, "w_in")?;
    let w_out = param(&mut b, &[f, d], &w_out_s, "w_out")?;

    // Q/K/V projections: contract D -> [B, S, H, dh].
    let proj_dims = DotDims::new(vec![], vec![(2, 0)]).expect("static dims");
    let project = |b: &mut Builder, w: InstrId, name: &str| {
        partition_einsum(b, &mesh, x0, &act3, w, &w_proj, &proj_dims, &act4, name)
            .map(|p| p.result)
    };
    let q = project(&mut b, wq, "proj_q")?;
    let k = project(&mut b, wk, "proj_k")?;
    let v = project(&mut b, wv, "proj_v")?;

    // Attention scores: batch (B, H), contract dh ->
    // [B, H, S_q, S_k]. Head sharding keeps this collective-free.
    let score_dims =
        DotDims::new(vec![(0, 0), (2, 2)], vec![(3, 3)]).expect("static dims");
    let scores_sharding =
        TensorSharding::new(vec![Some(y_ax), Some(x_ax), None, None]);
    let scores = partition_einsum(
        &mut b, &mesh, q, &act4, k, &act4, &score_dims, &scores_sharding, "scores",
    )?;
    assert!(
        scores.lhs_gathers.is_empty()
            && scores.rhs_gathers.is_empty()
            && scores.reduction.is_none(),
        "head-sharded attention scores must be local"
    );

    // Context: [B, H, S, S] x [B, S, H, dh] batched over (B, H),
    // contracting S_k -> [B, H, S, dh].
    let ctx_dims = DotDims::new(vec![(0, 0), (1, 2)], vec![(3, 1)]).expect("static dims");
    let ctx_sharding =
        TensorSharding::new(vec![Some(y_ax), Some(x_ax), None, None]);
    let ctx = partition_einsum(
        &mut b,
        &mesh,
        scores.result,
        &scores_sharding,
        v,
        &act4,
        &ctx_dims,
        &ctx_sharding,
        "context",
    )?;
    assert!(
        ctx.lhs_gathers.is_empty() && ctx.rhs_gathers.is_empty() && ctx.reduction.is_none(),
        "head-sharded attention context must be local"
    );

    // Output projection: contract (H, dh); both sides shard H on x ->
    // partial sums -> ReduceScatter onto D (pattern B of the folded
    // layer). ctx is [B, H, S, dh]; wo is [H, dh, D].
    let out_dims = DotDims::new(vec![], vec![(1, 0), (3, 1)]).expect("static dims");
    let attn = partition_einsum(
        &mut b,
        &mesh,
        ctx.result,
        &ctx_sharding,
        wo,
        &w_out_proj,
        &out_dims,
        // Output [B, S, D]: batch on y, D on y?? D comes from wo's free
        // dim (sharded y) and stays; batch on y conflicts -> scatter x.
        &TensorSharding::new(vec![Some(y_ax), None, Some(x_ax)]),
        "attn_out",
    )?;
    assert!(attn.reduction.is_some(), "head contraction reduce-scatters onto D");

    // MLP block on [B, S, D] activations, as in the folded layer.
    let mlp_in_dims = DotDims::new(vec![], vec![(2, 0)]).expect("static dims");
    let h = partition_einsum(
        &mut b,
        &mesh,
        attn.result,
        &mlp_act,
        w_in,
        &w_in_s,
        &mlp_in_dims,
        &mlp_act,
        "mlp_in",
    )?;
    let out = partition_einsum(
        &mut b,
        &mesh,
        h.result,
        &mlp_act,
        w_out,
        &w_out_s,
        &mlp_in_dims,
        &mlp_act,
        "mlp_out",
    )?;

    Ok(b.build(vec![out.result]))
}

#[cfg(test)]
mod tests {
    use overlap_hlo::Op;

    use super::*;
    use crate::{Arch, PartitionStrategy};

    fn cfg() -> ModelConfig {
        ModelConfig {
            name: "attn".into(),
            params: 0.0,
            layers: 1,
            model_dim: 64,
            ff_dim: 128,
            batch: 8,
            seq_len: 16,
            chips: 8,
            arch: Arch::Decoder,
            strategy: PartitionStrategy::TwoD,
        }
    }

    #[test]
    fn attention_layer_builds_and_verifies() {
        let m = build_attention_layer(&cfg(), 8).unwrap();
        m.verify().unwrap();
        // 7 einsums: 3 projections, scores, context, attn out, 2 MLP = 8.
        assert_eq!(m.count_live(|i| matches!(i.op(), Op::Einsum(_))), 8);
        // The attention core added zero collectives beyond the
        // projection/MLP patterns.
        let ag = m.count_live(|i| matches!(i.op(), Op::AllGather { .. }));
        let rs = m.count_live(|i| matches!(i.op(), Op::ReduceScatter { .. }));
        assert!(ag >= 4, "projection + MLP gathers, found {ag}");
        assert!(rs >= 2, "attention-out + MLP-out scatters, found {rs}");
    }

    #[test]
    fn attention_core_is_collective_free() {
        // Verified by the in-function asserts; building is the test.
        let m = build_attention_layer(&cfg(), 8).unwrap();
        // Output keeps the [B/N, S, D/M] layout.
        assert_eq!(m.shape_of(m.outputs()[0]).dims(), &[2, 16, 32]);
    }

    #[test]
    fn indivisible_heads_rejected() {
        assert!(build_attention_layer(&cfg(), 7).is_err());
    }

    #[test]
    fn attention_flops_exceed_folded_layer() {
        // The attention core adds real compute relative to the folded
        // projection-only layer at the same sizes.
        let folded = cfg().layer_module();
        let full = build_attention_layer(&cfg(), 8).unwrap();
        // The folded layer includes forward + backward (12 einsums); just
        // compare that the full layer's forward attention einsums exist
        // and carry nonzero flops.
        assert!(full.total_einsum_flops() > 0);
        assert!(folded.total_einsum_flops() > 0);
    }
}
