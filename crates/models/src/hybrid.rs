//! Hybrid parallelism analysis (§7.3).
//!
//! The paper argues that cheapening intra-layer communication "changes
//! the performance trade-offs between different types of parallelism".
//! This module makes that concrete: for a fixed chip budget, it sweeps
//! the split between GPipe-style pipeline stages and intra-layer (tensor)
//! parallel groups, computing the synchronous-pipeline step time
//!
//! ```text
//! step = stage_time × (microbatches + stages − 1)
//! ```
//!
//! where `stage_time` is the simulated per-layer time (baseline or
//! overlapped) times the layers per stage, and the pipeline is flushed
//! each batch (strict weight-update semantics, as §7.3 requires for
//! synchronous training).

use overlap_hlo::HloError;
use overlap_mesh::Machine;

use crate::{ModelConfig, PartitionStrategy};

/// One point of the pipeline×tensor sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridPoint {
    /// Pipeline stages.
    pub stages: usize,
    /// Chips per stage (the intra-layer model-parallel group).
    pub tensor_chips: usize,
    /// Per-microbatch stage time, seconds.
    pub stage_time: f64,
    /// Bubble fraction `(S-1)/(M+S-1)`.
    pub bubble_fraction: f64,
    /// End-to-end step time, seconds.
    pub step_time: f64,
}

/// Sweep of pipeline/tensor splits for one model at a fixed chip budget.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridSweep {
    /// Sweep points in increasing stage count.
    pub points: Vec<HybridPoint>,
}

impl HybridSweep {
    /// The point with the smallest step time.
    ///
    /// # Panics
    ///
    /// Panics if the sweep is empty.
    #[must_use]
    pub fn best(&self) -> &HybridPoint {
        self.points
            .iter()
            .min_by(|a, b| a.step_time.partial_cmp(&b.step_time).expect("finite"))
            .expect("sweep is non-empty")
    }
}

/// Evaluates the pipeline×tensor trade-off for `cfg`'s model shape with
/// `microbatches` per batch, using `layer_time` to obtain the simulated
/// per-layer time on a given tensor-parallel machine (the caller passes a
/// closure running either the baseline or the overlapped simulation).
///
/// Stage counts divide both the chip budget and the layer count; at
/// least 2 chips remain per stage so intra-layer parallelism exists.
///
/// # Errors
///
/// Propagates any error from `layer_time`.
pub fn sweep_hybrid<F>(
    cfg: &ModelConfig,
    microbatches: usize,
    mut layer_time: F,
) -> Result<HybridSweep, HloError>
where
    F: FnMut(&ModelConfig, &Machine) -> Result<f64, HloError>,
{
    assert_eq!(
        cfg.strategy,
        PartitionStrategy::TwoD,
        "hybrid sweep models the 2-D strategy"
    );
    let mut points = Vec::new();
    let mut stages = 1usize;
    while stages <= cfg.layers && cfg.chips / stages >= 4 {
        if cfg.layers.is_multiple_of(stages) && cfg.chips.is_multiple_of(stages) {
            let tensor_chips = cfg.chips / stages;
            // Each microbatch carries batch/microbatches sequences.
            let mut stage_cfg = cfg.clone();
            stage_cfg.chips = tensor_chips;
            stage_cfg.batch = (cfg.batch / microbatches).max(1);
            let machine = stage_cfg.machine();
            let per_layer = layer_time(&stage_cfg, &machine)?;
            let layers_per_stage = cfg.layers / stages;
            let stage_time = per_layer * layers_per_stage as f64;
            let m = microbatches as f64;
            let s = stages as f64;
            let step_time = stage_time * (m + s - 1.0);
            points.push(HybridPoint {
                stages,
                tensor_chips,
                stage_time,
                bubble_fraction: (s - 1.0) / (m + s - 1.0),
                step_time,
            });
        }
        stages *= 2;
    }
    Ok(HybridSweep { points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Arch;

    fn cfg() -> ModelConfig {
        ModelConfig {
            name: "hybrid_test".into(),
            params: 0.0,
            layers: 16,
            model_dim: 1024,
            ff_dim: 4096,
            batch: 256,
            seq_len: 32,
            chips: 64,
            arch: Arch::Decoder,
            strategy: PartitionStrategy::TwoD,
        }
    }

    #[test]
    fn sweep_produces_divisible_splits() {
        let sweep = sweep_hybrid(&cfg(), 8, |c, _m| Ok(c.chips as f64 * 1e-6)).unwrap();
        assert!(!sweep.points.is_empty());
        for p in &sweep.points {
            assert_eq!(p.stages * p.tensor_chips, 64);
            assert_eq!(16 % p.stages, 0);
            assert!(p.bubble_fraction < 1.0);
        }
    }

    #[test]
    fn bubbles_grow_with_stage_count() {
        let sweep = sweep_hybrid(&cfg(), 8, |_c, _m| Ok(1e-6)).unwrap();
        for w in sweep.points.windows(2) {
            assert!(w[0].bubble_fraction <= w[1].bubble_fraction);
        }
    }

    #[test]
    fn best_picks_minimum() {
        // Perfectly scaling per-layer time (t = K / chips): pipelining
        // only adds bubbles, so 1 stage wins.
        let sweep = sweep_hybrid(&cfg(), 8, |c, _m| Ok(1e-3 / c.chips as f64)).unwrap();
        assert_eq!(sweep.best().stages, 1);
        // Constant per-layer time (tensor parallelism buys nothing):
        // pipelining shrinks the per-stage work, so the deepest pipeline
        // wins despite the bubbles.
        let flat = sweep_hybrid(&cfg(), 8, |_c, _m| Ok(1e-6)).unwrap();
        assert_eq!(flat.best().stages, flat.points.last().unwrap().stages);
    }

    #[test]
    fn cheaper_tensor_comm_shifts_optimum_toward_fewer_stages() {
        // Per-layer time = compute/chips + flat communication tax. The tax
        // pushes the optimum toward more pipeline stages (narrower tensor
        // groups); removing it — what the overlap technique approximates —
        // shifts the optimum back toward fewer stages (§7.3's claim).
        let comm_heavy =
            sweep_hybrid(&cfg(), 8, |c, _m| Ok(1e-3 / c.chips as f64 + 3e-5)).unwrap();
        let comm_free = sweep_hybrid(&cfg(), 8, |c, _m| Ok(1e-3 / c.chips as f64)).unwrap();
        assert!(
            comm_heavy.best().stages > comm_free.best().stages,
            "comm-heavy best {} vs comm-free best {}",
            comm_heavy.best().stages,
            comm_free.best().stages
        );
    }
}
