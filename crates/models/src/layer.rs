//! Transformer layer graph construction.

use overlap_hlo::{Builder, DType, DotDims, InstrId, Module, Shape};
use overlap_mesh::{Axis, DeviceMesh};
use overlap_sharding::{partition_einsum, TensorSharding};

use crate::{Arch, ModelConfig, PartitionStrategy};

/// Builds the one-layer step module (forward + backward) for `cfg`.
///
/// The layer contains the four projection einsums (QKV, attention output,
/// MLP in, MLP out) forward, and for each of them the two backward
/// einsums (`dX` and `dW`); the einsum partitioner inserts the
/// `AllGather`s and `ReduceScatter`s dictated by the strategy. MoE
/// configurations add the expert-routing `AllToAll`s; T5 adds its
/// backward `AllToAll` residue.
///
/// # Panics
///
/// Panics if the hyperparameters do not divide the mesh (the published
/// configurations all do).
#[must_use]
pub fn build_layer_module(cfg: &ModelConfig) -> Module {
    let mesh = cfg.mesh();
    match cfg.strategy {
        PartitionStrategy::TwoD => build_2d(cfg, &mesh),
        PartitionStrategy::OneD => build_1d(cfg, &mesh),
    }
}

struct Ctx<'a> {
    b: Builder,
    mesh: &'a DeviceMesh,
}

impl Ctx<'_> {
    fn param(&mut self, global: &[usize], sharding: &TensorSharding, name: &str) -> InstrId {
        let g = Shape::new(DType::BF16, global.to_vec());
        let local = sharding
            .local_shape(&g, self.mesh)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        self.b.parameter(local, name)
    }

    #[allow(clippy::too_many_arguments)]
    fn einsum(
        &mut self,
        lhs: InstrId,
        ls: &TensorSharding,
        rhs: InstrId,
        rs: &TensorSharding,
        dims: DotDims,
        out: &TensorSharding,
        name: &str,
    ) -> InstrId {
        partition_einsum(&mut self.b, self.mesh, lhs, ls, rhs, rs, &dims, out, name)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .result
    }
}

/// `dX = dY · Wᵀ` dimension numbers (contract both operands' dim 1).
fn dx_dims() -> DotDims {
    DotDims::new(vec![], vec![(1, 1)]).expect("static dims")
}

/// `dW = Xᵀ · dY` dimension numbers (contract both operands' dim 0).
fn dw_dims() -> DotDims {
    DotDims::new(vec![], vec![(0, 0)]).expect("static dims")
}

/// The four projection weights of one layer (parameter ids).
struct Weights {
    w_qkv: InstrId,
    w_o: InstrId,
    w_in: InstrId,
    w_out: InstrId,
}

/// Forward activations one backward chain needs (all post-routing where
/// the architecture routes).
struct FwdActs {
    qkv: InstrId,
    attn: InstrId,
    h_pre: InstrId,
    h: InstrId,
    out: InstrId,
}

/// The 2-D sharding assignment of Fig. 3: activations `[tokens/y,
/// feature/x]`; weights alternate `[y, x]` (gather-gather einsums) and
/// `[x, y]` (gather + reduce-scatter einsums).
struct Shard2d {
    act: TensorSharding,
    w_yx: TensorSharding,
    w_xy: TensorSharding,
}

impl Shard2d {
    fn new() -> Self {
        let (x_ax, y_ax) = (Axis(0), Axis(1));
        Shard2d {
            act: TensorSharding::new(vec![Some(y_ax), Some(x_ax)]),
            w_yx: TensorSharding::new(vec![Some(y_ax), Some(x_ax)]),
            w_xy: TensorSharding::new(vec![Some(x_ax), Some(y_ax)]),
        }
    }
}

/// Forward chain of the 2-D layer, every instruction name prefixed with
/// `p` (the single-layer module passes `""`; the stacked window module
/// passes the `L<k>.` stage tag the cross-layer scheduler keys on).
fn fwd_chain_2d(
    cfg: &ModelConfig,
    cx: &mut Ctx<'_>,
    s: &Shard2d,
    p: &str,
    x0: InstrId,
    w: &Weights,
) -> FwdActs {
    let t = cfg.tokens_per_replica();
    let mm = DotDims::matmul();
    let qkv = cx.einsum(x0, &s.act, w.w_qkv, &s.w_yx, mm.clone(), &s.act, &format!("{p}fwd_qkv"));
    let attn =
        cx.einsum(qkv, &s.act, w.w_o, &s.w_xy, mm.clone(), &s.act, &format!("{p}fwd_attn_out"));
    let attn = maybe_moe_route(cfg, cx, attn, t, &format!("{p}fwd_route_in"));
    let h_pre =
        cx.einsum(attn, &s.act, w.w_in, &s.w_yx, mm.clone(), &s.act, &format!("{p}fwd_mlp_in"));
    let h = cx.b.relu(h_pre, &format!("{p}fwd_mlp_act"));
    let out = cx.einsum(h, &s.act, w.w_out, &s.w_xy, mm, &s.act, &format!("{p}fwd_mlp_out"));
    let out = maybe_moe_route(cfg, cx, out, t, &format!("{p}fwd_route_out"));
    FwdActs { qkv, attn, h_pre, h, out }
}

/// Backward chain of the 2-D layer (activation-gradient chain + weight
/// gradients). Returns `(dx0, [dw_qkv, dw_o, dw_in, dw_out])`.
// One positional arg over clippy's limit; the callers (single-layer and
// stacked builders) read naturally with the full signature.
#[allow(clippy::too_many_arguments)]
fn bwd_chain_2d(
    cfg: &ModelConfig,
    cx: &mut Ctx<'_>,
    s: &Shard2d,
    p: &str,
    x0: InstrId,
    w: &Weights,
    fwd: &FwdActs,
    d_out: InstrId,
) -> (InstrId, [InstrId; 4]) {
    let t = cfg.tokens_per_replica();
    let d_out = maybe_moe_route(cfg, cx, d_out, t, &format!("{p}bwd_route_out"));
    let dh =
        cx.einsum(d_out, &s.act, w.w_out, &s.w_xy, dx_dims(), &s.act, &format!("{p}bwd_mlp_out_dx"));
    let dh = maybe_t5_residue(cfg, cx, dh, &format!("{p}bwd_t5_residue_wide"));
    let dw_out =
        cx.einsum(fwd.h, &s.act, d_out, &s.act, dw_dims(), &s.w_xy, &format!("{p}bwd_mlp_out_dw"));
    // Backward through the activation: dh_pre = dh ∘ step(h_pre).
    let mask = cx.b.step(fwd.h_pre, &format!("{p}bwd_mlp_act_mask"));
    let dh = cx.b.mul(dh, mask, &format!("{p}bwd_mlp_act"));
    let d_attn =
        cx.einsum(dh, &s.act, w.w_in, &s.w_yx, dx_dims(), &s.act, &format!("{p}bwd_mlp_in_dx"));
    let dw_in =
        cx.einsum(fwd.attn, &s.act, dh, &s.act, dw_dims(), &s.w_yx, &format!("{p}bwd_mlp_in_dw"));
    let d_attn = maybe_moe_route(cfg, cx, d_attn, t, &format!("{p}bwd_route_in"));
    let d_attn = maybe_t5_residue(cfg, cx, d_attn, &format!("{p}bwd_t5_residue"));
    let d_qkv =
        cx.einsum(d_attn, &s.act, w.w_o, &s.w_xy, dx_dims(), &s.act, &format!("{p}bwd_attn_out_dx"));
    let dw_o = cx
        .einsum(fwd.qkv, &s.act, d_attn, &s.act, dw_dims(), &s.w_xy, &format!("{p}bwd_attn_out_dw"));
    let dx0 =
        cx.einsum(d_qkv, &s.act, w.w_qkv, &s.w_yx, dx_dims(), &s.act, &format!("{p}bwd_qkv_dx"));
    let dw_qkv =
        cx.einsum(x0, &s.act, d_qkv, &s.act, dw_dims(), &s.w_yx, &format!("{p}bwd_qkv_dw"));
    (dx0, [dw_qkv, dw_o, dw_in, dw_out])
}

fn build_2d(cfg: &ModelConfig, mesh: &DeviceMesh) -> Module {
    let t = cfg.tokens_per_replica();
    let d = cfg.model_dim;
    let d3 = 3 * d;
    let f = cfg.ff_dim;
    let s = Shard2d::new();

    let mut cx = Ctx { b: Builder::new(format!("{}_layer", cfg.name), mesh.num_devices()), mesh };

    // Parameters: layer input, output gradient, and the four weights.
    let x0 = cx.param(&[t, d], &s.act, "x0");
    let d_out = cx.param(&[t, d], &s.act, "d_out");
    let w = Weights {
        w_qkv: cx.param(&[d, d3], &s.w_yx, "w_qkv"),
        w_o: cx.param(&[d3, d], &s.w_xy, "w_o"),
        w_in: cx.param(&[d, f], &s.w_yx, "w_in"),
        w_out: cx.param(&[f, d], &s.w_xy, "w_out"),
    };

    let fwd = fwd_chain_2d(cfg, &mut cx, &s, "", x0, &w);
    let (dx0, [dw_qkv, dw_o, dw_in, dw_out]) =
        bwd_chain_2d(cfg, &mut cx, &s, "", x0, &w, &fwd, d_out);

    cx.b.build(vec![fwd.out, dx0, dw_qkv, dw_o, dw_in, dw_out])
}

/// MoE expert routing: a shape-preserving `AllToAll` over all partitions
/// on the token dimension (GLaM only).
fn maybe_moe_route(
    cfg: &ModelConfig,
    cx: &mut Ctx<'_>,
    x: InstrId,
    _tokens: usize,
    name: &str,
) -> InstrId {
    if !matches!(cfg.arch, Arch::MoE { .. }) {
        return x;
    }
    let groups = cx.mesh.full_groups();
    cx.b.all_to_all(x, 0, 0, groups, name)
}

/// T5's backward `AllToAll` residue (encoder–decoder resharding the paper
/// attributes ~10% of the step to).
fn maybe_t5_residue(cfg: &ModelConfig, cx: &mut Ctx<'_>, x: InstrId, name: &str) -> InstrId {
    if !matches!(cfg.arch, Arch::EncoderDecoder) {
        return x;
    }
    let groups = cx.mesh.full_groups();
    cx.b.all_to_all(x, 0, 0, groups, name)
}

/// The 1-D sharding assignment of Fig. 2: activations keep their batch
/// shard; weights are stored row-sharded and gathered before each einsum.
struct Shard1d {
    act: TensorSharding,
    w_row: TensorSharding,
}

impl Shard1d {
    fn new() -> Self {
        let ax = Axis(0);
        Shard1d {
            act: TensorSharding::new(vec![Some(ax), None]),
            w_row: TensorSharding::new(vec![Some(ax), None]),
        }
    }
}

/// Forward chain of the 1-D layer (see [`fwd_chain_2d`] for the prefix
/// convention).
fn fwd_chain_1d(cx: &mut Ctx<'_>, s: &Shard1d, p: &str, x0: InstrId, w: &Weights) -> FwdActs {
    let mm = DotDims::matmul();
    let qkv = cx.einsum(x0, &s.act, w.w_qkv, &s.w_row, mm.clone(), &s.act, &format!("{p}fwd_qkv"));
    let attn =
        cx.einsum(qkv, &s.act, w.w_o, &s.w_row, mm.clone(), &s.act, &format!("{p}fwd_attn_out"));
    let h_pre =
        cx.einsum(attn, &s.act, w.w_in, &s.w_row, mm.clone(), &s.act, &format!("{p}fwd_mlp_in"));
    let h = cx.b.relu(h_pre, &format!("{p}fwd_mlp_act"));
    let out = cx.einsum(h, &s.act, w.w_out, &s.w_row, mm, &s.act, &format!("{p}fwd_mlp_out"));
    FwdActs { qkv, attn, h_pre, h, out }
}

/// Backward chain of the 1-D layer: dX einsums re-gather weights; dW
/// einsums contract the batch-sharded token dimension -> ReduceScatter
/// onto the row shard. Returns `(dx0, [dw_qkv, dw_o, dw_in, dw_out])`.
fn bwd_chain_1d(
    cx: &mut Ctx<'_>,
    s: &Shard1d,
    p: &str,
    x0: InstrId,
    w: &Weights,
    fwd: &FwdActs,
    d_out: InstrId,
) -> (InstrId, [InstrId; 4]) {
    let dh = cx.einsum(
        d_out,
        &s.act,
        w.w_out,
        &s.w_row.clone(),
        dx_dims(),
        &s.act,
        &format!("{p}bwd_mlp_out_dx"),
    );
    let dw_out =
        cx.einsum(fwd.h, &s.act, d_out, &s.act, dw_dims(), &s.w_row, &format!("{p}bwd_mlp_out_dw"));
    let mask = cx.b.step(fwd.h_pre, &format!("{p}bwd_mlp_act_mask"));
    let dh = cx.b.mul(dh, mask, &format!("{p}bwd_mlp_act"));
    let d_attn =
        cx.einsum(dh, &s.act, w.w_in, &s.w_row, dx_dims(), &s.act, &format!("{p}bwd_mlp_in_dx"));
    let dw_in =
        cx.einsum(fwd.attn, &s.act, dh, &s.act, dw_dims(), &s.w_row, &format!("{p}bwd_mlp_in_dw"));
    let d_qkv =
        cx.einsum(d_attn, &s.act, w.w_o, &s.w_row, dx_dims(), &s.act, &format!("{p}bwd_attn_out_dx"));
    let dw_o = cx
        .einsum(fwd.qkv, &s.act, d_attn, &s.act, dw_dims(), &s.w_row, &format!("{p}bwd_attn_out_dw"));
    let dx0 =
        cx.einsum(d_qkv, &s.act, w.w_qkv, &s.w_row, dx_dims(), &s.act, &format!("{p}bwd_qkv_dx"));
    let dw_qkv =
        cx.einsum(x0, &s.act, d_qkv, &s.act, dw_dims(), &s.w_row, &format!("{p}bwd_qkv_dw"));
    (dx0, [dw_qkv, dw_o, dw_in, dw_out])
}

fn build_1d(cfg: &ModelConfig, mesh: &DeviceMesh) -> Module {
    let t = cfg.tokens_per_replica();
    let d = cfg.model_dim;
    let d3 = 3 * d;
    let f = cfg.ff_dim;
    let s = Shard1d::new();

    let mut cx = Ctx { b: Builder::new(format!("{}_layer", cfg.name), mesh.num_devices()), mesh };
    let x0 = cx.param(&[t, d], &s.act, "x0");
    let d_out = cx.param(&[t, d], &s.act, "d_out");
    let w = Weights {
        w_qkv: cx.param(&[d, d3], &s.w_row, "w_qkv"),
        w_o: cx.param(&[d3, d], &s.w_row, "w_o"),
        w_in: cx.param(&[d, f], &s.w_row, "w_in"),
        w_out: cx.param(&[f, d], &s.w_row, "w_out"),
    };

    let fwd = fwd_chain_1d(&mut cx, &s, "", x0, &w);
    let (dx0, [dw_qkv, dw_o, dw_in, dw_out]) =
        bwd_chain_1d(&mut cx, &s, "", x0, &w, &fwd, d_out);

    cx.b.build(vec![fwd.out, dx0, dw_qkv, dw_o, dw_in, dw_out])
}

/// Builds the `depth`-layer training-step window module for `cfg`:
/// `depth` stacked copies of the layer (forward chained bottom-up, then
/// the full backward chain top-down), with every instruction of forward
/// layer *i* name-prefixed `L<i>.` and of backward layer *i* prefixed
/// `L<2·depth−1−i>.` — `2·depth` *scheduling stages* in execution order.
/// The backward stage numbering keeps the tags monotone along dataflow
/// (the dx chain flows from stage `depth` down through layer 0's
/// backward at stage `2·depth−1`), which is what lets the cross-layer
/// windowed schedulers in `overlap-core` bound their lookahead without
/// deadlock. `depth <= 1` returns the plain (untagged) single-layer
/// module unchanged.
///
/// # Panics
///
/// Panics if the hyperparameters do not divide the mesh.
#[must_use]
pub fn build_window_module(cfg: &ModelConfig, depth: usize) -> Module {
    if depth <= 1 {
        return build_layer_module(cfg);
    }
    let mesh = cfg.mesh();
    match cfg.strategy {
        PartitionStrategy::TwoD => build_2d_stacked(cfg, &mesh, depth),
        PartitionStrategy::OneD => build_1d_stacked(cfg, &mesh, depth),
    }
}

fn build_2d_stacked(cfg: &ModelConfig, mesh: &DeviceMesh, depth: usize) -> Module {
    let t = cfg.tokens_per_replica();
    let d = cfg.model_dim;
    let d3 = 3 * d;
    let f = cfg.ff_dim;
    let s = Shard2d::new();

    let mut cx = Ctx {
        b: Builder::new(format!("{}_window{}", cfg.name, depth), mesh.num_devices()),
        mesh,
    };

    // Forward stages L0..L<depth-1>, each consuming the previous output.
    let mut x = cx.param(&[t, d], &s.act, "L0.x0");
    let mut layers: Vec<(InstrId, Weights, FwdActs)> = Vec::with_capacity(depth);
    for i in 0..depth {
        let p = format!("L{i}.");
        let w = Weights {
            w_qkv: cx.param(&[d, d3], &s.w_yx, &format!("{p}w_qkv")),
            w_o: cx.param(&[d3, d], &s.w_xy, &format!("{p}w_o")),
            w_in: cx.param(&[d, f], &s.w_yx, &format!("{p}w_in")),
            w_out: cx.param(&[f, d], &s.w_xy, &format!("{p}w_out")),
        };
        let fwd = fwd_chain_2d(cfg, &mut cx, &s, &p, x, &w);
        let next = fwd.out;
        layers.push((x, w, fwd));
        x = next;
    }

    // Backward stages L<depth>..L<2·depth-1>, top layer first.
    let mut grad = cx.param(&[t, d], &s.act, &format!("L{depth}.d_out"));
    let mut outputs = vec![x];
    let mut dws: Vec<InstrId> = Vec::with_capacity(4 * depth);
    for i in (0..depth).rev() {
        let p = format!("L{}.", 2 * depth - 1 - i);
        let (x_in, w, fwd) = &layers[i];
        let (dx, dw4) = bwd_chain_2d(cfg, &mut cx, &s, &p, *x_in, w, fwd, grad);
        grad = dx;
        dws.extend(dw4);
    }
    outputs.push(grad);
    outputs.extend(dws);
    cx.b.build(outputs)
}

fn build_1d_stacked(cfg: &ModelConfig, mesh: &DeviceMesh, depth: usize) -> Module {
    let t = cfg.tokens_per_replica();
    let d = cfg.model_dim;
    let d3 = 3 * d;
    let f = cfg.ff_dim;
    let s = Shard1d::new();

    let mut cx = Ctx {
        b: Builder::new(format!("{}_window{}", cfg.name, depth), mesh.num_devices()),
        mesh,
    };

    let mut x = cx.param(&[t, d], &s.act, "L0.x0");
    let mut layers: Vec<(InstrId, Weights, FwdActs)> = Vec::with_capacity(depth);
    for i in 0..depth {
        let p = format!("L{i}.");
        let w = Weights {
            w_qkv: cx.param(&[d, d3], &s.w_row, &format!("{p}w_qkv")),
            w_o: cx.param(&[d3, d], &s.w_row, &format!("{p}w_o")),
            w_in: cx.param(&[d, f], &s.w_row, &format!("{p}w_in")),
            w_out: cx.param(&[f, d], &s.w_row, &format!("{p}w_out")),
        };
        let fwd = fwd_chain_1d(&mut cx, &s, &p, x, &w);
        let next = fwd.out;
        layers.push((x, w, fwd));
        x = next;
    }

    let mut grad = cx.param(&[t, d], &s.act, &format!("L{depth}.d_out"));
    let mut outputs = vec![x];
    let mut dws: Vec<InstrId> = Vec::with_capacity(4 * depth);
    for i in (0..depth).rev() {
        let p = format!("L{}.", 2 * depth - 1 - i);
        let (x_in, w, fwd) = &layers[i];
        let (dx, dw4) = bwd_chain_1d(&mut cx, &s, &p, *x_in, w, fwd, grad);
        grad = dx;
        dws.extend(dw4);
    }
    outputs.push(grad);
    outputs.extend(dws);
    cx.b.build(outputs)
}

#[cfg(test)]
mod tests {
    use overlap_hlo::Op;

    use super::*;
    use crate::{table1_models, table2_models};

    fn tiny_2d() -> ModelConfig {
        ModelConfig {
            name: "tiny2d".into(),
            params: 1e9,
            layers: 2,
            model_dim: 16,
            ff_dim: 32,
            batch: 8,
            seq_len: 4,
            chips: 8,
            arch: Arch::Decoder,
            strategy: PartitionStrategy::TwoD,
        }
    }

    #[test]
    fn tiny_2d_layer_verifies() {
        let m = tiny_2d().layer_module();
        m.verify().unwrap();
        assert_eq!(m.count_live(|i| matches!(i.op(), Op::Einsum(_))), 12);
        // Forward: 2 gather-gather + 2 gather-RS einsums.
        assert!(m.count_live(|i| matches!(i.op(), Op::AllGather { .. })) >= 6);
        assert!(m.count_live(|i| matches!(i.op(), Op::ReduceScatter { .. })) >= 2);
    }

    #[test]
    fn moe_layer_has_all_to_alls() {
        let mut cfg = tiny_2d();
        cfg.arch = Arch::MoE { experts: 4 };
        let m = cfg.layer_module();
        m.verify().unwrap();
        // Routing in/out, forward and backward.
        assert_eq!(m.count_live(|i| matches!(i.op(), Op::AllToAll { .. })), 4);
    }

    #[test]
    fn t5_layer_has_backward_residue() {
        let mut cfg = tiny_2d();
        cfg.arch = Arch::EncoderDecoder;
        let m = cfg.layer_module();
        m.verify().unwrap();
        assert_eq!(m.count_live(|i| matches!(i.op(), Op::AllToAll { .. })), 2);
    }

    #[test]
    fn one_d_layer_verifies() {
        let cfg = ModelConfig {
            name: "tiny1d".into(),
            params: 1e9,
            layers: 2,
            model_dim: 16,
            ff_dim: 32,
            batch: 128,
            seq_len: 4,
            chips: 128,
            arch: Arch::Speech,
            strategy: PartitionStrategy::OneD,
        };
        let m = cfg.layer_module();
        m.verify().unwrap();
        assert_eq!(m.count_live(|i| matches!(i.op(), Op::Einsum(_))), 12);
        assert!(m.count_live(|i| matches!(i.op(), Op::ReduceScatter { .. })) >= 4);
    }

    #[test]
    fn all_published_configs_build() {
        for cfg in table1_models().into_iter().chain(table2_models()) {
            let m = cfg.layer_module();
            m.verify().unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
            assert_eq!(
                m.count_live(|i| matches!(i.op(), Op::Einsum(_))),
                12,
                "{}",
                cfg.name
            );
        }
    }

    #[test]
    fn window_depth_one_is_the_plain_layer_module() {
        for cfg in [tiny_2d(), tiny_1d()] {
            assert_eq!(
                cfg.window_module(1).fingerprint(),
                cfg.layer_module().fingerprint(),
                "{}",
                cfg.name
            );
            assert_eq!(
                cfg.window_module(0).fingerprint(),
                cfg.layer_module().fingerprint(),
                "{}",
                cfg.name
            );
        }
    }

    fn tiny_1d() -> ModelConfig {
        ModelConfig {
            name: "tiny1d".into(),
            params: 1e9,
            layers: 2,
            model_dim: 16,
            ff_dim: 32,
            batch: 128,
            seq_len: 4,
            chips: 128,
            arch: Arch::Speech,
            strategy: PartitionStrategy::OneD,
        }
    }

    #[test]
    fn stacked_window_modules_verify_with_monotone_stage_tags() {
        use overlap_hlo::LayerTags;
        for (cfg, depth) in [(tiny_2d(), 3usize), (tiny_1d(), 2)] {
            let m = cfg.window_module(depth);
            m.verify().unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
            assert_eq!(
                m.count_live(|i| matches!(i.op(), Op::Einsum(_))),
                12 * depth,
                "{}",
                cfg.name
            );
            let tags = LayerTags::of(&m);
            assert_eq!(tags.num_layers() as usize, 2 * depth, "{}", cfg.name);
            for (id, ins) in m.iter() {
                for &op in ins.operands() {
                    assert!(
                        tags.layer_of(op) <= tags.layer_of(id),
                        "{}: non-monotone edge {} -> {}",
                        cfg.name,
                        m.instr(op).name(),
                        ins.name()
                    );
                }
            }
            // The backward chain has something to hoist across stages.
            assert!(tags.cross_layer_slack(&m) > 0, "{}", cfg.name);
        }
    }

    #[test]
    fn stacked_moe_routes_every_layer() {
        let mut cfg = tiny_2d();
        cfg.arch = Arch::MoE { experts: 4 };
        let m = cfg.window_module(2);
        m.verify().unwrap();
        assert_eq!(m.count_live(|i| matches!(i.op(), Op::AllToAll { .. })), 8);
    }
}
