//! Transformer layer graph construction.

use overlap_hlo::{Builder, DType, DotDims, InstrId, Module, Shape};
use overlap_mesh::{Axis, DeviceMesh};
use overlap_sharding::{partition_einsum, TensorSharding};

use crate::{Arch, ModelConfig, PartitionStrategy};

/// Builds the one-layer step module (forward + backward) for `cfg`.
///
/// The layer contains the four projection einsums (QKV, attention output,
/// MLP in, MLP out) forward, and for each of them the two backward
/// einsums (`dX` and `dW`); the einsum partitioner inserts the
/// `AllGather`s and `ReduceScatter`s dictated by the strategy. MoE
/// configurations add the expert-routing `AllToAll`s; T5 adds its
/// backward `AllToAll` residue.
///
/// # Panics
///
/// Panics if the hyperparameters do not divide the mesh (the published
/// configurations all do).
#[must_use]
pub fn build_layer_module(cfg: &ModelConfig) -> Module {
    let mesh = cfg.mesh();
    match cfg.strategy {
        PartitionStrategy::TwoD => build_2d(cfg, &mesh),
        PartitionStrategy::OneD => build_1d(cfg, &mesh),
    }
}

struct Ctx<'a> {
    b: Builder,
    mesh: &'a DeviceMesh,
}

impl Ctx<'_> {
    fn param(&mut self, global: &[usize], sharding: &TensorSharding, name: &str) -> InstrId {
        let g = Shape::new(DType::BF16, global.to_vec());
        let local = sharding
            .local_shape(&g, self.mesh)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        self.b.parameter(local, name)
    }

    #[allow(clippy::too_many_arguments)]
    fn einsum(
        &mut self,
        lhs: InstrId,
        ls: &TensorSharding,
        rhs: InstrId,
        rs: &TensorSharding,
        dims: DotDims,
        out: &TensorSharding,
        name: &str,
    ) -> InstrId {
        partition_einsum(&mut self.b, self.mesh, lhs, ls, rhs, rs, &dims, out, name)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .result
    }
}

/// `dX = dY · Wᵀ` dimension numbers (contract both operands' dim 1).
fn dx_dims() -> DotDims {
    DotDims::new(vec![], vec![(1, 1)]).expect("static dims")
}

/// `dW = Xᵀ · dY` dimension numbers (contract both operands' dim 0).
fn dw_dims() -> DotDims {
    DotDims::new(vec![], vec![(0, 0)]).expect("static dims")
}

fn build_2d(cfg: &ModelConfig, mesh: &DeviceMesh) -> Module {
    let (x_ax, y_ax) = (Axis(0), Axis(1));
    let t = cfg.tokens_per_replica();
    let d = cfg.model_dim;
    let d3 = 3 * d;
    let f = cfg.ff_dim;

    // Shardings: activations [tokens/y, feature/x]; weights alternate
    // [y, x] (gather-gather einsums) and [x, y] (gather + reduce-scatter
    // einsums), as in Fig. 3.
    let act = TensorSharding::new(vec![Some(y_ax), Some(x_ax)]);
    let w_yx = TensorSharding::new(vec![Some(y_ax), Some(x_ax)]);
    let w_xy = TensorSharding::new(vec![Some(x_ax), Some(y_ax)]);

    let mut cx = Ctx { b: Builder::new(format!("{}_layer", cfg.name), mesh.num_devices()), mesh };

    // Parameters: layer input, output gradient, and the four weights.
    let x0 = cx.param(&[t, d], &act, "x0");
    let d_out = cx.param(&[t, d], &act, "d_out");
    let w_qkv = cx.param(&[d, d3], &w_yx, "w_qkv");
    let w_o = cx.param(&[d3, d], &w_xy, "w_o");
    let w_in = cx.param(&[d, f], &w_yx, "w_in");
    let w_out = cx.param(&[f, d], &w_xy, "w_out");

    let mm = DotDims::matmul();

    // ---- Forward ----
    let qkv = cx.einsum(x0, &act, w_qkv, &w_yx, mm.clone(), &act, "fwd_qkv");
    let attn = cx.einsum(qkv, &act, w_o, &w_xy, mm.clone(), &act, "fwd_attn_out");
    let attn = maybe_moe_route(cfg, &mut cx, attn, t, "fwd_route_in");
    let h_pre = cx.einsum(attn, &act, w_in, &w_yx, mm.clone(), &act, "fwd_mlp_in");
    let h = cx.b.relu(h_pre, "fwd_mlp_act");
    let out = cx.einsum(h, &act, w_out, &w_xy, mm, &act, "fwd_mlp_out");
    let out = maybe_moe_route(cfg, &mut cx, out, t, "fwd_route_out");

    // ---- Backward (activation-gradient chain + weight gradients) ----
    let d_out = maybe_moe_route(cfg, &mut cx, d_out, t, "bwd_route_out");
    let dh = cx.einsum(d_out, &act, w_out, &w_xy, dx_dims(), &act, "bwd_mlp_out_dx");
    let dh = maybe_t5_residue(cfg, &mut cx, dh, "bwd_t5_residue_wide");
    let dw_out = cx.einsum(h, &act, d_out, &act, dw_dims(), &w_xy, "bwd_mlp_out_dw");
    // Backward through the activation: dh_pre = dh ∘ step(h_pre).
    let mask = cx.b.step(h_pre, "bwd_mlp_act_mask");
    let dh = cx.b.mul(dh, mask, "bwd_mlp_act");
    let d_attn = cx.einsum(dh, &act, w_in, &w_yx, dx_dims(), &act, "bwd_mlp_in_dx");
    let dw_in = cx.einsum(attn, &act, dh, &act, dw_dims(), &w_yx, "bwd_mlp_in_dw");
    let d_attn = maybe_moe_route(cfg, &mut cx, d_attn, t, "bwd_route_in");
    let d_attn = maybe_t5_residue(cfg, &mut cx, d_attn, "bwd_t5_residue");
    let d_qkv = cx.einsum(d_attn, &act, w_o, &w_xy, dx_dims(), &act, "bwd_attn_out_dx");
    let dw_o = cx.einsum(qkv, &act, d_attn, &act, dw_dims(), &w_xy, "bwd_attn_out_dw");
    let dx0 = cx.einsum(d_qkv, &act, w_qkv, &w_yx, dx_dims(), &act, "bwd_qkv_dx");
    let dw_qkv = cx.einsum(x0, &act, d_qkv, &act, dw_dims(), &w_yx, "bwd_qkv_dw");

    cx.b.build(vec![out, dx0, dw_qkv, dw_o, dw_in, dw_out])
}

/// MoE expert routing: a shape-preserving `AllToAll` over all partitions
/// on the token dimension (GLaM only).
fn maybe_moe_route(
    cfg: &ModelConfig,
    cx: &mut Ctx<'_>,
    x: InstrId,
    _tokens: usize,
    name: &str,
) -> InstrId {
    if !matches!(cfg.arch, Arch::MoE { .. }) {
        return x;
    }
    let groups = cx.mesh.full_groups();
    cx.b.all_to_all(x, 0, 0, groups, name)
}

/// T5's backward `AllToAll` residue (encoder–decoder resharding the paper
/// attributes ~10% of the step to).
fn maybe_t5_residue(cfg: &ModelConfig, cx: &mut Ctx<'_>, x: InstrId, name: &str) -> InstrId {
    if !matches!(cfg.arch, Arch::EncoderDecoder) {
        return x;
    }
    let groups = cx.mesh.full_groups();
    cx.b.all_to_all(x, 0, 0, groups, name)
}

fn build_1d(cfg: &ModelConfig, mesh: &DeviceMesh) -> Module {
    let ax = Axis(0);
    let t = cfg.tokens_per_replica();
    let d = cfg.model_dim;
    let d3 = 3 * d;
    let f = cfg.ff_dim;

    // Fig. 2: activations keep their batch shard; weights are stored
    // row-sharded and gathered before each einsum.
    let act = TensorSharding::new(vec![Some(ax), None]);
    let w_row = TensorSharding::new(vec![Some(ax), None]);

    let mut cx = Ctx { b: Builder::new(format!("{}_layer", cfg.name), mesh.num_devices()), mesh };
    let x0 = cx.param(&[t, d], &act, "x0");
    let d_out = cx.param(&[t, d], &act, "d_out");
    let w_qkv = cx.param(&[d, d3], &w_row, "w_qkv");
    let w_o = cx.param(&[d3, d], &w_row, "w_o");
    let w_in = cx.param(&[d, f], &w_row, "w_in");
    let w_out = cx.param(&[f, d], &w_row, "w_out");

    let mm = DotDims::matmul();
    let qkv = cx.einsum(x0, &act, w_qkv, &w_row, mm.clone(), &act, "fwd_qkv");
    let attn = cx.einsum(qkv, &act, w_o, &w_row, mm.clone(), &act, "fwd_attn_out");
    let h_pre = cx.einsum(attn, &act, w_in, &w_row, mm.clone(), &act, "fwd_mlp_in");
    let h = cx.b.relu(h_pre, "fwd_mlp_act");
    let out = cx.einsum(h, &act, w_out, &w_row, mm, &act, "fwd_mlp_out");

    // Backward: dX einsums re-gather weights; dW einsums contract the
    // batch-sharded token dimension -> ReduceScatter onto the row shard.
    let dh = cx.einsum(d_out, &act, w_out, &w_row.clone(), dx_dims(), &act, "bwd_mlp_out_dx");
    let dw_out = cx.einsum(h, &act, d_out, &act, dw_dims(), &w_row, "bwd_mlp_out_dw");
    let mask = cx.b.step(h_pre, "bwd_mlp_act_mask");
    let dh = cx.b.mul(dh, mask, "bwd_mlp_act");
    let d_attn = cx.einsum(dh, &act, w_in, &w_row, dx_dims(), &act, "bwd_mlp_in_dx");
    let dw_in = cx.einsum(attn, &act, dh, &act, dw_dims(), &w_row, "bwd_mlp_in_dw");
    let d_qkv = cx.einsum(d_attn, &act, w_o, &w_row, dx_dims(), &act, "bwd_attn_out_dx");
    let dw_o = cx.einsum(qkv, &act, d_attn, &act, dw_dims(), &w_row, "bwd_attn_out_dw");
    let dx0 = cx.einsum(d_qkv, &act, w_qkv, &w_row, dx_dims(), &act, "bwd_qkv_dx");
    let dw_qkv = cx.einsum(x0, &act, d_qkv, &act, dw_dims(), &w_row, "bwd_qkv_dw");

    cx.b.build(vec![out, dx0, dw_qkv, dw_o, dw_in, dw_out])
}

#[cfg(test)]
mod tests {
    use overlap_hlo::Op;

    use super::*;
    use crate::{table1_models, table2_models};

    fn tiny_2d() -> ModelConfig {
        ModelConfig {
            name: "tiny2d".into(),
            params: 1e9,
            layers: 2,
            model_dim: 16,
            ff_dim: 32,
            batch: 8,
            seq_len: 4,
            chips: 8,
            arch: Arch::Decoder,
            strategy: PartitionStrategy::TwoD,
        }
    }

    #[test]
    fn tiny_2d_layer_verifies() {
        let m = tiny_2d().layer_module();
        m.verify().unwrap();
        assert_eq!(m.count_live(|i| matches!(i.op(), Op::Einsum(_))), 12);
        // Forward: 2 gather-gather + 2 gather-RS einsums.
        assert!(m.count_live(|i| matches!(i.op(), Op::AllGather { .. })) >= 6);
        assert!(m.count_live(|i| matches!(i.op(), Op::ReduceScatter { .. })) >= 2);
    }

    #[test]
    fn moe_layer_has_all_to_alls() {
        let mut cfg = tiny_2d();
        cfg.arch = Arch::MoE { experts: 4 };
        let m = cfg.layer_module();
        m.verify().unwrap();
        // Routing in/out, forward and backward.
        assert_eq!(m.count_live(|i| matches!(i.op(), Op::AllToAll { .. })), 4);
    }

    #[test]
    fn t5_layer_has_backward_residue() {
        let mut cfg = tiny_2d();
        cfg.arch = Arch::EncoderDecoder;
        let m = cfg.layer_module();
        m.verify().unwrap();
        assert_eq!(m.count_live(|i| matches!(i.op(), Op::AllToAll { .. })), 2);
    }

    #[test]
    fn one_d_layer_verifies() {
        let cfg = ModelConfig {
            name: "tiny1d".into(),
            params: 1e9,
            layers: 2,
            model_dim: 16,
            ff_dim: 32,
            batch: 128,
            seq_len: 4,
            chips: 128,
            arch: Arch::Speech,
            strategy: PartitionStrategy::OneD,
        };
        let m = cfg.layer_module();
        m.verify().unwrap();
        assert_eq!(m.count_live(|i| matches!(i.op(), Op::Einsum(_))), 12);
        assert!(m.count_live(|i| matches!(i.op(), Op::ReduceScatter { .. })) >= 4);
    }

    #[test]
    fn all_published_configs_build() {
        for cfg in table1_models().into_iter().chain(table2_models()) {
            let m = cfg.layer_module();
            m.verify().unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
            assert_eq!(
                m.count_live(|i| matches!(i.op(), Op::Einsum(_))),
                12,
                "{}",
                cfg.name
            );
        }
    }
}
