//! Model zoo for the paper's evaluation (Tables 1 and 2).
//!
//! Each [`ModelConfig`] describes one evaluated model by the published
//! hyperparameters (layers, model dimension, feedforward dimension, batch,
//! chip count, architecture). [`ModelConfig::layer_module`] builds the HLO
//! graph of **one transformer layer step** (forward + backward) under the
//! paper's partitioning strategy — the 2-D strategy of Fig. 3 for the
//! large models, the 1-D strategy of Fig. 2 for BigSSL — using the
//! `overlap-sharding` einsum partitioner, so the AllGather/ReduceScatter
//! patterns arise exactly as they do in the paper's production runs.
//! Because every layer is identical, simulating one layer and scaling by
//! the layer count reproduces the step-time *shape*.
//!
//! Modeling notes (see DESIGN.md for the full substitution table):
//!
//! * The four projection einsums per layer (QKV, attention output, MLP in,
//!   MLP out) carry the partitioning-relevant compute and all of the
//!   weight communication; the attention score/context einsums (whose cost
//!   depends on an unpublished sequence length) are folded into the
//!   [`ModelConfig::seq_len`] token-count knob.
//! * GLaM's mixture-of-experts layers add non-decomposable `AllToAll`s
//!   around the FFN; T5's encoder–decoder structure adds a backward
//!   `AllToAll` (the paper attributes ~10% of its step to these).
//! * BigSSL is modeled as its 8-way model-parallel ring (the 16-way data
//!   parallel factor divides tokens and adds gradient `AllReduce`s the
//!   paper does not target).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod config;
pub mod hybrid;
mod layer;
mod layer_attention;
mod zoo;

pub use config::{Arch, ModelConfig, PartitionStrategy};
pub use layer::{build_layer_module, build_window_module};
pub use layer_attention::build_attention_layer;
pub use zoo::{find_model, gpt_scaled, model_names, table1_models, table2_models};
