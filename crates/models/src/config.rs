//! Model configurations.

use overlap_hlo::Module;
use overlap_mesh::{DeviceMesh, Machine};

use crate::layer::{build_layer_module, build_window_module};

/// Architecture family of an evaluated model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// Dense decoder-only language model (GPT, Meena).
    Decoder,
    /// Dense encoder (the MLPerf BERT submission).
    Encoder,
    /// Encoder–decoder (T5): adds a backward `AllToAll` residue.
    EncoderDecoder,
    /// Sparse mixture-of-experts (GLaM): `AllToAll`s around the FFN.
    MoE {
        /// Number of experts.
        experts: usize,
    },
    /// Speech model (BigSSL): 1-D partitioning.
    Speech,
}

/// Which §2.2 partitioning strategy the model uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// One partitioned dimension (Fig. 2), over a ring.
    OneD,
    /// Two partitioned dimensions (Fig. 3), over a 2-D mesh.
    TwoD,
}

/// One evaluated model: the published hyperparameters of Table 1/Table 2
/// plus the modeling knobs needed to build its layer graph.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Display name (e.g. `"GPT_1T"`).
    pub name: String,
    /// Approximate parameter count (for reporting only).
    pub params: f64,
    /// Number of layers.
    pub layers: usize,
    /// Model (bottleneck) dimension.
    pub model_dim: usize,
    /// Feedforward dimension.
    pub ff_dim: usize,
    /// Batch size (sequences) from the paper's tables.
    pub batch: usize,
    /// Tokens per sequence — the paper does not publish this; 1024 is
    /// used throughout so token counts are comparable across models.
    pub seq_len: usize,
    /// Number of TPU chips.
    pub chips: usize,
    /// Architecture family.
    pub arch: Arch,
    /// Partitioning strategy.
    pub strategy: PartitionStrategy,
}

impl ModelConfig {
    /// Total tokens processed per step.
    #[must_use]
    pub fn tokens(&self) -> usize {
        self.batch * self.seq_len
    }

    /// The logical device mesh this model is partitioned over.
    ///
    /// 2-D models use a near-square mesh over all chips; BigSSL's 1-D
    /// strategy uses its 8-way model-parallel ring (the remaining
    /// data-parallel factor divides the tokens instead).
    #[must_use]
    pub fn mesh(&self) -> DeviceMesh {
        match self.strategy {
            PartitionStrategy::TwoD => DeviceMesh::square_ish(self.chips),
            PartitionStrategy::OneD => DeviceMesh::ring(8),
        }
    }

    /// Tokens per model-parallel replica (differs from [`tokens`] only for
    /// the 1-D strategy, where the data-parallel factor divides the
    /// batch).
    ///
    /// [`tokens`]: ModelConfig::tokens
    #[must_use]
    pub fn tokens_per_replica(&self) -> usize {
        match self.strategy {
            PartitionStrategy::TwoD => self.tokens(),
            PartitionStrategy::OneD => {
                let replicas = (self.chips / 8).max(1);
                (self.tokens() / replicas).max(8)
            }
        }
    }

    /// A TPU-v4-pod-like machine matching this model's mesh.
    #[must_use]
    pub fn machine(&self) -> Machine {
        Machine::with_mesh(self.mesh())
    }

    /// Builds the one-layer (forward + backward) step module.
    ///
    /// # Panics
    ///
    /// Panics if the hyperparameters do not divide by the mesh (the
    /// published configurations all do).
    #[must_use]
    pub fn layer_module(&self) -> Module {
        build_layer_module(self)
    }

    /// Builds the `depth`-layer stacked step module whose instructions
    /// carry `L<k>.` scheduling-stage prefixes (forward layer *i* →
    /// stage *i*, backward layer *i* → stage `2·depth−1−i`), the input
    /// the cross-layer windowed scheduler (`StrategySpec::window_layers`)
    /// operates on. `depth <= 1` is exactly [`ModelConfig::layer_module`].
    ///
    /// # Panics
    ///
    /// Panics if the hyperparameters do not divide by the mesh.
    #[must_use]
    pub fn window_module(&self, depth: usize) -> Module {
        build_window_module(self, depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table1_models;

    #[test]
    fn meshes_cover_chips() {
        for m in table1_models() {
            match m.strategy {
                PartitionStrategy::TwoD => {
                    assert_eq!(m.mesh().num_devices(), m.chips, "{}", m.name);
                }
                PartitionStrategy::OneD => assert_eq!(m.mesh().num_devices(), 8),
            }
        }
    }

    #[test]
    fn tokens_scale_with_batch() {
        let models = table1_models();
        let gpt = models.iter().find(|m| m.name == "GPT_1T").unwrap();
        assert_eq!(gpt.tokens(), gpt.batch * gpt.seq_len);
        assert_eq!(gpt.tokens_per_replica(), gpt.tokens());
        let bigssl = models.iter().find(|m| m.name == "BigSSL_10B").unwrap();
        assert!(bigssl.tokens_per_replica() < bigssl.tokens());
    }
}
