//! The published configurations of Tables 1 and 2.

use crate::{Arch, ModelConfig, PartitionStrategy};

/// Default tokens per sequence (unpublished in the paper; see crate docs).
const SEQ_LEN: usize = 1024;

#[allow(clippy::too_many_arguments)] // table row constructor: one argument per published column
fn model(
    name: &str,
    params: f64,
    layers: usize,
    model_dim: usize,
    ff_dim: usize,
    batch: usize,
    chips: usize,
    arch: Arch,
    strategy: PartitionStrategy,
) -> ModelConfig {
    ModelConfig {
        name: name.to_string(),
        params,
        layers,
        model_dim,
        ff_dim,
        batch,
        seq_len: SEQ_LEN,
        chips,
        arch,
        strategy,
    }
}

/// The six evaluated applications of Table 1.
#[must_use]
pub fn table1_models() -> Vec<ModelConfig> {
    vec![
        model("GPT_1T", 1.03e12, 142, 24576, 98304, 4096, 2048, Arch::Decoder, PartitionStrategy::TwoD),
        model("Meena_500B", 5.07e11, 120, 18432, 65536, 2048, 1024, Arch::Decoder, PartitionStrategy::TwoD),
        model("MLPerf_200B", 1.99e11, 66, 12288, 98304, 4096, 1024, Arch::Encoder, PartitionStrategy::TwoD),
        model("T5_300B", 2.90e11, 64, 12288, 36864, 3072, 512, Arch::EncoderDecoder, PartitionStrategy::TwoD),
        model("GLaM_1T", 1.16e12, 32, 8192, 32768, 1024, 1024, Arch::MoE { experts: 64 }, PartitionStrategy::TwoD),
        model("BigSSL_10B", 1.04e10, 48, 3072, 12288, 64, 128, Arch::Speech, PartitionStrategy::OneD),
    ]
}

/// The weakly scaled GPT family of Table 2 (32B … 1T).
#[must_use]
pub fn table2_models() -> Vec<ModelConfig> {
    vec![
        model("GPT_32B", 3.22e10, 40, 8192, 32768, 512, 64, Arch::Decoder, PartitionStrategy::TwoD),
        model("GPT_64B", 6.42e10, 51, 10240, 40960, 512, 128, Arch::Decoder, PartitionStrategy::TwoD),
        model("GPT_128B", 1.286e11, 71, 12288, 49152, 1024, 256, Arch::Decoder, PartitionStrategy::TwoD),
        model("GPT_256B", 2.577e11, 80, 16384, 65536, 2048, 512, Arch::Decoder, PartitionStrategy::TwoD),
        model("GPT_512B", 5.134e11, 102, 20480, 81920, 3072, 1024, Arch::Decoder, PartitionStrategy::TwoD),
        model("GPT_1T", 1.0e12, 142, 24576, 98304, 4096, 2048, Arch::Decoder, PartitionStrategy::TwoD),
    ]
}

/// Alias of [`table2_models`] matching the paper's terminology.
#[must_use]
pub fn gpt_scaled() -> Vec<ModelConfig> {
    table2_models()
}

/// Looks up a published configuration by name across Tables 1 and 2
/// (e.g. `"GPT_1T"`, `"GPT_32B"`, `"BigSSL_10B"`). Table 1 wins for the
/// one name both tables share (`GPT_1T`); the two rows describe the same
/// machine and layer shape.
#[must_use]
pub fn find_model(name: &str) -> Option<ModelConfig> {
    table1_models().into_iter().chain(table2_models()).find(|m| m.name == name)
}

/// Every published model name, in table order (Table 1 then Table 2,
/// duplicates removed) — the vocabulary [`find_model`] accepts, for
/// CLI/daemon error messages.
#[must_use]
pub fn model_names() -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for m in table1_models().into_iter().chain(table2_models()) {
        if !names.contains(&m.name) {
            names.push(m.name);
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let models = table1_models();
        assert_eq!(models.len(), 6);
        let glam = models.iter().find(|m| m.name == "GLaM_1T").unwrap();
        assert_eq!(glam.layers, 32);
        assert_eq!(glam.model_dim, 8192);
        assert!(matches!(glam.arch, Arch::MoE { experts: 64 }));
        let t5 = models.iter().find(|m| m.name == "T5_300B").unwrap();
        assert_eq!(t5.chips, 512);
        assert_eq!(t5.ff_dim, 36864);
    }

    #[test]
    fn table2_is_weakly_scaled() {
        let models = table2_models();
        assert_eq!(models.len(), 6);
        for pair in models.windows(2) {
            assert!(pair[0].chips < pair[1].chips, "chips grow with model size");
            assert!(pair[0].model_dim <= pair[1].model_dim);
            assert!(pair[0].params < pair[1].params);
        }
        assert_eq!(models[0].chips, 64);
        assert_eq!(models[5].chips, 2048);
    }
}
