//! Property tests for shape and einsum inference invariants.

use overlap_hlo::{DType, DotDims, Shape};
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..8, 0..4)
}

proptest! {
    /// num_elements is the product of the dims; byte_size scales with the
    /// element width.
    #[test]
    fn shape_size_consistency(dims in small_dims()) {
        let f32s = Shape::new(DType::F32, dims.clone());
        let bf16 = Shape::new(DType::BF16, dims.clone());
        let expect: usize = dims.iter().product();
        prop_assert_eq!(f32s.num_elements(), expect);
        prop_assert_eq!(f32s.byte_size(), expect * 4);
        prop_assert_eq!(bf16.byte_size(), expect * 2);
    }

    /// Row-major strides: stride[d] * dim[d] == stride[d-1] (for non-empty
    /// dims), and stride of the last dim is 1.
    #[test]
    fn strides_are_row_major(dims in prop::collection::vec(1usize..8, 1..4)) {
        let s = Shape::new(DType::F32, dims.clone());
        let strides = s.strides();
        prop_assert_eq!(strides[dims.len() - 1], 1);
        for d in 1..dims.len() {
            prop_assert_eq!(strides[d - 1], strides[d] * dims[d]);
        }
    }

    /// Scaling then dividing a dimension round-trips.
    #[test]
    fn scale_divide_round_trip(
        dims in prop::collection::vec(1usize..8, 1..4),
        factor in 1usize..5,
    ) {
        let s = Shape::new(DType::F32, dims);
        let back = s.with_dim_scaled(0, factor).with_dim_divided(0, factor);
        prop_assert_eq!(back, s);
    }

    /// Matmul einsum: output dims are [m, n] and flops are 2·m·n·k.
    #[test]
    fn matmul_inference(m in 1usize..32, k in 1usize..32, n in 1usize..32) {
        let d = DotDims::matmul();
        let lhs = Shape::new(DType::F32, vec![m, k]);
        let rhs = Shape::new(DType::F32, vec![k, n]);
        let out = d.output_shape(&lhs, &rhs).unwrap();
        prop_assert_eq!(out.dims(), &[m, n]);
        prop_assert_eq!(d.flops(&lhs, &rhs), (2 * m * k * n) as u64);
    }

    /// Swapping the operands swaps the free-dimension blocks but keeps the
    /// element count and flops identical.
    #[test]
    fn swapped_preserves_flops(
        b in 1usize..6, m in 1usize..6, k in 1usize..6, n in 1usize..6,
    ) {
        let d = DotDims::batch_matmul();
        let lhs = Shape::new(DType::F32, vec![b, m, k]);
        let rhs = Shape::new(DType::F32, vec![b, k, n]);
        let fwd = d.output_shape(&lhs, &rhs).unwrap();
        let swp = d.swapped().output_shape(&rhs, &lhs).unwrap();
        prop_assert_eq!(fwd.num_elements(), swp.num_elements());
        prop_assert_eq!(d.flops(&lhs, &rhs), d.swapped().flops(&rhs, &lhs));
    }

    /// Free dims partition the operand dims together with batch/contracting.
    #[test]
    fn dim_classification_is_a_partition(rank in 1usize..5) {
        // Contract dim 0 when possible, batch nothing.
        let contracting = if rank >= 2 { vec![(0, 0)] } else { vec![] };
        let d = DotDims::new(vec![], contracting.clone()).unwrap();
        let free = d.lhs_free_dims(rank);
        let total = free.len() + contracting.len();
        prop_assert_eq!(total, rank);
        for dim in 0..rank {
            let in_free = free.contains(&dim);
            let in_contract = d.is_lhs_contracting(dim);
            prop_assert!(in_free ^ in_contract);
        }
    }
}
