//! Dense tensor shapes.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::DType;

/// Shape of a dense tensor: an element type plus a list of dimension sizes.
///
/// Rank-0 shapes are scalars. Dimension sizes of zero are permitted (the
/// verifier rejects them where an op requires non-empty data).
///
/// # Example
///
/// ```
/// use overlap_hlo::{DType, Shape};
/// let s = Shape::new(DType::F32, vec![128, 512]);
/// assert_eq!(s.rank(), 2);
/// assert_eq!(s.num_elements(), 128 * 512);
/// assert_eq!(s.byte_size(), 128 * 512 * 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dtype: DType,
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from an element type and dimension sizes.
    #[must_use]
    pub fn new(dtype: DType, dims: Vec<usize>) -> Self {
        Shape { dtype, dims }
    }

    /// Creates a rank-0 (scalar) shape.
    #[must_use]
    pub fn scalar(dtype: DType) -> Self {
        Shape { dtype, dims: Vec::new() }
    }

    /// The element type.
    #[must_use]
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// The dimension sizes.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Size of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= rank()`.
    #[must_use]
    pub fn dim(&self, d: usize) -> usize {
        self.dims[d]
    }

    /// Number of dimensions.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Whether this is a rank-0 scalar.
    #[must_use]
    pub fn is_scalar(&self) -> bool {
        self.dims.is_empty()
    }

    /// Total number of elements (1 for scalars).
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.dims.iter().product()
    }

    /// Total storage size in bytes.
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.num_elements() * self.dtype.size_bytes()
    }

    /// Returns a copy with dimension `d` scaled by `factor`.
    ///
    /// Used for collective shape inference: `AllGather` multiplies the
    /// gathered dimension by the group size.
    ///
    /// # Panics
    ///
    /// Panics if `d >= rank()`.
    #[must_use]
    pub fn with_dim_scaled(&self, d: usize, factor: usize) -> Self {
        let mut dims = self.dims.clone();
        dims[d] *= factor;
        Shape { dtype: self.dtype, dims }
    }

    /// Returns a copy with dimension `d` divided by `factor`.
    ///
    /// Used for collective shape inference: `ReduceScatter` divides the
    /// scattered dimension by the group size.
    ///
    /// # Panics
    ///
    /// Panics if `d >= rank()` or `dims[d]` is not divisible by `factor`.
    #[must_use]
    pub fn with_dim_divided(&self, d: usize, factor: usize) -> Self {
        let mut dims = self.dims.clone();
        assert!(
            dims[d].is_multiple_of(factor),
            "dimension {d} of size {} not divisible by {factor}",
            dims[d]
        );
        dims[d] /= factor;
        Shape { dtype: self.dtype, dims }
    }

    /// Returns a copy with dimension `d` set to `size`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= rank()`.
    #[must_use]
    pub fn with_dim(&self, d: usize, size: usize) -> Self {
        let mut dims = self.dims.clone();
        dims[d] = size;
        Shape { dtype: self.dtype, dims }
    }

    /// Row-major strides (in elements) for this shape.
    #[must_use]
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank()];
        for d in (0..self.rank().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * self.dims[d + 1];
        }
        strides
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.dtype)?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar(DType::S32);
        assert!(s.is_scalar());
        assert_eq!(s.rank(), 0);
        assert_eq!(s.num_elements(), 1);
        assert_eq!(s.byte_size(), 4);
        assert_eq!(s.to_string(), "s32[]");
    }

    #[test]
    fn display() {
        let s = Shape::new(DType::BF16, vec![2, 3, 4]);
        assert_eq!(s.to_string(), "bf16[2,3,4]");
    }

    #[test]
    fn scale_and_divide() {
        let s = Shape::new(DType::F32, vec![8, 16]);
        assert_eq!(s.with_dim_scaled(1, 4).dims(), &[8, 64]);
        assert_eq!(s.with_dim_divided(0, 2).dims(), &[4, 16]);
        assert_eq!(s.with_dim(0, 5).dims(), &[5, 16]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn divide_rejects_remainder() {
        let _ = Shape::new(DType::F32, vec![9]).with_dim_divided(0, 2);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(DType::F32, vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(Shape::scalar(DType::F32).strides(), Vec::<usize>::new());
    }

    #[test]
    fn zero_sized_dim() {
        let s = Shape::new(DType::F32, vec![0, 4]);
        assert_eq!(s.num_elements(), 0);
        assert_eq!(s.byte_size(), 0);
    }
}
