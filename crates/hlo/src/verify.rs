//! Structural and shape verification of modules.

use crate::{HloError, InstrId, Module, Op, Shape};

impl Module {
    /// Verifies every structural and shape invariant of the module.
    ///
    /// Checks, for each instruction:
    ///
    /// * operands exist and precede their user (arena order is topological);
    /// * operand arity matches the op;
    /// * the declared result shape agrees with shape inference;
    /// * replica groups partition `0..num_partitions`, permute destinations
    ///   are unique, collective dims are in range;
    /// * every `CollectivePermuteStart` has **exactly one**
    ///   `CollectivePermuteDone` user and `Done`s consume only `Start`s;
    /// * parameter indices are dense `0..k` without duplicates;
    /// * outputs exist; fusion groups are well-formed and each group's
    ///   non-root members are used only within the group.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as an [`HloError`].
    pub fn verify(&self) -> Result<(), HloError> {
        let mut param_indices: Vec<usize> = Vec::new();
        for (id, ins) in self.iter() {
            for &o in ins.operands() {
                if o.index() >= self.instrs.len() {
                    return Err(HloError::DanglingOperand {
                        instr: ins.name().to_string(),
                        operand: o.index(),
                    });
                }
                if o >= id {
                    return Err(HloError::NotADag(format!(
                        "{} uses {} which does not precede it",
                        ins.name(),
                        self.instr(o).name()
                    )));
                }
            }
            self.check_instr(id)?;
            if let Op::Parameter { index } = ins.op() {
                param_indices.push(*index);
            }
        }
        param_indices.sort_unstable();
        for (i, &p) in param_indices.iter().enumerate() {
            if p != i {
                return Err(HloError::Verification(format!(
                    "parameter indices not dense: expected {i}, found {p}"
                )));
            }
        }
        for &o in &self.outputs {
            if o.index() >= self.instrs.len() {
                return Err(HloError::Verification(format!("output {o} out of range")));
            }
        }
        self.check_start_done_pairing()?;
        self.check_fusion_groups()?;
        Ok(())
    }

    fn mismatch(&self, id: InstrId, message: String) -> HloError {
        HloError::ShapeMismatch { instr: self.instr(id).name().to_string(), message }
    }

    fn expect_arity(&self, id: InstrId, arity: usize) -> Result<(), HloError> {
        let got = self.instr(id).operands().len();
        if got != arity {
            return Err(self.mismatch(id, format!("expected {arity} operands, got {got}")));
        }
        Ok(())
    }

    fn expect_shape(&self, id: InstrId, expected: &Shape) -> Result<(), HloError> {
        let got = self.shape_of(id);
        if got != expected {
            return Err(self.mismatch(id, format!("declared {got}, inferred {expected}")));
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn check_instr(&self, id: InstrId) -> Result<(), HloError> {
        let ins = self.instr(id);
        let shape = ins.shape();
        let operand = |i: usize| self.shape_of(ins.operands()[i]);
        match ins.op() {
            Op::ConstantTensor { values } => {
                self.expect_arity(id, 0)?;
                if values.len() != shape.num_elements() {
                    return Err(self.mismatch(
                        id,
                        format!("{} values for shape {shape}", values.len()),
                    ));
                }
            }
            Op::Parameter { .. } | Op::Constant { .. } | Op::PartitionId => {
                self.expect_arity(id, 0)?;
                if matches!(ins.op(), Op::PartitionId) && !shape.is_scalar() {
                    return Err(self.mismatch(id, "partition-id must be scalar".into()));
                }
            }
            Op::Iota { dim } => {
                self.expect_arity(id, 0)?;
                if *dim >= shape.rank() {
                    return Err(self.mismatch(id, format!("iota dim {dim} out of range")));
                }
            }
            Op::Broadcast { operand_dims } => {
                self.expect_arity(id, 1)?;
                let xs = operand(0);
                if operand_dims.len() != xs.rank() {
                    return Err(self.mismatch(id, "broadcast mapping arity".into()));
                }
                for (i, &d) in operand_dims.iter().enumerate() {
                    if d >= shape.rank()
                        || (i > 0 && operand_dims[i - 1] >= d)
                        || xs.dim(i) != shape.dim(d)
                    {
                        return Err(self.mismatch(id, format!("broadcast dim {i} invalid")));
                    }
                }
                if xs.dtype() != shape.dtype() {
                    return Err(self.mismatch(id, "broadcast dtype".into()));
                }
            }
            Op::Reshape => {
                self.expect_arity(id, 1)?;
                let xs = operand(0);
                if xs.num_elements() != shape.num_elements() || xs.dtype() != shape.dtype() {
                    return Err(self.mismatch(id, format!("reshape {xs} -> {shape}")));
                }
            }
            Op::Transpose { perm } => {
                self.expect_arity(id, 1)?;
                let xs = operand(0);
                let mut sorted = perm.clone();
                sorted.sort_unstable();
                if sorted != (0..xs.rank()).collect::<Vec<_>>() {
                    return Err(self.mismatch(id, "transpose perm not a permutation".into()));
                }
                let dims: Vec<usize> = perm.iter().map(|&p| xs.dim(p)).collect();
                self.expect_shape(id, &Shape::new(xs.dtype(), dims))?;
            }
            Op::Slice { starts, limits } => {
                self.expect_arity(id, 1)?;
                let xs = operand(0);
                if starts.len() != xs.rank() || limits.len() != xs.rank() {
                    return Err(self.mismatch(id, "slice arity".into()));
                }
                let mut dims = Vec::with_capacity(xs.rank());
                for d in 0..xs.rank() {
                    if starts[d] > limits[d] || limits[d] > xs.dim(d) {
                        return Err(self.mismatch(id, format!("slice bounds at dim {d}")));
                    }
                    dims.push(limits[d] - starts[d]);
                }
                self.expect_shape(id, &Shape::new(xs.dtype(), dims))?;
            }
            Op::DynamicSlice { sizes } => {
                let xs = operand(0).clone();
                self.expect_arity(id, 1 + xs.rank())?;
                if sizes.len() != xs.rank() {
                    return Err(self.mismatch(id, "dynamic-slice sizes arity".into()));
                }
                for (d, &s) in sizes.iter().enumerate() {
                    if s > xs.dim(d) {
                        return Err(self.mismatch(id, format!("dynamic-slice size at dim {d}")));
                    }
                }
                for i in 0..xs.rank() {
                    let idx = operand(1 + i);
                    if !idx.is_scalar() || !idx.dtype().is_integer() {
                        return Err(self.mismatch(id, format!("index {i} not integer scalar")));
                    }
                }
                self.expect_shape(id, &Shape::new(xs.dtype(), sizes.clone()))?;
            }
            Op::DynamicUpdateSlice => {
                let xs = operand(0).clone();
                self.expect_arity(id, 2 + xs.rank())?;
                let us = operand(1);
                if us.rank() != xs.rank() || us.dtype() != xs.dtype() {
                    return Err(self.mismatch(id, "update rank/dtype".into()));
                }
                for d in 0..xs.rank() {
                    if us.dim(d) > xs.dim(d) {
                        return Err(self.mismatch(id, format!("update dim {d} too large")));
                    }
                }
                for i in 0..xs.rank() {
                    let idx = operand(2 + i);
                    if !idx.is_scalar() || !idx.dtype().is_integer() {
                        return Err(self.mismatch(id, format!("index {i} not integer scalar")));
                    }
                }
                self.expect_shape(id, &xs)?;
            }
            Op::Concatenate { dim } => {
                if ins.operands().is_empty() {
                    return Err(self.mismatch(id, "concatenate needs operands".into()));
                }
                let first = operand(0).clone();
                if *dim >= first.rank() {
                    return Err(self.mismatch(id, "concatenate dim out of range".into()));
                }
                let mut total = 0;
                for i in 0..ins.operands().len() {
                    let s = operand(i);
                    if s.rank() != first.rank() || s.dtype() != first.dtype() {
                        return Err(self.mismatch(id, format!("operand {i} rank/dtype")));
                    }
                    for d in 0..first.rank() {
                        if d != *dim && s.dim(d) != first.dim(d) {
                            return Err(self.mismatch(id, format!("operand {i} off-dim {d}")));
                        }
                    }
                    total += s.dim(*dim);
                }
                self.expect_shape(id, &first.with_dim(*dim, total))?;
            }
            Op::Pad { config } => {
                self.expect_arity(id, 2)?;
                let xs = operand(0);
                let vs = operand(1);
                if !vs.is_scalar() || vs.dtype() != xs.dtype() {
                    return Err(self.mismatch(id, "pad value".into()));
                }
                if config.len() != xs.rank() {
                    return Err(self.mismatch(id, "pad config arity".into()));
                }
                let dims: Vec<usize> = xs
                    .dims()
                    .iter()
                    .zip(config)
                    .map(|(&d, p)| d + p.low + p.high)
                    .collect();
                self.expect_shape(id, &Shape::new(xs.dtype(), dims))?;
            }
            Op::Binary(_) => {
                self.expect_arity(id, 2)?;
                if operand(0) != operand(1) {
                    return Err(self.mismatch(id, "binary operand shapes differ".into()));
                }
                self.expect_shape(id, &operand(0).clone())?;
            }
            Op::Unary(_) | Op::Copy => {
                self.expect_arity(id, 1)?;
                self.expect_shape(id, &operand(0).clone())?;
            }
            Op::Einsum(dims) => {
                self.expect_arity(id, 2)?;
                let out = dims
                    .output_shape(operand(0), operand(1))
                    .map_err(|e| self.mismatch(id, e.to_string()))?;
                self.expect_shape(id, &out)?;
            }
            Op::AllGather { dim, groups } => {
                self.expect_arity(id, 1)?;
                let xs = operand(0);
                if *dim >= xs.rank() {
                    return Err(self.mismatch(id, "all-gather dim".into()));
                }
                groups.validate(self.num_partitions)?;
                self.expect_shape(id, &xs.with_dim_scaled(*dim, groups.group_size()))?;
            }
            Op::ReduceScatter { dim, groups } => {
                self.expect_arity(id, 1)?;
                let xs = operand(0);
                if *dim >= xs.rank() || xs.dim(*dim) % groups.group_size() != 0 {
                    return Err(self.mismatch(id, "reduce-scatter dim".into()));
                }
                groups.validate(self.num_partitions)?;
                self.expect_shape(id, &xs.with_dim_divided(*dim, groups.group_size()))?;
            }
            Op::AllReduce { groups } => {
                self.expect_arity(id, 1)?;
                groups.validate(self.num_partitions)?;
                self.expect_shape(id, &operand(0).clone())?;
            }
            Op::AllToAll { split_dim, concat_dim, groups } => {
                self.expect_arity(id, 1)?;
                let xs = operand(0);
                let g = groups.group_size();
                if *split_dim >= xs.rank()
                    || *concat_dim >= xs.rank()
                    || xs.dim(*split_dim) % g != 0
                {
                    return Err(self.mismatch(id, "all-to-all dims".into()));
                }
                groups.validate(self.num_partitions)?;
                self.expect_shape(
                    id,
                    &xs.with_dim_divided(*split_dim, g).with_dim_scaled(*concat_dim, g),
                )?;
            }
            Op::CollectivePermute { pairs } | Op::CollectivePermuteStart { pairs } => {
                self.expect_arity(id, 1)?;
                let n = self.num_partitions as u32;
                let mut dsts: Vec<u32> = pairs.iter().map(|&(_, d)| d).collect();
                dsts.sort_unstable();
                let before = dsts.len();
                dsts.dedup();
                if dsts.len() != before {
                    return Err(HloError::InvalidPermutePairs(format!(
                        "{}: duplicate destination",
                        ins.name()
                    )));
                }
                if pairs.iter().any(|&(s, d)| s >= n || d >= n) {
                    return Err(HloError::InvalidPermutePairs(format!(
                        "{}: id out of range",
                        ins.name()
                    )));
                }
                self.expect_shape(id, &operand(0).clone())?;
            }
            Op::CollectivePermuteDone => {
                self.expect_arity(id, 1)?;
                if !matches!(
                    self.instr(ins.operands()[0]).op(),
                    Op::CollectivePermuteStart { .. }
                ) {
                    return Err(self.mismatch(id, "done operand must be a start".into()));
                }
                self.expect_shape(id, &operand(0).clone())?;
            }
        }
        Ok(())
    }

    fn check_start_done_pairing(&self) -> Result<(), HloError> {
        let users = self.users();
        for (id, ins) in self.iter() {
            if matches!(ins.op(), Op::CollectivePermuteStart { .. }) {
                let dones = users[id.index()]
                    .iter()
                    .filter(|&&u| matches!(self.instr(u).op(), Op::CollectivePermuteDone))
                    .count();
                let others = users[id.index()].len() - dones;
                if dones != 1 || others != 0 {
                    return Err(HloError::Verification(format!(
                        "{} must have exactly one done user (found {dones} dones, {others} other users)",
                        ins.name()
                    )));
                }
            }
        }
        Ok(())
    }

    fn check_fusion_groups(&self) -> Result<(), HloError> {
        let users = self.users();
        let fusion_of = self.fusion_of();
        for (gi, g) in self.fusion_groups.iter().enumerate() {
            if !g.members.contains(&g.root) {
                return Err(HloError::InvalidFusion(format!("group {gi} root not a member")));
            }
            for &m in &g.members {
                if m.index() >= self.instrs.len() {
                    return Err(HloError::InvalidFusion(format!("group {gi}: unknown id {m}")));
                }
                if m != g.root {
                    // Non-root members must not escape the group.
                    for &u in &users[m.index()] {
                        if fusion_of.get(&u) != Some(&crate::FusionId(gi as u32)) {
                            return Err(HloError::InvalidFusion(format!(
                                "group {gi}: non-root member {} used outside the group by {}",
                                self.instr(m).name(),
                                self.instr(u).name()
                            )));
                        }
                    }
                    if self.outputs.contains(&m) {
                        return Err(HloError::InvalidFusion(format!(
                            "group {gi}: non-root member {} is a module output",
                            self.instr(m).name()
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{Builder, DType, DotDims, FusionGroup, ReplicaGroups, Shape};

    fn f32s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    #[test]
    fn valid_module_passes() {
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[4, 8]), "x");
        let w = b.parameter(f32s(&[4, 16]), "w");
        let wg = b.all_gather(w, 0, ReplicaGroups::full(2), "wg");
        let y = b.einsum(x, wg, DotDims::new(vec![], vec![(1, 0)]).unwrap(), "y");
        b.build(vec![y]).verify().unwrap();
    }

    #[test]
    fn start_with_two_dones_rejected() {
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[4]), "x");
        let s = b.collective_permute_start(x, vec![(0, 1), (1, 0)], "s");
        let d1 = b.collective_permute_done(s, "d1");
        let d2 = b.collective_permute_done(s, "d2");
        let m = b.build(vec![d1, d2]);
        assert!(m.verify().is_err());
    }

    #[test]
    fn start_without_done_rejected() {
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[4]), "x");
        let s = b.collective_permute_start(x, vec![(0, 1), (1, 0)], "s");
        let m = b.build(vec![s]);
        assert!(m.verify().is_err());
    }

    #[test]
    fn escaping_fusion_member_rejected() {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[4]), "x");
        let c = b.copy(x, "c");
        let d = b.copy(c, "d");
        let e = b.copy(c, "e"); // uses c outside the would-be group
        let m = b.build(vec![d, e]);
        let bad = m
            .with_fusion_groups(vec![FusionGroup { members: vec![c, d], root: d }])
            .unwrap();
        assert!(bad.verify().is_err());
    }

    #[test]
    fn fusion_group_with_root_use_ok() {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[4]), "x");
        let c = b.copy(x, "c");
        let d = b.copy(c, "d");
        let e = b.copy(d, "e");
        let m = b.build(vec![e]);
        let good = m
            .with_fusion_groups(vec![FusionGroup { members: vec![c, d], root: d }])
            .unwrap();
        good.verify().unwrap();
    }

    /// Corrupt a valid module in-place and check the verifier rejects it
    /// (the builder can never produce these states; passes could if
    /// buggy).
    #[test]
    fn verifier_rejects_corrupted_modules() {
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[4, 4]), "x");
        let w = b.parameter(f32s(&[4, 4]), "w");
        let y = b.einsum(x, w, DotDims::matmul(), "y");
        let good = b.build(vec![y]);
        good.verify().unwrap();

        // Wrong declared result shape.
        let mut bad = good.clone();
        bad.instrs[y.index()].shape = f32s(&[4, 5]);
        assert!(bad.verify().is_err());

        // Dangling operand id.
        let mut bad = good.clone();
        bad.instrs[y.index()].operands[1] = crate::InstrId::from_index(99);
        assert!(bad.verify().is_err());

        // Use-before-def (operand id larger than user id).
        let mut bad = good.clone();
        bad.instrs[x.index()].op = crate::Op::Copy;
        bad.instrs[x.index()].operands = vec![y];
        assert!(bad.verify().is_err());

        // Duplicate parameter index.
        let mut bad = good.clone();
        bad.instrs[w.index()].op = crate::Op::Parameter { index: 0 };
        assert!(bad.verify().is_err());

        // Out-of-range output.
        let mut bad = good.clone();
        bad.outputs = vec![crate::InstrId::from_index(42)];
        assert!(bad.verify().is_err());

        // Binary with mismatched operand shapes.
        let mut bad = good.clone();
        bad.instrs[y.index()].op = crate::Op::Binary(crate::BinaryKind::Add);
        bad.instrs[y.index()].shape = f32s(&[4, 4]);
        // x and w have the same shape; corrupt w's shape too.
        bad.instrs[w.index()].shape = f32s(&[4, 5]);
        assert!(bad.verify().is_err());
    }

    #[test]
    fn verifier_rejects_bad_collective_metadata() {
        let mut b = Builder::new("m", 4);
        let x = b.parameter(f32s(&[4, 4]), "x");
        let g = b.all_gather(x, 0, crate::ReplicaGroups::full(4), "g");
        let good = b.build(vec![g]);
        good.verify().unwrap();

        // Gather dim out of range.
        let mut bad = good.clone();
        if let crate::Op::AllGather { dim, .. } = &mut bad.instrs[g.index()].op {
            *dim = 9;
        }
        assert!(bad.verify().is_err());

        // Permute with duplicate destination.
        let mut b = Builder::new("m", 4);
        let x = b.parameter(f32s(&[4]), "x");
        let p = b.collective_permute(x, vec![(0, 1), (1, 2)], "p");
        let mut bad = b.build(vec![p]);
        if let crate::Op::CollectivePermute { pairs } = &mut bad.instrs[p.index()].op {
            pairs.push((2, 1));
        }
        assert!(bad.verify().is_err());
    }

    #[test]
    fn dense_parameter_indices_required() {
        // copy_of preserves indices; dropping a parameter should fail verify.
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[2]), "x");
        let y = b.parameter(f32s(&[2]), "y");
        let s = b.add(x, y, "s");
        let m = b.build(vec![s]);

        let mut b2 = Builder::new("m2", 1);
        let y2 = b2.copy_of(&m, y, vec![]);
        let m2 = b2.build(vec![y2]);
        assert!(m2.verify().is_err());
    }
}
