//! Structural and shape verification of modules.

use crate::{FusionId, HloError, InstrId, Module, ModuleAnalysis, Op, Shape, WireFormat};

/// Environment variable that, when set to a non-empty value other than
/// `0`, makes [`Module::verify_incremental`] additionally run the full
/// verifier and assert the two agree (the `--full-verify` debug path).
pub const FULL_VERIFY_ENV: &str = "OVERLAP_FULL_VERIFY";

fn full_verify_requested() -> bool {
    std::env::var(FULL_VERIFY_ENV).is_ok_and(|v| !v.is_empty() && v != "0")
}

impl Module {
    /// Verifies every structural and shape invariant of the module.
    ///
    /// Checks, for each instruction:
    ///
    /// * operands exist and precede their user (arena order is topological);
    /// * operand arity matches the op;
    /// * the declared result shape agrees with shape inference;
    /// * replica groups partition `0..num_partitions`, permute destinations
    ///   are unique, collective dims are in range;
    /// * every `CollectivePermuteStart` has **exactly one**
    ///   `CollectivePermuteDone` user and `Done`s consume only `Start`s;
    /// * parameter indices are dense `0..k` without duplicates;
    /// * outputs exist; fusion groups are well-formed and each group's
    ///   non-root members are used only within the group.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as an [`HloError`].
    pub fn verify(&self) -> Result<(), HloError> {
        let mut param_indices: Vec<usize> = Vec::new();
        for (id, ins) in self.iter() {
            for &o in ins.operands() {
                if o.index() >= self.instrs.len() {
                    return Err(HloError::DanglingOperand {
                        instr: ins.name().to_string(),
                        operand: o.index(),
                    });
                }
                if o >= id {
                    return Err(HloError::NotADag(format!(
                        "{} uses {} which does not precede it",
                        ins.name(),
                        self.instr(o).name()
                    )));
                }
            }
            self.check_instr(id)?;
            if let Op::Parameter { index } = ins.op() {
                param_indices.push(*index);
            }
        }
        param_indices.sort_unstable();
        for (i, &p) in param_indices.iter().enumerate() {
            if p != i {
                return Err(HloError::Verification(format!(
                    "parameter indices not dense: expected {i}, found {p}"
                )));
            }
        }
        for &o in &self.outputs {
            if o.index() >= self.instrs.len() {
                return Err(HloError::Verification(format!("output {o} out of range")));
            }
        }
        self.check_start_done_pairing(&self.users())?;
        self.check_fusion_groups(&self.users(), &self.fusion_of())?;
        Ok(())
    }

    /// Incremental verification: per-instruction checks (operand
    /// existence and ordering, shape inference) run only for instructions
    /// at or above the analysis' verified watermark, while the cheap
    /// global invariants (parameter-index density, output range,
    /// start/done pairing, fusion-group well-formedness) are re-checked
    /// every time using the analysis' maintained tables instead of fresh
    /// whole-module index builds.
    ///
    /// With a fresh [`ModuleAnalysis::of`] (watermark zero) this accepts
    /// exactly the modules [`Module::verify`] accepts; with an analysis
    /// carried from [`Builder::build_with_analysis`](crate::Builder) the
    /// per-instruction work was already done at append time and is
    /// skipped. On success the watermark advances to cover the whole
    /// module.
    ///
    /// Setting the [`FULL_VERIFY_ENV`] environment variable (the
    /// `--full-verify` debug path) additionally runs the full verifier
    /// and panics if the two disagree.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as an [`HloError`].
    ///
    /// # Panics
    ///
    /// Panics if `analysis` does not cover this module, or — under
    /// [`FULL_VERIFY_ENV`] — if the incremental and full verifiers
    /// disagree.
    pub fn verify_incremental(&self, analysis: &mut ModuleAnalysis) -> Result<(), HloError> {
        assert_eq!(analysis.len(), self.len(), "analysis does not cover module");
        let result = self.verify_incremental_impl(analysis);
        if full_verify_requested() {
            let full = self.verify();
            assert_eq!(
                result.is_ok(),
                full.is_ok(),
                "incremental verifier disagrees with full verifier: \
                 incremental {result:?}, full {full:?}"
            );
        }
        if result.is_ok() {
            analysis.set_verified(self.len());
        }
        result
    }

    fn verify_incremental_impl(&self, analysis: &ModuleAnalysis) -> Result<(), HloError> {
        for (id, ins) in self.iter().skip(analysis.verified_len()) {
            for &o in ins.operands() {
                if o.index() >= self.instrs.len() {
                    return Err(HloError::DanglingOperand {
                        instr: ins.name().to_string(),
                        operand: o.index(),
                    });
                }
                if o >= id {
                    return Err(HloError::NotADag(format!(
                        "{} uses {} which does not precede it",
                        ins.name(),
                        self.instr(o).name()
                    )));
                }
            }
            self.check_instr(id)?;
        }
        // Global invariants are cheap relative to shape inference and a
        // pass rewrite can violate them without touching any single
        // instruction, so they always run in full — against the
        // maintained tables rather than fresh index builds.
        let mut param_indices: Vec<usize> = self
            .iter()
            .filter_map(|(_, ins)| match ins.op() {
                Op::Parameter { index } => Some(*index),
                _ => None,
            })
            .collect();
        param_indices.sort_unstable();
        for (i, &p) in param_indices.iter().enumerate() {
            if p != i {
                return Err(HloError::Verification(format!(
                    "parameter indices not dense: expected {i}, found {p}"
                )));
            }
        }
        for &o in &self.outputs {
            if o.index() >= self.instrs.len() {
                return Err(HloError::Verification(format!("output {o} out of range")));
            }
        }
        self.check_start_done_pairing(analysis.users())?;
        self.check_fusion_groups(analysis.users(), analysis.fusion())?;
        Ok(())
    }

    fn mismatch(&self, id: InstrId, message: String) -> HloError {
        HloError::ShapeMismatch { instr: self.instr(id).name().to_string(), message }
    }

    fn check_wire(&self, id: InstrId, wire: WireFormat) -> Result<(), HloError> {
        wire.validate().map_err(|e| {
            HloError::Verification(format!("{}: {e}", self.instr(id).name()))
        })
    }

    fn expect_arity(&self, id: InstrId, arity: usize) -> Result<(), HloError> {
        let got = self.instr(id).operands().len();
        if got != arity {
            return Err(self.mismatch(id, format!("expected {arity} operands, got {got}")));
        }
        Ok(())
    }

    fn expect_shape(&self, id: InstrId, expected: &Shape) -> Result<(), HloError> {
        let got = self.shape_of(id);
        if got != expected {
            return Err(self.mismatch(id, format!("declared {got}, inferred {expected}")));
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn check_instr(&self, id: InstrId) -> Result<(), HloError> {
        let ins = self.instr(id);
        let shape = ins.shape();
        let operand = |i: usize| self.shape_of(ins.operands()[i]);
        match ins.op() {
            Op::ConstantTensor { values } => {
                self.expect_arity(id, 0)?;
                if values.len() != shape.num_elements() {
                    return Err(self.mismatch(
                        id,
                        format!("{} values for shape {shape}", values.len()),
                    ));
                }
            }
            Op::Parameter { .. } | Op::Constant { .. } | Op::PartitionId => {
                self.expect_arity(id, 0)?;
                if matches!(ins.op(), Op::PartitionId) && !shape.is_scalar() {
                    return Err(self.mismatch(id, "partition-id must be scalar".into()));
                }
            }
            Op::Iota { dim } => {
                self.expect_arity(id, 0)?;
                if *dim >= shape.rank() {
                    return Err(self.mismatch(id, format!("iota dim {dim} out of range")));
                }
            }
            Op::Broadcast { operand_dims } => {
                self.expect_arity(id, 1)?;
                let xs = operand(0);
                if operand_dims.len() != xs.rank() {
                    return Err(self.mismatch(id, "broadcast mapping arity".into()));
                }
                for (i, &d) in operand_dims.iter().enumerate() {
                    if d >= shape.rank()
                        || (i > 0 && operand_dims[i - 1] >= d)
                        || xs.dim(i) != shape.dim(d)
                    {
                        return Err(self.mismatch(id, format!("broadcast dim {i} invalid")));
                    }
                }
                if xs.dtype() != shape.dtype() {
                    return Err(self.mismatch(id, "broadcast dtype".into()));
                }
            }
            Op::Reshape => {
                self.expect_arity(id, 1)?;
                let xs = operand(0);
                if xs.num_elements() != shape.num_elements() || xs.dtype() != shape.dtype() {
                    return Err(self.mismatch(id, format!("reshape {xs} -> {shape}")));
                }
            }
            Op::Transpose { perm } => {
                self.expect_arity(id, 1)?;
                let xs = operand(0);
                let mut sorted = perm.clone();
                sorted.sort_unstable();
                if sorted != (0..xs.rank()).collect::<Vec<_>>() {
                    return Err(self.mismatch(id, "transpose perm not a permutation".into()));
                }
                let dims: Vec<usize> = perm.iter().map(|&p| xs.dim(p)).collect();
                self.expect_shape(id, &Shape::new(xs.dtype(), dims))?;
            }
            Op::Slice { starts, limits } => {
                self.expect_arity(id, 1)?;
                let xs = operand(0);
                if starts.len() != xs.rank() || limits.len() != xs.rank() {
                    return Err(self.mismatch(id, "slice arity".into()));
                }
                let mut dims = Vec::with_capacity(xs.rank());
                for d in 0..xs.rank() {
                    if starts[d] > limits[d] || limits[d] > xs.dim(d) {
                        return Err(self.mismatch(id, format!("slice bounds at dim {d}")));
                    }
                    dims.push(limits[d] - starts[d]);
                }
                self.expect_shape(id, &Shape::new(xs.dtype(), dims))?;
            }
            Op::DynamicSlice { sizes } => {
                let xs = operand(0).clone();
                self.expect_arity(id, 1 + xs.rank())?;
                if sizes.len() != xs.rank() {
                    return Err(self.mismatch(id, "dynamic-slice sizes arity".into()));
                }
                for (d, &s) in sizes.iter().enumerate() {
                    if s > xs.dim(d) {
                        return Err(self.mismatch(id, format!("dynamic-slice size at dim {d}")));
                    }
                }
                for i in 0..xs.rank() {
                    let idx = operand(1 + i);
                    if !idx.is_scalar() || !idx.dtype().is_integer() {
                        return Err(self.mismatch(id, format!("index {i} not integer scalar")));
                    }
                }
                self.expect_shape(id, &Shape::new(xs.dtype(), sizes.clone()))?;
            }
            Op::DynamicUpdateSlice => {
                let xs = operand(0).clone();
                self.expect_arity(id, 2 + xs.rank())?;
                let us = operand(1);
                if us.rank() != xs.rank() || us.dtype() != xs.dtype() {
                    return Err(self.mismatch(id, "update rank/dtype".into()));
                }
                for d in 0..xs.rank() {
                    if us.dim(d) > xs.dim(d) {
                        return Err(self.mismatch(id, format!("update dim {d} too large")));
                    }
                }
                for i in 0..xs.rank() {
                    let idx = operand(2 + i);
                    if !idx.is_scalar() || !idx.dtype().is_integer() {
                        return Err(self.mismatch(id, format!("index {i} not integer scalar")));
                    }
                }
                self.expect_shape(id, &xs)?;
            }
            Op::Concatenate { dim } => {
                if ins.operands().is_empty() {
                    return Err(self.mismatch(id, "concatenate needs operands".into()));
                }
                let first = operand(0).clone();
                if *dim >= first.rank() {
                    return Err(self.mismatch(id, "concatenate dim out of range".into()));
                }
                let mut total = 0;
                for i in 0..ins.operands().len() {
                    let s = operand(i);
                    if s.rank() != first.rank() || s.dtype() != first.dtype() {
                        return Err(self.mismatch(id, format!("operand {i} rank/dtype")));
                    }
                    for d in 0..first.rank() {
                        if d != *dim && s.dim(d) != first.dim(d) {
                            return Err(self.mismatch(id, format!("operand {i} off-dim {d}")));
                        }
                    }
                    total += s.dim(*dim);
                }
                self.expect_shape(id, &first.with_dim(*dim, total))?;
            }
            Op::Pad { config } => {
                self.expect_arity(id, 2)?;
                let xs = operand(0);
                let vs = operand(1);
                if !vs.is_scalar() || vs.dtype() != xs.dtype() {
                    return Err(self.mismatch(id, "pad value".into()));
                }
                if config.len() != xs.rank() {
                    return Err(self.mismatch(id, "pad config arity".into()));
                }
                let dims: Vec<usize> = xs
                    .dims()
                    .iter()
                    .zip(config)
                    .map(|(&d, p)| d + p.low + p.high)
                    .collect();
                self.expect_shape(id, &Shape::new(xs.dtype(), dims))?;
            }
            Op::Binary(_) => {
                self.expect_arity(id, 2)?;
                if operand(0) != operand(1) {
                    return Err(self.mismatch(id, "binary operand shapes differ".into()));
                }
                self.expect_shape(id, &operand(0).clone())?;
            }
            Op::Unary(_) | Op::Copy => {
                self.expect_arity(id, 1)?;
                self.expect_shape(id, &operand(0).clone())?;
            }
            Op::Einsum(dims) => {
                self.expect_arity(id, 2)?;
                let out = dims
                    .output_shape(operand(0), operand(1))
                    .map_err(|e| self.mismatch(id, e.to_string()))?;
                self.expect_shape(id, &out)?;
            }
            Op::AllGather { dim, groups, wire } => {
                self.expect_arity(id, 1)?;
                let xs = operand(0);
                if *dim >= xs.rank() {
                    return Err(self.mismatch(id, "all-gather dim".into()));
                }
                groups.validate(self.num_partitions)?;
                self.check_wire(id, *wire)?;
                self.expect_shape(id, &xs.with_dim_scaled(*dim, groups.group_size()))?;
            }
            Op::ReduceScatter { dim, groups, wire } => {
                self.expect_arity(id, 1)?;
                let xs = operand(0);
                if *dim >= xs.rank() || xs.dim(*dim) % groups.group_size() != 0 {
                    return Err(self.mismatch(id, "reduce-scatter dim".into()));
                }
                groups.validate(self.num_partitions)?;
                self.check_wire(id, *wire)?;
                self.expect_shape(id, &xs.with_dim_divided(*dim, groups.group_size()))?;
            }
            Op::AllReduce { groups, wire } => {
                self.expect_arity(id, 1)?;
                groups.validate(self.num_partitions)?;
                self.check_wire(id, *wire)?;
                self.expect_shape(id, &operand(0).clone())?;
            }
            Op::AllToAll { split_dim, concat_dim, groups } => {
                self.expect_arity(id, 1)?;
                let xs = operand(0);
                let g = groups.group_size();
                if *split_dim >= xs.rank()
                    || *concat_dim >= xs.rank()
                    || xs.dim(*split_dim) % g != 0
                {
                    return Err(self.mismatch(id, "all-to-all dims".into()));
                }
                groups.validate(self.num_partitions)?;
                self.expect_shape(
                    id,
                    &xs.with_dim_divided(*split_dim, g).with_dim_scaled(*concat_dim, g),
                )?;
            }
            Op::CollectivePermute { pairs, wire } | Op::CollectivePermuteStart { pairs, wire } => {
                self.expect_arity(id, 1)?;
                self.check_wire(id, *wire)?;
                let n = self.num_partitions as u32;
                let mut dsts: Vec<u32> = pairs.iter().map(|&(_, d)| d).collect();
                dsts.sort_unstable();
                let before = dsts.len();
                dsts.dedup();
                if dsts.len() != before {
                    return Err(HloError::InvalidPermutePairs(format!(
                        "{}: duplicate destination",
                        ins.name()
                    )));
                }
                if pairs.iter().any(|&(s, d)| s >= n || d >= n) {
                    return Err(HloError::InvalidPermutePairs(format!(
                        "{}: id out of range",
                        ins.name()
                    )));
                }
                self.expect_shape(id, &operand(0).clone())?;
            }
            Op::CollectivePermuteDone => {
                self.expect_arity(id, 1)?;
                if !matches!(
                    self.instr(ins.operands()[0]).op(),
                    Op::CollectivePermuteStart { .. }
                ) {
                    return Err(self.mismatch(id, "done operand must be a start".into()));
                }
                self.expect_shape(id, &operand(0).clone())?;
            }
        }
        Ok(())
    }

    fn check_start_done_pairing(&self, users: &[Vec<InstrId>]) -> Result<(), HloError> {
        for (id, ins) in self.iter() {
            if matches!(ins.op(), Op::CollectivePermuteStart { .. }) {
                let dones = users[id.index()]
                    .iter()
                    .filter(|&&u| matches!(self.instr(u).op(), Op::CollectivePermuteDone))
                    .count();
                let others = users[id.index()].len() - dones;
                if dones != 1 || others != 0 {
                    return Err(HloError::Verification(format!(
                        "{} must have exactly one done user (found {dones} dones, {others} other users)",
                        ins.name()
                    )));
                }
            }
        }
        Ok(())
    }

    fn check_fusion_groups(
        &self,
        users: &[Vec<InstrId>],
        fusion_of: &[Option<FusionId>],
    ) -> Result<(), HloError> {
        for (gi, g) in self.fusion_groups.iter().enumerate() {
            if !g.members.contains(&g.root) {
                return Err(HloError::InvalidFusion(format!("group {gi} root not a member")));
            }
            for &m in &g.members {
                if m.index() >= self.instrs.len() {
                    return Err(HloError::InvalidFusion(format!("group {gi}: unknown id {m}")));
                }
                if m != g.root {
                    // Non-root members must not escape the group.
                    for &u in &users[m.index()] {
                        if fusion_of[u.index()] != Some(FusionId(gi as u32)) {
                            return Err(HloError::InvalidFusion(format!(
                                "group {gi}: non-root member {} used outside the group by {}",
                                self.instr(m).name(),
                                self.instr(u).name()
                            )));
                        }
                    }
                    if self.outputs.contains(&m) {
                        return Err(HloError::InvalidFusion(format!(
                            "group {gi}: non-root member {} is a module output",
                            self.instr(m).name()
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{Builder, DType, DotDims, FusionGroup, ReplicaGroups, Shape};

    fn f32s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    #[test]
    fn valid_module_passes() {
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[4, 8]), "x");
        let w = b.parameter(f32s(&[4, 16]), "w");
        let wg = b.all_gather(w, 0, ReplicaGroups::full(2), "wg");
        let y = b.einsum(x, wg, DotDims::new(vec![], vec![(1, 0)]).unwrap(), "y");
        b.build(vec![y]).verify().unwrap();
    }

    #[test]
    fn start_with_two_dones_rejected() {
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[4]), "x");
        let s = b.collective_permute_start(x, vec![(0, 1), (1, 0)], "s");
        let d1 = b.collective_permute_done(s, "d1");
        let d2 = b.collective_permute_done(s, "d2");
        let m = b.build(vec![d1, d2]);
        assert!(m.verify().is_err());
    }

    #[test]
    fn start_without_done_rejected() {
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[4]), "x");
        let s = b.collective_permute_start(x, vec![(0, 1), (1, 0)], "s");
        let m = b.build(vec![s]);
        assert!(m.verify().is_err());
    }

    #[test]
    fn escaping_fusion_member_rejected() {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[4]), "x");
        let c = b.copy(x, "c");
        let d = b.copy(c, "d");
        let e = b.copy(c, "e"); // uses c outside the would-be group
        let m = b.build(vec![d, e]);
        let bad = m
            .with_fusion_groups(vec![FusionGroup { members: vec![c, d], root: d }])
            .unwrap();
        assert!(bad.verify().is_err());
    }

    #[test]
    fn fusion_group_with_root_use_ok() {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[4]), "x");
        let c = b.copy(x, "c");
        let d = b.copy(c, "d");
        let e = b.copy(d, "e");
        let m = b.build(vec![e]);
        let good = m
            .with_fusion_groups(vec![FusionGroup { members: vec![c, d], root: d }])
            .unwrap();
        good.verify().unwrap();
    }

    /// Corrupt a valid module in-place and check the verifier rejects it
    /// (the builder can never produce these states; passes could if
    /// buggy).
    #[test]
    fn verifier_rejects_corrupted_modules() {
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[4, 4]), "x");
        let w = b.parameter(f32s(&[4, 4]), "w");
        let y = b.einsum(x, w, DotDims::matmul(), "y");
        let good = b.build(vec![y]);
        good.verify().unwrap();

        // Wrong declared result shape.
        let mut bad = good.clone();
        bad.instrs[y.index()].shape = f32s(&[4, 5]);
        assert!(bad.verify().is_err());

        // Dangling operand id.
        let mut bad = good.clone();
        bad.instrs[y.index()].operands[1] = crate::InstrId::from_index(99);
        assert!(bad.verify().is_err());

        // Use-before-def (operand id larger than user id).
        let mut bad = good.clone();
        bad.instrs[x.index()].op = crate::Op::Copy;
        bad.instrs[x.index()].operands = vec![y];
        assert!(bad.verify().is_err());

        // Duplicate parameter index.
        let mut bad = good.clone();
        bad.instrs[w.index()].op = crate::Op::Parameter { index: 0 };
        assert!(bad.verify().is_err());

        // Out-of-range output.
        let mut bad = good.clone();
        bad.outputs = vec![crate::InstrId::from_index(42)];
        assert!(bad.verify().is_err());

        // Binary with mismatched operand shapes.
        let mut bad = good.clone();
        bad.instrs[y.index()].op = crate::Op::Binary(crate::BinaryKind::Add);
        bad.instrs[y.index()].shape = f32s(&[4, 4]);
        // x and w have the same shape; corrupt w's shape too.
        bad.instrs[w.index()].shape = f32s(&[4, 5]);
        assert!(bad.verify().is_err());
    }

    #[test]
    fn verifier_rejects_bad_collective_metadata() {
        let mut b = Builder::new("m", 4);
        let x = b.parameter(f32s(&[4, 4]), "x");
        let g = b.all_gather(x, 0, crate::ReplicaGroups::full(4), "g");
        let good = b.build(vec![g]);
        good.verify().unwrap();

        // Gather dim out of range.
        let mut bad = good.clone();
        if let crate::Op::AllGather { dim, .. } = &mut bad.instrs[g.index()].op {
            *dim = 9;
        }
        assert!(bad.verify().is_err());

        // Permute with duplicate destination.
        let mut b = Builder::new("m", 4);
        let x = b.parameter(f32s(&[4]), "x");
        let p = b.collective_permute(x, vec![(0, 1), (1, 2)], "p");
        let mut bad = b.build(vec![p]);
        if let crate::Op::CollectivePermute { pairs, .. } = &mut bad.instrs[p.index()].op {
            pairs.push((2, 1));
        }
        assert!(bad.verify().is_err());
    }

    /// A valid module exercising parameters, a gather/einsum pair, an
    /// async permute pair and an elementwise join — one instance of every
    /// structure the corruption catalogue below mutates.
    fn equivalence_module() -> crate::Module {
        let mut b = Builder::new("eq", 4);
        let x = b.parameter(f32s(&[4, 8]), "x");
        let w = b.parameter(f32s(&[2, 16]), "w");
        let wg = b.all_gather(w, 0, crate::ReplicaGroups::full(4), "wg");
        let y = b.einsum(x, wg, DotDims::new(vec![], vec![(1, 0)]).unwrap(), "y");
        let s = b.collective_permute_start(y, vec![(0, 1), (1, 2), (2, 3), (3, 0)], "s");
        let d = b.collective_permute_done(s, "d");
        let z = b.add(d, y, "z");
        b.build(vec![z])
    }

    /// Corruption catalogue for the full-vs-incremental equivalence
    /// property: kind 0 is the identity, every other kind produces a
    /// module the full verifier rejects.
    fn corrupted(kind: usize) -> crate::Module {
        let mut m = equivalence_module();
        match kind {
            0 => {}
            // Wrong declared result shape.
            1 => m.instrs[3].shape = f32s(&[4, 5]),
            // Dangling operand id.
            2 => m.instrs[3].operands[1] = crate::InstrId::from_index(99),
            // Use-before-def.
            3 => {
                m.instrs[0].op = crate::Op::Copy;
                m.instrs[0].operands = vec![crate::InstrId::from_index(3)];
            }
            // Duplicate parameter index.
            4 => m.instrs[1].op = crate::Op::Parameter { index: 0 },
            // Out-of-range output.
            5 => m.outputs = vec![crate::InstrId::from_index(42)],
            // Permute with a duplicate destination.
            6 => {
                if let crate::Op::CollectivePermuteStart { pairs, .. } = &mut m.instrs[4].op {
                    pairs.push((2, 3));
                }
            }
            // Start without its done.
            7 => {
                m.instrs[5].op = crate::Op::Copy;
            }
            // Gather dim out of range.
            _ => {
                if let crate::Op::AllGather { dim, .. } = &mut m.instrs[2].op {
                    *dim = 9;
                }
            }
        }
        m
    }

    const CORRUPTION_KINDS: usize = 9;

    /// The incremental verifier (from an unverified analysis) accepts a
    /// module if and only if the full verifier does.
    #[test]
    fn incremental_verify_matches_full_verify_on_catalogue() {
        for kind in 0..CORRUPTION_KINDS {
            let m = corrupted(kind);
            let full = m.verify();
            let mut analysis = crate::ModuleAnalysis::of(&m);
            let inc = m.verify_incremental(&mut analysis);
            assert_eq!(
                full.is_ok(),
                inc.is_ok(),
                "kind {kind}: full {full:?} vs incremental {inc:?}"
            );
            assert_eq!(kind == 0, full.is_ok(), "catalogue kind {kind} sanity");
            if inc.is_ok() {
                // A passing incremental verify advances the watermark.
                assert_eq!(analysis.verified_len(), m.len());
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Random corruption draws agree between the two verifiers (the
        /// deterministic catalogue test above covers every kind; this
        /// re-checks the property through proptest's shrinking driver).
        #[test]
        fn incremental_verify_matches_full_verify(kind in 0usize..9) {
            let m = corrupted(kind);
            let full = m.verify();
            let mut analysis = crate::ModuleAnalysis::of(&m);
            let inc = m.verify_incremental(&mut analysis);
            proptest::prop_assert_eq!(full.is_ok(), inc.is_ok());
        }
    }

    /// Past the watermark nothing is re-checked: per-instruction damage
    /// below `verified_len` is invisible to the incremental verifier (the
    /// `OVERLAP_FULL_VERIFY` cross-check exists to catch exactly this
    /// class of pass bug in debugging sessions).
    #[test]
    fn incremental_verify_skips_verified_prefix() {
        let good = equivalence_module();
        let mut analysis = crate::ModuleAnalysis::of(&good);
        good.verify_incremental(&mut analysis).unwrap();
        assert_eq!(analysis.verified_len(), good.len());

        let mut bad = good.clone();
        bad.instrs[3].shape = f32s(&[4, 5]);
        assert!(bad.verify().is_err());
        assert!(bad.verify_incremental(&mut analysis).is_ok());
    }

    #[test]
    fn dense_parameter_indices_required() {
        // copy_of preserves indices; dropping a parameter should fail verify.
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[2]), "x");
        let y = b.parameter(f32s(&[2]), "y");
        let s = b.add(x, y, "s");
        let m = b.build(vec![s]);

        let mut b2 = Builder::new("m2", 1);
        let y2 = b2.copy_of(&m, y, vec![]);
        let m2 = b2.build(vec![y2]);
        assert!(m2.verify().is_err());
    }
}
