//! Einsum (XLA `DotGeneral`) dimension numbers and shape/flop inference.

use serde::{Deserialize, Serialize};

use crate::{HloError, Shape};

/// Dimension numbers of an `Einsum` (general dot product), following XLA's
/// `DotGeneral` convention.
///
/// Dimensions of each operand are classified as *batch* (paired between the
/// operands and present in the output), *contracting* (paired and summed
/// away) or *free* (present in only one operand; the paper calls these
/// *non-contracting* dimensions). The output layout is
/// `batch dims ++ lhs free dims ++ rhs free dims`.
///
/// # Example
///
/// ```
/// use overlap_hlo::{DotDims, DType, Shape};
/// // Batched matmul: [B, M, K] x [B, K, N] -> [B, M, N]
/// let dims = DotDims::new(vec![(0, 0)], vec![(2, 1)]).unwrap();
/// let lhs = Shape::new(DType::F32, vec![4, 8, 16]);
/// let rhs = Shape::new(DType::F32, vec![4, 16, 32]);
/// let out = dims.output_shape(&lhs, &rhs).unwrap();
/// assert_eq!(out.dims(), &[4, 8, 32]);
/// assert_eq!(dims.flops(&lhs, &rhs), 2 * 4 * 8 * 16 * 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DotDims {
    batch: Vec<(usize, usize)>,
    contracting: Vec<(usize, usize)>,
}

impl DotDims {
    /// Creates dot dimension numbers from `(lhs_dim, rhs_dim)` pairs of
    /// batch and contracting dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`HloError::InvalidEinsum`] if any dimension appears in more
    /// than one pair on the same side.
    pub fn new(
        batch: Vec<(usize, usize)>,
        contracting: Vec<(usize, usize)>,
    ) -> Result<Self, HloError> {
        let dims = DotDims { batch, contracting };
        for side in [true, false] {
            let mut seen: Vec<usize> = dims
                .batch
                .iter()
                .chain(dims.contracting.iter())
                .map(|&(l, r)| if side { l } else { r })
                .collect();
            seen.sort_unstable();
            let before = seen.len();
            seen.dedup();
            if seen.len() != before {
                return Err(HloError::InvalidEinsum(
                    "a dimension appears in multiple batch/contracting pairs".to_string(),
                ));
            }
        }
        Ok(dims)
    }

    /// Unchecked construction for the wire layer (`crate::json`): a
    /// decoded module is untrusted and shape inference in the verifier
    /// rejects malformed dimension numbers, mirroring what a derived
    /// `Deserialize` would permit.
    pub(crate) fn from_raw(
        batch: Vec<(usize, usize)>,
        contracting: Vec<(usize, usize)>,
    ) -> Self {
        DotDims { batch, contracting }
    }

    /// Plain 2-D matrix multiplication: `[M, K] x [K, N] -> [M, N]`.
    #[must_use]
    pub fn matmul() -> Self {
        DotDims { batch: Vec::new(), contracting: vec![(1, 0)] }
    }

    /// Batched matrix multiplication: `[B, M, K] x [B, K, N] -> [B, M, N]`.
    #[must_use]
    pub fn batch_matmul() -> Self {
        DotDims { batch: vec![(0, 0)], contracting: vec![(2, 1)] }
    }

    /// The `(lhs, rhs)` batch dimension pairs.
    #[must_use]
    pub fn batch(&self) -> &[(usize, usize)] {
        &self.batch
    }

    /// The `(lhs, rhs)` contracting dimension pairs.
    #[must_use]
    pub fn contracting(&self) -> &[(usize, usize)] {
        &self.contracting
    }

    /// LHS dimensions that are neither batch nor contracting, in order.
    #[must_use]
    pub fn lhs_free_dims(&self, lhs_rank: usize) -> Vec<usize> {
        (0..lhs_rank)
            .filter(|d| {
                !self.batch.iter().any(|&(l, _)| l == *d)
                    && !self.contracting.iter().any(|&(l, _)| l == *d)
            })
            .collect()
    }

    /// RHS dimensions that are neither batch nor contracting, in order.
    #[must_use]
    pub fn rhs_free_dims(&self, rhs_rank: usize) -> Vec<usize> {
        (0..rhs_rank)
            .filter(|d| {
                !self.batch.iter().any(|&(_, r)| r == *d)
                    && !self.contracting.iter().any(|&(_, r)| r == *d)
            })
            .collect()
    }

    /// Whether `lhs_dim` is a batch dimension of the LHS.
    #[must_use]
    pub fn is_lhs_batch(&self, lhs_dim: usize) -> bool {
        self.batch.iter().any(|&(l, _)| l == lhs_dim)
    }

    /// Whether `lhs_dim` is a contracting dimension of the LHS.
    #[must_use]
    pub fn is_lhs_contracting(&self, lhs_dim: usize) -> bool {
        self.contracting.iter().any(|&(l, _)| l == lhs_dim)
    }

    /// Whether `rhs_dim` is a batch dimension of the RHS.
    #[must_use]
    pub fn is_rhs_batch(&self, rhs_dim: usize) -> bool {
        self.batch.iter().any(|&(_, r)| r == rhs_dim)
    }

    /// Whether `rhs_dim` is a contracting dimension of the RHS.
    #[must_use]
    pub fn is_rhs_contracting(&self, rhs_dim: usize) -> bool {
        self.contracting.iter().any(|&(_, r)| r == rhs_dim)
    }

    /// The RHS dimension paired (as batch or contracting) with `lhs_dim`,
    /// if any.
    #[must_use]
    pub fn rhs_dim_paired_with(&self, lhs_dim: usize) -> Option<usize> {
        self.batch
            .iter()
            .chain(self.contracting.iter())
            .find(|&&(l, _)| l == lhs_dim)
            .map(|&(_, r)| r)
    }

    /// The LHS dimension paired (as batch or contracting) with `rhs_dim`,
    /// if any.
    #[must_use]
    pub fn lhs_dim_paired_with(&self, rhs_dim: usize) -> Option<usize> {
        self.batch
            .iter()
            .chain(self.contracting.iter())
            .find(|&&(_, r)| r == rhs_dim)
            .map(|&(l, _)| l)
    }

    /// Returns the transposed dimension numbers with LHS and RHS swapped.
    ///
    /// `swap().output_shape(rhs, lhs)` has the same dimension *sizes* as
    /// `output_shape(lhs, rhs)` but with the free-dimension blocks exchanged.
    #[must_use]
    pub fn swapped(&self) -> Self {
        DotDims {
            batch: self.batch.iter().map(|&(l, r)| (r, l)).collect(),
            contracting: self.contracting.iter().map(|&(l, r)| (r, l)).collect(),
        }
    }

    /// Position of `lhs_dim` (a free LHS dimension) in the output, if free.
    #[must_use]
    pub fn output_dim_of_lhs_free(&self, lhs_rank: usize, lhs_dim: usize) -> Option<usize> {
        let free = self.lhs_free_dims(lhs_rank);
        free.iter().position(|&d| d == lhs_dim).map(|i| self.batch.len() + i)
    }

    /// Position of `rhs_dim` (a free RHS dimension) in the output, if free.
    #[must_use]
    pub fn output_dim_of_rhs_free(
        &self,
        lhs_rank: usize,
        rhs_rank: usize,
        rhs_dim: usize,
    ) -> Option<usize> {
        let free = self.rhs_free_dims(rhs_rank);
        free.iter()
            .position(|&d| d == rhs_dim)
            .map(|i| self.batch.len() + self.lhs_free_dims(lhs_rank).len() + i)
    }

    /// Position of the `i`-th batch pair in the output (batch dims lead).
    #[must_use]
    pub fn output_dim_of_batch(&self, batch_index: usize) -> usize {
        batch_index
    }

    /// Infers the output shape for the given operand shapes.
    ///
    /// # Errors
    ///
    /// Returns [`HloError::InvalidEinsum`] if a referenced dimension is out
    /// of range or a paired dimension's sizes disagree.
    pub fn output_shape(&self, lhs: &Shape, rhs: &Shape) -> Result<Shape, HloError> {
        for &(l, r) in self.batch.iter().chain(self.contracting.iter()) {
            if l >= lhs.rank() || r >= rhs.rank() {
                return Err(HloError::InvalidEinsum(format!(
                    "dimension pair ({l},{r}) out of range for {lhs} x {rhs}"
                )));
            }
            if lhs.dim(l) != rhs.dim(r) {
                return Err(HloError::InvalidEinsum(format!(
                    "paired dimensions disagree: lhs dim {l} = {} vs rhs dim {r} = {}",
                    lhs.dim(l),
                    rhs.dim(r)
                )));
            }
        }
        if lhs.dtype() != rhs.dtype() {
            return Err(HloError::InvalidEinsum(format!(
                "operand dtypes disagree: {} vs {}",
                lhs.dtype(),
                rhs.dtype()
            )));
        }
        let mut dims: Vec<usize> = self.batch.iter().map(|&(l, _)| lhs.dim(l)).collect();
        dims.extend(self.lhs_free_dims(lhs.rank()).iter().map(|&d| lhs.dim(d)));
        dims.extend(self.rhs_free_dims(rhs.rank()).iter().map(|&d| rhs.dim(d)));
        Ok(Shape::new(lhs.dtype(), dims))
    }

    /// Number of floating-point operations (multiply + add counted
    /// separately, the usual `2·M·N·K` convention).
    #[must_use]
    pub fn flops(&self, lhs: &Shape, rhs: &Shape) -> u64 {
        let batch: u64 = self.batch.iter().map(|&(l, _)| lhs.dim(l) as u64).product();
        let contract: u64 = self.contracting.iter().map(|&(l, _)| lhs.dim(l) as u64).product();
        let lhs_free: u64 =
            self.lhs_free_dims(lhs.rank()).iter().map(|&d| lhs.dim(d) as u64).product();
        let rhs_free: u64 =
            self.rhs_free_dims(rhs.rank()).iter().map(|&d| rhs.dim(d) as u64).product();
        2 * batch * contract * lhs_free * rhs_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DType;

    fn s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    #[test]
    fn matmul_shape() {
        let d = DotDims::matmul();
        let out = d.output_shape(&s(&[8, 16]), &s(&[16, 32])).unwrap();
        assert_eq!(out.dims(), &[8, 32]);
        assert_eq!(d.flops(&s(&[8, 16]), &s(&[16, 32])), 2 * 8 * 16 * 32);
    }

    #[test]
    fn batch_matmul_shape() {
        let d = DotDims::batch_matmul();
        let out = d.output_shape(&s(&[3, 8, 16]), &s(&[3, 16, 4])).unwrap();
        assert_eq!(out.dims(), &[3, 8, 4]);
    }

    #[test]
    fn free_dims() {
        let d = DotDims::batch_matmul();
        assert_eq!(d.lhs_free_dims(3), vec![1]);
        assert_eq!(d.rhs_free_dims(3), vec![2]);
        assert!(d.is_lhs_batch(0));
        assert!(d.is_lhs_contracting(2));
        assert!(d.is_rhs_batch(0));
        assert!(d.is_rhs_contracting(1));
    }

    #[test]
    fn mismatched_sizes_rejected() {
        let d = DotDims::matmul();
        assert!(d.output_shape(&s(&[8, 16]), &s(&[17, 32])).is_err());
    }

    #[test]
    fn out_of_range_rejected() {
        let d = DotDims::new(vec![], vec![(5, 0)]).unwrap();
        assert!(d.output_shape(&s(&[8, 16]), &s(&[16, 4])).is_err());
    }

    #[test]
    fn duplicate_dims_rejected() {
        assert!(DotDims::new(vec![(0, 0)], vec![(0, 1)]).is_err());
        assert!(DotDims::new(vec![(0, 0)], vec![(1, 0)]).is_err());
    }

    #[test]
    fn dtype_mismatch_rejected() {
        let d = DotDims::matmul();
        let lhs = Shape::new(DType::F32, vec![2, 3]);
        let rhs = Shape::new(DType::BF16, vec![3, 4]);
        assert!(d.output_shape(&lhs, &rhs).is_err());
    }

    #[test]
    fn swapped_round_trips() {
        let d = DotDims::new(vec![(0, 1)], vec![(2, 0)]).unwrap();
        assert_eq!(d.swapped().swapped(), d);
    }

    #[test]
    fn output_positions() {
        // [B, M, K] x [K, B, N]: batch (0,1), contracting (2,0).
        let d = DotDims::new(vec![(0, 1)], vec![(2, 0)]).unwrap();
        assert_eq!(d.output_dim_of_lhs_free(3, 1), Some(1));
        assert_eq!(d.output_dim_of_rhs_free(3, 3, 2), Some(2));
        assert_eq!(d.output_dim_of_lhs_free(3, 0), None);
        assert_eq!(d.rhs_dim_paired_with(2), Some(0));
        assert_eq!(d.lhs_dim_paired_with(1), Some(0));
    }
}
