//! Text rendering of modules in an HLO-like format.

use std::fmt;

use crate::{Module, Op, WireFormat};

/// Appends `, wire=<fmt>` for annotated collectives. Lossless is the
/// implicit default and prints nothing, keeping pre-annotation renders
/// byte-identical.
fn write_wire(f: &mut fmt::Formatter<'_>, wire: WireFormat) -> fmt::Result {
    if wire.is_lossless() {
        Ok(())
    } else {
        write!(f, ", wire={}", wire.describe())
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "module {} (partitions={}) {{", self.name, self.num_partitions)?;
        let fusion_of = self.fusion_of();
        for (id, ins) in self.iter() {
            write!(f, "  {} = {} {}(", ins.name(), ins.shape(), ins.op().mnemonic())?;
            for (i, o) in ins.operands().iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.instr(*o).name())?;
            }
            write!(f, ")")?;
            match ins.op() {
                Op::Parameter { index } => write!(f, ", index={index}")?,
                Op::Constant { value } => write!(f, ", value={value}")?,
                Op::Einsum(d) => {
                    write!(f, ", batch={:?}, contracting={:?}", d.batch(), d.contracting())?;
                }
                Op::AllGather { dim, groups, wire } | Op::ReduceScatter { dim, groups, wire } => {
                    write!(f, ", dim={dim}, groups={:?}", groups.groups())?;
                    write_wire(f, *wire)?;
                }
                Op::AllToAll { split_dim, concat_dim, .. } => {
                    write!(f, ", split={split_dim}, concat={concat_dim}")?;
                }
                Op::AllReduce { wire, .. } => write_wire(f, *wire)?,
                Op::CollectivePermute { pairs, wire }
                | Op::CollectivePermuteStart { pairs, wire } => {
                    write!(f, ", pairs={pairs:?}")?;
                    write_wire(f, *wire)?;
                }
                Op::Concatenate { dim } => write!(f, ", dim={dim}")?,
                Op::DynamicSlice { sizes } => write!(f, ", sizes={sizes:?}")?,
                Op::Transpose { perm } => write!(f, ", perm={perm:?}")?,
                _ => {}
            }
            if let Some(g) = fusion_of[id.index()] {
                write!(f, ", fusion=f{}", g.index())?;
            }
            if let Some(tag) = ins.tag() {
                write!(f, ", tag={tag}")?;
            }
            writeln!(f)?;
        }
        write!(f, "  outputs: ")?;
        for (i, o) in self.outputs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.instr(*o).name())?;
        }
        writeln!(f)?;
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use crate::{Builder, DType, DotDims, ReplicaGroups, Shape};

    #[test]
    fn printer_includes_key_fields() {
        let mut b = Builder::new("demo", 2);
        let x = b.parameter(Shape::new(DType::F32, vec![2, 4]), "x");
        let w = b.parameter(Shape::new(DType::F32, vec![2, 8]), "w");
        let wg = b.all_gather(w, 0, ReplicaGroups::full(2), "wg");
        b.set_tag(Some("lce"));
        let y = b.einsum(x, wg, DotDims::new(vec![], vec![(1, 0)]).unwrap(), "y");
        let m = b.build(vec![y]);
        let text = m.to_string();
        assert!(text.contains("module demo (partitions=2)"));
        assert!(text.contains("all-gather"));
        assert!(text.contains("dim=0"));
        assert!(text.contains("einsum"));
        assert!(text.contains("tag=lce"));
        assert!(text.contains("outputs: y"));
    }
}
