//! Modules: flat-arena dataflow graphs.

use serde::{Deserialize, Serialize};

use crate::{HloError, InstrId, Instruction, Op, Shape};

/// Identifier of a [`FusionGroup`] within its module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FusionId(pub(crate) u32);

impl FusionId {
    /// The raw group index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A set of instructions executed as one fused kernel.
///
/// Fusion is modeled as a side table over the flat graph (rather than
/// XLA's nested computations): the schedulers and the simulator contract
/// each group into a single schedulable unit whose dependences are the
/// union of the members' external dependences. This is exactly the property
/// that makes the Fig. 11 "bad fusion" serialize an einsum behind a
/// `CollectivePermuteDone`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusionGroup {
    /// Instructions fused together, in topological order.
    pub members: Vec<InstrId>,
    /// The member whose result is the group's output.
    pub root: InstrId,
}

/// A dataflow graph: a flat arena of [`Instruction`]s (arena order is
/// topological), the entry outputs, the SPMD partition count the program is
/// compiled for, and optional [`FusionGroup`]s.
///
/// Modules are immutable once built; compiler passes construct transformed
/// modules via a fresh [`Builder`](crate::Builder).
///
/// Modules serialize with serde for tooling; a **deserialized module is
/// untrusted** — call [`Module::verify`] before using it, since the wire
/// format cannot enforce the graph invariants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    pub(crate) name: String,
    pub(crate) instrs: Vec<Instruction>,
    pub(crate) outputs: Vec<InstrId>,
    pub(crate) num_partitions: usize,
    pub(crate) fusion_groups: Vec<FusionGroup>,
}

impl Module {
    /// The module name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of SPMD device partitions this program runs on.
    #[must_use]
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the module has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn instr(&self, id: InstrId) -> &Instruction {
        &self.instrs[id.index()]
    }

    /// Rewrites the wire annotation of the collective at `id` in place.
    /// Shapes and operands are untouched — a wire change never alters
    /// what a collective returns, only how its payload is encoded in
    /// flight — so the module stays verified.
    ///
    /// # Errors
    ///
    /// Returns [`HloError::Verification`] if the op carries no wire
    /// annotation (see [`Op::with_wire`]).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set_wire(&mut self, id: InstrId, wire: crate::WireFormat) -> Result<(), HloError> {
        let op = self.instrs[id.index()].op.clone().with_wire(wire)?;
        self.instrs[id.index()].op = op;
        Ok(())
    }

    /// The result shape of instruction `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn shape_of(&self, id: InstrId) -> &Shape {
        self.instr(id).shape()
    }

    /// Iterates over `(id, instruction)` in topological (arena) order.
    pub fn iter(&self) -> impl Iterator<Item = (InstrId, &Instruction)> {
        self.instrs.iter().enumerate().map(|(i, ins)| (InstrId(i as u32), ins))
    }

    /// All instruction ids in topological (arena) order, without
    /// allocating (the hot loops in the engine, cost table, memory
    /// profiler and autodiff iterate ids every call).
    pub fn ids(&self) -> impl DoubleEndedIterator<Item = InstrId> + ExactSizeIterator + use<> {
        (0..self.instrs.len() as u32).map(InstrId)
    }

    /// The arena order as an owned schedule vector, for callers that need
    /// a materialized `&[InstrId]` (e.g. simulating the original program
    /// order). Prefer [`Module::ids`] for iteration.
    #[must_use]
    pub fn arena_order(&self) -> Vec<InstrId> {
        self.ids().collect()
    }

    /// The entry-computation outputs.
    #[must_use]
    pub fn outputs(&self) -> &[InstrId] {
        &self.outputs
    }

    /// The fusion groups (empty until a fusion pass runs).
    #[must_use]
    pub fn fusion_groups(&self) -> &[FusionGroup] {
        &self.fusion_groups
    }

    /// Dense map from instruction id to containing fusion group:
    /// `fusion_of()[id.index()]` is `Some(group)` for members and `None`
    /// elsewhere.
    #[must_use]
    pub fn fusion_of(&self) -> Vec<Option<FusionId>> {
        let mut map = vec![None; self.instrs.len()];
        for (gi, g) in self.fusion_groups.iter().enumerate() {
            for &m in &g.members {
                map[m.index()] = Some(FusionId(gi as u32));
            }
        }
        map
    }

    /// Returns a copy of this module with the given fusion groups attached.
    ///
    /// # Errors
    ///
    /// Returns [`HloError::InvalidFusion`] if a group references an unknown
    /// id, its root is not a member, or an instruction belongs to two groups.
    pub fn with_fusion_groups(mut self, groups: Vec<FusionGroup>) -> Result<Self, HloError> {
        let mut seen = vec![false; self.instrs.len()];
        for g in &groups {
            if !g.members.contains(&g.root) {
                return Err(HloError::InvalidFusion(format!(
                    "root {} not among members",
                    g.root
                )));
            }
            for &m in &g.members {
                if m.index() >= self.instrs.len() {
                    return Err(HloError::InvalidFusion(format!("unknown member {m}")));
                }
                if seen[m.index()] {
                    return Err(HloError::InvalidFusion(format!(
                        "instruction {m} in two fusion groups"
                    )));
                }
                seen[m.index()] = true;
            }
        }
        self.fusion_groups = groups;
        Ok(self)
    }

    /// Users of each instruction: `users()[i]` lists the ids that take
    /// instruction `i` as an operand.
    #[must_use]
    pub fn users(&self) -> Vec<Vec<InstrId>> {
        let mut users = vec![Vec::new(); self.instrs.len()];
        for (id, ins) in self.iter() {
            for &op in ins.operands() {
                users[op.index()].push(id);
            }
        }
        users
    }

    /// The module's parameters, ordered by parameter index.
    #[must_use]
    pub fn parameters(&self) -> Vec<InstrId> {
        let mut params: Vec<(usize, InstrId)> = self
            .iter()
            .filter_map(|(id, ins)| match ins.op() {
                Op::Parameter { index } => Some((*index, id)),
                _ => None,
            })
            .collect();
        params.sort_unstable_by_key(|&(i, _)| i);
        params.into_iter().map(|(_, id)| id).collect()
    }

    /// Ids of instructions reachable from the outputs (live set).
    #[must_use]
    pub fn live_set(&self) -> Vec<bool> {
        let mut live = vec![false; self.instrs.len()];
        let mut stack: Vec<InstrId> = self.outputs.clone();
        while let Some(id) = stack.pop() {
            if live[id.index()] {
                continue;
            }
            live[id.index()] = true;
            stack.extend_from_slice(self.instr(id).operands());
        }
        live
    }

    /// Total floating-point operations of all live `Einsum` instructions.
    #[must_use]
    pub fn total_einsum_flops(&self) -> u64 {
        let live = self.live_set();
        self.iter()
            .filter(|(id, _)| live[id.index()])
            .map(|(_, ins)| match ins.op() {
                Op::Einsum(dims) => {
                    let lhs = self.shape_of(ins.operands()[0]);
                    let rhs = self.shape_of(ins.operands()[1]);
                    dims.flops(lhs, rhs)
                }
                _ => 0,
            })
            .sum()
    }

    /// Counts live instructions matching a predicate.
    pub fn count_live<F: Fn(&Instruction) -> bool>(&self, pred: F) -> usize {
        let live = self.live_set();
        self.iter().filter(|(id, ins)| live[id.index()] && pred(ins)).count()
    }
}

#[cfg(test)]
mod tests {
    use crate::{Builder, DType, DotDims, FusionGroup, Shape};

    fn small() -> (crate::Module, crate::InstrId, crate::InstrId, crate::InstrId) {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(Shape::new(DType::F32, vec![2, 3]), "x");
        let w = b.parameter(Shape::new(DType::F32, vec![3, 4]), "w");
        let y = b.einsum(x, w, DotDims::matmul(), "y");
        (b.build(vec![y]), x, w, y)
    }

    #[test]
    fn users_index() {
        let (m, x, w, y) = small();
        let users = m.users();
        assert_eq!(users[x.index()], vec![y]);
        assert_eq!(users[w.index()], vec![y]);
        assert!(users[y.index()].is_empty());
    }

    #[test]
    fn parameters_ordered() {
        let (m, x, w, _) = small();
        assert_eq!(m.parameters(), vec![x, w]);
    }

    #[test]
    fn live_set_and_flops() {
        let (m, _, _, y) = small();
        let live = m.live_set();
        assert!(live.iter().all(|&l| l));
        assert_eq!(m.total_einsum_flops(), 2 * 2 * 3 * 4);
        assert_eq!(m.outputs(), &[y]);
    }

    #[test]
    fn fusion_group_validation() {
        let (m, x, _, y) = small();
        let ok = m
            .clone()
            .with_fusion_groups(vec![FusionGroup { members: vec![y], root: y }])
            .unwrap();
        assert_eq!(ok.fusion_groups().len(), 1);
        assert!(ok.fusion_of()[y.index()].is_some());

        let bad_root =
            m.clone().with_fusion_groups(vec![FusionGroup { members: vec![x], root: y }]);
        assert!(bad_root.is_err());

        let dup = m.with_fusion_groups(vec![
            FusionGroup { members: vec![y], root: y },
            FusionGroup { members: vec![y], root: y },
        ]);
        assert!(dup.is_err());
    }

    #[test]
    fn serde_round_trip_preserves_module() {
        use overlap_json::ToJson as _;
        let (m, _, _, _) = small();
        let json = m.to_json().to_string();
        let back = crate::Module::from_json_str(&json).unwrap();
        assert_eq!(back, m);
        back.verify().unwrap();
    }

    #[test]
    fn deserialized_garbage_fails_verification() {
        use overlap_json::ToJson as _;
        let (m, _, _, y) = small();
        let mut json = m.to_json().to_string();
        // Corrupt an operand reference.
        json = json.replace("\"operands\":[0,1]", "\"operands\":[0,9]");
        let back = crate::Module::from_json_str(&json).unwrap();
        assert!(back.verify().is_err());
        let _ = y;
    }

    #[test]
    fn count_live_matches() {
        let (m, _, _, _) = small();
        assert_eq!(m.count_live(|i| matches!(i.op(), crate::Op::Einsum(_))), 1);
        assert_eq!(m.count_live(|i| matches!(i.op(), crate::Op::Parameter { .. })), 2);
    }
}
