//! Reverse-mode automatic differentiation.
//!
//! The paper's backward-propagation graphs — where "the AllGathers will
//! become ReduceScatters" (§2.2) — are produced by the frontend
//! framework's autodiff. This module provides the same substrate for the
//! IR's differentiable subset: einsum, elementwise add/sub/mul/neg, copy,
//! reshape and transpose. [`gradients`] builds a new module that evaluates
//! the forward value and the cotangents of selected parameters.
//!
//! For an einsum `out = Σ_k lhs · rhs`, the cotangent of each operand is
//! itself an einsum of the output cotangent with the other operand —
//! contracting over the other operand's free dimensions, keeping batch
//! dimensions — followed by a transpose back into the operand's layout.
//! This is exactly why tensor-parallel backward passes contain the
//! `Einsum → ReduceScatter` patterns §5.1 decomposes.

use crate::{BinaryKind, Builder, DotDims, HloError, InstrId, Module, Op, UnaryKind};

/// A module computing gradients, produced by [`gradients`].
#[derive(Debug, Clone)]
pub struct GradModule {
    /// The module: parameters are the original parameters followed by one
    /// extra `seed` parameter (the cotangent of the chosen output);
    /// outputs are the original output followed by one gradient per
    /// requested parameter, in request order.
    pub module: Module,
    /// Id of the forward output inside [`GradModule::module`].
    pub forward_output: InstrId,
    /// Ids of the gradients, in request order.
    pub gradients: Vec<InstrId>,
}

/// Builds the reverse-mode gradient module of `output` with respect to
/// `wrt` (which must be parameters of `module`).
///
/// The produced module takes the original parameters plus a final `seed`
/// parameter of the output's shape, and returns
/// `[output, d⟨seed,output⟩/d wrt[0], …]`. A parameter the output does not
/// depend on gets a zero gradient.
///
/// # Example
///
/// ```
/// use overlap_hlo::{gradients, Builder, DType, DotDims, Shape};
///
/// let mut b = Builder::new("m", 1);
/// let x = b.parameter(Shape::new(DType::F32, vec![4, 8]), "x");
/// let w = b.parameter(Shape::new(DType::F32, vec![8, 2]), "w");
/// let y = b.einsum(x, w, DotDims::matmul(), "y");
/// let m = b.build(vec![y]);
///
/// let grad = gradients(&m, y, &[w]).unwrap();
/// assert_eq!(grad.module.shape_of(grad.gradients[0]).dims(), &[8, 2]);
/// ```
///
/// # Errors
///
/// Returns [`HloError::Verification`] if `output`/`wrt` are invalid or
/// the dataflow between them uses an op outside the differentiable
/// subset.
pub fn gradients(
    module: &Module,
    output: InstrId,
    wrt: &[InstrId],
) -> Result<GradModule, HloError> {
    module.verify()?;
    if output.index() >= module.len() {
        return Err(HloError::Verification(format!("unknown output {output}")));
    }
    for &w in wrt {
        if !matches!(module.instr(w).op(), Op::Parameter { .. }) {
            return Err(HloError::Verification(format!(
                "gradient target {} is not a parameter",
                module.instr(w).name()
            )));
        }
    }

    // Forward copy.
    let mut b = Builder::new(format!("{}.grad", module.name()), module.num_partitions());
    let mut fwd: Vec<Option<InstrId>> = vec![None; module.len()];
    for (id, ins) in module.iter() {
        let operands = ins
            .operands()
            .iter()
            .map(|o| fwd[o.index()].expect("operands precede users"))
            .collect();
        fwd[id.index()] = Some(b.copy_of(module, id, operands));
    }
    let forward_output = fwd[output.index()].expect("output mapped");
    let seed = b.parameter(module.shape_of(output).clone(), "seed");

    // Reverse sweep: accumulate cotangents from users down to operands.
    let mut cotangent: Vec<Option<InstrId>> = vec![None; module.len()];
    cotangent[output.index()] = Some(seed);
    let needed = reachable_to(module, output);

    for id in module.ids().rev() {
        if !needed[id.index()] {
            continue;
        }
        let Some(ct) = cotangent[id.index()] else { continue };
        let ins = module.instr(id);
        let mut add_to = |b: &mut Builder, target: InstrId, value: InstrId| {
            let slot = &mut cotangent[target.index()];
            *slot = Some(match *slot {
                None => value,
                Some(existing) => b.add(existing, value, "grad.acc"),
            });
        };
        match ins.op() {
            Op::Parameter { .. } | Op::Constant { .. } | Op::ConstantTensor { .. } => {}
            Op::Copy => add_to(&mut b, ins.operands()[0], ct),
            Op::Unary(UnaryKind::Neg) => {
                let v = b.neg(ct, "grad.neg");
                add_to(&mut b, ins.operands()[0], v);
            }
            Op::Unary(UnaryKind::Relu) => {
                // d relu(x) = ct ∘ step(x).
                let fx = fwd[ins.operands()[0].index()].expect("mapped");
                let mask = b.step(fx, "grad.relu_mask");
                let v = b.mul(ct, mask, "grad.relu");
                add_to(&mut b, ins.operands()[0], v);
            }
            Op::Unary(UnaryKind::Step) => {
                // The step function is flat almost everywhere.
            }
            Op::Binary(BinaryKind::Add) => {
                add_to(&mut b, ins.operands()[0], ct);
                add_to(&mut b, ins.operands()[1], ct);
            }
            Op::Binary(BinaryKind::Sub) => {
                add_to(&mut b, ins.operands()[0], ct);
                let v = b.neg(ct, "grad.neg");
                add_to(&mut b, ins.operands()[1], v);
            }
            Op::Binary(BinaryKind::Mul) => {
                let r = fwd[ins.operands()[1].index()].expect("mapped");
                let l = fwd[ins.operands()[0].index()].expect("mapped");
                let dl = b.mul(ct, r, "grad.mul_l");
                let dr = b.mul(ct, l, "grad.mul_r");
                add_to(&mut b, ins.operands()[0], dl);
                add_to(&mut b, ins.operands()[1], dr);
            }
            Op::Reshape => {
                let src = module.shape_of(ins.operands()[0]);
                let v = b.reshape(ct, src.dims().to_vec(), "grad.reshape");
                add_to(&mut b, ins.operands()[0], v);
            }
            Op::Transpose { perm } => {
                let mut inverse = vec![0usize; perm.len()];
                for (i, &p) in perm.iter().enumerate() {
                    inverse[p] = i;
                }
                let v = b.transpose(ct, inverse, "grad.transpose");
                add_to(&mut b, ins.operands()[0], v);
            }
            Op::Einsum(dims) => {
                let lhs = ins.operands()[0];
                let rhs = ins.operands()[1];
                let fl = fwd[lhs.index()].expect("mapped");
                let fr = fwd[rhs.index()].expect("mapped");
                let dl = einsum_operand_grad(&mut b, module, dims, lhs, rhs, ct, fr, true);
                add_to(&mut b, lhs, dl);
                let dr = einsum_operand_grad(&mut b, module, dims, lhs, rhs, ct, fl, false);
                add_to(&mut b, rhs, dr);
            }
            other => {
                return Err(HloError::Verification(format!(
                    "{}: op {} is outside the differentiable subset",
                    ins.name(),
                    other.mnemonic()
                )))
            }
        }
    }

    let mut grads = Vec::with_capacity(wrt.len());
    for &w in wrt {
        let g = match cotangent[w.index()] {
            Some(g) => g,
            None => b.zeros(module.shape_of(w).clone(), "grad.zero"),
        };
        grads.push(g);
    }
    let mut outputs = vec![forward_output];
    outputs.extend_from_slice(&grads);
    Ok(GradModule { module: b.build(outputs), forward_output, gradients: grads })
}

/// Instructions on which `output` (transitively) depends.
fn reachable_to(module: &Module, output: InstrId) -> Vec<bool> {
    let mut seen = vec![false; module.len()];
    let mut stack = vec![output];
    while let Some(id) = stack.pop() {
        if seen[id.index()] {
            continue;
        }
        seen[id.index()] = true;
        stack.extend_from_slice(module.instr(id).operands());
    }
    seen
}

/// Gradient of one einsum operand: `einsum(dOut, other)` contracting over
/// the other operand's free dimensions, then a transpose back into the
/// operand's layout.
#[allow(clippy::too_many_arguments)]
fn einsum_operand_grad(
    b: &mut Builder,
    module: &Module,
    dims: &DotDims,
    lhs: InstrId,
    rhs: InstrId,
    ct: InstrId,
    fwd_other: InstrId,
    wrt_lhs: bool,
) -> InstrId {
    let lhs_rank = module.shape_of(lhs).rank();
    let rhs_rank = module.shape_of(rhs).rank();
    let batch_len = dims.batch().len();
    let lhs_free = dims.lhs_free_dims(lhs_rank);
    let rhs_free = dims.rhs_free_dims(rhs_rank);

    // Pair dOut's batch block with the other operand's batch dims, and
    // contract dOut's other-free block against the other operand's free
    // dims.
    let (other_batch, other_free, other_free_out_offset): (Vec<usize>, Vec<usize>, usize) =
        if wrt_lhs {
            (
                dims.batch().iter().map(|&(_, r)| r).collect(),
                rhs_free.clone(),
                batch_len + lhs_free.len(),
            )
        } else {
            (
                dims.batch().iter().map(|&(l, _)| l).collect(),
                lhs_free.clone(),
                batch_len,
            )
        };
    let batch_pairs: Vec<(usize, usize)> =
        (0..batch_len).map(|i| (i, other_batch[i])).collect();
    let contract_pairs: Vec<(usize, usize)> = other_free
        .iter()
        .enumerate()
        .map(|(i, &d)| (other_free_out_offset + i, d))
        .collect();
    let gdims = DotDims::new(batch_pairs, contract_pairs).expect("valid grad dims");
    let grad = b.einsum(ct, fwd_other, gdims, "grad.einsum");

    // grad layout: [batch…, own-free…, own-contracting (other side order)].
    // Build the transpose back into the operand's dimension order.
    let own_rank = if wrt_lhs { lhs_rank } else { rhs_rank };
    let own_free = if wrt_lhs { &lhs_free } else { &rhs_free };
    let mut perm = vec![usize::MAX; own_rank];
    for (own_dim, slot) in perm.iter_mut().enumerate() {
        let pos = if let Some(i) = (0..batch_len).find(|&i| {
            let pair = dims.batch()[i];
            (if wrt_lhs { pair.0 } else { pair.1 }) == own_dim
        }) {
            i
        } else if let Some(i) = own_free.iter().position(|&d| d == own_dim) {
            batch_len + i
        } else {
            let k = dims
                .contracting()
                .iter()
                .position(|&(l, r)| (if wrt_lhs { l } else { r }) == own_dim)
                .expect("every dim is batch, free or contracting");
            batch_len + own_free.len() + k
        };
        *slot = pos;
    }
    if perm.iter().enumerate().all(|(i, &p)| i == p) {
        grad
    } else {
        b.transpose(grad, perm, "grad.layout")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DType, Shape};

    fn f32s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    #[test]
    fn matmul_gradients_have_operand_shapes() {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[4, 6]), "x");
        let w = b.parameter(f32s(&[6, 8]), "w");
        let y = b.einsum(x, w, DotDims::matmul(), "y");
        let m = b.build(vec![y]);
        let g = gradients(&m, y, &[x, w]).unwrap();
        g.module.verify().unwrap();
        assert_eq!(g.module.shape_of(g.gradients[0]).dims(), &[4, 6]);
        assert_eq!(g.module.shape_of(g.gradients[1]).dims(), &[6, 8]);
        // The backward contains two new einsums.
        assert_eq!(g.module.count_live(|i| matches!(i.op(), Op::Einsum(_))), 3);
    }

    #[test]
    fn batch_matmul_gradients_have_operand_shapes() {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[3, 4, 6]), "x");
        let w = b.parameter(f32s(&[3, 6, 2]), "w");
        let y = b.einsum(x, w, DotDims::batch_matmul(), "y");
        let m = b.build(vec![y]);
        let g = gradients(&m, y, &[x, w]).unwrap();
        g.module.verify().unwrap();
        assert_eq!(g.module.shape_of(g.gradients[0]).dims(), &[3, 4, 6]);
        assert_eq!(g.module.shape_of(g.gradients[1]).dims(), &[3, 6, 2]);
    }

    #[test]
    fn unused_parameter_gets_zero_gradient() {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[4]), "x");
        let unused = b.parameter(f32s(&[7]), "unused");
        let y = b.neg(x, "y");
        let m = b.build(vec![y]);
        let g = gradients(&m, y, &[x, unused]).unwrap();
        assert_eq!(g.module.shape_of(g.gradients[1]).dims(), &[7]);
        let grad_instr = g.module.instr(g.gradients[1]);
        assert!(matches!(grad_instr.op(), Op::Constant { value } if *value == 0.0));
    }

    #[test]
    fn fan_out_accumulates() {
        // y = x + x: dy/dx = 2 (an Add of two seed contributions).
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[4]), "x");
        let y = b.add(x, x, "y");
        let m = b.build(vec![y]);
        let g = gradients(&m, y, &[x]).unwrap();
        let acc = g.module.instr(g.gradients[0]);
        assert!(matches!(acc.op(), Op::Binary(BinaryKind::Add)));
    }

    #[test]
    fn non_differentiable_op_rejected() {
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[4]), "x");
        let gph = b.all_gather(x, 0, crate::ReplicaGroups::full(2), "ag");
        let m = b.build(vec![gph]);
        assert!(gradients(&m, gph, &[x]).is_err());
    }

    #[test]
    fn non_parameter_target_rejected() {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[4]), "x");
        let y = b.neg(x, "y");
        let m = b.build(vec![y]);
        assert!(gradients(&m, y, &[y]).is_err());
    }
}
